#!/usr/bin/env python3
"""Chaos run: inject faults into the LVM stack and watch it degrade
gracefully instead of serving wrong translations.

Three demonstrations, all through the public API:

1. a corrupted gapped-table entry detected by its integrity tag and
   healed by the scan → retrain ladder (``docs/INTERNALS.md`` §8.2);
2. a full simulation per fault class, each verifying every translation
   against the authoritative mapping set;
3. the bit-identity guarantee: a zero-rate plan changes nothing.

Run:  python examples/chaos_run.py
"""

from repro import (
    FaultKind,
    FaultPlan,
    LearnedIndex,
    SimConfig,
    Simulator,
    build_workload,
)
from repro.mem import BumpAllocator
from repro.types import PTE


def demo_corruption_recovery() -> None:
    print("1. Single-entry corruption and recovery")
    print("   ------------------------------------")
    index = LearnedIndex(BumpAllocator())
    index.bulk_build([PTE(vpn=100 + i, ppn=0x500 + i) for i in range(2000)])

    # Flip one bit in a live gapped-table entry, behind the index's
    # back — the kind of damage the injector's pte_bitflip class does.
    from repro.core.nodes import leaf_nodes

    leaf = next(l for l in leaf_nodes(index.root) if l.table.occupied)
    slot, entry = leaf.table.entries()[0]
    leaf.table.corrupt_slot(slot, fld="ppn", bit=7)
    print(f"   corrupted slot {slot} (VPN {entry.vpn:#x}), tag now stale")

    walk = index.lookup(entry.vpn)
    assert walk.pte.ppn == entry.ppn, "recovery must restore the real PPN"
    print(f"   lookup({entry.vpn:#x}) -> PPN {walk.pte.ppn:#x} "
          f"(correct), recovered={walk.recovered}")
    print(f"   ladder: scans={index.stats.recovered_scans} "
          f"retrains={index.stats.recovered_retrains} "
          f"corrupt entries detected={index.stats.corrupt_entries_detected}")
    print()


def demo_fault_classes(refs: int = 4000) -> None:
    print("2. Full simulations, one fault class at a time")
    print("   -------------------------------------------")
    workload = build_workload("gups")
    header = (f"   {'fault class':20s} {'injected':>8s} {'recoveries':>10s} "
              f"{'rec cycles':>12s} {'incorrect':>9s}")
    print(header)
    for kind in FaultKind:
        plan = FaultPlan.single(kind, rate=5e-3, seed=42)
        config = SimConfig(num_refs=refs, faults=plan,
                           verify_translations=True)
        result = Simulator("lvm", workload, config).run()
        assert result.incorrect_translations == 0
        print(f"   {kind.value:20s} {result.faults_injected:8d} "
              f"{result.recoveries:10d} {result.recovery_cycles:12d} "
              f"{result.incorrect_translations:9d}")
    print("   (zero incorrect translations is the whole point)")
    print()


def demo_bit_identity(refs: int = 4000) -> None:
    print("3. All rates zero == no injector at all")
    print("   ------------------------------------")
    workload = build_workload("gups")
    baseline = Simulator("lvm", workload, SimConfig(num_refs=refs)).run()
    zeroed = Simulator(
        "lvm", workload, SimConfig(num_refs=refs, faults=FaultPlan(seed=7))
    ).run()
    same = (baseline.cycles, baseline.mmu_cycles, baseline.walk_traffic) == \
           (zeroed.cycles, zeroed.mmu_cycles, zeroed.walk_traffic)
    print(f"   cycles {baseline.cycles:.0f} vs {zeroed.cycles:.0f}; "
          f"bit-identical: {same}")
    assert same


def main() -> None:
    demo_corruption_recovery()
    demo_fault_classes()
    demo_bit_identity()


if __name__ == "__main__":
    main()
