#!/usr/bin/env python3
"""Virtualized (2D) translation: nested radix vs. nested LVM.

Under virtualization every guest page-table access must itself be
translated by the hypervisor's page table — radix's four sequential
levels become an up-to-24-access two-dimensional walk.  LVM nests
gracefully: both dimensions are learned indexes whose models live in
LWCs, so the 2D walk collapses toward one guest PTE fetch plus one
host PTE fetch (paper section 4.6.2).

Run:  python examples/virtualized_guest.py
"""

import random

from repro.analysis import render_bars, render_table
from repro.core import LearnedIndex
from repro.mem import BumpAllocator
from repro.mmu.hierarchy import MemoryHierarchy
from repro.pagetables import RadixPageTable
from repro.sim import SimConfig
from repro.types import PTE
from repro.virt import NestedLVMWalker, NestedRadixWalker, build_host_mapping

GUEST_PAGES = 120_000
GPA_BASE = 1 << 20
LOOKUPS = 20_000


def main() -> None:
    print(f"Guest: {GUEST_PAGES} mapped pages; host backs its memory "
          f"with one large region.")
    guest_ptes = [
        PTE(vpn=0x100 + i, ppn=GPA_BASE + i) for i in range(GUEST_PAGES)
    ]
    rng = random.Random(7)
    lookups = [0x100 + rng.randrange(GUEST_PAGES) for _ in range(LOOKUPS)]
    cfg = SimConfig()

    # -- nested radix ------------------------------------------------------
    guest_radix = RadixPageTable(BumpAllocator(base=GPA_BASE << 12))
    for pte in guest_ptes:
        guest_radix.map(pte)
    nested_radix = NestedRadixWalker(
        guest_radix,
        build_host_mapping(1 << 15, BumpAllocator(base=1 << 40), "radix"),
        MemoryHierarchy(cfg.hierarchy),
    )
    for vpn in lookups:
        nested_radix.walk(vpn)

    # -- nested LVM ---------------------------------------------------------
    guest_lvm = LearnedIndex(BumpAllocator(base=GPA_BASE << 12))
    guest_lvm.bulk_build([PTE(vpn=p.vpn, ppn=p.ppn) for p in guest_ptes])
    nested_lvm = NestedLVMWalker(
        guest_lvm,
        build_host_mapping(1 << 15, BumpAllocator(base=1 << 40), "lvm"),
        MemoryHierarchy(cfg.hierarchy),
    )
    for vpn in lookups:
        nested_lvm.walk(vpn)

    rows = []
    for name, walker in (("nested radix", nested_radix),
                         ("nested LVM", nested_lvm)):
        rows.append((
            name,
            f"{walker.total_accesses / walker.walks:.2f}",
            f"{walker.total_cycles / walker.walks:.0f}",
        ))
    print()
    print(render_table(
        ["scheme", "memory accesses / 2D walk", "cycles / 2D walk"], rows,
        title="Virtualized GUPS-style guest",
    ))
    print()
    print(render_bars(
        {
            "nested radix": nested_radix.total_cycles / nested_radix.walks,
            "nested LVM": nested_lvm.total_cycles / nested_lvm.walks,
        },
        title="cycles per 2D walk (lower is better)",
        reference=nested_lvm.total_cycles / nested_lvm.walks,
        value_format="{:.0f}",
    ))
    cyc_ratio = nested_radix.total_cycles / nested_lvm.total_cycles
    acc_ratio = nested_radix.total_accesses / nested_lvm.total_accesses
    print(f"\nnested radix issues {acc_ratio:.2f}x the memory accesses and "
          f"costs {cyc_ratio:.2f}x the cycles of nested LVM — the 2D blow-up "
          f"multiplies every extra access, so the learned index's "
          f"single-access property pays twice.")


if __name__ == "__main__":
    main()
