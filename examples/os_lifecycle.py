#!/usr/bin/env python3
"""A process lifetime through the LVM OS manager (paper section 5).

Follows one process from exec() to exit the way the paper's Linux
prototype drives LVM: batched initial mappings, demand growth at the
heap edge, mid-life munmap/mmap churn, mprotect and accessed/dirty-bit
updates (software walks), and the shared kernel index — printing the
management events (rescales / retrains / rebuilds / LWC flushes) the
paper measures in section 7.3.

Run:  python examples/os_lifecycle.py
"""

from repro.analysis import render_table
from repro.kernel import (
    KERNEL_BASE_VPN,
    LVMManager,
    Process,
    SharedKernelIndex,
    VMA,
)
from repro.mem import BumpAllocator
from repro.types import PTE, Permission


def main() -> None:
    # -- Boot: one kernel index shared by everyone (section 5.2) --------
    kernel = SharedKernelIndex(BumpAllocator())
    kernel.map_direct(KERNEL_BASE_VPN, 50_000, ppn0=0)
    print(f"Kernel index: {kernel.index_size_bytes} bytes, shared by all "
          f"processes (no per-process kernel training)")

    # -- exec(): initial VMAs stream in, the index is built once ---------
    manager = LVMManager(BumpAllocator())
    process = Process(manager)
    kernel.attach()
    manager.begin_batch()
    process.mmap(VMA(start_vpn=0x400, pages=1024, perms=Permission.RX,
                     name="text", file_backed=True))
    process.mmap(VMA(start_vpn=0x1000, pages=512, name="data"))
    process.mmap(VMA(start_vpn=0x4000, pages=20_000, name="heap"))
    process.mmap(VMA(start_vpn=0x7FFF_F000, pages=2048, name="stack"))
    manager.end_batch()
    index = manager.index
    print(f"\nAfter exec: index {index.index_size_bytes} bytes, "
          f"depth {index.depth}, {index.num_mappings} mappings")

    # -- Steady state: the heap grows page by page -----------------------
    heap_end = 0x4000 + 20_000
    process.mmap(VMA(start_vpn=heap_end, pages=30_000, name="heap2"),
                 populate=False)
    for vpn in range(heap_end, heap_end + 30_000):
        process.handle_fault(vpn << 12)  # demand paging, one insert each

    # -- Mid-life churn ----------------------------------------------------
    process.munmap(0x1000)  # drop the data segment...
    process.mmap(VMA(start_vpn=0x1000, pages=512, name="data"))  # ...remap

    # -- Software PTE operations (section 5.2, "Software lookup") --------
    manager.set_accessed(0x4000)
    manager.set_dirty(0x4000)
    manager.change_protection(0x400, Permission.READ)
    pte = manager.find(0x4000)
    print(f"software walk of heap base: accessed={pte.accessed} "
          f"dirty={pte.dirty}")

    # -- The section 7.3 management report --------------------------------
    report = manager.report()
    rows = [
        ("full rebuilds (retrains)", report.full_rebuilds),
        ("local leaf retrains", report.local_retrains),
        ("rescales (edge growth)", report.rescales),
        ("LWC flushes", report.lwc_flushes),
        ("max retrain time", f"{report.max_retrain_time_s * 1e3:.2f} ms"),
        ("management CPU time", f"{report.management_time_s * 1e3:.1f} ms"),
    ]
    print()
    print(render_table(["event", "count"], rows,
                       title="Management events over the process lifetime"))
    print(f"\nPaper section 7.3: retrains occur at most 3 times (2 on "
          f"average) and cost ~ms — this run: {report.full_rebuilds} "
          f"rebuilds, {report.max_retrain_time_s * 1e3:.2f} ms worst.")
    assert report.full_rebuilds <= 3

    # -- exit(): everything torn down -------------------------------------
    for name_vpn in (0x400, 0x4000, heap_end, 0x7FFF_F000):
        process.munmap(name_vpn)
    print(f"\nAfter exit: {index.num_mappings - 512} non-data mappings left "
          f"(data segment remapped above still present: "
          f"{index.num_mappings} total)")


if __name__ == "__main__":
    main()
