#!/usr/bin/env python3
"""Register a custom translation scheme and sweep it like a built-in.

The scheme registry (``repro.schemes``) is the extension point the
paper's bake-off architecture demands: a scheme is one self-describing
descriptor — page-table factory, walker factory, capability flags,
stats hooks — and registering it makes it a first-class citizen of the
serial simulator, the parallel sweep, and the CLI, with no core module
touched.

Here we wire up the Blake2 **hashed page table** from the section-7.3
collision study (``repro.pagetables.hashed``) as a runnable scheme: a
classic single-hash page table with no walk cache, the section-2.2
design radix replaced.  One probe in the collision-free case, linear
probing otherwise — so it lands between radix and the ideal oracle.

Run:  PYTHONPATH=src python examples/custom_scheme.py
"""

from repro.mmu.walker import WalkOutcome
from repro.pagetables.hashed import HashedPageTable
from repro.schemes import SchemeDescriptor, registry
from repro.sim import SimConfig, run_suite


class UncachedWalker:
    """The simplest possible hardware walker: issue every software walk
    access through the cache hierarchy, serially, with no walk cache.

    Walkers only need ``walk(vpn, asid) -> WalkOutcome`` plus the three
    counters the stats layer reads.
    """

    def __init__(self, table, hierarchy):
        self.table = table
        self.hierarchy = hierarchy
        self.walks = 0
        self.total_cycles = 0
        self.total_accesses = 0

    def walk(self, vpn: int, asid: int = 0) -> WalkOutcome:
        result = self.table.walk(vpn)
        cycles = 0
        for access in result.accesses:
            cycles += self.hierarchy.walk_access(access.paddr)
        issued = len(result.accesses)
        self.walks += 1
        self.total_cycles += cycles
        self.total_accesses += issued
        return WalkOutcome(result.pte, cycles, issued)


class HashedScheme(SchemeDescriptor):
    name = "hashed"
    description = "Blake2 open-addressing hashed page table, no walk cache"
    aliases = ("blake2",)

    def make_page_table(self, sim):
        return HashedPageTable(sim.allocator)

    def make_walker(self, sim):
        return UncachedWalker(sim.page_table, sim.hierarchy)


# Module-level registration: importing this module is enough to make
# "hashed" available everywhere — including in spawn-started sweep
# workers, which re-import the provider module by name.
if not registry.is_registered("hashed"):
    registry.register(HashedScheme())


def main() -> None:
    print("registered schemes:", ", ".join(registry.available()))

    # The custom scheme sweeps exactly like a built-in — here against
    # radix and the oracle, across two worker processes.
    results = run_suite(
        ["gups"],
        schemes=("radix", "hashed", "ideal"),
        page_modes=(False,),
        config=SimConfig(num_refs=20_000),
        jobs=2,
    )

    print(f"\n{'scheme':8s} {'cycles':>12s} {'walk traffic':>12s} "
          f"{'speedup':>8s}")
    base = results.get("gups", "radix", False)
    for scheme in ("radix", "hashed", "ideal"):
        run = results.get("gups", scheme, False)
        print(f"{scheme:8s} {run.cycles:12.0f} {run.walk_traffic:12d} "
              f"{base.cycles / run.cycles:8.3f}")

    print("\nA hashed table needs no multi-level walk, so it beats radix "
          "on walk traffic;\ncollision probes keep it shy of the oracle.")


if __name__ == "__main__":
    main()
