#!/usr/bin/env python3
"""Quickstart: build an LVM learned index and translate addresses.

This walks the paper's own example (section 4.1, Figure 4): an address
space with a heap and a stack, a learned index trained over it, and a
single-access translation for VPN 139.

Run:  python examples/quickstart.py
"""

from repro.core import LearnedIndex
from repro.mem import BumpAllocator
from repro.types import PTE, PageSize


def main() -> None:
    # -- 1. An application's mapped pages ---------------------------------
    # A heap covering VPNs [100, 150) and a stack at [1000, 1032),
    # echoing Figure 4(a).  Each VPN maps to some physical page.
    heap = [PTE(vpn=100 + i, ppn=0x100 + i) for i in range(50)]
    stack = [PTE(vpn=1000 + i, ppn=0x900 + i) for i in range(32)]

    # -- 2. Build the learned index ---------------------------------------
    # The OS does this when the process's first pages are mapped
    # (section 4.3.1).  The BumpAllocator stands in for the physical
    # page allocator backing the gapped page tables.
    index = LearnedIndex(BumpAllocator())
    index.bulk_build(heap + stack)

    print("Learned index built:")
    print(f"  size      : {index.index_size_bytes} bytes "
          f"({index.index_size_bytes // 16} linear models)")
    print(f"  depth     : {index.depth} model levels")
    print(f"  leaves    : {index.num_leaves} gapped page tables")

    # -- 3. Translate: the paper's VPN = 139 ------------------------------
    walk = index.lookup(139)
    print(f"\nTranslate VPN 139:")
    print(f"  hit       : {walk.hit}")
    print(f"  PPN       : {walk.pte.ppn:#x}")
    print(f"  model hops: {len(walk.node_accesses)}")
    print(f"  PTE lines : {len(walk.pte_line_paddrs)} "
          f"(single-access translation: {walk.total_memory_accesses} "
          f"memory accesses total)")

    # -- 4. Grow the address space -----------------------------------------
    # Sequential growth at the heap edge is absorbed by the
    # minimum-insertion-distance + rescaling techniques (section 4.3.4):
    # no retraining happens.
    for vpn in range(150, 400):
        index.insert(PTE(vpn=vpn, ppn=0x2000 + vpn))
    stats = index.stats
    print(f"\nAfter 250 inserts at the heap edge:")
    print(f"  rescales      : {stats.rescales}")
    print(f"  local retrains: {stats.local_retrains}")
    print(f"  full rebuilds : {stats.full_rebuilds}")
    assert index.lookup(399).hit

    # -- 5. Mix in a huge page ---------------------------------------------
    # One structure serves all page sizes (section 4.4): a 2 MB page is
    # keyed by its first 4 KB VPN; queries inside it round down.
    huge = PTE(vpn=512 * 16, ppn=0x8000, page_size=PageSize.SIZE_2M)
    index.insert(huge)
    inner = index.lookup(512 * 16 + 123)
    print(f"\n2 MB page at VPN {huge.vpn}: query {512 * 16 + 123} -> "
          f"PPN {inner.pte.ppn:#x} (page size {inner.pte.page_size.name})")

    # -- 6. Collision statistics -------------------------------------------
    for vpn in range(100, 150):
        index.lookup(vpn)
    print(f"\nCollision rate over the heap: {stats.collision_rate:.4f} "
          f"(paper: 0.2% average)")


if __name__ == "__main__":
    main()
