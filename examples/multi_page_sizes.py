#!/usr/bin/env python3
"""Multiple (and arbitrary!) page sizes in one learned index.

Section 4.4's claim, demonstrated: LVM represents different page sizes
as different slopes in one structure — no separate tables, no extra
lookups.  The last part exercises the paper's "future work" teaser:
*arbitrary* page sizes beyond x86's 4K/2M/1G work with zero changes,
because a page size is just another slope.

Run:  python examples/multi_page_sizes.py
"""

from repro.core import LearnedIndex
from repro.mem import BumpAllocator
from repro.types import PTE, PageSize


def main() -> None:
    index = LearnedIndex(BumpAllocator())

    # A mixed address space: dense 4 KB pages (steep slope), a run of
    # 2 MB pages (slope / 512), and a 1 GB page (slope / 262144).
    mappings = []
    mappings += [PTE(vpn=v, ppn=0x1000 + v) for v in range(2048)]
    mappings += [
        PTE(vpn=(1 << 16) + 512 * i, ppn=0x100000 + i, page_size=PageSize.SIZE_2M)
        for i in range(64)
    ]
    mappings += [
        PTE(vpn=1 << 18, ppn=0x800000, page_size=PageSize.SIZE_1G)
    ]
    index.bulk_build(mappings)

    print(f"One index over {len(mappings)} mappings of three sizes:")
    print(f"  index size: {index.index_size_bytes} bytes, "
          f"depth {index.depth}, {index.num_leaves} leaves")

    # Every size resolves with a lookup of the 4 KB query VPN — the
    # entry's 2-bit size field tells the TLB what reach to install.
    probes = [
        ("4 KB page", 1234),
        ("2 MB page interior", (1 << 16) + 512 * 7 + 300),
        ("1 GB page interior", (1 << 18) + 99_999),
    ]
    for label, vpn in probes:
        walk = index.lookup(vpn)
        assert walk.hit, label
        print(f"  {label:20s} VPN {vpn:>8}: size field "
              f"{walk.pte.page_size.encode()} ({walk.pte.page_size.name}), "
              f"{walk.total_memory_accesses} memory accesses")

    # -- Arbitrary page sizes (the paper's future-work direction) ---------
    # A hypothetical 64 KB page = 16 base pages.  Nothing in the index
    # knows about it; it is just mappings whose covers() span 16 VPNs
    # and a leaf whose slope is ~1/16.
    class Size64K:
        value = 64 << 10
        pages_4k = 16
        name = "SIZE_64K"

        @staticmethod
        def encode():
            return 3

    odd_index = LearnedIndex(BumpAllocator())
    odd = []
    base = 1 << 20
    for i in range(256):
        pte = PTE(vpn=base + 16 * i, ppn=0x200000 + i)
        # Duck-typed page size: the index only uses pages_4k/covers.
        pte.page_size = Size64K  # type: ignore[assignment]
        odd.append(pte)
    odd_index.bulk_build(odd)
    walk = odd_index.lookup(base + 16 * 100 + 9)
    assert walk.hit and walk.pte is odd[100]
    print(f"\nArbitrary 64 KB pages: index "
          f"{odd_index.index_size_bytes} bytes, lookup of an interior "
          f"VPN resolves in {walk.total_memory_accesses} accesses — no "
          f"hardware or structural changes (section 4.4).")


if __name__ == "__main__":
    main()
