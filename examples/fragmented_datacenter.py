#!/usr/bin/env python3
"""LVM on a fragmented datacenter server (paper sections 3.2, 7.3).

Simulates a long-running server: physical memory is churned until free
memory exists only in small pieces (the condition Figure 3 measures at
Meta), then an LVM index is built for a memcached-style process on that
machine.  LVM adapts its gapped page tables to whatever contiguity the
buddy allocator still has — the property that lets it work where
designs needing large contiguous tables (e.g. FPT's 2 MB folds) fail.

Run:  python examples/fragmented_datacenter.py
"""

from repro.analysis import bytes_human, render_table
from repro.core.nodes import leaf_nodes
from repro.kernel.manager import LVMManager
from repro.kernel.thp import plan_vma_mappings
from repro.mem import BuddyAllocator, datacenter_churn, measure_contiguity
from repro.types import PTE
from repro.workloads import build_workload


def main() -> None:
    # -- 1. A server after months of uptime --------------------------------
    print("Churning a 2 GB buddy allocator to datacenter fragmentation...")
    buddy = BuddyAllocator(2 << 30)
    datacenter_churn(buddy, target_occupancy=0.7)
    profile = measure_contiguity(buddy)
    rows = [(f"{size >> 10}KB", f"{frac:.3f}") for size, frac in profile.rows()]
    print(render_table(
        ["contiguous block", "fraction of free memory"], rows,
        title="Figure 3 — what this server can still allocate",
    ))
    print(f"largest free block: {bytes_human(buddy.max_contiguous_bytes())}")

    # -- 2. Build LVM for a memcached-style process on it -------------------
    print("\nBuilding LVM for a memcached-style address space "
          "on the fragmented server...")
    workload = build_workload("mem$")
    manager = LVMManager(buddy)
    manager.begin_batch()
    ppn = 1 << 20
    for vma in workload.vmas:
        for plan in plan_vma_mappings(vma, thp=False):
            manager.map(PTE(vpn=plan.vpn, ppn=ppn, page_size=plan.page_size))
            ppn += plan.page_size.pages_4k
    manager.end_batch()

    index = manager.index
    leaves = leaf_nodes(index.root)
    table_sizes = sorted(leaf.table.size_bytes for leaf in leaves)
    print(f"  index size     : {index.index_size_bytes} bytes")
    print(f"  gapped tables  : {len(leaves)}")
    print(f"  largest table  : {bytes_human(table_sizes[-1])} "
          f"(fits the available contiguity)")
    print(f"  total PT space : {bytes_human(index.table_bytes)} for "
          f"{index.num_mappings} translations "
          f"(minimum {bytes_human(index.min_required_bytes)})")

    # -- 3. Lookups still single-access ------------------------------------
    trace = workload.trace(20_000, seed=1)
    for va in trace:
        index.lookup(int(va) >> 12)
    print(f"  collision rate : {index.stats.collision_rate:.4f} over "
          f"{index.stats.lookups} lookups")
    assert index.stats.collision_rate < 0.05


if __name__ == "__main__":
    main()
