#!/usr/bin/env python3
"""Graph analytics under four translation schemes.

Reproduces the paper's headline scenario on one workload: a graphBIG
BFS over a Kronecker graph (the 75 GB workload, scaled), simulated
end-to-end under radix, ECPT, LVM and the ideal page table, printing
the per-scheme speedups, MMU overhead and page-walk traffic — a
single-workload slice of Figures 9-11.

Run:  python examples/graph_analytics.py [kernel] [refs]
      kernel in {bfs, dfs, cc, dc, pr, sssp}, default bfs
"""

import sys

from repro.analysis import render_table
from repro.sim import SimConfig, Simulator
from repro.workloads import build_workload


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "bfs"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000

    print(f"Building graph workload {kernel!r} "
          f"(Kronecker graph, scaled from the paper's 75 GB)...")
    workload = build_workload(kernel)
    space = workload.space
    print(f"  mapped pages : {space.total_pages}")
    print(f"  gap=1 coverage: {space.gap_coverage():.3f} (Figure 2)")

    config = SimConfig(num_refs=refs)
    results = {}
    for scheme in ("radix", "ecpt", "lvm", "ideal"):
        print(f"  simulating {scheme}...")
        sim = Simulator(scheme, workload, config)
        results[scheme] = (sim, sim.run())

    base = results["radix"][1]
    rows = []
    for scheme, (sim, res) in results.items():
        rows.append((
            scheme,
            f"{base.cycles / res.cycles:.3f}",
            f"{res.mmu_cycles / base.mmu_cycles:.2f}",
            f"{res.walk_traffic / base.walk_traffic:.2f}",
            f"{res.walk_cycles_per_walk:.0f}",
            f"{res.walk_traffic_per_walk:.2f}",
        ))
    print()
    print(render_table(
        ["scheme", "speedup", "MMU overhead", "walk traffic",
         "cycles/walk", "accesses/walk"],
        rows,
        title=f"{kernel} under 4 KB pages (all relative to radix)",
    ))

    lvm_sim, lvm_res = results["lvm"]
    index = lvm_sim.manager.index
    print(f"\nLVM learned index: {index.index_size_bytes} bytes, "
          f"depth {index.depth}, {index.num_leaves} leaves, "
          f"LWC hit rate {lvm_res.walk_cache_hit_rate:.4f}, "
          f"collision rate {index.stats.collision_rate:.4f}")


if __name__ == "__main__":
    main()
