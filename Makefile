# Convenience targets for the LVM reproduction.

PYTHON ?= python
REFS ?= 20000
JOBS ?= 4

.PHONY: install test bench bench-figures figures quicktest lint chaos clean loc

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

# Default test run; includes the fault-injection chaos harness
# (tests/test_faults_*.py) alongside the functional suite.
test:
	$(PYTHON) -m pytest tests/ -q

quicktest:
	$(PYTHON) -m pytest tests/ -q -x -k "not Stateful and not property and not chaos"

# Static checks.  ruff is optional tooling (config in pyproject.toml);
# skip with a notice when it is not installed rather than failing.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	elif command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "lint: ruff not installed; skipping (pip install ruff)"; \
	fi

# Fault-injection sweep: the chaos harness plus the CLI chaos report.
chaos:
	$(PYTHON) -m pytest tests/test_faults_unit.py tests/test_faults_chaos.py -q
	$(PYTHON) -m repro chaos --refs $(REFS) --fault-rate 1e-3

# Sweep-engine benchmark: serial vs parallel vs TLB fast path.
# Refreshes BENCH_sweep.json at the repo root.
bench:
	PYTHONPATH=src:$$PYTHONPATH $(PYTHON) benchmarks/bench_sweep.py \
		--refs $(REFS) --jobs $(JOBS)

# The paper's tables and figures via pytest-benchmark.
bench-figures:
	REPRO_REFS=$(REFS) $(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

figures:
	$(PYTHON) -m repro fig2
	$(PYTHON) -m repro fig3
	$(PYTHON) -m repro tab1
	$(PYTHON) -m repro tab2
	$(PYTHON) -m repro hardware
	$(PYTHON) -m repro fig9 --refs $(REFS)

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1

clean:
	rm -rf .pytest_cache .benchmarks build *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
