# Convenience targets for the LVM reproduction.

PYTHON ?= python
REFS ?= 20000

.PHONY: install test bench figures quicktest clean loc

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

quicktest:
	$(PYTHON) -m pytest tests/ -q -x -k "not Stateful and not property"

bench:
	REPRO_REFS=$(REFS) $(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

figures:
	$(PYTHON) -m repro fig2
	$(PYTHON) -m repro fig3
	$(PYTHON) -m repro tab1
	$(PYTHON) -m repro tab2
	$(PYTHON) -m repro hardware
	$(PYTHON) -m repro fig9 --refs $(REFS)

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1

clean:
	rm -rf .pytest_cache .benchmarks build *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
