"""Typed exception hierarchy for the whole library.

Every error the reproduction can raise on purpose derives from
:class:`ReproError`, so callers (the CLI, the chaos harness, the
simulator) can distinguish *modeled* failures — a corrupted PTE, an
exhausted allocator, a violated kernel invariant — from plain Python
bugs.  The hierarchy mirrors the fault model documented in
``docs/INTERNALS.md``:

* :class:`ConfigError` — invalid configuration, rejected before any
  simulation state is built (also a :class:`ValueError` for
  backward compatibility with older call sites).
* :class:`TranslationError` — a translation scheme was asked to do
  something invalid (double-map, unmap of an absent page, ...).
* :class:`InvariantViolation` — a kernel invariant does not hold
  (overlapping VMAs, double-mapped physical frames, an index that
  disagrees with the authoritative mapping set).
* :class:`CorruptionError` — corrupted state was *detected* (a PTE
  failing its integrity check, a poisoned walk-cache entry) where it
  could not be transparently recovered.
* :class:`AllocationError` — physical-memory allocation failures.
* :class:`FaultInjectionError` — a malformed fault plan.
* :class:`RecoveryExhaustedError` — the graceful-degradation ladder
  (bounded probe → leaf scan → leaf retrain → full rebuild) ran out of
  rungs without restoring a correct translation.
* :class:`SweepError` — *host-level* sweep-execution failures (a hung
  or crashed worker process, a quarantined spec), as opposed to the
  *simulated* failures above.  Raised by the sweep supervisor
  (``sim/supervisor.py``), never by the simulator itself.
* :class:`ServeError` — failures of the long-lived translation
  service (``repro/serve``): shed requests, exhausted quotas,
  quarantined tenants, dead shards, protocol violations.  Each maps
  to a typed error frame on the wire.
* :class:`JournalError` / :class:`JournalMismatchError` — the run
  journal (``sim/journal.py``) is unusable, or was written by a sweep
  with a different configuration fingerprint (the mismatch variant is
  also a :class:`ConfigError`, so the CLI maps it to exit code 2).

:class:`SweepInterrupted` stands apart: it subclasses
``KeyboardInterrupt`` (NOT :class:`ReproError`) so a drained Ctrl-C
still rides the interpreter's interrupt path to the CLI's exit-130
handler — while carrying the journal path needed to print a
"resume with ..." hint.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every intentional error in the library."""


class ConfigError(ReproError, ValueError):
    """A configuration object failed validation."""


class UnknownSchemeError(ConfigError):
    """A translation-scheme name is not in the scheme registry.

    Raised eagerly — at suite-construction/CLI-parse time — so a typo'd
    scheme fails with the list of registered names instead of a bare
    ``ValueError`` from inside a worker process mid-sweep."""


class SchemeCapabilityError(ConfigError):
    """A registered scheme was asked for a capability it lacks (for
    example a nested-translation host mapping from a scheme with no
    virtualization support)."""


class TranslationError(ReproError):
    """Raised when a translation scheme is asked to do something invalid
    (double-map, unmap of an absent page, walk of an unmapped VPN when
    the caller demanded success, ...)."""


class DuplicateMappingError(TranslationError):
    """An insert targeted a VPN that is already mapped."""


class InvariantViolation(TranslationError):
    """A kernel-level invariant does not hold."""


class OverlappingVMAError(InvariantViolation):
    """Two VMAs in one address space overlap."""


class DoubleMappedFrameError(InvariantViolation):
    """Two live translations map the same physical frame."""


class IndexInconsistencyError(InvariantViolation):
    """The learned index disagrees with the authoritative mapping set."""


class CorruptionError(ReproError):
    """Corrupted state was detected and could not be recovered."""


class AllocationError(ReproError):
    """Physical-memory allocation failed."""


class OutOfPhysicalMemory(AllocationError):
    """The allocator cannot satisfy a request."""


class FaultInjectionError(ConfigError):
    """A fault plan is malformed (negative rate, unknown fault kind)."""


class RecoveryExhaustedError(CorruptionError):
    """Every rung of the degradation ladder failed to recover."""


class SweepError(ReproError):
    """Host-level sweep-execution failure (supervisor territory)."""


class SpecTimeoutError(SweepError):
    """One run attempt exceeded its wall-clock deadline in the parent."""


class WorkerCrashError(SweepError):
    """A worker process died (killed, OOM, segfault) mid-attempt."""


class SpecQuarantinedError(SweepError):
    """A spec exhausted its retry budget and was quarantined.

    The message records the attempt count and the last host-level
    failure, so a quarantined cell is a structured entry in
    ``ResultSet.failures`` — never a silently dropped cell."""


class ServeError(ReproError):
    """Base class for translation-service failures (``repro/serve``).

    Every subclass maps to a typed error frame on the wire: the server
    replies ``{"ok": false, "error": {"type": <class name>, ...}}`` and
    clients rehydrate the same class (see ``serve/protocol.py``), so a
    shed request, a quarantined tenant and a protocol violation are
    distinguishable without string matching."""


class ProtocolError(ServeError):
    """A malformed, oversized or unparsable protocol frame."""


class ServerOverloadedError(ServeError):
    """The admission controller shed this request (reject-newest).

    Raised when the global queue depth or the rolling p99 latency
    crosses the configured shed threshold; the request was never
    dispatched to a shard and mutated no tenant state."""


class QuotaExceededError(ServeError):
    """A per-tenant quota (max VMAs, refs/sec token bucket) was
    exhausted at the front end; the request was rejected untried."""


class UnknownTenantError(ServeError):
    """A request named a tenant the server does not host."""


class TenantExistsError(ServeError):
    """``create_tenant`` named a tenant that already exists."""


class TenantQuarantinedError(ServeError):
    """The tenant's translation state degraded past the recovery
    ladder (injected corruption the learned index could not repair)
    and the tenant was quarantined: all of its requests fail with this
    typed frame while every other tenant keeps being served."""


class ShardUnavailableError(ServeError):
    """The shard hosting this tenant died (or was killed for hanging)
    and the request could not be transparently resubmitted after the
    shard's journal-replay recovery."""


class JournalError(ReproError):
    """The run journal cannot be read or written."""


class JournalMismatchError(JournalError, ConfigError):
    """An existing journal's config fingerprint (or schema version)
    does not match the sweep being resumed.  Also a
    :class:`ConfigError`, so the CLI rejects the stale journal with
    exit code 2 instead of silently mixing incompatible results."""


class SweepInterrupted(KeyboardInterrupt):
    """A sweep was interrupted (SIGINT/SIGTERM) and drained cleanly.

    Subclasses ``KeyboardInterrupt`` — not :class:`ReproError` — so it
    reaches the CLI's exit-130 interrupt handler, carrying enough
    context to print a resume hint."""

    def __init__(self, journal_path=None, completed=0, total=0):
        self.journal_path = journal_path
        self.completed = completed
        self.total = total
        detail = f"sweep interrupted ({completed}/{total} cells completed)"
        super().__init__(detail)
