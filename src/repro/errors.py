"""Typed exception hierarchy for the whole library.

Every error the reproduction can raise on purpose derives from
:class:`ReproError`, so callers (the CLI, the chaos harness, the
simulator) can distinguish *modeled* failures — a corrupted PTE, an
exhausted allocator, a violated kernel invariant — from plain Python
bugs.  The hierarchy mirrors the fault model documented in
``docs/INTERNALS.md``:

* :class:`ConfigError` — invalid configuration, rejected before any
  simulation state is built (also a :class:`ValueError` for
  backward compatibility with older call sites).
* :class:`TranslationError` — a translation scheme was asked to do
  something invalid (double-map, unmap of an absent page, ...).
* :class:`InvariantViolation` — a kernel invariant does not hold
  (overlapping VMAs, double-mapped physical frames, an index that
  disagrees with the authoritative mapping set).
* :class:`CorruptionError` — corrupted state was *detected* (a PTE
  failing its integrity check, a poisoned walk-cache entry) where it
  could not be transparently recovered.
* :class:`AllocationError` — physical-memory allocation failures.
* :class:`FaultInjectionError` — a malformed fault plan.
* :class:`RecoveryExhaustedError` — the graceful-degradation ladder
  (bounded probe → leaf scan → leaf retrain → full rebuild) ran out of
  rungs without restoring a correct translation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every intentional error in the library."""


class ConfigError(ReproError, ValueError):
    """A configuration object failed validation."""


class UnknownSchemeError(ConfigError):
    """A translation-scheme name is not in the scheme registry.

    Raised eagerly — at suite-construction/CLI-parse time — so a typo'd
    scheme fails with the list of registered names instead of a bare
    ``ValueError`` from inside a worker process mid-sweep."""


class SchemeCapabilityError(ConfigError):
    """A registered scheme was asked for a capability it lacks (for
    example a nested-translation host mapping from a scheme with no
    virtualization support)."""


class TranslationError(ReproError):
    """Raised when a translation scheme is asked to do something invalid
    (double-map, unmap of an absent page, walk of an unmapped VPN when
    the caller demanded success, ...)."""


class DuplicateMappingError(TranslationError):
    """An insert targeted a VPN that is already mapped."""


class InvariantViolation(TranslationError):
    """A kernel-level invariant does not hold."""


class OverlappingVMAError(InvariantViolation):
    """Two VMAs in one address space overlap."""


class DoubleMappedFrameError(InvariantViolation):
    """Two live translations map the same physical frame."""


class IndexInconsistencyError(InvariantViolation):
    """The learned index disagrees with the authoritative mapping set."""


class CorruptionError(ReproError):
    """Corrupted state was detected and could not be recovered."""


class AllocationError(ReproError):
    """Physical-memory allocation failed."""


class OutOfPhysicalMemory(AllocationError):
    """The allocator cannot satisfy a request."""


class FaultInjectionError(ConfigError):
    """A fault plan is malformed (negative rate, unknown fault kind)."""


class RecoveryExhaustedError(CorruptionError):
    """Every rung of the degradation ladder failed to recover."""
