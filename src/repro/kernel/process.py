"""A process: address space + translation scheme + fault handling.

This is the glue the paper's Linux prototype provides (section 5.3): it
streams map/unmap operations from the VMA layer into whichever page
table backs the process — radix, ECPT, FPT, ideal, or LVM via the
:class:`~repro.kernel.manager.LVMManager` — assigns physical frames,
and services page faults by mapping on first access (demand paging).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.kernel.thp import MappingPlan, plan_vma_mappings
from repro.kernel.vma import VMA, AddressSpace
from repro.mem.allocator import BumpAllocator, PhysicalAllocator
from repro.types import PTE, BASE_PAGE_SIZE, PageSize, TranslationError


@dataclass
class ProcessStats:
    faults: int = 0
    mapped_pages: int = 0
    huge_mappings: int = 0
    shootdowns: int = 0


class Process:
    """One simulated process with demand paging."""

    def __init__(
        self,
        page_table,
        allocator: Optional[PhysicalAllocator] = None,
        asid: int = 0,
        thp: bool = False,
        thp_coverage: float = 0.9,
    ):
        self.page_table = page_table
        self.allocator = allocator or BumpAllocator()
        self.asid = asid
        self.thp = thp
        self.thp_coverage = thp_coverage
        self.address_space = AddressSpace()
        self.stats = ProcessStats()
        self._next_ppn = 1 << 20  # frame numbers for data pages

    # -- physical frames ----------------------------------------------
    def _alloc_frames(self, page_size: PageSize) -> int:
        """Assign physical frames for one mapping; returns the PPN.

        Data frames come from a simple per-process cursor: what matters
        for the translation study is the *page table* layout, and a
        bump cursor gives all schemes identical data-cache behaviour.
        """
        ppn = self._next_ppn
        self._next_ppn += page_size.pages_4k
        return ppn

    # -- mapping ---------------------------------------------------------
    def mmap(self, vma: VMA, populate: bool = True) -> VMA:
        """Create a VMA; with ``populate`` pre-fault all of it (the
        simulator's region of interest starts after initialization)."""
        self.address_space.mmap(vma)
        if populate:
            self.populate(vma)
        return vma

    def populate(self, vma: VMA) -> List[MappingPlan]:
        plans = plan_vma_mappings(vma, self.thp, self.thp_coverage)
        for plan in plans:
            self._map_one(plan, vma)
        return plans

    def _map_one(self, plan: MappingPlan, vma: VMA) -> PTE:
        ppn = self._alloc_frames(plan.page_size)
        pte = PTE(
            vpn=plan.vpn, ppn=ppn, page_size=plan.page_size, perms=vma.perms
        )
        self.page_table.map(pte)
        self.stats.mapped_pages += plan.page_size.pages_4k
        if plan.page_size is not PageSize.SIZE_4K:
            self.stats.huge_mappings += 1
        return pte

    def munmap(self, start_vpn: int, mmu=None) -> None:
        """Remove a VMA, unmapping every translation inside it.

        A TLB shootdown is issued per removed translation when an MMU
        is attached (section 5.2, "TLB Shootdowns").
        """
        vma = self.address_space.munmap(start_vpn)
        vpn = vma.start_vpn
        while vpn < vma.end_vpn:
            pte = self.page_table.find(vpn)
            if pte is not None and pte.vpn == vpn:
                self.page_table.unmap(vpn)
                self.stats.mapped_pages -= pte.page_size.pages_4k
                if mmu is not None:
                    mmu.invalidate(vpn, self.asid)
                self.stats.shootdowns += 1
                vpn += pte.page_size.pages_4k
            else:
                vpn += 1

    # -- faults -----------------------------------------------------------
    def handle_fault(self, va: int) -> PTE:
        """Demand-page a first touch; raises on a true segfault."""
        vpn = va // BASE_PAGE_SIZE
        vma = self.address_space.find(vpn)
        if vma is None:
            raise TranslationError(f"segfault: VA {va:#x} is not mapped")
        self.stats.faults += 1
        plan = MappingPlan(vpn, PageSize.SIZE_4K)
        return self._map_one(plan, vma)
