"""A process: address space + translation scheme + fault handling.

This is the glue the paper's Linux prototype provides (section 5.3): it
streams map/unmap operations from the VMA layer into whichever page
table backs the process — radix, ECPT, FPT, ideal, or LVM via the
:class:`~repro.kernel.manager.LVMManager` — assigns physical frames,
and services page faults by mapping on first access (demand paging).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import DuplicateMappingError
from repro.kernel import invariants
from repro.kernel.thp import MappingPlan, plan_vma_mappings
from repro.kernel.vma import VMA, AddressSpace
from repro.mem.allocator import BumpAllocator, PhysicalAllocator
from repro.types import PTE, BASE_PAGE_SIZE, PageSize, TranslationError


@dataclass
class ProcessStats:
    faults: int = 0
    mapped_pages: int = 0
    huge_mappings: int = 0
    shootdowns: int = 0
    # Event-stream fault accounting (injection + recovery).
    dropped_mmap_events: int = 0
    dropped_munmap_events: int = 0
    duplicate_events: int = 0
    duplicate_rejects: int = 0
    stale_reconciled: int = 0


class Process:
    """One simulated process with demand paging."""

    def __init__(
        self,
        page_table,
        allocator: Optional[PhysicalAllocator] = None,
        asid: int = 0,
        thp: bool = False,
        thp_coverage: float = 0.9,
        injector=None,
    ):
        self.page_table = page_table
        self.allocator = allocator or BumpAllocator()
        self.asid = asid
        self.thp = thp
        self.thp_coverage = thp_coverage
        # Optional FaultInjector perturbing the kernel→page-table event
        # stream (dropped / duplicated mmap and munmap deliveries).
        self.injector = injector
        self.address_space = AddressSpace()
        self.stats = ProcessStats()
        self._next_ppn = 1 << 20  # frame numbers for data pages

    # -- physical frames ----------------------------------------------
    def _alloc_frames(self, page_size: PageSize) -> int:
        """Assign physical frames for one mapping; returns the PPN.

        Data frames come from a simple per-process cursor: what matters
        for the translation study is the *page table* layout, and a
        bump cursor gives all schemes identical data-cache behaviour.
        """
        ppn = self._next_ppn
        self._next_ppn += page_size.pages_4k
        return ppn

    # -- mapping ---------------------------------------------------------
    def mmap(self, vma: VMA, populate: bool = True) -> VMA:
        """Create a VMA; with ``populate`` pre-fault all of it (the
        simulator's region of interest starts after initialization)."""
        self.address_space.mmap(vma)
        if populate:
            self.populate(vma)
        return vma

    def populate(self, vma: VMA) -> List[MappingPlan]:
        plans = plan_vma_mappings(vma, self.thp, self.thp_coverage)
        for plan in plans:
            self._map_one(plan, vma)
        return plans

    def _map_one(self, plan: MappingPlan, vma: VMA, faulting: bool = False) -> PTE:
        ppn = self._alloc_frames(plan.page_size)
        pte = PTE(
            vpn=plan.vpn, ppn=ppn, page_size=plan.page_size, perms=vma.perms
        )
        inj = self.injector
        if inj is not None and not faulting and inj.drop_kernel_event():
            # The async map event was lost before reaching the agent:
            # the VMA record stands, so demand faults remap on first
            # touch.  (Fault-time maps are synchronous — never dropped.)
            self.stats.dropped_mmap_events += 1
            return pte
        self._deliver_map(pte)
        if inj is not None and inj.duplicate_kernel_event():
            # The event was replayed; the duplicate must bounce off the
            # page table's duplicate-mapping guard.
            self.stats.duplicate_events += 1
            self._deliver_map(pte, replay=True)
        self.stats.mapped_pages += plan.page_size.pages_4k
        if plan.page_size is not PageSize.SIZE_4K:
            self.stats.huge_mappings += 1
        return pte

    def _deliver_map(self, pte: PTE, replay: bool = False) -> None:
        """Hand one map event to the page table, absorbing duplicates.

        A replayed event is simply rejected.  A *fresh* mapping that
        collides means a stale translation squatting on the VPN (the
        signature of a lost munmap): the kernel reconciles by unmapping
        it first, then delivering the new translation.
        """
        try:
            self.page_table.map(pte)
        except DuplicateMappingError:
            if replay:
                self.stats.duplicate_rejects += 1
                return
            self.page_table.unmap(pte.vpn)
            self.stats.stale_reconciled += 1
            self.page_table.map(pte)

    def munmap(self, start_vpn: int, mmu=None) -> None:
        """Remove a VMA, unmapping every translation inside it.

        A TLB shootdown is issued per removed translation when an MMU
        is attached (section 5.2, "TLB Shootdowns").
        """
        vma = self.address_space.munmap(start_vpn)
        vpn = vma.start_vpn
        while vpn < vma.end_vpn:
            pte = self.page_table.find(vpn)
            if pte is not None and pte.vpn == vpn:
                if self.injector is not None and self.injector.drop_kernel_event():
                    # Lost unmap event: the translation goes stale until
                    # the reconciliation audit (or a colliding fresh map)
                    # removes it.
                    self.stats.dropped_munmap_events += 1
                    vpn += pte.page_size.pages_4k
                    continue
                self.page_table.unmap(vpn)
                self.stats.mapped_pages -= pte.page_size.pages_4k
                if mmu is not None:
                    mmu.invalidate(vpn, self.asid)
                self.stats.shootdowns += 1
                vpn += pte.page_size.pages_4k
            else:
                vpn += 1

    # -- faults -----------------------------------------------------------
    def handle_fault(self, va: int) -> PTE:
        """Demand-page a first touch; raises on a true segfault."""
        vpn = va // BASE_PAGE_SIZE
        vma = self.address_space.find(vpn)
        if vma is None:
            raise TranslationError(f"segfault: VA {va:#x} is not mapped")
        self.stats.faults += 1
        plan = MappingPlan(vpn, PageSize.SIZE_4K)
        return self._map_one(plan, vma, faulting=True)

    # -- invariants ----------------------------------------------------
    def check_invariants(self) -> None:
        """Raise a typed :class:`~repro.errors.InvariantViolation` if
        the address space or page table is inconsistent."""
        invariants.check_process_invariants(self)

    def reconcile(self) -> int:
        """Drop page-table translations no VMA covers (lost munmap
        events); returns the number removed."""
        removed = invariants.reconcile_stale_mappings(self)
        self.stats.stale_reconciled += removed
        return removed
