"""Virtual memory areas and per-process address spaces.

The address space is the OS-side source of truth about what is mapped
where; every page-table scheme is populated from it.  It also computes
the paper's *virtual memory gap coverage* metric (section 3.1,
Figure 2): the fraction of consecutive mapped VPNs whose gap is exactly
one page.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import OverlappingVMAError
from repro.types import Permission, TranslationError


@dataclass(frozen=True)
class VMA:
    """One contiguous virtual mapping: [start_vpn, start_vpn + pages)."""

    start_vpn: int
    pages: int
    perms: Permission = Permission.RW
    name: str = ""
    file_backed: bool = False

    @property
    def end_vpn(self) -> int:
        return self.start_vpn + self.pages

    def overlaps(self, other: "VMA") -> bool:
        return self.start_vpn < other.end_vpn and other.start_vpn < self.end_vpn

    def contains(self, vpn: int) -> bool:
        return self.start_vpn <= vpn < self.end_vpn


class AddressSpace:
    """An ordered, non-overlapping collection of VMAs."""

    def __init__(self) -> None:
        self._starts: List[int] = []  # sorted VMA start VPNs
        self._vmas: dict[int, VMA] = {}

    def mmap(self, vma: VMA) -> VMA:
        if vma.pages <= 0:
            raise TranslationError("VMA must span at least one page")
        idx = bisect_right(self._starts, vma.start_vpn)
        for neighbour_idx in (idx - 1, idx):
            if 0 <= neighbour_idx < len(self._starts):
                neighbour = self._vmas[self._starts[neighbour_idx]]
                if neighbour.overlaps(vma):
                    raise OverlappingVMAError(
                        f"VMA [{vma.start_vpn:#x}, {vma.end_vpn:#x}) overlaps "
                        f"[{neighbour.start_vpn:#x}, {neighbour.end_vpn:#x})"
                    )
        insort(self._starts, vma.start_vpn)
        self._vmas[vma.start_vpn] = vma
        return vma

    def munmap(self, start_vpn: int) -> VMA:
        vma = self._vmas.pop(start_vpn, None)
        if vma is None:
            raise TranslationError(f"no VMA starts at VPN {start_vpn:#x}")
        self._starts.pop(bisect_left(self._starts, start_vpn))
        return vma

    def find(self, vpn: int) -> Optional[VMA]:
        idx = bisect_right(self._starts, vpn) - 1
        if idx < 0:
            return None
        vma = self._vmas[self._starts[idx]]
        return vma if vma.contains(vpn) else None

    def __iter__(self) -> Iterator[VMA]:
        for start in self._starts:
            yield self._vmas[start]

    def __len__(self) -> int:
        return len(self._starts)

    @property
    def total_pages(self) -> int:
        return sum(v.pages for v in self)

    def mapped_vpns(self) -> Iterator[int]:
        """All mapped VPNs in ascending order."""
        for vma in self:
            yield from range(vma.start_vpn, vma.end_vpn)

    def gap_coverage(self, gap: int = 1) -> float:
        """Fraction of consecutive mapped-VPN pairs at exactly ``gap``
        (the Figure 2 metric; gap=1 measures sequentiality)."""
        total = 0
        matching = 0
        prev: Optional[int] = None
        for vma in self:
            # Within a VMA every consecutive pair has gap 1.
            if vma.pages > 1:
                total += vma.pages - 1
                if gap == 1:
                    matching += vma.pages - 1
            if prev is not None:
                total += 1
                if vma.start_vpn - prev == gap:
                    matching += 1
            prev = vma.end_vpn - 1
        return matching / total if total else 0.0
