"""The LVM OS manager — our analogue of the paper's Linux prototype
(section 5.3: kernel 5.15 streaming map/unmap operations to a userspace
agent that maintains the learned index).

The manager wraps a :class:`~repro.core.LearnedIndex` behind the
PageTable interface so a :class:`~repro.kernel.process.Process` can use
LVM exactly like any other scheme, and it accounts for every
management cost the paper reports in section 7.3: initialization,
insertions, rescales, local retrains, full rebuilds, and the resulting
LWC flushes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import LVMConfig
from repro.core.learned_index import LearnedIndex
from repro.core.rebase import AddressSpaceRebaser, cluster_regions
from repro.errors import DuplicateMappingError
from repro.mem.allocator import PhysicalAllocator
from repro.types import PTE, TranslationError


@dataclass
class ManagementReport:
    """Section 7.3 "LVM Overheads in the OS" summary."""

    management_time_s: float
    full_rebuilds: int
    local_retrains: int
    rescales: int
    lwc_flushes: int
    max_retrain_time_s: float
    avg_retrain_time_s: float

    def overhead_fraction(self, runtime_s: float) -> float:
        if runtime_s <= 0:
            return 0.0
        return self.management_time_s / runtime_s


class LVMManager:
    """Per-process LVM state maintained by the OS."""

    def __init__(
        self,
        allocator: Optional[PhysicalAllocator] = None,
        config: Optional[LVMConfig] = None,
    ):
        self.index = LearnedIndex(allocator, config)
        self._batched: List[PTE] = []
        self._batched_vpns: set = set()
        self._batching = False

    # -- bulk initialization -------------------------------------------
    def begin_batch(self) -> None:
        """Defer index construction while the process's initial VMAs
        stream in (process startup maps thousands of pages; the OS
        builds the index once at the end, section 4.3.1)."""
        self._batching = True

    def end_batch(self) -> None:
        self._batching = False
        if self._batched:
            existing = self.index.mappings()
            self._rebuild_rebaser(existing + self._batched)
            self.index.bulk_build(existing + self._batched)
            self._batched = []
            self._batched_vpns = set()

    def _rebuild_rebaser(self, ptes: List[PTE]) -> None:
        """Program the ASLR rebase registers from the current segment
        layout (section 5.2): cluster mappings into regions and pack
        them into a compact canonical space so the Q44.20 models stay
        well-conditioned regardless of randomization."""
        ordered = sorted(ptes, key=lambda p: p.vpn)
        if not ordered:
            return
        regions = cluster_regions(
            [p.vpn for p in ordered],
            [p.page_size.pages_4k for p in ordered],
        )
        self.index.rebaser = AddressSpaceRebaser(regions)

    # -- PageTable interface ---------------------------------------------
    def map(self, pte: PTE) -> None:
        if self._batching:
            # The duplicate guard must hold even while deferring: a
            # replayed mmap event is rejected here instead of poisoning
            # the deferred bulk build.
            if pte.vpn in self._batched_vpns or self.index.contains(pte.vpn):
                raise DuplicateMappingError(
                    f"VPN {pte.vpn:#x} is already mapped"
                )
            self._batched.append(pte)
            self._batched_vpns.add(pte.vpn)
            return
        if self.index.contains(pte.vpn):
            raise DuplicateMappingError(f"VPN {pte.vpn:#x} is already mapped")
        if not self.index.rebaser.in_headroom(pte.vpn):
            # New segment outside every rebased region: reprogram the
            # rebase registers and rebuild (rare; program start-up or a
            # fresh far mmap arena).
            all_ptes = self.index.mappings() + [pte]
            self._rebuild_rebaser(all_ptes)
            self.index.bulk_build(all_ptes)
            self.index.stats.full_rebuilds += 1
            self.index.stats.lwc_flushes += 1
            return
        self.index.insert(pte)

    def unmap(self, vpn: int) -> PTE:
        if self._batching:
            for i, pte in enumerate(self._batched):
                if pte.vpn == vpn:
                    self._batched_vpns.discard(vpn)
                    return self._batched.pop(i)
            raise TranslationError(f"VPN {vpn:#x} is not mapped")
        return self.index.remove(vpn)

    def walk(self, vpn: int):
        return self.index.lookup(vpn)

    def find(self, vpn: int) -> Optional[PTE]:
        return self.index.find(vpn)

    def mappings(self) -> List[PTE]:
        """The authoritative mapping list, in VPN order."""
        if self._batching:
            return sorted(
                self.index.mappings() + self._batched, key=lambda p: p.vpn
            )
        return self.index.mappings()

    def audit(self, address_space) -> int:
        """Reconciliation audit against the OS's VMA records: drop
        index translations no VMA covers (lost munmap events).
        Returns the number of stale translations removed."""
        stale = [
            pte.vpn
            for pte in self.index.mappings()
            if address_space.find(pte.vpn) is None
        ]
        for vpn in stale:
            self.index.remove(vpn)
        return len(stale)

    # -- software PTE updates (section 5.2, "Software lookup") ---------
    def set_accessed(self, vpn: int) -> None:
        pte = self.index.find(vpn)
        if pte is None:
            raise TranslationError(f"VPN {vpn:#x} is not mapped")
        pte.accessed = True

    def set_dirty(self, vpn: int) -> None:
        pte = self.index.find(vpn)
        if pte is None:
            raise TranslationError(f"VPN {vpn:#x} is not mapped")
        pte.dirty = True

    def change_protection(self, vpn: int, perms) -> None:
        """mprotect-style permission change: PTE modified in place, so
        a TLB shootdown (not an index change) is required."""
        pte = self.index.find(vpn)
        if pte is None:
            raise TranslationError(f"VPN {vpn:#x} is not mapped")
        pte.perms = perms

    def reclaim(self) -> int:
        """Rebuild the index to release gapped-table space after a
        peak-to-steady-state drop (section 7.3).  Flushes the LWC (a
        rebuild changes every model).  Returns bytes reclaimed."""
        return self.index.compact()

    # -- reporting ---------------------------------------------------------
    @property
    def table_bytes(self) -> int:
        return self.index.table_bytes

    def report(self) -> ManagementReport:
        stats = self.index.stats
        times = stats.retrain_times_s
        return ManagementReport(
            management_time_s=stats.management_time_s,
            full_rebuilds=stats.full_rebuilds,
            local_retrains=stats.local_retrains,
            rescales=stats.rescales,
            lwc_flushes=stats.lwc_flushes,
            max_retrain_time_s=max(times) if times else 0.0,
            avg_retrain_time_s=sum(times) / len(times) if times else 0.0,
        )
