"""ASLR segment layout (paper section 5.2, "ASLR").

ASLR scatters the classic segments (text, heap, mmap arena, stack)
across the 47-bit userspace.  LVM's OS support exposes the per-segment
base addresses to hardware through registers so the learned index
trains on *rebased* (base-relative) VPNs — randomization then has no
effect on the learned structure while keeping its security value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.types import BASE_PAGE_SHIFT

USER_VA_BITS = 47

# Canonical (pre-randomization) segment bases, Linux-x86-64-flavoured.
_CANONICAL_BASES = {
    "text": 0x0000_0000_0040_0000,
    "data": 0x0000_0000_0100_0000,
    "heap": 0x0000_0000_0400_0000,
    "mmap": 0x0000_7F00_0000_0000,
    "stack": 0x0000_7FFF_FF00_0000,
}

# Randomization entropy per segment, in bits of page offset (Linux uses
# 28 bits for mmap, 22 for the stack, etc.).
_ENTROPY_BITS = {"text": 8, "data": 8, "heap": 13, "mmap": 16, "stack": 11}


@dataclass
class ASLRLayout:
    """Randomized segment bases plus the register file exposing them."""

    seed: int = 0
    enabled: bool = True
    bases: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        rng = random.Random(self.seed)
        for name, base in _CANONICAL_BASES.items():
            if self.enabled:
                slide = rng.getrandbits(_ENTROPY_BITS[name]) << BASE_PAGE_SHIFT
            else:
                slide = 0
            if name == "stack":
                self.bases[name] = base - slide
            else:
                self.bases[name] = base + slide

    def base_vpn(self, segment: str) -> int:
        return self.bases[segment] >> BASE_PAGE_SHIFT

    def exposure_registers(self) -> List[int]:
        """Values the OS writes to the hardware base registers: one per
        segment, in a canonical order."""
        return [self.bases[name] for name in sorted(self.bases)]

    def rebase_vpn(self, vpn: int) -> int:
        """Remove the ASLR slide from a VPN (what the hardware does
        using the exposure registers before querying the index)."""
        va = vpn << BASE_PAGE_SHIFT
        best_name, best_base = None, -1
        for name, base in self.bases.items():
            if base <= va and base > best_base:
                best_name, best_base = name, base
        if best_name is None:
            return vpn
        canonical = _CANONICAL_BASES[best_name]
        return vpn - (best_base >> BASE_PAGE_SHIFT) + (canonical >> BASE_PAGE_SHIFT)
