"""OS layer: address spaces, THP policy, ASLR, processes, LVM manager."""

from repro.kernel.aslr import ASLRLayout
from repro.kernel.kernel_space import (
    KERNEL_BASE_VPN,
    SharedKernelIndex,
    is_kernel_vpn,
)
from repro.kernel.manager import LVMManager, ManagementReport
from repro.kernel.process import Process, ProcessStats
from repro.kernel.thp import MappingPlan, plan_vma_mappings, summarize
from repro.kernel.vma import VMA, AddressSpace

__all__ = [
    "ASLRLayout",
    "KERNEL_BASE_VPN",
    "SharedKernelIndex",
    "is_kernel_vpn",
    "AddressSpace",
    "LVMManager",
    "ManagementReport",
    "MappingPlan",
    "Process",
    "ProcessStats",
    "VMA",
    "plan_vma_mappings",
    "summarize",
]
