"""Kernel-side invariant checking.

The OS's view of a process must stay internally consistent no matter
what the fault injector does to the learned structures or to the
kernel→agent event stream.  These checks are the contract:

* VMAs never overlap (:class:`~repro.errors.OverlappingVMAError`);
* no physical frame is mapped by two translations
  (:class:`~repro.errors.DoubleMappedFrameError`);
* every translation the index holds falls inside a live VMA
  (:class:`~repro.errors.IndexInconsistencyError`) — a violation is the
  signature of a lost munmap event.

``reconcile_stale_mappings`` is the recovery twin of the last check:
instead of raising, it removes the orphaned translations, which is how
the periodic kernel audit heals a desynchronized agent.
"""

from __future__ import annotations

from typing import List

from repro.errors import (
    DoubleMappedFrameError,
    IndexInconsistencyError,
    OverlappingVMAError,
)
from repro.types import PTE


def check_no_overlapping_vmas(address_space) -> None:
    """Every pair of adjacent VMAs (in start order) must be disjoint."""
    prev = None
    for vma in address_space:
        if prev is not None and vma.start_vpn < prev.end_vpn:
            raise OverlappingVMAError(
                f"VMA [{vma.start_vpn:#x}, {vma.end_vpn:#x}) overlaps "
                f"[{prev.start_vpn:#x}, {prev.end_vpn:#x})"
            )
        prev = vma


def gather_translations(process) -> List[PTE]:
    """All live translations of a process, one PTE per mapping.

    Enumerated through the VMA layer (the page-table interface has no
    iteration API), stepping by each mapping's page size.
    """
    ptes: List[PTE] = []
    seen = set()
    for vma in process.address_space:
        vpn = vma.start_vpn
        while vpn < vma.end_vpn:
            pte = process.page_table.find(vpn)
            if pte is None:
                vpn += 1
                continue
            if id(pte) not in seen:
                seen.add(id(pte))
                ptes.append(pte)
            vpn = max(vpn + 1, pte.vpn + pte.page_size.pages_4k)
    return ptes


def check_no_double_mapped_frames(ptes: List[PTE]) -> None:
    """No physical frame may back two different translations."""
    ranges = sorted(
        (p.ppn, p.ppn + p.page_size.pages_4k, p.vpn) for p in ptes
    )
    prev_end = -1
    prev_vpn = 0
    for start, end, vpn in ranges:
        if start < prev_end:
            raise DoubleMappedFrameError(
                f"frame {start:#x} is mapped by both VPN {prev_vpn:#x} "
                f"and VPN {vpn:#x}"
            )
        prev_end, prev_vpn = end, vpn


def check_index_consistency(process) -> None:
    """Every translation the (LVM) index holds must be inside a VMA.

    Schemes without an authoritative mapping list are skipped; for LVM
    this catches translations orphaned by lost munmap events.
    """
    mappings = getattr(process.page_table, "mappings", None)
    if mappings is None:
        return
    for pte in mappings():
        if process.address_space.find(pte.vpn) is None:
            raise IndexInconsistencyError(
                f"index holds VPN {pte.vpn:#x} but no VMA covers it"
            )


def check_process_invariants(process) -> None:
    """Run every invariant check; raises the first violation found."""
    check_no_overlapping_vmas(process.address_space)
    check_no_double_mapped_frames(gather_translations(process))
    check_index_consistency(process)


def reconcile_stale_mappings(process) -> int:
    """Remove index translations no VMA covers (lost munmap events).

    Returns the number of stale translations dropped.  This is the
    recovery path behind :func:`check_index_consistency`.
    """
    mappings = getattr(process.page_table, "mappings", None)
    if mappings is None:
        return 0
    stale = [
        pte.vpn
        for pte in mappings()
        if process.address_space.find(pte.vpn) is None
    ]
    for vpn in stale:
        process.page_table.unmap(vpn)
    return len(stale)
