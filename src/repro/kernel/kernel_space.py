"""The shared kernel address space (paper section 5.2, "Kernel
Mappings").

Linux maps one kernel address space into every process.  LVM keeps a
*single* learned page table for it, shared by all processes: this both
saves memory and avoids retraining a kernel index per process.  The
hardware selects the kernel index via the usual kernel/user VA split
(bit 47 of the canonical address).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import LVMConfig
from repro.core.learned_index import LearnedIndex, LVMWalk
from repro.core.rebase import AddressSpaceRebaser
from repro.mem.allocator import PhysicalAllocator
from repro.types import PTE, TranslationError

#: First kernel VPN: the canonical upper half (0xffff8000_00000000).
KERNEL_BASE_VPN = 0xFFFF_8000_0000_0000 >> 12


def is_kernel_vpn(vpn: int) -> bool:
    return vpn >= KERNEL_BASE_VPN


class SharedKernelIndex:
    """One LVM index for the kernel's mappings, shared by all processes.

    The kernel's direct map and vmalloc area are huge and extremely
    regular (the direct map is one linear run), which is the best case
    for a learned index; rebasing removes the canonical-upper-half
    offset so Q44.20 slopes stay well-conditioned.
    """

    def __init__(
        self,
        allocator: Optional[PhysicalAllocator] = None,
        config: Optional[LVMConfig] = None,
        direct_map_pages: int = 1 << 18,
    ):
        # One region at the kernel base with generous headroom.
        rebaser = AddressSpaceRebaser(
            [(KERNEL_BASE_VPN, direct_map_pages)],
            headroom=1 << 20,
        )
        self.index = LearnedIndex(allocator, config, rebaser=rebaser)
        self.attached_processes = 0

    def map_direct(self, start_vpn: int, pages: int, ppn0: int) -> None:
        """Map a linear run (the kernel direct map)."""
        if not is_kernel_vpn(start_vpn):
            raise TranslationError(f"{start_vpn:#x} is not a kernel VPN")
        self.index.bulk_build(
            self.index.mappings()
            + [PTE(vpn=start_vpn + i, ppn=ppn0 + i) for i in range(pages)]
        )

    def map(self, pte: PTE) -> None:
        if not is_kernel_vpn(pte.vpn):
            raise TranslationError(f"{pte.vpn:#x} is not a kernel VPN")
        self.index.insert(pte)

    def unmap(self, vpn: int) -> PTE:
        return self.index.remove(vpn)

    def lookup(self, vpn: int) -> LVMWalk:
        return self.index.lookup(vpn)

    def attach(self) -> "SharedKernelIndex":
        """A new process shares (not copies) the kernel index."""
        self.attached_processes += 1
        return self

    @property
    def index_size_bytes(self) -> int:
        return self.index.index_size_bytes

    def memory_saved_vs_per_process(self) -> int:
        """Bytes saved by sharing instead of per-process kernel tables."""
        per_process = self.index.index_size_bytes + self.index.table_bytes
        return per_process * max(0, self.attached_processes - 1)
