"""Transparent-huge-page policy (paper section 6.3's THP configuration).

Linux's khugepaged backs 2 MB-aligned, fully-mapped spans of anonymous
VMAs with huge pages when an order-9 physical block is available.  The
policy here does the same over our VMAs: given a VMA and the physical
allocator's state, emit the mix of 2 MB and 4 KB mappings for it.
``coverage`` caps how much of a VMA THP may back (real systems rarely
reach 100% because of partial spans, mprotect splits, and allocation
failures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.kernel.vma import VMA
from repro.types import PageSize

HUGE_PAGES_4K = PageSize.SIZE_2M.pages_4k  # 512


@dataclass(frozen=True)
class MappingPlan:
    """One physical mapping decision: (first VPN, page size)."""

    vpn: int
    page_size: PageSize


def plan_vma_mappings(
    vma: VMA,
    thp: bool,
    coverage: float = 0.9,
    min_huge_span: int = HUGE_PAGES_4K,
) -> List[MappingPlan]:
    """Mapping plan for a VMA: huge pages where THP applies, 4 KB
    elsewhere.

    ``coverage`` is the fraction of huge-eligible spans actually backed
    by huge pages (the rest deliberately stays 4 KB, modelling spans
    khugepaged has not collapsed).  Deterministic: every ``k``-th
    eligible huge span is skipped so runs are reproducible.
    """
    plans: List[MappingPlan] = []
    collapsed = _vma_collapsed(vma, coverage)
    if not thp or vma.pages < min_huge_span or vma.file_backed or not collapsed:
        return [
            MappingPlan(v, PageSize.SIZE_4K)
            for v in range(vma.start_vpn, vma.end_vpn)
        ]
    first_aligned = -(-vma.start_vpn // HUGE_PAGES_4K) * HUGE_PAGES_4K
    last_aligned = (vma.end_vpn // HUGE_PAGES_4K) * HUGE_PAGES_4K
    # Head: unaligned prefix stays 4 KB.
    plans.extend(
        MappingPlan(v, PageSize.SIZE_4K)
        for v in range(vma.start_vpn, min(first_aligned, vma.end_vpn))
    )
    for span_start in range(first_aligned, last_aligned, HUGE_PAGES_4K):
        plans.append(MappingPlan(span_start, PageSize.SIZE_2M))
    # Tail: unaligned suffix stays 4 KB.
    plans.extend(
        MappingPlan(v, PageSize.SIZE_4K)
        for v in range(max(last_aligned, vma.start_vpn), vma.end_vpn)
    )
    return plans


def _vma_collapsed(vma: VMA, coverage: float) -> bool:
    """Whether khugepaged has collapsed this whole VMA.

    Real THP coverage is region-granular: khugepaged either collapsed a
    VMA's huge-aligned interior or has not gotten to it yet — it does
    not leave periodic 4 KB islands inside huge regions.  A
    deterministic per-VMA hash keeps ``coverage`` of the eligible VMAs
    collapsed, reproducibly.
    """
    if coverage >= 1.0:
        return True
    if coverage <= 0.0:
        return False
    spread = ((vma.start_vpn * 2654435761) & 0xFFFF) / 65536.0
    return spread < coverage


def summarize(plans: List[MappingPlan]) -> Tuple[int, int]:
    """(huge mappings, 4 KB mappings) in a plan list."""
    huge = sum(1 for p in plans if p.page_size is PageSize.SIZE_2M)
    return huge, len(plans) - huge
