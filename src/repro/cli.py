"""Command-line interface: regenerate any paper artifact from a shell.

Usage (also via ``python -m repro``):

    python -m repro fig2                 # gap-coverage study
    python -m repro fig3                 # contiguity under fragmentation
    python -m repro fig9 --refs 50000    # end-to-end speedups
    python -m repro fig10|fig11|fig12    # MMU overhead / traffic / MPKI
    python -m repro tab1                 # architectural parameters
    python -m repro tab2                 # index sizes
    python -m repro collisions           # 7.3 collision study
    python -m repro scaling              # 7.3 memcached scaling
    python -m repro hardware             # 7.4 area/power
    python -m repro suite --refs 30000   # the full sweep, all metrics
    python -m repro chaos --refs 20000   # fault injection + recovery
    python -m repro schemes              # registered translation schemes
    python -m repro cache ls|gc          # inspect / empty the trace cache

Typed failures map to exit codes: 2 for configuration errors, 3 for
any other simulator error, 130 on interrupt.  ``--fail-fast`` makes
sweep commands abort on the first failing run instead of collecting
failures and finishing the remaining combinations.

Long sweeps are crash-safe: ``--journal PATH`` checkpoints every
completed cell, ``--resume`` replays the journal and re-runs only the
remainder (a journal from a different configuration is rejected with
exit 2), and ``--run-timeout``/``--retries`` bound hung or crashed
runs.  Ctrl-C drains in-flight runs, flushes the journal, prints a
resume hint, and exits 130.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import (
    collision_study,
    compare_default,
    gap_coverage_study,
    index_size_table,
    render_table,
    run_fleet_study,
    scaling_study,
)
from repro.errors import ConfigError, ReproError
from repro.faults import FaultKind, FaultPlan
from repro.schemes import BASELINE_SCHEME, registry as scheme_registry
from repro.sim import SCHEMES, SimConfig, default_jobs, mean, run_suite, table1_rows
from repro.workloads import SUITE


def _report_failures(results) -> None:
    for f in results.failures:
        print(
            f"repro: run failed: {f.workload}/{f.scheme}/thp={int(f.thp)}: "
            f"{f.error}: {f.message}",
            file=sys.stderr,
        )


def _scheme_selection(args):
    """Resolve ``--schemes`` through the registry, eagerly.

    A typo'd scheme raises :class:`~repro.errors.UnknownSchemeError`
    (a ConfigError, exit code 2) naming the registered schemes — before
    any simulation state or worker process exists.
    """
    if not getattr(args, "schemes", None):
        return list(SCHEMES)
    return [
        scheme_registry.canonical_name(s)
        for s in args.schemes.split(",")
    ]


def _report_trace_cache(results) -> None:
    """One deterministic stderr line of trace-cache counters (CI greps
    it to prove a warm second run re-synthesized nothing)."""
    stats = getattr(results, "trace_cache", None)
    if stats is not None:
        print(
            f"repro: trace cache: hits={stats['hits']} "
            f"builds={stats['builds']} rebuilds={stats['invalidated']} "
            f"dir={stats['root']}",
            file=sys.stderr,
        )


def _suite_results(args):
    config = SimConfig(
        num_refs=args.refs,
        use_trace_cache=not args.no_trace_cache,
        trace_cache_dir=args.trace_cache_dir,
    )
    config.validate()  # reject bad --refs etc. before the sweep starts
    names = args.workloads.split(",") if args.workloads else None
    schemes = _scheme_selection(args)
    jobs = args.jobs
    print(f"running sweep: {names or SUITE} x {tuple(schemes)} "
          f"x (4KB, THP), {args.refs} refs each"
          + (f", {jobs} worker processes" if jobs > 1 else "")
          + (f", journal={args.journal}" if args.journal else "")
          + (" (resuming)" if args.resume else "")
          + "...", file=sys.stderr)
    results = run_suite(
        workload_names=names, schemes=schemes, config=config,
        verbose=args.verbose,
        on_error="raise" if args.fail_fast else "collect",
        jobs=jobs,
        journal=args.journal, resume=args.resume,
        run_timeout=args.run_timeout, retries=args.retries,
    )
    _report_failures(results)
    _report_trace_cache(results)
    return results


def cmd_fig2(args) -> None:
    rows = gap_coverage_study()
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row.workload, {})[row.allocator] = row.coverage
    print(render_table(
        ["workload", "jemalloc", "tcmalloc"],
        [(n, c.get("jemalloc", 0), c.get("tcmalloc", 0))
         for n, c in by_workload.items()],
        title="Figure 2 — gap=1 coverage",
    ))


def cmd_fig3(args) -> None:
    profile = run_fleet_study(num_servers=5, mem_bytes=1 << 30)
    print(render_table(
        ["block size", "fraction of free memory"],
        [(f"{s >> 10}KB", f) for s, f in profile.rows()],
        title="Figure 3 — contiguously-allocatable free memory",
    ))


def _speedup_tables(results) -> None:
    schemes = [s for s in results.schemes() if s != BASELINE_SCHEME]
    for thp in (False, True):
        label = "THP" if thp else "4KB"
        rows = []
        for w in results.workloads():
            rows.append(
                (w,) + tuple(results.speedup(w, s, thp) for s in schemes)
            )
        print(render_table(
            ["workload"] + schemes, rows,
            title=f"Figure 9 — speedup over {BASELINE_SCHEME} ({label})",
        ))
        print("averages: " + " ".join(
            f"{s}={mean(r[i + 1] for r in rows):.3f}"
            for i, s in enumerate(schemes)
        ) + "\n")


def cmd_fig9(args) -> None:
    _speedup_tables(_suite_results(args))


def _relative_tables(results, metric: str, title: str, **kw) -> None:
    schemes = [
        s for s in results.schemes() if s not in (BASELINE_SCHEME, "ideal")
    ]
    for thp in (False, True):
        label = "THP" if thp else "4KB"
        rows = []
        for w in results.workloads():
            fn = getattr(results, metric)
            rows.append(
                (w,) + tuple(fn(w, s, thp, **kw) for s in schemes)
            )
        print(render_table(
            ["workload"] + schemes, rows, title=f"{title} ({label})"
        ))
        print()


def cmd_fig10(args) -> None:
    _relative_tables(
        _suite_results(args), "mmu_overhead_relative",
        "Figure 10 — MMU overhead relative to radix",
    )


def cmd_fig11(args) -> None:
    _relative_tables(
        _suite_results(args), "walk_traffic_relative",
        "Figure 11 — page-walk traffic relative to radix",
    )


def cmd_fig12(args) -> None:
    results = _suite_results(args)
    schemes = [
        s for s in results.schemes() if s not in (BASELINE_SCHEME, "ideal")
    ]
    rows = []
    for w in results.workloads():
        rows.append(
            (w,)
            + tuple(results.mpki_relative(w, s, False, "l2") for s in schemes)
            + tuple(results.mpki_relative(w, s, False, "l3") for s in schemes)
        )
    headers = (
        ["workload"]
        + [f"{s} L2" for s in schemes]
        + [f"{s} L3" for s in schemes]
    )
    print(render_table(
        headers, rows,
        title=f"Figure 12 — MPKI relative to {BASELINE_SCHEME} (4KB)",
    ))


def cmd_tab1(args) -> None:
    print(render_table(["parameter", "value"], table1_rows(), title="Table 1"))


def cmd_tab2(args) -> None:
    names = args.workloads.split(",") if args.workloads else list(SUITE)
    table = index_size_table(names)
    print(render_table(
        ["workload", "LVM 4KB (bytes)", "LVM THP (bytes)"],
        [(n, c["4KB"], c["THP"]) for n, c in table.items()],
        title="Table 2 — steady-state index size",
    ))


def cmd_collisions(args) -> None:
    names = (args.workloads.split(",") if args.workloads
             else ["bfs", "dc", "gups", "mem$", "MUMr"])
    rows = [collision_study(n, num_lookups=args.refs) for n in names]
    print(render_table(
        ["workload", "LVM", "Blake2 table", "extra acc/collision"],
        [(r.workload, r.lvm_collision_rate, r.hash_collision_rate,
          r.lvm_avg_extra_accesses) for r in rows],
        title="Section 7.3 — collision rates (4KB)",
    ))


def cmd_scaling(args) -> None:
    sizes = scaling_study()
    print(render_table(
        ["memcached footprint", "LVM index (bytes)"],
        [(f"{gb}GB", size) for gb, size in sizes.items()],
        title="Section 7.3 — index size vs footprint",
    ))


def cmd_hardware(args) -> None:
    cmp = compare_default()
    print(render_table(
        ["structure", "payload bytes", "area (mm^2)", "leakage (mW)"],
        [
            ("LVM LWC", cmp.lwc.payload_bytes, f"{cmp.lwc.area_mm2:.5f}",
             f"{cmp.lwc.leakage_mw:.3f}"),
            ("Radix PWC", cmp.pwc.payload_bytes, f"{cmp.pwc.area_mm2:.5f}",
             f"{cmp.pwc.leakage_mw:.3f}"),
        ],
        title="Section 7.4 — hardware structures",
    ))
    print(f"ratios (radix/LVM): bytes={cmp.bytes_ratio:.2f} "
          f"area={cmp.area_ratio:.2f} power={cmp.power_ratio:.2f}")


def cmd_schemes(args) -> None:
    """List the registered translation schemes and their capabilities."""
    rows = []
    for d in scheme_registry.descriptors():
        rows.append((
            d.name,
            ",".join(d.aliases) if d.aliases else "-",
            "core" if d.core else "extended",
            "yes" if d.supports_thp else "no",
            d.walk_cache_kind,
            "yes" if d.supports_virtualization else "no",
            d.description,
        ))
    print(render_table(
        ["scheme", "aliases", "tier", "THP", "walk cache", "virt",
         "description"],
        rows,
        title="Registered translation schemes",
    ))


def cmd_suite(args) -> None:
    results = _suite_results(args)
    _speedup_tables(results)
    _relative_tables(results, "mmu_overhead_relative", "Figure 10 — MMU overhead")
    _relative_tables(results, "walk_traffic_relative", "Figure 11 — walk traffic")


def cmd_chaos(args) -> None:
    """Inject each fault class into the LVM path; report recovery."""
    names = args.workloads.split(",") if args.workloads else ["gups", "bfs"]
    print(
        f"running chaos sweep: {names} x {[k.value for k in FaultKind]} "
        f"at rate {args.fault_rate}, {args.refs} refs each...",
        file=sys.stderr,
    )
    rows = []
    for kind in FaultKind:
        plan = FaultPlan.single(kind, rate=args.fault_rate, seed=args.fault_seed)
        config = SimConfig(
            num_refs=args.refs, faults=plan, verify_translations=True,
            use_trace_cache=not args.no_trace_cache,
            trace_cache_dir=args.trace_cache_dir,
        )
        config.validate()
        results = run_suite(
            workload_names=names, schemes=("lvm",), page_modes=(False,),
            config=config, verbose=args.verbose,
            on_error="raise" if args.fail_fast else "collect",
            jobs=args.jobs,
            run_timeout=args.run_timeout, retries=args.retries,
        )
        _report_failures(results)
        for r in results.results:
            rows.append((
                r.workload, kind.value, r.faults_injected, r.recoveries,
                r.recovery_cycles, r.poison_detections,
                r.incorrect_translations,
            ))
    print(render_table(
        ["workload", "fault class", "injected", "recoveries",
         "recovery cycles", "poison detections", "incorrect"],
        rows,
        title=f"Chaos — graceful degradation (rate={args.fault_rate}, "
              f"seed={args.fault_seed})",
    ))
    if any(r[-1] for r in rows):
        raise ReproError("chaos run produced incorrect translations")


def cmd_cache(args) -> None:
    """Inspect (``ls``, the default) or empty (``gc``) the
    content-addressed trace cache."""
    from repro.workloads.trace_cache import get_cache

    cache = get_cache(args.trace_cache_dir)
    action = args.subcommand or "ls"
    if action == "ls":
        rows = [
            (
                e["digest"][:12],
                e["workload"],
                e["num_refs"],
                e["trace_seed"],
                e["scale"],
                f"v{e['generator_version']}",
                f"{e['nbytes'] / 1024:.1f}KB",
            )
            for e in cache.entries()
        ]
        print(render_table(
            ["entry", "workload", "refs", "seed", "scale", "gen", "size"],
            rows,
            title=f"Trace cache — {cache.root} ({len(rows)} entries)",
        ))
    elif action == "gc":
        stats = cache.gc()
        print(
            f"trace cache gc: removed {stats['entries']} entries, "
            f"reclaimed {stats['bytes'] / 1024:.1f}KB from {cache.root}"
        )
    else:
        raise ConfigError(
            f"unknown cache action {action!r}; choose 'ls' or 'gc'"
        )


def _chaos_plan_from_args(args) -> dict:
    """The default ``--chaos`` plan for the serving layer: translation
    -path corruption at ``--fault-rate`` on every tenant that does not
    bring its own plan.  (Allocation faults are left to explicit
    per-tenant plans — at server scale they would quarantine every
    tenant, which is a different experiment.)"""
    return {
        "seed": args.fault_seed,
        "pte_bitflip_rate": args.fault_rate,
        "model_perturb_rate": args.fault_rate,
    }


def cmd_serve(args) -> None:
    """Run the translation server until interrupted (Ctrl-C)."""
    import asyncio

    from repro.serve.server import ServePolicy, TranslationServer

    policy = ServePolicy(
        num_shards=args.shards,
        max_global_inflight=args.max_inflight,
        max_tenant_inflight=args.max_tenant_inflight,
        chaos_plan=_chaos_plan_from_args(args) if args.chaos else None,
    )
    server = TranslationServer(args.socket, args.state_dir, policy)
    print(
        f"repro serve: listening on {args.socket}, {args.shards} shard(s), "
        f"journals in {args.state_dir}"
        + (" [chaos]" if args.chaos else ""),
        file=sys.stderr,
    )
    asyncio.run(server.serve_forever())


def cmd_serve_bench(args) -> None:
    """Run the four serving-layer scenarios; write BENCH_serve.json."""
    import json

    from repro.serve.bench import run_serve_bench, write_bench_json

    scheme = (args.schemes or "lvm").split(",")[0]
    results = run_serve_bench(quick=args.quick, scheme=scheme)
    write_bench_json(results, args.bench_out)
    print(json.dumps(results["headline"], indent=2))
    print(f"wrote {args.bench_out}", file=sys.stderr)
    if not results["ok"]:
        raise ReproError("a serving-layer scenario failed its assertion")


COMMANDS = {
    "cache": cmd_cache,
    "serve": cmd_serve,
    "serve-bench": cmd_serve_bench,
    "chaos": cmd_chaos,
    "fig2": cmd_fig2,
    "fig3": cmd_fig3,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "fig12": cmd_fig12,
    "tab1": cmd_tab1,
    "tab2": cmd_tab2,
    "collisions": cmd_collisions,
    "scaling": cmd_scaling,
    "hardware": cmd_hardware,
    "schemes": cmd_schemes,
    "suite": cmd_suite,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables and figures of the LVM paper.",
    )
    parser.add_argument(
        "command", choices=sorted(COMMANDS), help="artifact to regenerate"
    )
    parser.add_argument(
        "subcommand", nargs="?", default=None,
        help="action for the cache command: 'ls' (default) or 'gc'",
    )
    parser.add_argument(
        "--refs", type=int, default=30_000,
        help="trace references per simulation run (default 30000)",
    )
    parser.add_argument(
        "--workloads", default=None,
        help="comma-separated workload subset (default: the full suite)",
    )
    parser.add_argument(
        "--schemes", default=None,
        help="comma-separated scheme subset for sweep commands (default: "
             "the core set; see 'repro schemes' for everything registered; "
             "unknown names are rejected before the sweep starts)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=default_jobs(),
        help="worker processes for sweep commands; 1 = in-process serial "
             "run (default: $REPRO_JOBS or 1); results are bit-identical "
             "at any job count",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="abort sweep commands on the first failing run instead of "
             "collecting failures and finishing the sweep",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint every completed sweep cell to this append-only "
             "JSONL journal; an interrupted sweep can then be resumed "
             "with --resume without losing finished cells",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay completed cells from --journal and re-run only the "
             "remainder (bit-identical to an uninterrupted sweep); a "
             "journal from a different configuration is rejected (exit 2)",
    )
    parser.add_argument(
        "--run-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline per simulation run; a run exceeding it "
             "is killed and retried (see --retries)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts for runs that hang or whose worker crashes "
             "(default 2); a run failing every attempt is quarantined "
             "as a structured failure, never silently dropped",
    )
    parser.add_argument(
        "--no-trace-cache", action="store_true",
        help="disable the content-addressed trace cache for this sweep "
             "(traces are still compiled in memory; results are "
             "bit-identical either way)",
    )
    parser.add_argument(
        "--trace-cache-dir", default=None, metavar="DIR",
        help="trace cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro/traces); also the target of the cache "
             "ls/gc command",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=1e-3,
        help="per-opportunity fault rate for the chaos command (default 1e-3)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="fault-injection seed for the chaos command (default 0)",
    )
    parser.add_argument(
        "--socket", default="repro-serve.sock", metavar="PATH",
        help="unix socket path for the serve command "
             "(default repro-serve.sock)",
    )
    parser.add_argument(
        "--state-dir", default="serve-state", metavar="DIR",
        help="per-tenant journal directory for the serve command; a "
             "restarted server replays it to reconstruct tenants "
             "(default serve-state)",
    )
    parser.add_argument(
        "--shards", type=int, default=2,
        help="worker processes hosting tenant shards (default 2)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=64,
        help="global in-flight request bound before the server sheds "
             "with ServerOverloadedError (default 64)",
    )
    parser.add_argument(
        "--max-tenant-inflight", type=int, default=16,
        help="per-tenant in-flight bound (default 16)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="serve with fault injection armed on every tenant that "
             "does not bring its own plan (--fault-rate/--fault-seed); "
             "a tenant corrupted past the recovery ladder is "
             "quarantined, others are unaffected",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="serve-bench: CI-sized scenario counts instead of the "
             "full >=100k-request replay",
    )
    parser.add_argument(
        "--bench-out", default="BENCH_serve.json", metavar="PATH",
        help="serve-bench output file (default BENCH_serve.json)",
    )
    parser.add_argument("--verbose", action="store_true")
    return parser


def _validate_args(args) -> None:
    """Cross-flag checks argparse cannot express; every violation is a
    :class:`ConfigError`, i.e. exit code 2."""
    if args.jobs < 1:
        raise ConfigError(f"--jobs must be >= 1, got {args.jobs}")
    if args.run_timeout is not None and args.run_timeout <= 0:
        raise ConfigError(
            f"--run-timeout must be positive, got {args.run_timeout}"
        )
    if args.retries is not None and args.retries < 0:
        raise ConfigError(f"--retries must be >= 0, got {args.retries}")
    if args.resume and not args.journal:
        raise ConfigError("--resume requires --journal PATH")
    if args.shards < 1:
        raise ConfigError(f"--shards must be >= 1, got {args.shards}")
    if args.max_inflight < 1 or args.max_tenant_inflight < 1:
        raise ConfigError("in-flight bounds must be >= 1")
    if args.subcommand is not None and args.command != "cache":
        raise ConfigError(
            f"{args.command!r} takes no subcommand, got {args.subcommand!r}"
        )
    if args.command == "cache" and args.subcommand not in (None, "ls", "gc"):
        raise ConfigError(
            f"unknown cache action {args.subcommand!r}; choose 'ls' or 'gc'"
        )


def main(argv: Optional[List[str]] = None) -> int:
    try:
        # Parsing sits inside the try: building the parser evaluates
        # default_jobs(), so a malformed REPRO_JOBS is reported as the
        # configuration error it is, not a traceback.
        args = build_parser().parse_args(argv)
        _validate_args(args)
        COMMANDS[args.command](args)
    except ConfigError as exc:
        print(f"repro: configuration error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 3
    except KeyboardInterrupt as exc:
        # SweepInterrupted (a KeyboardInterrupt subclass) arrives here
        # after the supervisor drained in-flight runs and flushed the
        # journal; plain Ctrl-C outside a journaled sweep stays terse.
        print("repro: interrupted", file=sys.stderr)
        journal_path = getattr(exc, "journal_path", None)
        if journal_path:
            print(
                f"repro: {exc.completed}/{exc.total} cells journaled in "
                f"{journal_path}; resume with: "
                "the same command plus --resume",
                file=sys.stderr,
            )
        return 130
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
