"""Hardware MMU model: caches, TLBs, walk caches, walkers."""

from repro.mmu.cache import Cache
from repro.mmu.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.mmu.mmu import MMU, MMUStats
from repro.mmu.tlb import TLBConfig, TLBHierarchy
from repro.mmu.walk_cache import CWC, LWC, RadixPWC
from repro.mmu.walker import (
    ASAPWalker,
    ECPTWalker,
    FPTWalker,
    IdealWalker,
    LVMWalker,
    RadixWalker,
    WalkOutcome,
)

__all__ = [
    "ASAPWalker",
    "CWC",
    "Cache",
    "ECPTWalker",
    "FPTWalker",
    "HierarchyConfig",
    "IdealWalker",
    "LWC",
    "LVMWalker",
    "MMU",
    "MMUStats",
    "MemoryHierarchy",
    "RadixPWC",
    "RadixWalker",
    "TLBConfig",
    "TLBHierarchy",
    "WalkOutcome",
]
