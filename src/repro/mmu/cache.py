"""Set-associative LRU cache model (Table 1's L1/L2/L3).

A deliberately small, fast model: tags only (no data), true-LRU via
insertion-ordered dicts, hit/miss/eviction counters.  The simulator
feeds it both program data accesses and page-walk accesses, which is
exactly how the paper measures ECPT's cache pollution (Figure 12).
"""

from __future__ import annotations

from typing import Dict

from repro.types import CACHE_LINE_SIZE


class Cache:
    """One level of set-associative cache with LRU replacement."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        latency: int,
        line_size: int = CACHE_LINE_SIZE,
    ):
        if size_bytes % (ways * line_size) != 0:
            raise ValueError(f"{name}: size must be a multiple of ways*line")
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.latency = latency
        self.line_size = line_size
        self.num_sets = size_bytes // (ways * line_size)
        # Hot-path constants: line addressing is a shift when the line
        # size is a power of two (it always is in practice).
        self._line_shift = (
            line_size.bit_length() - 1 if line_size & (line_size - 1) == 0 else None
        )
        # Subclasses (e.g. the learned-set-index cache in
        # repro.extensions) customise placement by overriding
        # ``_locate``; the inlined fast path below is only valid for
        # the stock modulo mapping.
        self._stock_locate = type(self)._locate is Cache._locate
        # set index -> {tag: None} insertion-ordered (LRU at front)
        self._sets: Dict[int, Dict[int, None]] = {}
        self.hits = 0
        self.misses = 0
        # Misses attributed to page-walk accesses, for pollution studies.
        self.walk_misses = 0

    def _locate(self, paddr: int):
        if self._line_shift is not None:
            line = paddr >> self._line_shift
        else:
            line = paddr // self.line_size
        return line % self.num_sets, line // self.num_sets

    def access(self, paddr: int, is_walk: bool = False) -> bool:
        """Touch a line; returns True on hit.  Fills on miss."""
        # ``_locate`` inlined: this runs several times per simulated
        # reference (demand access + walk accesses, three levels each).
        if self._stock_locate:
            shift = self._line_shift
            line = paddr >> shift if shift is not None else paddr // self.line_size
            num_sets = self.num_sets
            set_idx = line % num_sets
            tag = line // num_sets
        else:
            set_idx, tag = self._locate(paddr)
        cache_set = self._sets.get(set_idx)
        if cache_set is None:
            cache_set = {}
            self._sets[set_idx] = cache_set
        if tag in cache_set:
            self.hits += 1
            # Move to MRU position.
            del cache_set[tag]
            cache_set[tag] = None
            return True
        self.misses += 1
        if is_walk:
            self.walk_misses += 1
        if len(cache_set) >= self.ways:
            # Evict LRU (first inserted).
            cache_set.pop(next(iter(cache_set)))
        cache_set[tag] = None
        return False

    def fill(self, paddr: int) -> None:
        """Install a line without charging latency or touching the
        hit/miss counters (prefetcher-style fill).  Replacement follows
        the same LRU policy as a demand fill: a line already present
        moves to MRU, otherwise the LRU way is evicted."""
        if self._stock_locate:
            shift = self._line_shift
            line = paddr >> shift if shift is not None else paddr // self.line_size
            num_sets = self.num_sets
            set_idx = line % num_sets
            tag = line // num_sets
        else:
            set_idx, tag = self._locate(paddr)
        cache_set = self._sets.setdefault(set_idx, {})
        if tag in cache_set:
            del cache_set[tag]
        elif len(cache_set) >= self.ways:
            cache_set.pop(next(iter(cache_set)))
        cache_set[tag] = None

    def lru_snapshot(self):
        """Yield (set index, [line numbers LRU → MRU]) per resident set.

        Read-only export for consumers that model residency bounds over
        a window (the vectorized engine's guaranteed-hit analysis);
        line number = tag * num_sets + set index, i.e. paddr >> 6 for
        the stock 64 B mapping.
        """
        num_sets = self.num_sets
        for set_idx, cache_set in self._sets.items():
            yield set_idx, [tag * num_sets + set_idx for tag in cache_set]

    def live_set(self, set_idx: int) -> Dict[int, None]:
        """The live (insertion-ordered) tag dict of one set, created on
        demand — the vectorized engine's batched MRU-fixup hook."""
        cache_set = self._sets.get(set_idx)
        if cache_set is None:
            cache_set = {}
            self._sets[set_idx] = cache_set
        return cache_set

    def contains(self, paddr: int) -> bool:
        set_idx, tag = self._locate(paddr)
        cache_set = self._sets.get(set_idx)
        return cache_set is not None and tag in cache_set

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        return 1000.0 * self.misses / instructions if instructions else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.walk_misses = 0
