"""Hardware page-table walkers, one per translation scheme.

A walker takes the *software* walk (the sequence of physical accesses
the page-table data structure implies) and turns it into hardware
behaviour: walk-cache hits skip accesses, parallel probes overlap,
surviving accesses go through the cache hierarchy, and the result is a
cycle count plus the memory traffic actually issued — the quantities
Figures 10 and 11 are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.learned_index import LearnedIndex
from repro.mmu.hierarchy import MemoryHierarchy
from repro.mmu.walk_cache import CWC, LWC, RadixPWC
from repro.pagetables.ecpt import ECPT
from repro.pagetables.fpt import FlattenedPageTable
from repro.pagetables.ideal import IdealPageTable
from repro.pagetables.radix import RadixPageTable
from repro.types import PTE, AccessKind


@dataclass
class WalkOutcome:
    """One hardware page walk: result, latency, and traffic."""

    pte: Optional[PTE]
    cycles: int
    memory_accesses: int


class RadixWalker:
    """Radix walker with a three-level page walk cache."""

    def __init__(
        self,
        table: RadixPageTable,
        hierarchy: MemoryHierarchy,
        pwc: Optional[RadixPWC] = None,
    ):
        self.table = table
        self.hierarchy = hierarchy
        self.pwc = pwc or RadixPWC()
        self.walks = 0
        self.total_cycles = 0
        self.total_accesses = 0
        self.poison_detections = 0
        # Cumulative PWC-detection snapshot: detections only ever happen
        # inside ``walk`` (during the PWC probe), so one delta per walk
        # replaces the before/after property-call pair on the hot path.
        self._poison_seen = self.pwc.poison_detections

    def walk(self, vpn: int, asid: int = 0) -> WalkOutcome:
        result = self.table.walk(vpn)
        lowest = self.pwc.lowest_cached_level(vpn, asid)
        cycles = self.pwc.latency
        # A parity trip costs the dead probe before the walk restarts
        # below the invalidated entry.
        poison_now = self.pwc.poison_detections
        detected = poison_now - self._poison_seen
        if detected:
            self._poison_seen = poison_now
            self.poison_detections += detected
            cycles += detected * self.pwc.latency
        issued = 0
        walk_access = self.hierarchy.walk_access
        for access in result.accesses:
            if lowest is not None and access.level >= lowest:
                continue  # served by the PWC
            cycles += walk_access(access.paddr)
            issued += 1
        # Fill the PWC with the non-leaf entries this walk traversed.
        if len(result.accesses) > 1:
            deepest_nonleaf = result.accesses[-2].level
            self.pwc.fill(vpn, asid, deepest_nonleaf)
        self.walks += 1
        self.total_cycles += cycles
        self.total_accesses += issued
        return WalkOutcome(result.pte, cycles, issued)


class FPTWalker(RadixWalker):
    """FPT uses the radix walker machinery over its folded tables."""

    def __init__(
        self,
        table: FlattenedPageTable,
        hierarchy: MemoryHierarchy,
        pwc: Optional[RadixPWC] = None,
    ):
        # The PWC keys by radix-style level tags, which FPT emits.
        super().__init__(table, hierarchy, pwc)  # type: ignore[arg-type]


class ECPTWalker:
    """Parallel cuckoo walker with a cuckoo walk cache."""

    def __init__(
        self,
        table: ECPT,
        hierarchy: MemoryHierarchy,
        cwc: Optional[CWC] = None,
    ):
        self.table = table
        self.hierarchy = hierarchy
        self.cwc = cwc or CWC()
        self.walks = 0
        self.total_cycles = 0
        self.total_accesses = 0
        self.poison_detections = 0
        # See RadixWalker: one cumulative snapshot per walk instead of a
        # before/after property-call pair.
        self._poison_seen = self.cwc.poison_detections

    def walk(self, vpn: int, asid: int = 0) -> WalkOutcome:
        result = self.table.walk(vpn)
        cycles = self.cwc.latency
        issued = 0
        # CWT consults on CWC miss: the PUD entry always, the PMD entry
        # only for mixed-size regions (level tags 6 and 5).  The two
        # fetches are independent and overlap, so latency is their max.
        cwt_latency = 0
        for access in result.accesses:
            if access.kind is not AccessKind.CWT:
                continue
            if access.level == 6:
                hit = self.cwc.pud.lookup((asid, vpn >> 18))
            else:
                hit = self.cwc.pmd.lookup((asid, vpn >> 9))
            if not hit:
                cwt_latency = max(
                    cwt_latency, self.hierarchy.walk_access(access.paddr)
                )
                issued += 1
                if access.level == 6:
                    self.cwc.pud.insert((asid, vpn >> 18))
                else:
                    self.cwc.pmd.insert((asid, vpn >> 9))
        # All cuckoo probes are issued in parallel: latency is the
        # slowest probe, traffic is every probe (the "two unnecessary
        # fetches per translation").
        probe_latency = 0
        for access in result.accesses:
            if access.kind is not AccessKind.PT_LEAF:
                continue
            probe_latency = max(
                probe_latency, self.hierarchy.walk_access(access.paddr)
            )
            issued += 1
        poison_now = self.cwc.poison_detections
        detected = poison_now - self._poison_seen
        if detected:
            self._poison_seen = poison_now
            self.poison_detections += detected
            cycles += detected * self.cwc.latency
        cycles += cwt_latency + probe_latency
        self.walks += 1
        self.total_cycles += cycles
        self.total_accesses += issued
        return WalkOutcome(result.pte, cycles, issued)


class LVMWalker:
    """LVM page-table walker with the LVM Walk Cache (section 4.6.2)."""

    def __init__(
        self,
        index: LearnedIndex,
        hierarchy: MemoryHierarchy,
        lwc: Optional[LWC] = None,
    ):
        self.index = index
        self.hierarchy = hierarchy
        self.lwc = lwc or LWC()
        self.walks = 0
        self.total_cycles = 0
        self.total_accesses = 0
        self.poison_detections = 0
        self.recovered_walks = 0
        self.recovery_cycles = 0
        self._seen_flushes = index.stats.lwc_flushes
        # See RadixWalker: one cumulative snapshot per walk instead of a
        # before/after property-call pair.
        self._poison_seen = self.lwc.poison_detections

    def _sync_flushes(self, asid: int) -> None:
        """Apply OS-requested LWC flushes (after node retrains)."""
        if self.index.stats.lwc_flushes != self._seen_flushes:
            self.lwc.flush_asid(asid)
            self._seen_flushes = self.index.stats.lwc_flushes

    def walk(self, vpn: int, asid: int = 0) -> WalkOutcome:
        self._sync_flushes(asid)
        trace = self.index.lookup(vpn)
        # A recovery may retrain or rebuild mid-lookup; flush the LWC
        # before charging the walk so its node fetches see the
        # post-repair state.
        self._sync_flushes(asid)
        cycles = 0
        issued = 0
        lwc = self.lwc
        walk_access = self.hierarchy.walk_access
        for level, offset, paddr in trace.node_accesses:
            # Model evaluation + LWC lookup: 2 cycles (section 7.4).
            cycles += lwc.latency
            if not lwc.lookup(asid, level, offset):
                cycles += walk_access(paddr)
                issued += 1
                lwc.fill_line(asid, level, offset)
        for paddr in trace.pte_line_paddrs:
            cycles += walk_access(paddr)
            issued += 1
        poison_now = lwc.poison_detections
        detected = poison_now - self._poison_seen
        if detected:
            self._poison_seen = poison_now
            self.poison_detections += detected
            cycles += detected * lwc.latency
        if trace.recovered:
            self.recovered_walks += 1
            # The degradation ladder's extra line fetches are already in
            # pte_line_paddrs; attribute everything past the first
            # (collision-free) translation access to recovery.
            self.recovery_cycles += max(0, cycles - self.lwc.latency)
        self.walks += 1
        self.total_cycles += cycles
        self.total_accesses += issued
        return WalkOutcome(trace.pte, cycles, issued)


class IdealWalker:
    """Oracle walker: exactly one memory access per walk."""

    def __init__(self, table: IdealPageTable, hierarchy: MemoryHierarchy):
        self.table = table
        self.hierarchy = hierarchy
        self.walks = 0
        self.total_cycles = 0
        self.total_accesses = 0

    def walk(self, vpn: int, asid: int = 0) -> WalkOutcome:
        result = self.table.walk(vpn)
        cycles = self.hierarchy.walk_access(result.accesses[0].paddr)
        self.walks += 1
        self.total_cycles += cycles
        self.total_accesses += 1
        return WalkOutcome(result.pte, cycles, 1)


class ASAPWalker(RadixWalker):
    """ASAP (section 7.5.1): radix plus translation prefetching.

    When the OS managed to allocate the VMA's leaf page tables
    contiguously, the walker can compute the PTE's (and PDE's) address
    directly and prefetch them while the ordinary walk proceeds.  The
    prefetches warm the caches — the walk's leaf accesses then hit —
    but they are extra traffic on top of the standard walk, which is
    precisely why the paper finds ASAP slower than ECPT and LVM.
    """

    def __init__(
        self,
        table: RadixPageTable,
        hierarchy: MemoryHierarchy,
        pwc: Optional[RadixPWC] = None,
        prefetch_success_rate: float = 1.0,
    ):
        super().__init__(table, hierarchy, pwc)
        self.prefetch_success_rate = prefetch_success_rate
        self.prefetches = 0

    def _region_prefetchable(self, vpn: int) -> bool:
        """Deterministic per-1GB-region contiguity outcome."""
        if self.prefetch_success_rate >= 1.0:
            return True
        if self.prefetch_success_rate <= 0.0:
            return False
        region = vpn >> 18
        # Cheap deterministic hash spread over [0, 1).
        spread = ((region * 2654435761) & 0xFFFF) / 65536.0
        return spread < self.prefetch_success_rate

    def walk(self, vpn: int, asid: int = 0) -> WalkOutcome:
        prefetched = 0
        if self._region_prefetchable(vpn):
            result = self.table.walk(vpn)
            # Prefetch the two deepest entries' lines ahead of the walk.
            for access in result.accesses[-2:]:
                self.hierarchy.walk_access(access.paddr)
                prefetched += 1
            self.prefetches += prefetched
        outcome = super().walk(vpn, asid)
        outcome.memory_accesses += prefetched
        self.total_accesses += prefetched
        return outcome
