"""The L1/L2/L3 + DRAM memory hierarchy (Table 1).

``access`` walks a physical address down the levels, filling on the way
back, and returns the load-to-use latency in cycles.  Page-table
walkers connect at the L2 by default (the paper's baseline); section
7.2's "Connecting PTW to L1/L2 cache" study flips ``walker_entry``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.mmu.cache import Cache


@dataclass
class HierarchyConfig:
    """Cache geometry and latencies; defaults mirror Table 1."""

    l1_size: int = 32 << 10
    l1_ways: int = 8
    l1_latency: int = 1
    l2_size: int = 1 << 20
    l2_ways: int = 8
    l2_latency: int = 20
    l3_size: int = 2 << 20
    l3_ways: int = 16
    l3_latency: int = 56
    dram_latency: int = 160  # DDR4-3200-class load latency at 2 GHz
    walker_entry: str = "l2"  # where page-walk accesses enter ("l1"/"l2")
    # Next-line prefetch degree for demand (data) accesses.  Modern
    # cores hide most streaming misses behind stride prefetchers;
    # without this, streaming workloads (DC, PageRank sweeps, MUMmer
    # scans) would look memory-bound in a way real hardware is not.
    prefetch_degree: int = 2

    def validate(self) -> None:
        """Reject impossible cache geometries with a clear message."""
        from repro.errors import ConfigError

        for level in ("l1", "l2", "l3"):
            size = getattr(self, f"{level}_size")
            ways = getattr(self, f"{level}_ways")
            latency = getattr(self, f"{level}_latency")
            if size <= 0:
                raise ConfigError(
                    f"{level.upper()} cache size must be positive, got {size!r}"
                )
            if ways <= 0:
                raise ConfigError(
                    f"{level.upper()} associativity must be positive, got {ways!r}"
                )
            if size < ways * 64:
                raise ConfigError(
                    f"{level.upper()} size {size} cannot hold one 64 B line "
                    f"per way ({ways} ways)"
                )
            if latency < 0:
                raise ConfigError(
                    f"{level.upper()} latency cannot be negative, got {latency!r}"
                )
        if self.dram_latency <= 0:
            raise ConfigError(
                f"DRAM latency must be positive, got {self.dram_latency!r}"
            )
        if self.walker_entry not in ("l1", "l2", "l3"):
            raise ConfigError(
                f"walker_entry must be 'l1', 'l2' or 'l3', got {self.walker_entry!r}"
            )
        if self.prefetch_degree < 0:
            raise ConfigError(
                f"prefetch_degree cannot be negative, got {self.prefetch_degree!r}"
            )

    @staticmethod
    def scaled(factor: int) -> "HierarchyConfig":
        """Capacities divided by ``factor`` (latencies unchanged).

        The simulations scale workload footprints down by
        ``FOOTPRINT_SCALE`` to fit one machine; shrinking cache
        capacities by a related factor preserves the paper's
        footprint-to-cache *pressure* ratio, which is what determines
        where page-table entries and upper-level nodes actually hit.
        """
        base = HierarchyConfig()

        def shrink(size: int, ways: int) -> int:
            return max(ways * 64 * 4, size // factor)

        # ``replace`` keeps every non-size field (latencies,
        # walker_entry, prefetch_degree, anything added later) at the
        # base value instead of silently re-defaulting it.
        return replace(
            base,
            l1_size=shrink(base.l1_size, base.l1_ways),
            l2_size=shrink(base.l2_size, base.l2_ways),
            l3_size=shrink(base.l3_size, base.l3_ways),
        )


class MemoryHierarchy:
    """Three cache levels backed by fixed-latency DRAM."""

    def __init__(self, config: Optional[HierarchyConfig] = None):
        self.config = config or HierarchyConfig()
        c = self.config
        self.l1 = Cache("L1D", c.l1_size, c.l1_ways, c.l1_latency)
        self.l2 = Cache("L2", c.l2_size, c.l2_ways, c.l2_latency)
        self.l3 = Cache("L3", c.l3_size, c.l3_ways, c.l3_latency)
        self.dram_accesses = 0
        # Hot-path constants: the lookup chains per entry point (built
        # once, not per access) and the flat DRAM miss latency.
        self._chains = {
            "l1": (self.l1, self.l2, self.l3),
            "l2": (self.l2, self.l3),
            "l3": (self.l3,),
        }
        self._dram_latency = c.l3_latency + c.dram_latency
        self._do_prefetch = c.prefetch_degree > 0
        self._walker_entry = c.walker_entry

    def _chain(self, entry: str) -> List[Cache]:
        try:
            return list(self._chains[entry])
        except KeyError:
            raise ValueError(f"unknown entry level {entry!r}") from None

    def access(self, paddr: int, entry: str = "l1", is_walk: bool = False) -> int:
        """Access a physical address; returns latency in cycles."""
        try:
            chain = self._chains[entry]
        except KeyError:
            raise ValueError(f"unknown entry level {entry!r}") from None
        for cache in chain:
            if cache.access(paddr, is_walk):
                return cache.latency
        self.dram_accesses += 1
        if not is_walk and self._do_prefetch and entry == "l1":
            self._prefetch(paddr)
        return self._dram_latency

    def access_info(
        self, paddr: int, entry: str = "l1", is_walk: bool = False
    ) -> "tuple[int, str]":
        """Access a physical address; returns (latency, level hit)."""
        try:
            chain = self._chains[entry]
        except KeyError:
            raise ValueError(f"unknown entry level {entry!r}") from None
        for cache in chain:
            if cache.access(paddr, is_walk):
                return cache.latency, cache.name
        self.dram_accesses += 1
        if not is_walk and self._do_prefetch and entry == "l1":
            self._prefetch(paddr)
        return self._dram_latency, "DRAM"

    def _prefetch(self, paddr: int) -> None:
        """Next-line prefetch on a demand miss: fill the following
        lines without charging latency (they arrive before use in a
        stream; useless fills for random traffic just add mild
        pollution, as on real hardware)."""
        line = paddr - (paddr % 64)
        l1, l2, l3 = self._chains["l1"]
        for step in range(1, self.config.prefetch_degree + 1):
            target = line + step * 64
            l1.fill(target)
            l2.fill(target)
            l3.fill(target)

    def walk_access(self, paddr: int) -> int:
        """A page-walk access, entering at the configured level."""
        return self.access(paddr, self._walker_entry, True)

    def llc_would_hit(self, paddr: int) -> bool:
        """Non-destructive LLC presence check (used by the Midgard
        model, which translates only when the LLC misses)."""
        return (
            self.l1.contains(paddr)
            or self.l2.contains(paddr)
            or self.l3.contains(paddr)
        )

    def reset_stats(self) -> None:
        for cache in (self.l1, self.l2, self.l3):
            cache.reset_stats()
        self.dram_accesses = 0
