"""Walk caches: radix PWC, LVM's LWC, and ECPT's CWC (section 4.6.2).

All three are small MMU-resident structures that short-circuit memory
accesses during page walks:

* the radix **PWC** caches PML4/PDPT/PD entries, letting the walker
  skip the upper levels;
* LVM's **LWC** is fully associative and caches individual 16-byte
  learned models, tagged (ASID, level, offset); a miss fetches a 64 B
  line containing four neighbouring models;
* ECPT's **CWC** caches cuckoo-walk-table entries (PMD and PUD
  granularity) that tell the walker which page sizes to probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.fixed_point import MODEL_BYTES


class _LRUSet:
    """A fully-associative LRU structure with hit/miss counters.

    Entries can be *poisoned* (fault injection standing in for a
    corrupted SRAM cell).  Hardware walk caches protect entries with
    parity, so a poisoned entry is detected the moment it is used: the
    lookup reports a miss, the entry is invalidated, and the detection
    is counted so the walker can charge the dead probe.
    """

    def __init__(self, name: str, capacity: int, latency: int = 2):
        self.name = name
        self.capacity = capacity
        self.latency = latency
        self._entries: Dict[Tuple, None] = {}
        self._poisoned: set = set()
        self.hits = 0
        self.misses = 0
        self.poison_detections = 0

    def lookup(self, key: Tuple) -> bool:
        if key in self._entries:
            if key in self._poisoned:
                # Parity mismatch: drop the entry and miss.
                self._poisoned.discard(key)
                del self._entries[key]
                self.poison_detections += 1
                self.misses += 1
                return False
            del self._entries[key]
            self._entries[key] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key: Tuple) -> None:
        # A fresh fill overwrites whatever damage the slot held.
        self._poisoned.discard(key)
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.capacity:
            victim = next(iter(self._entries))
            del self._entries[victim]
            self._poisoned.discard(victim)
        self._entries[key] = None

    def invalidate(self, key: Tuple) -> None:
        self._entries.pop(key, None)
        self._poisoned.discard(key)

    def flush_where(self, predicate) -> int:
        victims = [k for k in self._entries if predicate(k)]
        for key in victims:
            del self._entries[key]
            self._poisoned.discard(key)
        return len(victims)

    def flush(self) -> None:
        self._entries.clear()
        self._poisoned.clear()

    def poison_random(self, rng) -> bool:
        """Poison one resident entry; returns False when empty."""
        if not self._entries:
            return False
        keys = list(self._entries)
        self._poisoned.add(keys[rng.randrange(len(keys))])
        return True

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def occupancy(self) -> int:
        return len(self._entries)


class RadixPWC:
    """Three-level page walk cache: 32 entries per level (Table 1)."""

    LEVELS = (4, 3, 2)  # PML4E / PDPTE / PDE

    _SHIFTS = {4: 27, 3: 18, 2: 9}

    def __init__(self, entries_per_level: int = 32, latency: int = 2):
        self.latency = latency
        self.levels: Dict[int, _LRUSet] = {
            lvl: _LRUSet(f"PWC-L{lvl}", entries_per_level, latency)
            for lvl in self.LEVELS
        }
        # Hot-path constant: (level, shift, LRU set) deepest-first, so
        # the per-walk probe avoids two dict lookups per level.
        self._probe_order = tuple(
            (lvl, self._SHIFTS[lvl], self.levels[lvl]) for lvl in (2, 3, 4)
        )

    @classmethod
    def _key(cls, vpn: int, level: int, asid: int) -> Tuple[int, int]:
        return (asid, vpn >> cls._SHIFTS[level])

    def lowest_cached_level(self, vpn: int, asid: int) -> Optional[int]:
        """Deepest radix level whose entry the PWC holds: the walk can
        start below it.  Probes run deepest-first, as real PWCs do."""
        for level, shift, lru in self._probe_order:
            if lru.lookup((asid, vpn >> shift)):
                return level
        return None

    def fill(self, vpn: int, asid: int, upto_level: int) -> None:
        """Install entries for levels walked (4 down to `upto_level`)."""
        for level, shift, lru in self._probe_order:
            if level >= upto_level:
                lru.insert((asid, vpn >> shift))

    def flush_asid(self, asid: int) -> None:
        for lru in self.levels.values():
            lru.flush_where(lambda k: k[0] == asid)

    def poison_random(self, rng) -> bool:
        """Poison one resident entry in a random level (fault injection)."""
        levels = list(self.levels.values())
        start = rng.randrange(len(levels))
        for i in range(len(levels)):
            if levels[(start + i) % len(levels)].poison_random(rng):
                return True
        return False

    @property
    def poison_detections(self) -> int:
        return sum(lru.poison_detections for lru in self.levels.values())

    @property
    def hit_rate_by_level(self) -> Dict[int, float]:
        return {lvl: lru.hit_rate for lvl, lru in self.levels.items()}

    @property
    def size_bytes(self) -> int:
        # Each PWC entry holds an 8-byte PTE plus tag; count payload
        # bytes as the paper's "size in bytes" comparison does.
        return sum(lru.capacity * 8 for lru in self.levels.values())


class LWC:
    """The LVM Walk Cache: 16 fully-associative model entries."""

    def __init__(self, entries: int = 16, latency: int = 2):
        self.latency = latency
        self._lru = _LRUSet("LWC", entries, latency)
        self.flushes = 0

    @staticmethod
    def _key(asid: int, level: int, offset: int) -> Tuple[int, int, int]:
        return (asid, level, offset)

    def lookup(self, asid: int, level: int, offset: int) -> bool:
        return self._lru.lookup(self._key(asid, level, offset))

    def fill_line(self, asid: int, level: int, offset: int) -> None:
        """A 64 B fetch brings four adjacent 16 B models (section 4.6.2)."""
        base = offset - (offset % (64 // MODEL_BYTES))
        for neighbour in range(base, base + 64 // MODEL_BYTES):
            self._lru.insert(self._key(asid, level, neighbour))

    def flush_entry(self, asid: int, level: int, offset: int) -> None:
        """OS-initiated flush after a node retrain (section 5.2)."""
        self._lru.invalidate(self._key(asid, level, offset))
        self.flushes += 1

    def flush_asid(self, asid: int) -> None:
        self._lru.flush_where(lambda k: k[0] == asid)
        self.flushes += 1

    def poison_random(self, rng) -> bool:
        return self._lru.poison_random(rng)

    @property
    def poison_detections(self) -> int:
        return self._lru.poison_detections

    @property
    def hit_rate(self) -> float:
        return self._lru.hit_rate

    @property
    def accesses(self) -> int:
        return self._lru.accesses

    @property
    def size_bytes(self) -> int:
        return self._lru.capacity * MODEL_BYTES


class CWC:
    """ECPT's cuckoo walk cache: PMD (16 entries) + PUD (2) (Table 1)."""

    def __init__(self, pmd_entries: int = 16, pud_entries: int = 2, latency: int = 2):
        self.latency = latency
        self.pmd = _LRUSet("CWC-PMD", pmd_entries, latency)
        self.pud = _LRUSet("CWC-PUD", pud_entries, latency)

    def lookup(self, vpn: int, asid: int) -> Tuple[bool, bool]:
        pmd_hit = self.pmd.lookup((asid, vpn >> 9))
        pud_hit = self.pud.lookup((asid, vpn >> 18))
        return pmd_hit, pud_hit

    def fill(self, vpn: int, asid: int) -> None:
        self.pmd.insert((asid, vpn >> 9))
        self.pud.insert((asid, vpn >> 18))

    def poison_random(self, rng) -> bool:
        if rng.random() < 0.5:
            return self.pmd.poison_random(rng) or self.pud.poison_random(rng)
        return self.pud.poison_random(rng) or self.pmd.poison_random(rng)

    @property
    def poison_detections(self) -> int:
        return self.pmd.poison_detections + self.pud.poison_detections

    @property
    def hit_rate(self) -> float:
        total = self.pmd.accesses + self.pud.accesses
        if total == 0:
            return 0.0
        return (self.pmd.hits + self.pud.hits) / total


@dataclass
class WalkCacheStats:
    """Snapshot used by the reports."""

    name: str
    hit_rate: float
    size_bytes: int
    details: Dict[str, float] = field(default_factory=dict)
