"""The full MMU: TLB hierarchy in front of a scheme-specific walker.

``translate`` is what the simulator calls per memory reference; it
returns the translation and the cycles the reference spent in the MMU
(the paper's "MMU overhead" metric, Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional, Tuple

from repro.mmu.tlb import TLBArray, TLBConfig, TLBHierarchy
from repro.types import PTE, PageSize


@dataclass
class MMUStats:
    translations: int = 0
    l1_tlb_hits: int = 0
    l2_tlb_hits: int = 0
    walks: int = 0
    faults: int = 0
    tlb_cycles: int = 0
    walk_cycles: int = 0
    walk_traffic: int = 0

    @property
    def mmu_cycles(self) -> int:
        """Total cycles memory requests spent in the MMU (Figure 10)."""
        return self.tlb_cycles + self.walk_cycles

    @property
    def l2_tlb_miss_rate(self) -> float:
        reached_l2 = self.translations - self.l1_tlb_hits
        if reached_l2 <= 0:
            return 0.0
        return 1.0 - self.l2_tlb_hits / reached_l2


class PackedTLBContext(NamedTuple):
    """Snapshot handle exported by :meth:`MMU.packed_context`.

    ``front`` and ``l1_4k`` are *live* structures — the fast loop reads
    the front dict fresh on every probe, which is why the PR 5 loop
    needs no revalidation.  Consumers that derive cached state from the
    snapshot (sorted key arrays, membership masks — the vectorized
    engine) must not trust that derived state past a membership change:
    ``version`` pins the L1 membership epoch at export time, and
    :meth:`is_stale` reports whether any walker-side fill, eviction,
    invalidate or flush has happened since.  Stale consumers either
    rebuild or replay :attr:`TLBArray.membership_log` deltas.
    """

    front: dict
    l1_4k: TLBArray
    stats: "MMUStats"
    version: int

    def is_stale(self) -> bool:
        return self.l1_4k.membership_version != self.version


class MMU:
    """TLBs + page-table walker for one hardware thread."""

    def __init__(self, walker, tlb_config: Optional[TLBConfig] = None):
        self.walker = walker
        self.tlb = TLBHierarchy(tlb_config)
        self.stats = MMUStats()
        # Hot-path shortcut: the L1 4 KB array's front index (see
        # :class:`~repro.mmu.tlb.TLBArray`).  An empty dict when the
        # index is disabled, so ``translate`` needs no mode branch.
        self._l1_4k = self.tlb.l1[PageSize.SIZE_4K]
        self._front = self._l1_4k.front if self._l1_4k.front is not None else {}

    def translate(self, va: int, asid: int = 0) -> Tuple[Optional[PTE], int]:
        """Translate a virtual address; returns (pte, mmu cycles).

        ``pte`` is None on a translation fault (unmapped page); the OS
        layer is expected to handle the fault and retry.
        """
        stats = self.stats
        vpn = va >> 12
        entry = self._front.get(vpn)
        if entry is not None and entry[0] == asid:
            # Mirror of the slow path's first probe hitting: same MRU
            # move, same counters, zero latency — minus the probe loop.
            pte, tlb_set, key = entry[1], entry[2], entry[3]
            del tlb_set[key]
            tlb_set[key] = pte
            self._l1_4k.hits += 1
            stats.translations += 1
            stats.l1_tlb_hits += 1
            return pte, 0
        stats.translations += 1
        pte, tlb_latency = self.tlb.lookup(vpn, asid)
        if pte is not None:
            if tlb_latency == 0:
                stats.l1_tlb_hits += 1
            else:
                stats.l2_tlb_hits += 1
                stats.tlb_cycles += tlb_latency
            return pte, tlb_latency
        stats.tlb_cycles += tlb_latency
        outcome = self.walker.walk(vpn, asid)
        stats.walks += 1
        stats.walk_cycles += outcome.cycles
        stats.walk_traffic += outcome.memory_accesses
        if outcome.pte is None:
            stats.faults += 1
            return None, tlb_latency + outcome.cycles
        self.tlb.insert(outcome.pte, asid)
        return outcome.pte, tlb_latency + outcome.cycles

    def packed_context(self) -> PackedTLBContext:
        """Export the L1 front-index context for the packed-trace loops.

        The scalar fast loop (:meth:`Simulator.run_standard`) inlines
        the ``translate`` front-index probe using the trace's
        precomputed VPN column, charging exactly the counters the probe
        above charges; on a front miss it falls through to
        :meth:`translate`, whose own (missing) probe is a no-op.  The
        front index is an empty dict when disabled, so the caller needs
        no mode branch — every probe just misses.

        The returned :class:`PackedTLBContext` carries the L1-4K
        membership version at export time: any consumer that caches
        state *derived* from the snapshot (rather than re-probing the
        live dict per reference) must check :meth:`~PackedTLBContext.
        is_stale` — a walker-side TLB fill mid-epoch bumps the version,
        so a stale derived index can never be used silently.
        """
        return PackedTLBContext(
            self._front, self._l1_4k, self.stats,
            self._l1_4k.membership_version,
        )

    def invalidate(self, vpn: int, asid: int = 0) -> None:
        """TLB shootdown for one page (section 5.2)."""
        self.tlb.invalidate(vpn, asid)

    def flush_asid(self, asid: int) -> None:
        self.tlb.flush_asid(asid)
