"""TLB models (Table 1): split L1 TLBs per page size, unified-by-size
L2 TLB, all set-associative with LRU and ASID tags.

Hardware does not know a VA's page size before translation, so lookups
probe the structures for every supported size (each size indexes with
its own VPN granularity) — exactly what x86 L1/L2 TLBs do.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.types import PTE, PageSize


class TLBArray:
    """One set-associative TLB array for a single page size."""

    def __init__(
        self,
        name: str,
        entries: int,
        ways: int,
        page_size: PageSize,
        front_index: bool = False,
    ):
        if entries < ways:
            raise ValueError(f"{name}: need at least one set")
        if front_index and page_size is not PageSize.SIZE_4K:
            # The front index maps base-page VPNs directly; only the
            # 4 KB array has page_vpn == vpn.
            raise ValueError(f"{name}: front index requires 4 KB pages")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.page_size = page_size
        # Table 1's 2048-entry 12-way geometry is not an exact multiple;
        # round the set count up as hardware's sectoring effectively does.
        self.num_sets = -(-entries // ways)
        # Hot-path constant: base pages per entry of this array's size.
        self._page_span = page_size.pages_4k
        self._sets: Dict[int, Dict[Tuple[int, int], PTE]] = {}
        self.hits = 0
        self.misses = 0
        # Optional O(1) front index for the simulator's hot path:
        # vpn -> (asid, pte, set dict, set key), kept exactly in sync
        # with the array's contents (insert/evict/invalidate/flush).
        # When two ASIDs map the same VPN the index keeps the latest
        # insert; a mismatched hit simply falls back to the slow probe,
        # so contents and stats stay bit-identical either way.
        self.front: Optional[Dict[int, tuple]] = {} if front_index else None
        # Membership epoch: bumped on every change to *which* entries
        # the array holds (insert, replace, eviction, invalidate,
        # flush).  LRU reordering on a hit does not bump it.  Consumers
        # that export a membership snapshot (MMU.packed_context, the
        # vectorized trace engine) compare this against the version
        # they snapshotted at to detect staleness.
        self.membership_version = 0
        # Optional membership delta log: when a consumer attaches a
        # list here, every membership change is appended as
        # ("add", asid, page_vpn, pte, set dict, set key) or
        # ("del", asid, page_vpn), in mutation order.  This lets a
        # snapshot holder replay deltas instead of re-walking the sets.
        self.membership_log: Optional[List[tuple]] = None

    def _key(self, vpn: int, asid: int) -> Tuple[int, Tuple[int, int]]:
        page_vpn = vpn // self._page_span
        return page_vpn % self.num_sets, (asid, page_vpn)

    def lookup(self, vpn: int, asid: int) -> Optional[PTE]:
        # ``_key`` inlined: this is probed up to four times per
        # TLB-missing reference (two sizes, two levels).
        page_vpn = vpn // self._page_span
        tlb_set = self._sets.get(page_vpn % self.num_sets)
        if tlb_set is not None:
            key = (asid, page_vpn)
            pte = tlb_set.get(key)
            if pte is not None:
                del tlb_set[key]
                tlb_set[key] = pte  # move to MRU
                self.hits += 1
                return pte
        self.misses += 1
        return None

    def insert(self, pte: PTE, asid: int) -> None:
        front = self.front
        log = self.membership_log
        page_vpn = pte.vpn // self._page_span
        key = (asid, page_vpn)
        tlb_set = self._sets.setdefault(page_vpn % self.num_sets, {})
        if key in tlb_set:
            del tlb_set[key]
        elif len(tlb_set) >= self.ways:
            victim = next(iter(tlb_set))
            del tlb_set[victim]
            if front is not None:
                entry = front.get(victim[1])
                if entry is not None and entry[0] == victim[0]:
                    del front[victim[1]]
            if log is not None:
                log.append(("del", victim[0], victim[1]))
        tlb_set[key] = pte
        self.membership_version += 1
        if front is not None:
            front[key[1]] = (asid, pte, tlb_set, key)
        if log is not None:
            # A re-insert of a present key is logged as an "add" too:
            # membership is unchanged but the PTE payload may not be.
            log.append(("add", asid, page_vpn, pte, tlb_set, key))

    def invalidate(self, vpn: int, asid: int) -> None:
        set_idx, key = self._key(vpn, asid)
        tlb_set = self._sets.get(set_idx)
        if tlb_set is not None and tlb_set.pop(key, None) is not None:
            self.membership_version += 1
            if self.membership_log is not None:
                self.membership_log.append(("del", asid, key[1]))
        front = self.front
        if front is not None:
            entry = front.get(key[1])
            if entry is not None and entry[0] == asid:
                del front[key[1]]

    def flush_asid(self, asid: int) -> None:
        log = self.membership_log
        for tlb_set in self._sets.values():
            for key in [k for k in tlb_set if k[0] == asid]:
                del tlb_set[key]
                self.membership_version += 1
                if log is not None:
                    log.append(("del", asid, key[1]))
        front = self.front
        if front is not None:
            for vpn in [v for v, entry in front.items() if entry[0] == asid]:
                del front[vpn]

    def snapshot_entries(self) -> Iterator[tuple]:
        """Yield every resident entry as (asid, page_vpn, pte, set dict,
        set key), LRU-first within each set.

        Together with :attr:`membership_version` (capture it first) and
        :attr:`membership_log` this is the array's snapshot/export API:
        a consumer walks the entries once, then either replays the log
        or discards its snapshot when the version moves.
        """
        for tlb_set in self._sets.values():
            for key, pte in tlb_set.items():
                yield key[0], key[1], pte, tlb_set, key

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class TLBConfig:
    """Table 1 TLB geometry."""

    l1_4k_entries: int = 64
    l1_4k_ways: int = 4
    l1_2m_entries: int = 32
    l1_2m_ways: int = 4
    l2_entries_per_size: int = 2048
    l2_ways: int = 12
    l2_latency: int = 7  # cycles to deliver a hit from the L2 TLB
    # Simulator-only speed knob: keep a direct VPN index in front of
    # the L1 4 KB array so the common L1-hit case is one dict probe.
    # Purely an implementation detail of the model — results are
    # bit-identical either way (benchmarks/bench_sweep.py A/Bs it).
    front_index: bool = True

    def validate(self) -> None:
        """Reject impossible TLB geometries with a clear message."""
        from repro.errors import ConfigError

        for entries_name, ways_name in (
            ("l1_4k_entries", "l1_4k_ways"),
            ("l1_2m_entries", "l1_2m_ways"),
            ("l2_entries_per_size", "l2_ways"),
        ):
            entries = getattr(self, entries_name)
            ways = getattr(self, ways_name)
            if entries <= 0:
                raise ConfigError(
                    f"{entries_name} must be positive, got {entries!r}"
                )
            if ways <= 0:
                raise ConfigError(f"{ways_name} must be positive, got {ways!r}")
            if entries < ways:
                raise ConfigError(
                    f"{entries_name}={entries} needs at least one set "
                    f"({ways_name}={ways})"
                )
        if self.l2_latency < 0:
            raise ConfigError(
                f"l2_latency cannot be negative, got {self.l2_latency!r}"
            )

    @staticmethod
    def scaled(factor: int) -> "TLBConfig":
        """Entry counts divided by ``factor`` (latency unchanged).

        Companion of :meth:`HierarchyConfig.scaled`: with footprints
        scaled down, full-size TLBs would cover an unrealistically
        large fraction of the address space (under THP they would
        cover *all* of it, hiding every page walk the paper studies).
        Scaling reach preserves the paper's miss-rate regime.
        """
        base = TLBConfig()
        # ``replace`` keeps every field not named here (latency, the
        # front-index knob, anything added later) at the base value.
        return replace(
            base,
            l1_4k_entries=max(8, base.l1_4k_entries // factor),
            l1_4k_ways=4,
            l1_2m_entries=max(4, base.l1_2m_entries // factor),
            l1_2m_ways=2,
            l2_entries_per_size=max(32, base.l2_entries_per_size // factor),
        )


class TLBHierarchy:
    """L1 (split by size) + L2 TLBs probed per supported page size."""

    def __init__(self, config: Optional[TLBConfig] = None):
        c = config or TLBConfig()
        self.config = c
        self.l1 = {
            PageSize.SIZE_4K: TLBArray(
                "L1-4K", c.l1_4k_entries, c.l1_4k_ways, PageSize.SIZE_4K,
                front_index=c.front_index,
            ),
            PageSize.SIZE_2M: TLBArray(
                "L1-2M", c.l1_2m_entries, c.l1_2m_ways, PageSize.SIZE_2M
            ),
        }
        self.l2 = {
            size: TLBArray(
                f"L2-{size.name}", c.l2_entries_per_size, c.l2_ways, size
            )
            for size in (PageSize.SIZE_4K, PageSize.SIZE_2M)
        }
        # 1 GB pages share the 2 MB arrays in this model (x86 parts
        # vary; Table 1 lists no separate 1 GB TLB).
        # Hot-path constants: probe order (4K first, as ``lookup``
        # iterates) without per-lookup dict indexing.
        self._l1_probe = (
            self.l1[PageSize.SIZE_4K], self.l1[PageSize.SIZE_2M]
        )
        self._l2_probe = (
            self.l2[PageSize.SIZE_4K], self.l2[PageSize.SIZE_2M]
        )
        self._l2_latency = c.l2_latency

    def _arrays_for(self, size: PageSize):
        if size is PageSize.SIZE_1G:
            size = PageSize.SIZE_2M
        return self.l1[size], self.l2[size]

    def lookup(self, vpn: int, asid: int) -> Tuple[Optional[PTE], int]:
        """Probe L1 then L2 for all sizes; returns (pte, latency)."""
        for arr in self._l1_probe:
            pte = arr.lookup(vpn, asid)
            if pte is not None and pte.covers(vpn):
                return pte, 0
        for arr in self._l2_probe:
            pte = arr.lookup(vpn, asid)
            if pte is not None and pte.covers(vpn):
                l1_arr, _ = self._arrays_for(pte.page_size)
                l1_arr.insert(pte, asid)
                return pte, self._l2_latency
        return None, self._l2_latency

    def insert(self, pte: PTE, asid: int) -> None:
        l1_arr, l2_arr = self._arrays_for(pte.page_size)
        l1_arr.insert(pte, asid)
        l2_arr.insert(pte, asid)

    def invalidate(self, vpn: int, asid: int) -> None:
        for arr in (*self.l1.values(), *self.l2.values()):
            arr.invalidate(vpn, asid)

    def flush_asid(self, asid: int) -> None:
        for arr in (*self.l1.values(), *self.l2.values()):
            arr.flush_asid(asid)

    @property
    def l2_miss_rate(self) -> float:
        """Miss rate of the L2 TLB over translations that reached it.

        The paper reports per-workload L2 TLB miss rates; a translation
        "reaches" the L2 when every L1 array missed.  Both size arrays
        are probed per translation, so pairs of probes are collapsed.
        """
        lookups = max(a.accesses for a in self.l2.values())
        if lookups == 0:
            return 0.0
        hits = sum(a.hits for a in self.l2.values())
        return 1.0 - hits / lookups
