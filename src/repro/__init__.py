"""Learned Virtual Memory (LVM) — a full reproduction of
"Learning to Walk: Architecting Learned Virtual Memory Translation"
(MICRO 2025).

Public API tour:

* :mod:`repro.core` — the learned-index page table (the paper's
  contribution): linear models in Q44.20 fixed point, gapped page
  tables, the cost model, ASLR rebasing, insert/remove/rebuild.
* :mod:`repro.pagetables` — the baselines: radix, hashed (Blake2),
  elastic cuckoo (ECPT), flattened (FPT), and the single-access ideal.
* :mod:`repro.mmu` — the hardware model: caches, TLBs, PWC/LWC/CWC walk
  caches, and per-scheme page walkers.
* :mod:`repro.kernel` — the OS layer: VMAs, THP policy, ASLR, demand
  paging, and the LVM manager (the paper's Linux-prototype analogue).
* :mod:`repro.mem` — physical memory: buddy allocator, fragmentation.
* :mod:`repro.schemes` — the scheme registry: every translation scheme
  as a first-class, self-describing descriptor (factories, capability
  flags, stats hooks); ``registry.register()`` is the extension point
  for new schemes.
* :mod:`repro.workloads` — the evaluation suite: graphBIG kernels over
  Kronecker graphs, GUPS, memcached, MUMmer, production-shaped spaces.
* :mod:`repro.sim` — trace-driven full-system-style simulation and the
  experiment runner behind Figures 9-12.
* :mod:`repro.analysis` — the studies: gap coverage (Fig. 2),
  contiguity (Fig. 3), collisions and memory (7.3), area/power (7.4).
"""

from repro.core import LearnedIndex, LVMConfig
from repro.errors import ConfigError, CorruptionError, ReproError, TranslationError
from repro.faults import FaultKind, FaultPlan
from repro.kernel import LVMManager
from repro.sim import SimConfig, Simulator, run_suite
from repro.types import PTE, PageSize
from repro.workloads import build_workload

__version__ = "1.0.0"

__all__ = [
    "ConfigError",
    "CorruptionError",
    "FaultKind",
    "FaultPlan",
    "LVMConfig",
    "LVMManager",
    "LearnedIndex",
    "PTE",
    "PageSize",
    "ReproError",
    "SimConfig",
    "Simulator",
    "TranslationError",
    "build_workload",
    "run_suite",
    "__version__",
]
