"""ASLR rebasing for the learned index (paper section 5.2, "ASLR").

ASLR scatters segments across the 47-bit address space.  Two problems
follow for a learned index trained on raw VPNs: randomization changes
the key distribution run to run, and — decisive for LVM's Q44.20
fixed-point models — an even-division slope over a 2^35-page span
underflows the 20 fractional bits, degenerating the root node.

The paper's fix: "The OS exposes the ASLR base addresses to hardware
through registers, removing ASLR effects during LVM training."  The
:class:`AddressSpaceRebaser` is that register file: it maps each
segment region into a *compact* canonical space (regions packed next to
each other with growth headroom), and the hardware applies the same
subtraction before querying the index.  Rebasing is monotone, so the
index's order-based machinery is unaffected.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple


class IdentityRebaser:
    """No-op rebaser for compact address spaces and unit tests."""

    def rebase(self, vpn: int) -> int:
        return vpn

    def in_headroom(self, vpn: int) -> bool:
        return True


@dataclass(frozen=True)
class Region:
    """One ASLR region: real base, span, and its compact base."""

    start_vpn: int
    span: int  # mapped pages when the rebaser was built
    alloc: int  # compact pages reserved (span + headroom + guard)
    compact_base: int

    @property
    def end_vpn(self) -> int:
        return self.start_vpn + self.alloc


class AddressSpaceRebaser:
    """Piecewise-linear monotone mapping of VPNs into a compact space.

    Every region gets an *equal-sized* compact slot (the smallest power
    of two covering the largest region plus growth headroom).  Equal
    pitch is the property that makes the learned index tiny: the root's
    even division can then land children exactly on region boundaries,
    so each segment of the address space trains its own leaf — the
    shape of Figure 4(c), and the reason Table 2's indexes are ~100
    bytes over address spaces with many far-apart segments.
    """

    #: Growth headroom per region, in pages (128 MB of VA): two
    #: minimum-insertion-distance expansions (64 MB each).
    DEFAULT_HEADROOM = 1 << 15
    #: Guard pages at the top of each compact slot.
    GUARD = 1 << 8

    def __init__(
        self,
        regions: Sequence[Tuple[int, int]],
        headroom: int = DEFAULT_HEADROOM,
    ):
        """``regions``: sorted (start_vpn, span_pages) pairs."""
        if not regions:
            raise ValueError("need at least one region")
        widest = max(span for _, span in regions)
        slot = 1
        while slot < widest + headroom + self.GUARD:
            slot <<= 1
        self.slot_pages = slot
        self.regions: List[Region] = []
        prev_end = -1
        for i, (start, span) in enumerate(regions):
            if start <= prev_end:
                raise ValueError("regions must be sorted and disjoint")
            self.regions.append(
                Region(start, span, slot - self.GUARD, i * slot)
            )
            prev_end = start + span - 1
        self._starts = [r.start_vpn for r in self.regions]

    def _region_index(self, vpn: int) -> int:
        return bisect_right(self._starts, vpn) - 1

    def rebase(self, vpn: int) -> int:
        """Compact VPN for a real VPN; monotone over all inputs.

        VPNs below the first region map to (negative) offsets before
        compact zero; VPNs past a region's reserved compact span clamp
        to its end (such pages are unmapped by construction, so lookups
        correctly miss).
        """
        idx = self._region_index(vpn)
        if idx < 0:
            return vpn - self._starts[0]
        region = self.regions[idx]
        offset = vpn - region.start_vpn
        if offset >= region.alloc:
            offset = region.alloc - 1
        return region.compact_base + offset

    def in_headroom(self, vpn: int) -> bool:
        """Whether a new mapping at ``vpn`` fits the reserved compact
        space.  False means the OS must rebuild the register file (and
        the index) — the rare "away from any region" case."""
        idx = self._region_index(vpn)
        if idx < 0:
            return False
        region = self.regions[idx]
        return vpn - region.start_vpn < region.alloc - 1

    @property
    def compact_span(self) -> int:
        return len(self.regions) * self.slot_pages

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    def register_file(self) -> List[Tuple[int, int]]:
        """(real base, compact base) pairs — what the OS writes to the
        hardware rebase registers (section 4.6.2's d_limit registers
        carry the level bases; these carry the segment bases)."""
        return [(r.start_vpn, r.compact_base) for r in self.regions]


def cluster_regions(
    sorted_vpns: Sequence[int],
    spans: Sequence[int],
    max_regions: int = 8,
    gap_threshold: int = 256,
) -> List[Tuple[int, int]]:
    """Group mappings into ASLR-style regions.

    Consecutive mappings separated by more than ``gap_threshold`` pages
    (1 MB of VA — segment boundaries, not allocator holes) start a new
    region.  If more than ``max_regions`` result (the hardware has a
    fixed number of rebase registers), the smallest gaps are merged
    first.
    """
    if not sorted_vpns:
        return []
    breaks: List[int] = []  # indexes where a new region starts
    gaps: List[Tuple[int, int]] = []  # (gap size, break index position)
    for i in range(1, len(sorted_vpns)):
        gap = sorted_vpns[i] - (sorted_vpns[i - 1] + spans[i - 1])
        if gap > gap_threshold:
            gaps.append((gap, i))
    # Keep only the largest max_regions-1 breaks.
    gaps.sort(reverse=True)
    breaks = sorted(i for _, i in gaps[: max_regions - 1])
    regions: List[Tuple[int, int]] = []
    start_idx = 0
    for brk in breaks + [len(sorted_vpns)]:
        first = sorted_vpns[start_idx]
        last_end = sorted_vpns[brk - 1] + spans[brk - 1]
        regions.append((first, last_end - first))
        start_idx = brk
    return regions
