"""Spline-point estimation for the cost model (paper section 4.2.3).

The cost model needs a quick estimate of how many children a node should
have.  Following RadixSpline [Kipf et al. 2020], we compute *spline
points*: a greedy error-bounded piecewise-linear approximation of the
key CDF.  Each spline point starts a new linear segment; the number of
segments measures the complexity of the key distribution inside the
node, and the paper uses it as the seed value around which the cost
model searches (±2).
"""

from __future__ import annotations

from typing import List, Sequence


def spline_points(keys: Sequence[int], max_error: int = 32) -> List[int]:
    """Greedy one-pass spline over sorted ``keys``.

    Returns the indexes (into ``keys``) of the spline knots.  A knot is
    placed whenever extending the current linear segment would let some
    covered key's predicted position drift more than ``max_error`` slots
    from its true position.  The algorithm is the classic shrinking-cone
    construction: maintain the feasible slope interval for the segment
    and cut when it empties.
    """
    n = len(keys)
    if n == 0:
        return []
    if n <= 2:
        return [0] if n == 1 else [0, n - 1]

    knots = [0]
    anchor_idx = 0
    anchor_key = keys[0]
    lo_slope = float("-inf")
    hi_slope = float("inf")
    for i in range(1, n):
        dx = keys[i] - anchor_key
        dy = i - anchor_idx
        if dx == 0:
            continue
        # Feasible slopes keep this point within +-max_error positions.
        cand_lo = (dy - max_error) / dx
        cand_hi = (dy + max_error) / dx
        new_lo = max(lo_slope, cand_lo)
        new_hi = min(hi_slope, cand_hi)
        if new_lo > new_hi:
            # Cone collapsed: start a new segment at the previous point.
            knots.append(i - 1)
            anchor_idx = i - 1
            anchor_key = keys[i - 1]
            dx = keys[i] - anchor_key
            if dx > 0:
                lo_slope = (1 - max_error) / dx
                hi_slope = (1 + max_error) / dx
            else:
                lo_slope, hi_slope = float("-inf"), float("inf")
        else:
            lo_slope, hi_slope = new_lo, new_hi
    if knots[-1] != n - 1:
        knots.append(n - 1)
    return knots


def num_segments(keys: Sequence[int], max_error: int = 32) -> int:
    """Number of linear segments needed to cover ``keys``.

    This is the cost model's estimate of the useful child count for a
    node (the paper evaluates child counts within ±2 of this value).
    """
    pts = spline_points(keys, max_error)
    return max(1, len(pts) - 1)
