"""Q44.20 fixed-point arithmetic (paper section 4.5).

LVM quantizes every learned-model parameter into a signed 64-bit value
with a 44-bit integer part and a 20-bit fractional part.  The hardware
page walker then needs only one integer multiply and one add per node.
This module is the single place that knows the format; the rest of the
library passes around ``FixedPoint`` values or raw 64-bit words.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

FRACTION_BITS = 20
INTEGER_BITS = 44
TOTAL_BITS = INTEGER_BITS + FRACTION_BITS
SCALE = 1 << FRACTION_BITS

_MAX_RAW = (1 << (TOTAL_BITS - 1)) - 1
_MIN_RAW = -(1 << (TOTAL_BITS - 1))

#: Raw-value bounds of the Q44.20 format (public, for validation).
MAX_RAW = _MAX_RAW
MIN_RAW = _MIN_RAW

#: Largest / smallest *integer* exactly representable in Q44.20.
MAX_INT = _MAX_RAW >> FRACTION_BITS
MIN_INT = -(1 << (INTEGER_BITS - 1))

#: Float bounds of the format (for configuration validation).
MAX_VALUE = _MAX_RAW / SCALE
MIN_VALUE = _MIN_RAW / SCALE


class FixedPointOverflow(ReproError, ArithmeticError):
    """A value does not fit in the Q44.20 format."""


def _check(raw: int) -> int:
    if raw > _MAX_RAW or raw < _MIN_RAW:
        raise FixedPointOverflow(f"raw value {raw} outside Q44.20 range")
    return raw


@dataclass(frozen=True)
class FixedPoint:
    """An immutable Q44.20 number backed by a Python int.

    Arithmetic mirrors what a 64-bit fixed-point datapath would do:
    multiplication keeps the full double-width product and shifts right
    by the fraction width, truncating toward negative infinity (a
    hardware arithmetic shift).
    """

    raw: int

    # -- constructors ------------------------------------------------
    @staticmethod
    def from_float(value: float) -> "FixedPoint":
        return FixedPoint(_check(int(round(value * SCALE))))

    @staticmethod
    def from_int(value: int) -> "FixedPoint":
        return FixedPoint(_check(value << FRACTION_BITS))

    @staticmethod
    def from_raw(raw: int) -> "FixedPoint":
        return FixedPoint(_check(raw))

    # -- conversions -------------------------------------------------
    def to_float(self) -> float:
        return self.raw / SCALE

    def floor(self) -> int:
        """Integer part, rounding toward negative infinity.

        This is the "round-down" the paper uses to turn a model output
        into a child index or table slot.
        """
        return self.raw >> FRACTION_BITS

    # -- arithmetic --------------------------------------------------
    def __add__(self, other: "FixedPoint") -> "FixedPoint":
        return FixedPoint(_check(self.raw + other.raw))

    def __sub__(self, other: "FixedPoint") -> "FixedPoint":
        return FixedPoint(_check(self.raw - other.raw))

    def __mul__(self, other: "FixedPoint") -> "FixedPoint":
        return FixedPoint(_check((self.raw * other.raw) >> FRACTION_BITS))

    def mul_int(self, value: int) -> "FixedPoint":
        """Multiply by a plain integer (e.g. a VPN) without pre-scaling.

        ``a.mul_int(x)`` computes ``a * x`` exactly as the LVM walker
        does: the integer operand is not converted to fixed point first,
        so no precision is lost on large VPNs.
        """
        return FixedPoint(_check(self.raw * value))

    def __neg__(self) -> "FixedPoint":
        return FixedPoint(_check(-self.raw))

    def __lt__(self, other: "FixedPoint") -> bool:
        return self.raw < other.raw

    def __le__(self, other: "FixedPoint") -> bool:
        return self.raw <= other.raw

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FixedPoint({self.to_float():.6f})"


def linear_predict(slope_raw: int, intercept_raw: int, x: int) -> int:
    """Evaluate ``floor(a*x + b)`` with Q44.20 parameters and integer x.

    This is the exact computation of the LVM page-walker datapath: one
    64-bit multiply (slope × VPN), one add, one arithmetic right shift.
    Exposed as a free function because the simulator calls it millions
    of times; it avoids constructing FixedPoint objects on the hot path.
    """
    return (slope_raw * x + intercept_raw) >> FRACTION_BITS


def quantize(value: float) -> int:
    """Round a float model parameter to its Q44.20 raw representation."""
    return _check(int(round(value * SCALE)))


def saturate_raw(raw: int) -> int:
    """Clamp a raw value into the Q44.20 range (hardware saturation)."""
    if raw > _MAX_RAW:
        return _MAX_RAW
    if raw < _MIN_RAW:
        return _MIN_RAW
    return raw


def quantize_saturating(value: float) -> int:
    """Like :func:`quantize`, but saturating instead of raising.

    This is what a saturating fixed-point datapath does on overflow:
    the value pegs at the format's limit.  Used where an out-of-range
    parameter must degrade gracefully rather than abort (e.g. repairing
    a perturbed model during fault recovery).
    """
    return saturate_raw(int(round(value * SCALE)))


def from_float_saturating(value: float) -> "FixedPoint":
    """Saturating constructor companion of :meth:`FixedPoint.from_float`."""
    return FixedPoint(quantize_saturating(value))


MODEL_BYTES = 16
"""Storage for one model: 8-byte slope + 8-byte intercept (section 4.5)."""
