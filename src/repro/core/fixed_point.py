"""Q44.20 fixed-point arithmetic (paper section 4.5).

LVM quantizes every learned-model parameter into a signed 64-bit value
with a 44-bit integer part and a 20-bit fractional part.  The hardware
page walker then needs only one integer multiply and one add per node.
This module is the single place that knows the format; the rest of the
library passes around ``FixedPoint`` values or raw 64-bit words.
"""

from __future__ import annotations

from dataclasses import dataclass

FRACTION_BITS = 20
INTEGER_BITS = 44
TOTAL_BITS = INTEGER_BITS + FRACTION_BITS
SCALE = 1 << FRACTION_BITS

_MAX_RAW = (1 << (TOTAL_BITS - 1)) - 1
_MIN_RAW = -(1 << (TOTAL_BITS - 1))


class FixedPointOverflow(ArithmeticError):
    """A value does not fit in the Q44.20 format."""


def _check(raw: int) -> int:
    if raw > _MAX_RAW or raw < _MIN_RAW:
        raise FixedPointOverflow(f"raw value {raw} outside Q44.20 range")
    return raw


@dataclass(frozen=True)
class FixedPoint:
    """An immutable Q44.20 number backed by a Python int.

    Arithmetic mirrors what a 64-bit fixed-point datapath would do:
    multiplication keeps the full double-width product and shifts right
    by the fraction width, truncating toward negative infinity (a
    hardware arithmetic shift).
    """

    raw: int

    # -- constructors ------------------------------------------------
    @staticmethod
    def from_float(value: float) -> "FixedPoint":
        return FixedPoint(_check(int(round(value * SCALE))))

    @staticmethod
    def from_int(value: int) -> "FixedPoint":
        return FixedPoint(_check(value << FRACTION_BITS))

    @staticmethod
    def from_raw(raw: int) -> "FixedPoint":
        return FixedPoint(_check(raw))

    # -- conversions -------------------------------------------------
    def to_float(self) -> float:
        return self.raw / SCALE

    def floor(self) -> int:
        """Integer part, rounding toward negative infinity.

        This is the "round-down" the paper uses to turn a model output
        into a child index or table slot.
        """
        return self.raw >> FRACTION_BITS

    # -- arithmetic --------------------------------------------------
    def __add__(self, other: "FixedPoint") -> "FixedPoint":
        return FixedPoint(_check(self.raw + other.raw))

    def __sub__(self, other: "FixedPoint") -> "FixedPoint":
        return FixedPoint(_check(self.raw - other.raw))

    def __mul__(self, other: "FixedPoint") -> "FixedPoint":
        return FixedPoint(_check((self.raw * other.raw) >> FRACTION_BITS))

    def mul_int(self, value: int) -> "FixedPoint":
        """Multiply by a plain integer (e.g. a VPN) without pre-scaling.

        ``a.mul_int(x)`` computes ``a * x`` exactly as the LVM walker
        does: the integer operand is not converted to fixed point first,
        so no precision is lost on large VPNs.
        """
        return FixedPoint(_check(self.raw * value))

    def __neg__(self) -> "FixedPoint":
        return FixedPoint(_check(-self.raw))

    def __lt__(self, other: "FixedPoint") -> bool:
        return self.raw < other.raw

    def __le__(self, other: "FixedPoint") -> bool:
        return self.raw <= other.raw

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FixedPoint({self.to_float():.6f})"


def linear_predict(slope_raw: int, intercept_raw: int, x: int) -> int:
    """Evaluate ``floor(a*x + b)`` with Q44.20 parameters and integer x.

    This is the exact computation of the LVM page-walker datapath: one
    64-bit multiply (slope × VPN), one add, one arithmetic right shift.
    Exposed as a free function because the simulator calls it millions
    of times; it avoids constructing FixedPoint objects on the hot path.
    """
    return (slope_raw * x + intercept_raw) >> FRACTION_BITS


def quantize(value: float) -> int:
    """Round a float model parameter to its Q44.20 raw representation."""
    return _check(int(round(value * SCALE)))


MODEL_BYTES = 16
"""Storage for one model: 8-byte slope + 8-byte intercept (section 4.5)."""
