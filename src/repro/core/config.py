"""Tunable parameters of LVM (paper section 5.1).

Defaults mirror the paper exactly: cost-model weights x1=10, x2=5,
x3=200; depth limit 3; gapped-array scale 1.3; minimum insertion
distance 64 MB; collision-resolution bound C_err = 3 additional memory
accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.types import BASE_PAGE_SIZE

# Coverage-per-byte floors (section 4.2.3): nodes must cover at least
# as much address space per byte of index as "a radix page table at the
# same level".  Children created at the root compare against PD entries
# (an 8 B PD entry covers 2 MB: 256 KB/B, so a 16 B child must span at
# least 1024 base pages); children created deeper compare against radix
# leaf page tables (a 4 KB PT covers 2 MB: 512 B/B), which allows fine
# splits where the key distribution demands them while the cost model's
# size weight (x2) keeps the index from ballooning.
_RADIX_PD_COVERAGE_PER_BYTE = 256 << 10
_RADIX_PT_COVERAGE_PER_BYTE = 512


@dataclass
class LVMConfig:
    """Configuration for building and maintaining an LVM learned index."""

    # Cost-model weights (equation 1).
    x1: float = 10.0  # weight on index depth
    x2: float = 5.0  # weight on index size in bytes
    x3: float = 200.0  # weight on collision rate x accesses per collision

    # Hard limit on index depth: at most d_limit model indirections
    # before the PTE fetch (max 4 memory accesses total, like radix).
    d_limit: int = 3

    # Gapped-array scale factor: tables are sized ga_scale x #keys.
    ga_scale: float = 1.3

    # Minimum insertion distance for out-of-bounds inserts near the
    # edge, in bytes of virtual address space (64 MB in the paper).
    min_insert_distance_bytes: int = 64 << 20

    # Upper bound on additional memory accesses during collision
    # resolution (section 4.3.3, C_err).
    c_err: int = 3

    # Error bound handed to the spline-point estimator.
    spline_max_error: int = 32

    # Safety cap on the branching factor of a single node.
    max_children: int = 4096

    # Coverage-per-byte floor per depth (section 4.2.3 guardrail):
    # entry i applies to children created at depth i; the last entry
    # applies to all deeper levels.
    coverage_per_byte: List[int] = field(
        default_factory=lambda: [
            _RADIX_PD_COVERAGE_PER_BYTE,
            _RADIX_PT_COVERAGE_PER_BYTE,
        ]
    )

    # Slots per gapped-table cache line: 64 B line / 8 B slot.
    slots_per_line: int = 8

    @property
    def min_insert_distance_pages(self) -> int:
        return self.min_insert_distance_bytes // BASE_PAGE_SIZE

    @property
    def max_leaf_error_slots(self) -> int:
        """Largest tolerable training error, in table slots.

        A bounded search over ±E slots around the prediction touches at
        most ``ceil(2E / slots_per_line)`` cache lines beyond the first;
        bounding E by ``c_err * slots_per_line / 2`` keeps the worst
        case within C_err additional memory accesses.
        """
        return max(1, (self.c_err * self.slots_per_line) // 2)

    def min_coverage_per_byte(self, depth: int) -> int:
        """Coverage floor applied when creating children at ``depth``."""
        if depth < len(self.coverage_per_byte):
            return self.coverage_per_byte[depth]
        return self.coverage_per_byte[-1]

    def validate(self) -> None:
        # ConfigError subclasses ValueError, so callers that handled
        # ValueError keep working.
        from repro.core.fixed_point import MAX_INT
        from repro.errors import ConfigError
        from repro.types import BASE_PAGE_SIZE

        if self.d_limit < 1:
            raise ConfigError("d_limit must be at least 1")
        if self.ga_scale < 1.0:
            raise ConfigError("ga_scale must be >= 1.0 to leave gaps")
        if self.c_err < 1:
            raise ConfigError("c_err must be at least 1")
        if self.max_children < 2:
            raise ConfigError("max_children must allow branching")
        for name in ("x1", "x2", "x3"):
            if getattr(self, name) < 0:
                raise ConfigError(f"cost-model weight {name} cannot be negative")
        if self.slots_per_line < 1 or 64 % (self.slots_per_line or 1) != 0:
            raise ConfigError(
                f"slots_per_line={self.slots_per_line!r} must be a positive "
                "divisor of the 64 B cache line"
            )
        if self.min_insert_distance_bytes < BASE_PAGE_SIZE:
            raise ConfigError(
                "min_insert_distance_bytes="
                f"{self.min_insert_distance_bytes!r} must cover at least "
                f"one base page ({BASE_PAGE_SIZE} bytes)"
            )
        # Q44.20 contract: model outputs are slot indexes in Q44.20,
        # so every error/search bound must stay far inside the 44-bit
        # integer range or slope arithmetic saturates mid-leaf.
        if not (0 < self.spline_max_error <= MAX_INT):
            raise ConfigError(
                f"spline_max_error={self.spline_max_error!r} violates the "
                f"Q44.20 contract (must be in [1, {MAX_INT}])"
            )
        if self.max_leaf_error_slots > MAX_INT:
            raise ConfigError(
                "c_err x slots_per_line produces an error bound beyond the "
                "Q44.20 integer range"
            )
        if not self.coverage_per_byte:
            raise ConfigError("coverage_per_byte needs at least one floor")
        if any(floor <= 0 for floor in self.coverage_per_byte):
            raise ConfigError("coverage_per_byte floors must be positive")
