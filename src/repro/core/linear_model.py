"""Linear models for the LVM learned index (paper sections 4.2.1, 4.3.2).

Two flavours are needed:

* *internal-node models* evenly divide a parent's key range among its
  children, so the line is exact by construction;
* *leaf models* are fit with least-squares regression over
  ``(VPN, position)`` pairs, then scaled by ``ga_scale`` to spread the
  keys across a gapped array, and carry the max prediction error so
  lookups can bound their search (section 4.3.3).

All models store parameters in Q44.20 fixed point; predictions use only
integer arithmetic, matching the hardware datapath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.fixed_point import linear_predict, quantize


@dataclass(frozen=True)
class LinearModel:
    """``y = floor(a*x + b)`` with quantized Q44.20 parameters."""

    slope_raw: int
    intercept_raw: int

    @staticmethod
    def from_floats(slope: float, intercept: float) -> "LinearModel":
        return LinearModel(quantize(slope), quantize(intercept))

    def predict(self, x: int) -> int:
        return linear_predict(self.slope_raw, self.intercept_raw, x)

    @property
    def slope(self) -> float:
        return self.slope_raw / (1 << 20)

    @property
    def intercept(self) -> float:
        return self.intercept_raw / (1 << 20)

    def scaled(self, factor: float) -> "LinearModel":
        """Multiply the whole line by ``factor`` (gapped-array scaling)."""
        return LinearModel(
            int(round(self.slope_raw * factor)),
            int(round(self.intercept_raw * factor)),
        )


def fit_even_division(lo: int, hi: int, num_children: int) -> LinearModel:
    """Model mapping keys in ``[lo, hi)`` to child indexes ``0..n-1``.

    The children evenly divide the parent's key space (section 4.3.2),
    so the relationship is perfectly linear: ``child = (x - lo) * n /
    (hi - lo)``.  No regression is needed.
    """
    if hi <= lo:
        raise ValueError(f"empty key range [{lo}, {hi})")
    if num_children < 1:
        raise ValueError("need at least one child")
    slope = num_children / (hi - lo)
    intercept = -lo * slope
    return LinearModel.from_floats(slope, intercept)


def fit_least_squares(keys: Sequence[int]) -> LinearModel:
    """Least-squares fit of position-in-sorted-order against key.

    ``keys`` must be sorted ascending.  Returns the line minimizing the
    squared error of ``position = a*key + b``.  Uses plain Python
    accumulation (exact integers) to avoid float trouble with 52-bit
    VPNs before the final division.
    """
    n = len(keys)
    if n == 0:
        raise ValueError("cannot fit a model to zero keys")
    if n == 1:
        return LinearModel.from_floats(0.0, 0.0)
    # Center keys at their first element so the sums stay small enough
    # for exact float math; shift the intercept back afterwards.
    base = keys[0]
    sum_x = sum_xx = sum_xy = 0
    sum_y = n * (n - 1) // 2
    for pos, key in enumerate(keys):
        x = key - base
        sum_x += x
        sum_xx += x * x
        sum_xy += x * pos
    denom = n * sum_xx - sum_x * sum_x
    if denom == 0:
        # All keys identical (cannot happen for valid VPN sets, but be
        # robust): map everything to position 0.
        return LinearModel.from_floats(0.0, 0.0)
    slope = (n * sum_xy - sum_x * sum_y) / denom
    intercept = (sum_y - slope * sum_x) / n - slope * base
    return LinearModel.from_floats(slope, intercept)


def max_abs_error(model: LinearModel, keys: Sequence[int]) -> int:
    """Largest |predicted - actual| position over the sorted keys."""
    worst = 0
    for pos, key in enumerate(keys):
        err = abs(model.predict(key) - pos)
        if err > worst:
            worst = err
    return worst
