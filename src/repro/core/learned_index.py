"""The LVM learned index: build, train, lookup, insert (paper section 4).

The index is a shallow hierarchy of linear models.  Internal nodes
route a VPN to one of their children (which evenly divide the parent's
key range); leaf nodes predict the slot of the translation entry inside
their private gapped page table.  Training is driven by the cost model
(section 4.2.3); insertions use the minimum-insertion-distance and
rescaling techniques of section 4.3.4 to avoid retraining; multiple
page sizes share one structure via slope encoding (section 4.4).

The authoritative set of live mappings is kept alongside the learned
structure (the OS keeps the equivalent in its VMA/rmap metadata); it is
consulted only for rebuilds, never on the lookup path.
"""

from __future__ import annotations

import time
from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.config import LVMConfig
from repro.core.cost_model import choose_branching, plan_leaf
from repro.core.fixed_point import MODEL_BYTES
from repro.core.gapped_page_table import GappedPageTable, GPTFullError
from repro.core.linear_model import fit_even_division
from repro.core.rebase import IdentityRebaser
from repro.core.nodes import (
    InternalNode,
    LeafNode,
    Node,
    assign_offsets,
    iter_nodes,
    leaf_nodes,
    tree_depth,
)
from repro.errors import DuplicateMappingError, RecoveryExhaustedError
from repro.mem.allocator import BumpAllocator, OutOfPhysicalMemory, PhysicalAllocator
from repro.types import PTE, PTE_SIZE, TranslationError


@dataclass
class LVMWalk:
    """Trace of one learned-index lookup, for the hardware walker.

    ``node_accesses`` lists (level, offset, paddr) for every model
    visited (candidates for LWC hits); ``pte_line_paddrs`` lists the
    gapped-table cache lines fetched — the first is the translation
    access itself, the rest are collision-resolution accesses.
    """

    pte: Optional[PTE]
    node_accesses: List[Tuple[int, int, int]]
    pte_line_paddrs: List[int]
    # True when the degradation ladder had to engage (corruption or a
    # desynchronized model); the extra lines it touched are included in
    # ``pte_line_paddrs`` so the walker charges their full cost.
    recovered: bool = False

    @property
    def hit(self) -> bool:
        return self.pte is not None

    @property
    def collided(self) -> bool:
        return len(self.pte_line_paddrs) > 1

    @property
    def extra_accesses(self) -> int:
        return max(0, len(self.pte_line_paddrs) - 1)

    @property
    def total_memory_accesses(self) -> int:
        return len(self.node_accesses) + len(self.pte_line_paddrs)


@dataclass
class LVMStats:
    """Counters characterizing the learned index (paper section 7.3)."""

    builds: int = 0
    full_rebuilds: int = 0
    local_retrains: int = 0
    rescales: int = 0
    lwc_flushes: int = 0
    inserts: int = 0
    removes: int = 0
    lookups: int = 0
    collisions: int = 0
    extra_pte_accesses: int = 0
    error_bound_violations: int = 0
    build_times_s: List[float] = field(default_factory=list)
    retrain_times_s: List[float] = field(default_factory=list)
    management_time_s: float = 0.0
    # Degradation-ladder counters (fault recovery).  Each rung is also
    # reflected in the priced counters above (``local_retrains`` /
    # ``full_rebuilds``) so the cost model charges the repair work.
    recovered_scans: int = 0
    recovered_retrains: int = 0
    recovered_rebuilds: int = 0
    corrupt_entries_detected: int = 0
    alloc_retries: int = 0
    rescale_fallback_rebuilds: int = 0

    @property
    def recoveries(self) -> int:
        """Total degradation-ladder engagements."""
        return (
            self.recovered_scans
            + self.recovered_retrains
            + self.recovered_rebuilds
        )

    @property
    def collision_rate(self) -> float:
        return self.collisions / self.lookups if self.lookups else 0.0

    @property
    def avg_extra_accesses_per_collision(self) -> float:
        return self.extra_pte_accesses / self.collisions if self.collisions else 0.0


class LearnedIndex:
    """LVM's learned index over the virtual address space of a process."""

    def __init__(
        self,
        allocator: Optional[PhysicalAllocator] = None,
        config: Optional[LVMConfig] = None,
        rebaser=None,
    ):
        self.allocator: PhysicalAllocator = allocator or BumpAllocator()
        self.config = config or LVMConfig()
        self.config.validate()
        # ASLR rebasing (section 5.2): all index-internal keys are
        # compact VPNs produced by the rebaser; entries keep real VPNs.
        self.rebaser = rebaser or IdentityRebaser()
        self.root: Optional[Node] = None
        self.level_bases: List[int] = []
        self.level_counts: List[int] = []
        self.stats = LVMStats()
        self._mappings: Dict[int, PTE] = {}
        self._sorted_vpns: List[int] = []
        self._level_allocs: List[Tuple[int, int]] = []
        # id(table) -> (table, paddr, bytes); the table reference keeps
        # the id unique for as long as the allocation is tracked.
        self._table_allocs: Dict[int, Tuple[GappedPageTable, int, int]] = {}

    # ------------------------------------------------------------------
    # Construction and training (sections 4.3.1 / 4.3.2)
    # ------------------------------------------------------------------
    def bulk_build(self, ptes: Iterable[PTE]) -> None:
        """Initialize the index over an existing set of mappings.

        The OS calls this when mapping the first page(s) of a process
        (section 4.3.1).
        """
        self._mappings = {}
        for pte in ptes:
            if pte.vpn in self._mappings:
                raise DuplicateMappingError(
                    f"duplicate mapping for VPN {pte.vpn:#x}"
                )
            self._mappings[pte.vpn] = pte
        self._sorted_vpns = sorted(self._mappings)
        self._rebuild(initial=True)

    def _rebuild(self, initial: bool = False) -> None:
        start = time.perf_counter()
        self._release_structures()
        if not self._mappings:
            self.root = None
            self.level_bases = []
            self.level_counts = []
            return
        rebase = self.rebaser.rebase
        vpns = np.array([rebase(v) for v in self._sorted_vpns], dtype=np.int64)
        ends = np.array(
            [
                rebase(v) + self._mappings[v].page_size.pages_4k
                for v in self._sorted_vpns
            ],
            dtype=np.int64,
        )
        ptes = [self._mappings[v] for v in self._sorted_vpns]
        lo = int(vpns[0])
        hi = int(ends[-1])
        compact_span = getattr(self.rebaser, "compact_span", None)
        if compact_span is not None:
            # Cover whole rebaser slots so the root's even division
            # lands children exactly on region boundaries.
            lo = 0
            hi = max(hi, compact_span)
        self.root = self._train_node(vpns, ends, ptes, lo, hi, depth=0)
        self.level_counts = assign_offsets(self.root)
        self._allocate_levels()
        elapsed = time.perf_counter() - start
        self.stats.management_time_s += elapsed
        if initial:
            self.stats.builds += 1
            self.stats.build_times_s.append(elapsed)
        else:
            self.stats.full_rebuilds += 1
            self.stats.retrain_times_s.append(elapsed)
            self.stats.lwc_flushes += 1

    def _train_node(
        self,
        eff_keys: np.ndarray,
        eff_ends: np.ndarray,
        ptes: List[PTE],
        lo: int,
        hi: int,
        depth: int,
    ) -> Node:
        """Recursively train the node covering keys in [lo, hi)."""
        max_table = self.allocator.max_contiguous_bytes()
        # At the root, hint the branching with the rebased region count
        # so even division can land children on region boundaries.
        hint = getattr(self.rebaser, "num_regions", None) if depth == 0 else None
        decision = choose_branching(
            eff_keys, eff_ends, lo, hi, depth, self.config, max_table, hint=hint
        )
        if decision.make_leaf and decision.leaf_plan is not None:
            plan = decision.leaf_plan
            if not plan.within_error_bound and depth + 1 < self.config.d_limit:
                # Section 4.3.3: boost the collision weight at the
                # parent decision until the error bound is satisfiable.
                for boost in (10.0, 100.0):
                    decision = choose_branching(
                        eff_keys, eff_ends, lo, hi, depth, self.config,
                        max_table, x3_boost=boost,
                    )
                    if not decision.make_leaf:
                        break
        if decision.make_leaf:
            return self._build_leaf(eff_keys, eff_ends, ptes, lo, hi, depth)
        # Build the subtree; if a descendant leaf could not satisfy the
        # error bound (typically a child straddling a density boundary,
        # forced into a leaf at the depth limit), go back to *this*
        # node, boost the collision weight, and re-partition at a finer
        # granularity (section 4.3.3's backtracking).  The last attempt
        # is accepted even if a (now much smaller) degraded leaf
        # remains — the guardrails win on truly pathological key sets.
        node = self._build_internal(
            eff_keys, eff_ends, ptes, lo, hi, depth, decision.num_children
        )
        for boost in (10.0, 100.0):
            degraded_keys = sum(
                leaf.num_keys for leaf in leaf_nodes(node) if leaf.degraded
            )
            # Backtrack only while the degraded region is significant:
            # a residual boundary leaf holding a handful of keys is not
            # worth rebuilding every ancestor over.
            if degraded_keys <= max(64, len(eff_keys) // 100):
                return node
            retry = choose_branching(
                eff_keys, eff_ends, lo, hi, depth, self.config,
                max_table, x3_boost=boost,
            )
            if retry.make_leaf or retry.num_children <= decision.num_children:
                break
            self._free_subtree_tables(node)
            decision = retry
            node = self._build_internal(
                eff_keys, eff_ends, ptes, lo, hi, depth, retry.num_children
            )
        return node

    def _free_subtree_tables(self, node: Node) -> None:
        """Release the gapped tables of a discarded subtree."""
        for leaf in leaf_nodes(node):
            entry = self._table_allocs.pop(id(leaf.table), None)
            if entry is not None:
                _table, paddr, nbytes = entry
                self.allocator.free(paddr, nbytes)

    def _build_leaf(
        self,
        eff_keys: np.ndarray,
        eff_ends: np.ndarray,
        ptes: List[PTE],
        lo: int,
        hi: int,
        depth: int,
    ) -> LeafNode:
        plan = plan_leaf(eff_keys, eff_ends, self.config)
        if not plan.within_error_bound:
            self.stats.error_bound_violations += 1
        table = self._alloc_table(plan.num_slots)
        leaf = LeafNode(
            lo=lo,
            hi=hi,
            model=plan.model,
            table=table,
            depth=depth,
            search_window=plan.max_window,
            num_keys=len(eff_keys),
        )
        # Well-behaved leaves keep placements within the C_err-derived
        # bound.  Leaves forced *past* the bound (depth limit reached
        # on a pathological key set) are bulk-packed in key order in
        # O(n); their widened search window plus the bounded binary
        # search keeps lookups correct and logarithmic.
        if not plan.within_error_bound:
            leaf.degraded = True
            leaf.sorted_layout = True
            predictions = [leaf.model.predict(k) for k in eff_keys.tolist()]
            try:
                table.bulk_place(predictions, ptes)
            except GPTFullError:
                # Predictions so skewed that packing ran off the end:
                # pack sequentially from slot 0; the tracked
                # displacement widens the window and the binary search
                # stays logarithmic.
                table.clear()
                table.bulk_place([0] * len(ptes), ptes)
            return leaf
        cap = max(self.config.max_leaf_error_slots, plan.max_window)
        cap += self.config.slots_per_line
        try:
            for eff_key, pte in zip(eff_keys.tolist(), ptes):
                predicted = leaf.model.predict(eff_key)
                table.insert(predicted, pte, cap)
        except GPTFullError:
            # The plan's collision estimate missed a local pile-up
            # (clustered collisions cascade farther than the per-slot
            # estimate).  Re-place by rightward packing and record the
            # event as an error-bound violation.
            self.stats.error_bound_violations += 1
            leaf.degraded = True
            leaf.sorted_layout = True
            table.clear()
            predictions = [leaf.model.predict(k) for k in eff_keys.tolist()]
            table.bulk_place(predictions, ptes)
        return leaf

    def _build_internal(
        self,
        eff_keys: np.ndarray,
        eff_ends: np.ndarray,
        ptes: List[PTE],
        lo: int,
        hi: int,
        depth: int,
        num_children: int,
    ) -> InternalNode:
        model = fit_even_division(lo, hi, num_children)
        node = InternalNode(lo=lo, hi=hi, model=model, depth=depth)
        bounds = [node.child_lower_bound(c) for c in range(num_children)]
        bounds.append(hi)
        split_at = np.searchsorted(eff_keys, bounds)
        for c in range(num_children):
            child_lo, child_hi = bounds[c], bounds[c + 1]
            start, stop = int(split_at[c]), int(split_at[c + 1])
            child_keys = eff_keys[start:stop]
            child_ends = np.minimum(eff_ends[start:stop], child_hi)
            child_ptes = ptes[start:stop]
            # A mapping starting in an earlier child may extend into
            # this one; it contributes a boundary-clipped duplicate
            # entry (its PTE object is shared across the leaves).
            if start > 0 and int(eff_ends[start - 1]) > child_lo:
                child_keys = np.concatenate(([child_lo], child_keys))
                child_ends = np.concatenate(
                    ([min(int(eff_ends[start - 1]), child_hi)], child_ends)
                )
                child_ptes = [ptes[start - 1]] + child_ptes
            node.children.append(
                self._train_node(
                    child_keys, child_ends, child_ptes, child_lo, child_hi, depth + 1
                )
            )
        return node

    # ------------------------------------------------------------------
    # Physical layout
    # ------------------------------------------------------------------
    def _alloc_table(self, num_slots: int) -> GappedPageTable:
        """Allocate a gapped table, retrying with backoff on failure.

        A failed request (genuine fragmentation or an injected buddy
        fault) is retried at progressively smaller contiguity — LVM
        only ever *needs* base-page contiguity, so a smaller table
        costs collisions, never correctness.  The first genuine
        failure falls back to the largest block that fits (the
        historical behavior); later failures halve the request down to
        an 8-slot floor before giving up.
        """
        nbytes = num_slots * PTE_SIZE
        floor = PTE_SIZE * 8
        attempts = 0
        while True:
            try:
                paddr = self.allocator.alloc(nbytes)
                break
            except OutOfPhysicalMemory:
                attempts += 1
                if attempts > 24:
                    raise
                self.stats.alloc_retries += 1
                avail = self.allocator.max_contiguous_bytes()
                if avail >= nbytes:
                    # Transient (injected) failure: retry unchanged.
                    continue
                if attempts == 1:
                    nbytes = max(floor, avail)
                elif nbytes > floor:
                    nbytes = max(floor, nbytes // 2)
                else:
                    raise
        num_slots = nbytes // PTE_SIZE
        table = GappedPageTable(num_slots, paddr)
        self._table_allocs[id(table)] = (table, paddr, nbytes)
        return table

    def _alloc_with_retry(self, nbytes: int, attempts: int = 8) -> int:
        """Retry transient (injected) allocation failures.

        Model-level arrays and table growth cannot shrink, so a
        genuine shortfall — the largest contiguous block is smaller
        than the request — propagates immediately, exactly as before
        fault injection existed.
        """
        for _ in range(attempts):
            try:
                return self.allocator.alloc(nbytes)
            except OutOfPhysicalMemory:
                if self.allocator.max_contiguous_bytes() < nbytes:
                    raise
                self.stats.alloc_retries += 1
        raise OutOfPhysicalMemory(
            f"allocation of {nbytes} bytes kept failing after {attempts} attempts"
        )

    def _allocate_levels(self) -> None:
        self.level_bases = []
        self._level_allocs = []
        for count in self.level_counts:
            nbytes = max(MODEL_BYTES, count * MODEL_BYTES)
            paddr = self._alloc_with_retry(nbytes)
            self.level_bases.append(paddr)
            self._level_allocs.append((paddr, nbytes))

    def _release_structures(self) -> None:
        for paddr, nbytes in self._level_allocs:
            self.allocator.free(paddr, nbytes)
        self._level_allocs = []
        for _table, paddr, nbytes in self._table_allocs.values():
            self.allocator.free(paddr, nbytes)
        self._table_allocs = {}
        self.root = None

    def node_paddr(self, level: int, offset: int) -> int:
        return self.level_bases[level] + offset * MODEL_BYTES

    # ------------------------------------------------------------------
    # Lookup (the hardware page walk, section 4.6.2)
    # ------------------------------------------------------------------
    def lookup(self, vpn: int) -> LVMWalk:
        """Translate a 4 KB VPN; queries inside a large page round down
        to the large page's entry (section 4.4).

        When the bounded probe misses or trips an integrity check, the
        degradation ladder (:meth:`_recover`) takes over: leaf scan →
        leaf retrain → full rebuild, every extra memory touch reported
        through the walk so the hardware walker charges it.
        """
        self.stats.lookups += 1
        if self.root is None:
            return LVMWalk(None, [], [])
        key = self.rebaser.rebase(vpn)
        leaf, node_accesses = self._route(key)
        probe = self._leaf_probe(leaf, key, vpn)
        if probe.pte is None or probe.corrupt_seen:
            walk = self._recover(leaf, key, vpn, node_accesses, probe)
        else:
            walk = LVMWalk(probe.pte, node_accesses, probe.line_paddrs)
        if walk.hit and walk.collided and not walk.recovered:
            self.stats.collisions += 1
            self.stats.extra_pte_accesses += walk.extra_accesses
        return walk

    def _route(self, key: int) -> Tuple[LeafNode, List[Tuple[int, int, int]]]:
        """Walk the internal models down to the leaf covering ``key``,
        recording every node access for the hardware walker."""
        node_accesses: List[Tuple[int, int, int]] = []
        node = self.root
        while isinstance(node, InternalNode):
            node_accesses.append(
                (node.depth, node.offset, self.node_paddr(node.depth, node.offset))
            )
            node = node.children[node.route(key)]
        leaf: LeafNode = node
        node_accesses.append(
            (leaf.depth, leaf.offset, self.node_paddr(leaf.depth, leaf.offset))
        )
        return leaf, node_accesses

    def _leaf_probe(self, leaf: LeafNode, key: int, vpn: int):
        """The bounded in-leaf search (first rung of the ladder)."""
        eff_key = key if key >= leaf.lo else leaf.lo
        predicted = leaf.predict_slot(eff_key)
        window = self._leaf_window(leaf)
        if leaf.sorted_layout:
            return leaf.table.lookup_sorted(predicted, vpn, window)
        return leaf.table.lookup(predicted, vpn, window)

    def _recover(self, leaf: LeafNode, key: int, vpn: int, node_accesses, probe) -> LVMWalk:
        """Graceful degradation after a failed or corrupt bounded probe.

        Rungs: exhaustive leaf scan → leaf retrain from the
        authoritative mapping set → full index rebuild.  The ladder
        engages only on *evidence* of damage — a tripped integrity
        check, or an authoritative mapping the probe should have found.
        A plain demand-fault miss returns unchanged, which keeps
        fault-free runs bit-identical to the no-injector baseline.
        """
        auth = self._covering_mapping(vpn)
        if not probe.corrupt_seen and auth is None:
            return LVMWalk(None, node_accesses, probe.line_paddrs)
        line_paddrs = list(probe.line_paddrs)
        # Rung 2: exhaustive scan of the leaf's table; every line it
        # touches is charged to this walk.
        scan = leaf.table.scan(vpn)
        self.stats.recovered_scans += 1
        line_paddrs.extend(scan.line_paddrs)
        self.stats.corrupt_entries_detected += leaf.table.corrupt_entry_count()
        pte = probe.pte if probe.pte is not None else scan.pte
        # Rung 3: retrain this leaf from the authoritative mappings,
        # evicting corrupted copies and refitting the desynchronized
        # model (priced through the usual local_retrains counter).
        repaired = self._repair_leaf(leaf)
        if pte is None and repaired:
            retry = self._leaf_probe(leaf, key, vpn)
            line_paddrs.extend(retry.line_paddrs)
            pte = retry.pte
        if not repaired or (pte is None and auth is not None):
            # Rung 4: full rebuild from the authoritative set.
            self._rebuild()
            self.stats.recovered_rebuilds += 1
            if self.root is not None:
                leaf, extra_nodes = self._route(key)
                node_accesses = node_accesses + extra_nodes
                retry = self._leaf_probe(leaf, key, vpn)
                line_paddrs.extend(retry.line_paddrs)
                pte = retry.pte
        if pte is None and auth is not None:
            raise RecoveryExhaustedError(
                f"VPN {vpn:#x} has an authoritative mapping but remained "
                "unreachable after a full index rebuild"
            )
        return LVMWalk(pte, node_accesses, line_paddrs, recovered=True)

    def _covering_mapping(self, vpn: int) -> Optional[PTE]:
        """The authoritative mapping covering ``vpn``, if any."""
        from bisect import bisect_right

        vpns = self._sorted_vpns
        idx = bisect_right(vpns, vpn) - 1
        if idx < 0:
            return None
        pte = self._mappings[vpns[idx]]
        return pte if pte.covers(vpn) else None

    def _auth_entries_in(self, lo: int, hi: int) -> List[PTE]:
        """Authoritative mappings whose rebased range intersects
        ``[lo, hi)``, in VPN order.

        The rebased view of ``_sorted_vpns`` is itself sorted (the
        build path already relies on that), but :mod:`bisect` cannot
        search through a key function on this Python, so the left edge
        is found with a manual binary search.
        """
        rebase = self.rebaser.rebase
        vpns = self._sorted_vpns
        low, high = 0, len(vpns)
        while low < high:
            mid = (low + high) // 2
            if rebase(vpns[mid]) < lo:
                low = mid + 1
            else:
                high = mid
        start = low
        # A mapping starting just left of ``lo`` may extend into it.
        if start > 0:
            prev = self._mappings[vpns[start - 1]]
            if rebase(prev.vpn) + prev.page_size.pages_4k > lo:
                start -= 1
        out: List[PTE] = []
        for i in range(start, len(vpns)):
            pte = self._mappings[vpns[i]]
            if rebase(pte.vpn) >= hi:
                break
            out.append(pte)
        return out

    def _repair_leaf(self, leaf: LeafNode) -> bool:
        """Rebuild one leaf from the authoritative mapping set.

        Corrupted table copies are discarded wholesale (the originals
        in ``_mappings`` are never damaged) and the model is refit.
        Returns False when one linear model can no longer describe the
        leaf's keys, in which case the caller escalates to a rebuild.
        """
        entries = self._auth_entries_in(leaf.lo, leaf.hi)
        ok = self._local_retrain(leaf, entries=entries)
        if ok:
            self.stats.recovered_retrains += 1
        return ok

    def _leaf_window(self, leaf: LeafNode) -> int:
        return leaf.search_window + leaf.table.max_displacement + 2

    def find(self, vpn: int) -> Optional[PTE]:
        """Software lookup without walk accounting (OS accesses to the
        accessed/dirty bits, permission changes — section 5.2)."""
        if self.root is None:
            return None
        key = self.rebaser.rebase(vpn)
        leaf = self._leaf_for(key)
        result = self._leaf_probe(leaf, key, vpn)
        if result.pte is not None and not result.corrupt_seen:
            return result.pte
        # The learned structure may be damaged; the OS answers from its
        # authoritative records and repairs the leaf in place.
        auth = self._covering_mapping(vpn)
        if result.corrupt_seen or (result.pte is None and auth is not None):
            if not self._repair_leaf(leaf):
                self._rebuild()
                self.stats.recovered_rebuilds += 1
        return result.pte if result.pte is not None else auth

    # ------------------------------------------------------------------
    # Insertion (section 4.3.4)
    # ------------------------------------------------------------------
    def insert(self, pte: PTE) -> None:
        start_time = time.perf_counter()
        try:
            self._insert(pte)
        finally:
            self.stats.management_time_s += time.perf_counter() - start_time

    def _insert(self, pte: PTE) -> None:
        if pte.vpn in self._mappings:
            raise DuplicateMappingError(f"VPN {pte.vpn:#x} is already mapped")
        self.stats.inserts += 1
        self._mappings[pte.vpn] = pte
        insort(self._sorted_vpns, pte.vpn)
        if self.root is None:
            self._rebuild(initial=self.stats.builds == 0)
            return
        start = self.rebaser.rebase(pte.vpn)
        end = start + pte.page_size.pages_4k
        root_lo, root_hi = self.root.lo, self.root.hi
        min_dist = self.config.min_insert_distance_pages
        if end > root_hi:
            if start < root_hi + min_dist:
                # Out-of-bounds insert close to the edge: expand the key
                # range by at least the minimum insertion distance and
                # rescale the rightmost gapped table (no retraining).
                self._expand_right(max(root_hi + min_dist, end))
            else:
                # Away from the edge: the paper opts for a full rebuild.
                self._rebuild()
                return
        elif start < root_lo:
            # Leftward growth cannot reuse the unchanged models (slots
            # would go negative), so it is treated as away-from-edge.
            self._rebuild()
            return
        self._place(pte, start, end)

    def _place(self, pte: PTE, start: int, end: int) -> None:
        """Insert ``pte`` into every leaf its range intersects."""
        query = start
        while query < end:
            leaf = self._leaf_for(query)
            eff_key = max(start, leaf.lo)
            interior = leaf.model.predict(min(end, leaf.hi) - 1) - leaf.model.predict(
                eff_key
            )
            if interior > leaf.search_window:
                leaf.search_window = interior
            predicted = leaf.model.predict(eff_key)
            cap = (
                leaf.table.num_slots
                if leaf.degraded
                else self.config.max_leaf_error_slots
            )
            # A point insert can break the key-ordered layout binary
            # search relies on; revert that leaf to linear lookups.
            leaf.sorted_layout = False
            try:
                leaf.table.insert(predicted, pte, cap)
            except GPTFullError:
                if not self._local_retrain(leaf, pending=pte):
                    self._rebuild()
                    return
            if leaf.hi >= end or leaf.hi <= query:
                break
            query = leaf.hi

    def _leaf_for(self, vpn: int) -> LeafNode:
        node = self.root
        while isinstance(node, InternalNode):
            node = node.children[node.route(vpn)]
        return node

    def _rebased_eff_arrays(self, leaf: LeafNode, entries: List[PTE]):
        rebase = self.rebaser.rebase
        eff_keys = np.array(
            [max(rebase(p.vpn), leaf.lo) for p in entries], dtype=np.int64
        )
        eff_ends = np.array(
            [
                min(rebase(p.vpn) + p.page_size.pages_4k, leaf.hi)
                for p in entries
            ],
            dtype=np.int64,
        )
        return eff_keys, eff_ends

    def _leaf_entries(self, leaf: LeafNode) -> List[PTE]:
        seen = set()
        ordered: List[PTE] = []
        for _, entry in leaf.table.entries():
            # Corrupted table copies must never propagate into a refit;
            # the authoritative originals are re-placed by _repair_leaf.
            if not entry.is_intact():
                continue
            if id(entry) not in seen:
                seen.add(id(entry))
                ordered.append(entry)
        ordered.sort(key=lambda p: p.vpn)
        return ordered

    def _local_retrain(
        self,
        leaf: LeafNode,
        pending: Optional[PTE] = None,
        entries: Optional[List[PTE]] = None,
    ) -> bool:
        """Refit only this leaf's model and re-place its entries
        (within-bounds insert slow path, section 4.3.4).  ``pending`` is
        a not-yet-placed entry included in the refit; ``entries``
        overrides the source set (recovery retrains pass the
        authoritative mappings instead of the table's own, possibly
        damaged, contents).  Returns False when the leaf cannot absorb
        its keys, forcing a full rebuild."""
        start_time = time.perf_counter()
        entries = (
            self._leaf_entries(leaf) if entries is None else sorted(
                entries, key=lambda p: p.vpn
            )
        )
        if pending is not None:
            entries.append(pending)
            entries.sort(key=lambda p: p.vpn)
        if not entries:
            # Nothing intact remains in range: clearing the table *is*
            # the repair (the model stays, predicting into empty slots).
            leaf.table.clear()
            leaf.num_keys = 0
            leaf.degraded = False
            leaf.sorted_layout = False
            self.stats.local_retrains += 1
            self.stats.retrain_times_s.append(time.perf_counter() - start_time)
            self.stats.lwc_flushes += 1
            return True
        eff_keys, eff_ends = self._rebased_eff_arrays(leaf, entries)
        plan = plan_leaf(eff_keys, eff_ends, self.config)
        if not plan.within_error_bound:
            # One linear model can no longer describe this leaf's keys
            # within C_err; a full rebuild will re-split the key space.
            self.stats.retrain_times_s.append(time.perf_counter() - start_time)
            return False
        # Provision the table up to the leaf's (already expanded) key
        # range so edge-driven growth keeps landing in free slots —
        # this is the "creates page tables ahead of time" part of the
        # minimum-insertion-distance technique (section 4.3.4).  The
        # provision is capped one insertion distance past the last key
        # so a sparse hole on the right cannot bloat the table.
        last_key = int(eff_keys[-1]) if len(eff_keys) else leaf.lo
        horizon = min(leaf.hi, last_key + self.config.min_insert_distance_pages)
        provision = plan.model.predict(horizon) + self.config.slots_per_line + 1
        if provision > plan.num_slots:
            plan.num_slots = provision
        if plan.num_slots > leaf.table.num_slots:
            old_table, old_paddr, old_bytes = self._table_allocs.pop(id(leaf.table))
            try:
                new_table = self._alloc_table(plan.num_slots)
            except OutOfPhysicalMemory:
                self._table_allocs[id(old_table)] = (old_table, old_paddr, old_bytes)
                return False
            self.allocator.free(old_paddr, old_bytes)
            leaf.table = new_table
        else:
            leaf.table.clear()
        leaf.model = plan.model
        leaf.search_window = plan.max_window
        leaf.num_keys = len(entries)
        leaf.degraded = False
        leaf.sorted_layout = False
        cap = (
            max(self.config.max_leaf_error_slots, plan.max_window)
            + self.config.slots_per_line
        )
        try:
            for eff_key, pte in zip(eff_keys.tolist(), entries):
                leaf.table.insert(leaf.model.predict(eff_key), pte, cap)
        except GPTFullError:
            return False
        finally:
            elapsed = time.perf_counter() - start_time
            self.stats.local_retrains += 1
            self.stats.retrain_times_s.append(elapsed)
            # The leaf's model changed: its LWC entry must be flushed.
            self.stats.lwc_flushes += 1
        return True

    def _expand_right(self, new_hi: int) -> None:
        """Grow the key range along the right spine without retraining
        (section 4.3.4, Figure 5)."""
        self.stats.rescales += 1
        node = self.root
        while isinstance(node, InternalNode):
            node.hi = new_hi
            node = node.children[-1]
        leaf: LeafNode = node
        leaf.hi = new_hi
        needed = leaf.model.predict(new_hi) + self.config.slots_per_line + 1
        extra = needed - leaf.table.num_slots
        if extra > 0:
            old_table, old_paddr, old_bytes = self._table_allocs.pop(id(leaf.table))
            new_bytes = (leaf.table.num_slots + extra) * PTE_SIZE
            try:
                new_paddr = self._alloc_with_retry(new_bytes)
            except OutOfPhysicalMemory:
                # Cannot grow contiguously: fall back to a rebuild,
                # which re-splits leaves to the available contiguity.
                self._table_allocs[id(old_table)] = (old_table, old_paddr, old_bytes)
                self.stats.rescale_fallback_rebuilds += 1
                self._rebuild()
                return
            self.allocator.free(old_paddr, old_bytes)
            leaf.table.expand(extra, new_paddr)
            self._table_allocs[id(leaf.table)] = (leaf.table, new_paddr, new_bytes)

    # ------------------------------------------------------------------
    # Removal (section 5.2, "Free")
    # ------------------------------------------------------------------
    def remove(self, vpn: int) -> PTE:
        """Unmap the mapping whose *first* VPN is ``vpn``.

        Clears the table slot(s) but keeps the model and the gap — the
        OS expects nearby reuse (section 5.2).
        """
        start_time = time.perf_counter()
        pte = self._mappings.pop(vpn, None)
        if pte is None:
            raise TranslationError(f"VPN {vpn:#x} is not mapped")
        self.stats.removes += 1
        idx = self._index_of_sorted(vpn)
        self._sorted_vpns.pop(idx)
        start = self.rebaser.rebase(vpn)
        end = start + pte.page_size.pages_4k
        query = start
        while query < end:
            leaf = self._leaf_for(query)
            eff_key = max(start, leaf.lo)
            try:
                slot = leaf.table.find_slot(
                    leaf.model.predict(eff_key), vpn, self._leaf_window(leaf)
                )
                leaf.table.remove(slot)
            except KeyError:
                # The table copy is corrupted or the model has drifted.
                # The mapping is already gone from the authoritative
                # set, so retraining the leaf from it both repairs the
                # damage and completes the removal.
                if not self._repair_leaf(leaf):
                    self._rebuild()
                    self.stats.recovered_rebuilds += 1
                    self.stats.management_time_s += time.perf_counter() - start_time
                    return pte
            if leaf.hi >= end or leaf.hi <= query:
                break
            query = leaf.hi
        self.stats.management_time_s += time.perf_counter() - start_time
        return pte

    def _index_of_sorted(self, vpn: int) -> int:
        from bisect import bisect_left

        idx = bisect_left(self._sorted_vpns, vpn)
        if idx >= len(self._sorted_vpns) or self._sorted_vpns[idx] != vpn:
            raise TranslationError(f"VPN {vpn:#x} missing from sorted set")
        return idx

    # ------------------------------------------------------------------
    # Introspection (sections 7.3 / 7.4)
    # ------------------------------------------------------------------
    @property
    def num_mappings(self) -> int:
        return len(self._mappings)

    @property
    def index_size_bytes(self) -> int:
        """Total learned-index size: 16 bytes per node (Table 2)."""
        if self.root is None:
            return 0
        return sum(1 for _ in iter_nodes(self.root)) * MODEL_BYTES

    @property
    def depth(self) -> int:
        return tree_depth(self.root) if self.root is not None else 0

    @property
    def num_leaves(self) -> int:
        return len(leaf_nodes(self.root)) if self.root is not None else 0

    @property
    def table_bytes(self) -> int:
        """Total gapped-page-table footprint."""
        if self.root is None:
            return 0
        return sum(leaf.table.size_bytes for leaf in leaf_nodes(self.root))

    @property
    def min_required_bytes(self) -> int:
        """The absolute minimum page-table space: 8 B per mapping."""
        return len(self._mappings) * PTE_SIZE

    @property
    def memory_overhead_bytes(self) -> int:
        """Extra page-table space versus the minimum (section 7.3)."""
        return max(0, self.table_bytes - self.min_required_bytes)

    def mappings(self) -> List[PTE]:
        return [self._mappings[v] for v in self._sorted_vpns]

    def contains(self, vpn: int) -> bool:
        """Whether ``vpn`` starts a live mapping (authoritative set)."""
        return vpn in self._mappings

    # ------------------------------------------------------------------
    # Reclaim (section 7.3, "Memory Consumption")
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Rebuild the index to reclaim gapped-table space.

        Frees keep their slots so nearby allocations can reuse them
        (section 5.2); for workloads whose peak memory far exceeds
        steady state, "the OS can rebuild the index and reclaim unused
        space".  Returns the number of bytes reclaimed.
        """
        before = self.table_bytes
        self._rebuild()
        return max(0, before - self.table_bytes)
