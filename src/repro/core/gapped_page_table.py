"""Gapped page tables (paper section 4.2.2).

Each LVM leaf node owns a *gapped page table* (GPT): a small array of
8-byte translation-entry slots, sized ``ga_scale`` times the number of
keys it was trained over so that future insertions usually find an
empty slot exactly where the model predicts.  GPTs are allocated from
the physical allocator at whatever contiguity is available, so they are
the only physically-contiguous structures LVM needs — and they can be
as small as a single base page.

Slot accounting: a slot is 8 bytes, so a 64-byte cache line holds 8
slots.  Every operation reports the set of cache lines it touched; the
hardware walker turns those into memory accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.types import PTE, CACHE_LINE_SIZE, PTE_SIZE

SLOTS_PER_LINE = CACHE_LINE_SIZE // PTE_SIZE


class GPTFullError(ReproError):
    """No free slot exists within the allowed displacement bound."""


@dataclass
class GPTLookup:
    """Result of a bounded lookup in a gapped page table.

    ``line_paddrs`` lists the physical addresses of the cache lines the
    search touched, in probe order: the first is the predicted line (the
    single access of a collision-free translation), the rest are the
    additional accesses of collision resolution.

    ``corrupt_seen`` is True when any probed entry failed its integrity
    check — the walker's cue to engage the degradation ladder even if a
    (seemingly) matching entry was found.
    """

    pte: Optional[PTE]
    slot: int
    line_paddrs: List[int]
    corrupt_seen: bool = False

    @property
    def hit(self) -> bool:
        return self.pte is not None

    @property
    def lines_touched(self) -> int:
        return len(self.line_paddrs)


class GappedPageTable:
    """A gapped array of translation entries owned by one leaf node."""

    def __init__(self, num_slots: int, base_paddr: int):
        if num_slots < 1:
            raise ValueError("a gapped page table needs at least one slot")
        self.base_paddr = base_paddr
        self._slots: List[Optional[PTE]] = [None] * num_slots
        self.occupied = 0
        # Largest |actual - predicted| displacement of any live entry;
        # bounds every lookup's search window.
        self.max_displacement = 0

    # -- geometry ------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return len(self._slots)

    @property
    def size_bytes(self) -> int:
        return self.num_slots * PTE_SIZE

    def slot_paddr(self, slot: int) -> int:
        return self.base_paddr + slot * PTE_SIZE

    def line_of(self, slot: int) -> int:
        return self.slot_paddr(slot) // CACHE_LINE_SIZE

    def _clamp(self, slot: int) -> int:
        if slot < 0:
            return 0
        if slot >= self.num_slots:
            return self.num_slots - 1
        return slot

    # -- mutation ------------------------------------------------------
    def insert(self, predicted: int, pte: PTE, max_displacement: int) -> int:
        """Place ``pte`` at or near ``predicted``.

        Uses the paper's exponential search outward from the predicted
        slot to find the nearest free slot, but refuses placements
        farther than ``max_displacement`` (the caller then retrains the
        leaf instead, keeping the lookup search window sound).

        Returns the slot used.
        """
        center = self._clamp(predicted)
        if self._slots[center] is None:
            self._slots[center] = pte
            self.occupied += 1
            disp = abs(center - predicted)
            if disp > self.max_displacement:
                self.max_displacement = disp
            return center
        step = 1
        while step <= max_displacement:
            for slot in (center + step, center - step):
                if 0 <= slot < self.num_slots and self._slots[slot] is None:
                    self._slots[slot] = pte
                    self.occupied += 1
                    disp = abs(slot - predicted)
                    if disp > self.max_displacement:
                        self.max_displacement = disp
                    return slot
            step += 1
        raise GPTFullError(
            f"no free slot within {max_displacement} of predicted {predicted}"
        )

    def bulk_place(self, predictions, ptes) -> None:
        """Place sorted entries by rightward packing: entry i goes to
        ``max(prediction_i, previous_slot + 1)``.

        Used when a leaf is built *past* the error bound (degraded
        leaves at the guardrails): per-entry exponential search would
        cost O(n * displacement) there, while packing is O(n) and keeps
        entries in key order with the same worst-case displacement the
        search window already accounts for.
        """
        cursor = -1
        for predicted, pte in zip(predictions, ptes):
            slot = predicted if predicted > cursor else cursor + 1
            slot = self._clamp(slot)
            while slot < self.num_slots and self._slots[slot] is not None:
                slot += 1
            if slot >= self.num_slots:
                raise GPTFullError("bulk placement ran off the table")
            self._slots[slot] = pte
            self.occupied += 1
            cursor = slot
            disp = abs(slot - predicted)
            if disp > self.max_displacement:
                self.max_displacement = disp

    def remove(self, slot: int) -> PTE:
        pte = self._slots[slot]
        if pte is None:
            raise KeyError(f"slot {slot} is empty")
        # Section 5.2 "Free": the slot is cleared but the gap is kept so
        # later allocations can reuse it; the model is untouched.
        self._slots[slot] = None
        self.occupied -= 1
        return pte

    def expand(self, extra_slots: int, new_base_paddr: Optional[int] = None) -> None:
        """Grow the table for an out-of-bounds rescale (section 4.3.4).

        Existing entries keep their slots, so no retraining and no LWC
        or TLB flush is needed.  ``new_base_paddr`` lets the caller
        model a reallocation; slot *indexes* are what the model
        predicts, so moving the base is transparent to the model.
        """
        if extra_slots < 0:
            raise ValueError("cannot shrink a gapped page table")
        self._slots.extend([None] * extra_slots)
        if new_base_paddr is not None:
            self.base_paddr = new_base_paddr

    # -- lookup ----------------------------------------------------------
    def lookup(self, predicted: int, query_vpn: int, window: int) -> GPTLookup:
        """Find the entry translating ``query_vpn`` near ``predicted``.

        Implements the bounded collision-resolution search of section
        4.3.3, extended with the predecessor semantics of section 4.4:
        an entry matches if its mapping *covers* the query VPN, which
        rounds queries inside a huge page down to the huge page's entry.

        ``window`` bounds the scan (slots on each side).  The number of
        distinct cache lines touched is reported so the walker can
        account for every additional memory access.
        """
        center = self._clamp(predicted)
        seen = set()
        line_paddrs: List[int] = []
        corrupt = [False]

        def probe(slot: int) -> Optional[PTE]:
            line = self.line_of(slot)
            if line not in seen:
                seen.add(line)
                line_paddrs.append(line * CACHE_LINE_SIZE)
            entry = self._slots[slot]
            if entry is None:
                return None
            if not entry.is_intact():
                # Parity failure: never trust the entry, flag the walk.
                corrupt[0] = True
                return None
            if entry.covers(query_vpn):
                return entry
            return None

        found = probe(center)
        if found is not None:
            return GPTLookup(found, center, line_paddrs, corrupt[0])
        step = 1
        while step <= window:
            for slot in (center + step, center - step):
                if 0 <= slot < self.num_slots:
                    found = probe(slot)
                    if found is not None:
                        return GPTLookup(found, slot, line_paddrs, corrupt[0])
            step += 1
        return GPTLookup(None, -1, line_paddrs, corrupt[0])

    def lookup_sorted(self, predicted: int, query_vpn: int, window: int) -> GPTLookup:
        """Bounded *binary* search for the entry covering ``query_vpn``.

        Usable when entries are in key order (bulk-packed degraded
        leaves): this is the paper's "binary search ... within the
        model's min and max error range" (section 2.3 / 4.3.3), costing
        O(log window) line touches instead of a linear scan.
        """
        lo = max(0, predicted - window)
        hi = min(self.num_slots - 1, predicted + window)
        seen = set()
        line_paddrs: List[int] = []
        corrupt = [False]

        def touch(slot: int):
            line = self.line_of(slot)
            if line not in seen:
                seen.add(line)
                line_paddrs.append(line * CACHE_LINE_SIZE)

        def entry_at_or_left(slot: int):
            """Nearest trustworthy occupied slot at or left of ``slot``.

            Corrupt entries cannot steer the binary search (a flipped
            vpn breaks the key order it relies on); they are flagged
            and skipped.
            """
            while slot >= lo:
                touch(slot)
                entry = self._slots[slot]
                if entry is not None:
                    if entry.is_intact():
                        return slot
                    corrupt[0] = True
                slot -= 1
            return None

        # Binary search for the rightmost entry with vpn <= query.
        best = None
        low, high = lo, hi
        while low <= high:
            mid = (low + high) // 2
            probe = entry_at_or_left(mid)
            if probe is None:
                low = mid + 1
                continue
            entry = self._slots[probe]
            if entry.vpn <= query_vpn:
                best = probe
                low = mid + 1
            else:
                high = probe - 1
        if best is not None:
            entry = self._slots[best]
            if entry.covers(query_vpn):
                return GPTLookup(entry, best, line_paddrs, corrupt[0])
        return GPTLookup(None, -1, line_paddrs, corrupt[0])

    def find_slot(self, predicted: int, vpn: int, window: int) -> int:
        """Slot index holding the entry whose first VPN is ``vpn``.

        Used by unmap and permission updates, which must locate the
        exact entry rather than any covering mapping.
        """
        center = self._clamp(predicted)
        entry = self._slots[center]
        if entry is not None and entry.vpn == vpn and entry.is_intact():
            return center
        step = 1
        while step <= window:
            for slot in (center + step, center - step):
                if 0 <= slot < self.num_slots:
                    entry = self._slots[slot]
                    if entry is not None and entry.vpn == vpn and entry.is_intact():
                        return slot
            step += 1
        raise KeyError(f"vpn {vpn:#x} not present near slot {predicted}")

    def scan(self, query_vpn: int) -> GPTLookup:
        """Exhaustive scan of the whole table for an *intact* entry
        covering ``query_vpn`` — the second rung of the degradation
        ladder, used when the bounded search came up empty or tripped
        over corruption.

        Touches every cache line of the table (all are reported, so the
        walker charges the scan's full memory cost).
        """
        line_paddrs: List[int] = []
        seen = set()
        corrupt = False
        found: Optional[PTE] = None
        found_slot = -1
        for slot, entry in enumerate(self._slots):
            line = self.line_of(slot)
            if line not in seen:
                seen.add(line)
                line_paddrs.append(line * CACHE_LINE_SIZE)
            if entry is None:
                continue
            if not entry.is_intact():
                corrupt = True
                continue
            if found is None and entry.covers(query_vpn):
                found = entry
                found_slot = slot
        return GPTLookup(found, found_slot, line_paddrs, corrupt)

    def corrupt_slot(self, slot: int, fld: str = "ppn", bit: int = 0) -> None:
        """Fault-injection hook: replace the entry at ``slot`` with a
        bit-flipped *copy* whose integrity tag is stale.

        The original PTE object (shared with the OS's authoritative
        mapping records) is never mutated, so recovery by retraining
        from the authoritative set restores correctness.
        """
        entry = self._slots[slot]
        if entry is None:
            raise KeyError(f"slot {slot} is empty; cannot corrupt it")
        self._slots[slot] = entry.with_bitflip(fld=fld, bit=bit)

    def corrupt_entry_count(self) -> int:
        """Live entries currently failing their integrity check."""
        return sum(
            1 for e in self._slots if e is not None and not e.is_intact()
        )

    def entries(self) -> List[Tuple[int, PTE]]:
        """All (slot, entry) pairs, in slot order."""
        return [(i, e) for i, e in enumerate(self._slots) if e is not None]

    def clear(self) -> None:
        self._slots = [None] * self.num_slots
        self.occupied = 0
        self.max_displacement = 0
