"""The LVM cost model (paper section 4.2.3, equation 1).

``C(n) = x1 * d  +  x2 * s  +  x3 * cr * ma``

where ``d`` is the index depth added, ``s`` the index bytes added,
``cr`` the estimated collision rate and ``ma`` the average additional
memory accesses per collision.  The model seeds its search with the
spline-segment count of the node's keys and evaluates candidate child
counts within ±2 of it, picking the cheapest.

This module works on plain numpy arrays of *effective keys* (mapping
start VPNs clipped to the node's range) and *end VPNs* so the learned
index can call it per node without materializing Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.config import LVMConfig
from repro.core.fixed_point import MODEL_BYTES
from repro.core.linear_model import LinearModel
from repro.core.spline import num_segments
from repro.types import BASE_PAGE_SIZE, PTE_SIZE


def fit_keys(keys: np.ndarray) -> LinearModel:
    """Least-squares fit of sorted-position against key, vectorized.

    Equivalent to :func:`repro.core.linear_model.fit_least_squares` but
    operates on an int64 numpy array.  Keys are centered at their first
    element so float64 accumulation stays exact enough for VPN-scale
    inputs.
    """
    n = len(keys)
    if n == 0:
        raise ValueError("cannot fit a model to zero keys")
    if n == 1:
        return LinearModel.from_floats(0.0, 0.0)
    base = int(keys[0])
    x = (keys - base).astype(np.float64)
    y = np.arange(n, dtype=np.float64)
    sum_x = float(x.sum())
    sum_xx = float((x * x).sum())
    sum_y = float(y.sum())
    sum_xy = float((x * y).sum())
    denom = n * sum_xx - sum_x * sum_x
    if denom == 0.0:
        return LinearModel.from_floats(0.0, 0.0)
    slope = (n * sum_xy - sum_x * sum_y) / denom
    intercept = (sum_y - slope * sum_x) / n - slope * base
    return LinearModel.from_floats(slope, intercept)


def predict_array(model: LinearModel, keys: np.ndarray) -> np.ndarray:
    """Vectorized ``floor(a*x + b)`` in Q44.20 integer arithmetic."""
    return (model.slope_raw * keys + model.intercept_raw) >> 20


def scale_model(model: LinearModel, factor: float) -> LinearModel:
    return LinearModel(
        int(round(model.slope_raw * factor)),
        int(round(model.intercept_raw * factor)),
    )


@dataclass
class LeafPlan:
    """A candidate leaf: its scaled model and quality estimates."""

    model: LinearModel  # already scaled by ga_scale
    num_keys: int
    num_slots: int
    collision_rate: float  # fraction of keys predicted into taken slots
    avg_extra_accesses: float  # lines beyond the first per collision
    max_window: int  # worst-case slots between a query's
    # prediction and its entry (incl. huge-page interiors)
    within_error_bound: bool

    @property
    def table_bytes(self) -> int:
        return self.num_slots * PTE_SIZE


def plan_leaf(
    eff_keys: np.ndarray,
    eff_ends: np.ndarray,
    config: LVMConfig,
) -> LeafPlan:
    """Fit and evaluate a leaf over the given mappings.

    ``eff_keys[i]`` is the (clipped) first VPN of mapping *i* inside the
    node; ``eff_ends[i]`` its (clipped) one-past-the-end VPN.  The leaf
    model maps keys to gapped-array slots: a least-squares line scaled
    by ``ga_scale``.  Quality estimates:

    * *collision rate*: fraction of keys whose predicted slot collides
      with an earlier key's predicted slot;
    * *max window*: the farthest any query covered by these mappings
      can predict from its entry's slot — this includes the interior of
      huge pages (section 4.4), whose queries predict past the entry.
    """
    n = len(eff_keys)
    if n == 0:
        return LeafPlan(
            LinearModel(0, 0), 0, 8, 0.0, 0.0, 0, within_error_bound=True
        )
    spans = eff_ends - eff_keys
    # A leaf is "large-page only" when its typical mapping spans more
    # than one base page; the dominant (max) span sets the slope —
    # entries clipped at child boundaries have smaller spans (possibly
    # even a single page) but follow the same key grid.
    uniform_span = int(spans.max()) if int(np.median(spans)) > 1 else 1
    if uniform_span > 1:
        # A pure large-page leaf (section 4.4): use a slope just under
        # 1/span so *every* VPN inside a page predicts exactly its
        # entry's slot — the paper's "larger page sizes ... lower
        # slopes" made bit-exact.  The gapped head-room is skipped
        # (entries sit at density 1); large-page regions grow by whole
        # pages at the edge, which the unchanged model extrapolates.
        # For the power-of-two page sizes, slope*span == 1.0 exactly:
        # consecutive pages step one slot while the 511 interior VPNs
        # floor to the entry's slot.  The intercept is anchored to an
        # *unclipped* key so the whole leaf stays on the page-size key
        # grid — a boundary-straddling first entry must not shift it.
        slope_raw = (1 << 20) // uniform_span
        on_grid = np.flatnonzero(spans == uniform_span)
        anchor = int(eff_keys[on_grid[0]]) if len(on_grid) else int(eff_keys[0])
        model = LinearModel(slope_raw, -anchor * slope_raw)
        predicted = predict_array(model, eff_keys)
    else:
        base_model = fit_keys(eff_keys)
        model = scale_model(base_model, config.ga_scale)
        predicted = predict_array(model, eff_keys)
    # Normalize so the smallest prediction is slot 0: the gapped table's
    # base physical address absorbs the absolute part (section 4.2.2:
    # "the physical address of the base of the gapped page table is
    # added to the index of the PTE").
    shift = int(predicted.min())
    if shift != 0:
        model = LinearModel(model.slope_raw, model.intercept_raw - (shift << 20))
        predicted = predicted - shift
    # Collision displacement estimate.  Entries live at their
    # *predicted* slots plus whatever displacement collision resolution
    # causes, and collisions *cascade*: a run of keys predicted two to
    # a slot pushes later keys arbitrarily far, not just one slot.  The
    # rightward-packing bound captures that: placing sorted keys left
    # to right, key i ends no further right than
    # ``max_{j<=i}(predicted_j - j) + i``; the bidirectional
    # exponential search of the real insert roughly halves it.
    positions = np.arange(n, dtype=np.int64)
    packed = np.maximum.accumulate(predicted - positions) + positions
    disp_right = packed - predicted
    disp_est = (disp_right + 1) // 2
    colliding = int((disp_est > 0).sum())
    collision_rate = colliding / n
    if colliding:
        lines = (disp_est + config.slots_per_line - 1) // config.slots_per_line
        avg_extra = float(lines[disp_est > 0].mean())
    else:
        avg_extra = 0.0
    # The lookup search window must additionally cover the interior of
    # large pages: a query at the last sub-page of mapping i predicts
    # predict(end-1) while its entry sits near predicted[i]
    # (section 4.4 round-down semantics).
    interior = predict_array(model, eff_ends - 1) - predicted
    est_max_disp = int(disp_est.max(initial=0))
    max_window = int(interior.max(initial=0)) + est_max_disp
    num_slots = max(8, int(np.ceil(config.ga_scale * n)) + config.slots_per_line)
    # The table must reach every predicted slot — but a degenerate
    # model (pathological key space at the guardrails) must not demand
    # an unbounded table; clamp and let insertion displacement absorb
    # the overshoot (the leaf is marked out-of-bound below anyway).
    top = int(predicted.max(initial=0))
    cap = max(4096, int(8 * config.ga_scale * n))
    if top + 1 + config.slots_per_line > num_slots:
        num_slots = min(top + 1 + config.slots_per_line, cap)
    # A leaf is acceptable if its worst-case bounded search obeys C_err
    # and the model does not waste table space by overshooting wildly.
    space_ok = num_slots <= config.ga_scale * n * 4 + 8 * config.slots_per_line
    within = max_window <= config.max_leaf_error_slots and space_ok
    return LeafPlan(
        model, n, num_slots, collision_rate, avg_extra, max_window, within
    )


@dataclass
class BranchDecision:
    """Outcome of the cost-model evaluation for one node."""

    make_leaf: bool
    num_children: int
    cost: float
    leaf_plan: Optional[LeafPlan] = None


def _partition_costs(
    eff_keys: np.ndarray,
    eff_ends: np.ndarray,
    lo: int,
    hi: int,
    num_children: int,
    config: LVMConfig,
    x3: float,
) -> Tuple[float, float, float]:
    """Estimated (collision_rate, extra_accesses, violation_fraction)
    averaged across the children produced by an even n-way split.

    The violation fraction treats each child as a leaf; callers with
    depth budget left discount it, since recursion usually resolves a
    violating child with a finer split below.
    """
    bounds = lo + (np.arange(1, num_children) * (hi - lo)) // num_children
    split_at = np.searchsorted(eff_keys, bounds)
    starts = np.concatenate(([0], split_at))
    stops = np.concatenate((split_at, [len(eff_keys)]))
    total_keys = max(1, len(eff_keys))
    cr_acc = ma_acc = viol = 0.0
    for start, stop in zip(starts, stops):
        if stop <= start:
            continue
        child_plan = plan_leaf(eff_keys[start:stop], eff_ends[start:stop], config)
        weight = (stop - start) / total_keys
        cr_acc += child_plan.collision_rate * weight
        ma_acc += child_plan.avg_extra_accesses * weight
        if not child_plan.within_error_bound:
            viol += weight
    return cr_acc, ma_acc, viol


def choose_branching(
    eff_keys: np.ndarray,
    eff_ends: np.ndarray,
    lo: int,
    hi: int,
    depth: int,
    config: LVMConfig,
    max_table_bytes: int,
    x3_boost: float = 1.0,
    hint: Optional[int] = None,
) -> BranchDecision:
    """Decide whether a node becomes a leaf or how many children it gets.

    Implements section 4.2.3: seed the child count with the spline-
    segment estimate, evaluate candidates within ±2, respect the depth
    limit, the coverage-per-byte floor, and the physical-contiguity cap
    on gapped-table size (``max_table_bytes``).  ``x3_boost`` is the
    error-bound enforcement mechanism of section 4.3.3: when a child
    leaf cannot satisfy C_err, the parent re-runs with a boosted
    collision weight, pushing the decision toward more children.
    """
    leaf_plan = plan_leaf(eff_keys, eff_ends, config)
    x3 = config.x3 * x3_boost
    leaf_cost = (
        config.x1 * 1.0
        + config.x2 * MODEL_BYTES
        + x3 * leaf_plan.collision_rate * max(1.0, leaf_plan.avg_extra_accesses)
    )
    if not leaf_plan.within_error_bound:
        # An out-of-bound leaf pays the boosted penalty as if every
        # lookup collided at the C_err ceiling.
        leaf_cost += x3 * (config.c_err + 1)
    fits_contiguity = leaf_plan.table_bytes <= max_table_bytes

    at_depth_limit = depth + 1 >= config.d_limit
    span = hi - lo
    # Coverage-per-byte guardrail for creating children at this depth
    # (section 4.2.3).  Its purpose is to keep the index cacheable on
    # pathological key sets, so it binds only when splitting would
    # actually grow the index materially: modest branching factors
    # (bounded by the key count) are always allowed — a small address
    # space split into a few leaves still beats radix's locality by
    # orders of magnitude.
    always_allowed = max(2, min(64, len(eff_keys) // 8))

    def coverage_ok(n: int) -> bool:
        if n <= always_allowed:
            return True
        cov_bytes = span * BASE_PAGE_SIZE
        return cov_bytes // max(1, n * MODEL_BYTES) >= config.min_coverage_per_byte(depth)

    if at_depth_limit or span < 2 or len(eff_keys) <= 1:
        return BranchDecision(True, 0, leaf_cost, leaf_plan)
    if leaf_plan.within_error_bound and fits_contiguity and x3_boost == 1.0:
        # A good, allocatable leaf is never beaten by adding a level:
        # branching costs x1 more depth and x2 more bytes for the same
        # (near-zero) collision term.
        return BranchDecision(True, 0, leaf_cost, leaf_plan)

    # Minimum children forced by physical contiguity (section 4.2.2).
    n_floor = 2
    if not fits_contiguity and max_table_bytes > 0:
        n_floor = max(n_floor, -(-leaf_plan.table_bytes // max_table_bytes))
    seed = num_segments(eff_keys.tolist(), config.spline_max_error)
    # Candidates: the paper's ±2 around the spline estimate, plus a
    # geometric ladder in both directions.  Upward matters when
    # segments are skewed within the key range (even division only
    # isolates them at higher branching factors, and with the depth
    # hard-limited the cost model must be allowed to buy width);
    # downward matters when the spline overestimates — a node whose
    # keys form a couple of dense runs plus noise is often cheapest
    # with just a handful of children.
    raw = set(range(max(2, seed - 2), seed + 3))
    ladder = seed
    for _ in range(6):
        ladder *= 4
        raw.add(ladder)
    ladder = seed
    while ladder > 2:
        ladder //= 4
        raw.add(max(2, ladder))
    if hint is not None and hint >= 2:
        # Structural hint (e.g. the number of rebased ASLR regions, so
        # even division lands children on region boundaries).
        raw.add(hint)
        raw.add(2 * hint)
    candidates = sorted(
        {max(n_floor, min(config.max_children, span, c)) for c in raw}
        | {max(2, min(config.max_children, span, n_floor))}
    )
    # Children created at this depth still have this many levels of
    # recursion below them; a "violating" child is usually fixed by a
    # finer split there, so its penalty is discounted per level —
    # without this, shallow nodes buy width the deeper levels could
    # provide far more cheaply.
    remaining_levels = max(0, config.d_limit - (depth + 2))
    viol_discount = 0.15 ** remaining_levels
    best: Optional[BranchDecision] = None
    for n in candidates:
        if not coverage_ok(n):
            continue
        cr, ma, viol = _partition_costs(eff_keys, eff_ends, lo, hi, n, config, x3)
        cost = (
            config.x1 * (depth + 2)
            + config.x2 * (n * MODEL_BYTES)
            + x3 * viol_discount * (cr * max(1.0, ma) + viol * (config.c_err + 1))
        )
        if best is None or cost < best.cost:
            best = BranchDecision(False, n, cost)
    if best is None or (
        best.cost >= leaf_cost and fits_contiguity
    ):
        return BranchDecision(True, 0, leaf_cost, leaf_plan)
    return best


__all__ = [
    "BranchDecision",
    "LeafPlan",
    "choose_branching",
    "fit_keys",
    "plan_leaf",
    "predict_array",
    "scale_model",
]
