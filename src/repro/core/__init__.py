"""LVM core: the learned-index page table of the paper (section 4)."""

from repro.core.config import LVMConfig
from repro.core.fixed_point import FixedPoint, FixedPointOverflow, linear_predict
from repro.core.gapped_page_table import GappedPageTable, GPTFullError, GPTLookup
from repro.core.learned_index import LearnedIndex, LVMStats, LVMWalk
from repro.core.linear_model import (
    LinearModel,
    fit_even_division,
    fit_least_squares,
    max_abs_error,
)
from repro.core.nodes import InternalNode, LeafNode
from repro.core.spline import num_segments, spline_points

__all__ = [
    "FixedPoint",
    "FixedPointOverflow",
    "GPTFullError",
    "GPTLookup",
    "GappedPageTable",
    "InternalNode",
    "LVMConfig",
    "LVMStats",
    "LVMWalk",
    "LeafNode",
    "LearnedIndex",
    "LinearModel",
    "fit_even_division",
    "fit_least_squares",
    "linear_predict",
    "max_abs_error",
    "num_segments",
    "spline_points",
]
