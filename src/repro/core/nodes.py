"""Node structures of the LVM learned index (paper section 4.2.1).

Internal nodes hold a linear model routing VPNs to children; leaf nodes
hold a linear model predicting the slot of a translation entry inside
their private gapped page table.  Every node is 16 bytes in hardware
(Q44.20 slope + intercept); nodes of one depth are stored consecutively
in physical memory so a (level, offset) pair identifies a node and its
physical address — no child pointers are stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from repro.core.fixed_point import MODEL_BYTES
from repro.core.gapped_page_table import GappedPageTable
from repro.core.linear_model import LinearModel


@dataclass
class LeafNode:
    """A leaf: model + gapped page table for part of the key space."""

    lo: int  # first VPN covered (inclusive)
    hi: int  # one-past-last VPN covered
    model: LinearModel  # scaled: VPN -> gapped-table slot
    table: GappedPageTable
    depth: int
    offset: int = 0  # index within this depth's node array
    search_window: int = 0  # bounded-search width in slots
    num_keys: int = 0  # keys present at (re)build time
    # True when the node was built past the C_err bound (pathological
    # key space at the depth/coverage guardrails).  Inserts into a
    # degraded leaf accept arbitrary displacement instead of triggering
    # rebuilds that cannot improve the structure.
    degraded: bool = False
    # Degraded leaves are bulk-packed in key order at build time, which
    # enables the paper's bounded *binary* search; a later single
    # insert may break the order, reverting lookups to the linear scan.
    sorted_layout: bool = False

    def predict_slot(self, vpn: int) -> int:
        return self.model.predict(vpn)

    @property
    def size_bytes(self) -> int:
        return MODEL_BYTES


@dataclass
class InternalNode:
    """An internal node: model + children evenly dividing [lo, hi)."""

    lo: int
    hi: int
    model: LinearModel  # VPN -> child index
    children: List["Node"] = field(default_factory=list)
    depth: int = 0
    offset: int = 0

    def route(self, vpn: int) -> int:
        """Child index for a VPN, clamped to the valid range.

        Clamping makes lookups of keys just outside [lo, hi) — which
        appear after edge expansions (section 4.3.4) — fall through the
        correct edge spine instead of faulting.
        """
        idx = self.model.predict(vpn)
        if idx < 0:
            return 0
        last = len(self.children) - 1
        return idx if idx <= last else last

    def child_lower_bound(self, index: int) -> int:
        """Smallest VPN the quantized model routes to ``index``.

        Solves ``(slope*x + intercept) >> 20 >= index`` exactly, so the
        build-time partitioning agrees bit-for-bit with hardware
        routing.
        """
        if index <= 0:
            return self.lo
        slope = self.model.slope_raw
        if slope <= 0:
            return self.hi
        threshold = index << 20
        x = -(-(threshold - self.model.intercept_raw) // slope)
        return max(self.lo, min(self.hi, x))

    @property
    def size_bytes(self) -> int:
        return MODEL_BYTES


Node = Union[LeafNode, InternalNode]


def iter_nodes(root: Node):
    """Yield every node of the tree in breadth-first order."""
    frontier: List[Node] = [root]
    while frontier:
        nxt: List[Node] = []
        for node in frontier:
            yield node
            if isinstance(node, InternalNode):
                nxt.extend(node.children)
        frontier = nxt


def assign_offsets(root: Node) -> List[int]:
    """Assign per-level offsets in BFS order; return node count per level.

    The physical address of node (level, offset) is
    ``level_base[level] + offset * MODEL_BYTES``; the OS programs the
    ``level_base`` values into the d_limit control registers
    (section 4.6.2).
    """
    counts: List[int] = []
    frontier: List[Node] = [root]
    while frontier:
        nxt: List[Node] = []
        for i, node in enumerate(frontier):
            node.offset = i
            if isinstance(node, InternalNode):
                nxt.extend(node.children)
        counts.append(len(frontier))
        frontier = nxt
    return counts


def tree_depth(root: Node) -> int:
    """Number of model levels (1 for a lone leaf)."""
    depth = 0
    node = root
    best = 1
    frontier = [(root, 1)]
    while frontier:
        node, depth = frontier.pop()
        if depth > best:
            best = depth
        if isinstance(node, InternalNode):
            frontier.extend((c, depth + 1) for c in node.children)
    return best


def leaf_nodes(root: Node) -> List[LeafNode]:
    return [n for n in iter_nodes(root) if isinstance(n, LeafNode)]


def internal_nodes(root: Node) -> List[InternalNode]:
    return [n for n in iter_nodes(root) if isinstance(n, InternalNode)]
