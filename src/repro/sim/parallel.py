"""Parallel sweep engine: fan (workload × scheme × THP) runs across
worker processes.

The sweep behind every figure is embarrassingly parallel — each
(workload, scheme, thp) combination builds its own simulator state —
so ``run_suite(..., jobs=N)`` dispatches picklable :class:`RunSpec`
descriptions to a :class:`~concurrent.futures.ProcessPoolExecutor`
instead of shipping live simulators (page tables, walkers and trace
closures do not pickle, and rebuilding them in the worker is exactly
what the serial path does anyway).

Guarantees, in order of importance:

* **Bit-identical results.**  A worker rebuilds the workload from the
  same (name, scale, seed) triple and runs the same ``Simulator`` on a
  config cloned the same way the serial loop clones it; every RNG in
  the pipeline is seeded, so the :class:`SimResult` fields match the
  serial run exactly.
* **Deterministic order.**  Results are reassembled in spec order, not
  completion order, so ``ResultSet.results`` (and ``failures``) are
  indistinguishable from a serial sweep.
* **Serial error semantics.**  A :class:`ReproError` inside a worker is
  returned as a value (never crashes the pool) and either re-raised in
  the parent (``on_error="raise"``) or recorded via
  ``ResultSet.add_failure`` in spec order (``on_error="collect"``).
  Any other exception is a genuine bug and propagates.

Workers cache built workloads in a module global keyed by (name,
scale, seed): the first spec touching a workload pays the build cost,
subsequent specs in the same worker reuse it — mirroring the serial
path's build-once-per-name dictionary.

Since PR 5, workers do not re-synthesize traces either: ``run_suite``
pre-compiles each distinct trace into the content-addressed cache
(:mod:`repro.workloads.trace_cache`) before fan-out, and each worker's
simulator memmaps the packed entry read-only — zero-copy under the
default ``fork`` start (the parent's mapping is inherited), shared OS
page cache under ``spawn``.

Execution itself lives in :mod:`repro.sim.supervisor` since PR 4: this
module owns the *description* layer (specs, the worker function, the
worker-side cache), the supervisor owns the pool — deadlines, retries,
pool respawn, journal checkpointing, and graceful shutdown.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError, ReproError
from repro.schemes import registry as scheme_registry
from repro.sim.config import SimConfig
from repro.sim.results import ResultSet
from repro.sim.simulator import Simulator
from repro.workloads.registry import (
    PRODUCTION_WORKLOADS,
    SUITE,
    WORKLOADS,
    BuiltWorkload,
    build_workload,
)

__all__ = [
    "RunSpec",
    "default_jobs",
    "make_specs",
    "oversubscribe_allowed",
    "resolve_jobs",
    "run_specs_parallel",
]

#: Escape hatch for the CPU-count guardrail: chaos tests (which *need*
#: a worker pool to SIGKILL) and deliberate SMT/oversubscription
#: experiments set REPRO_OVERSUBSCRIBE=1 to run more workers than
#: visible CPUs.
OVERSUBSCRIBE_ENV = "REPRO_OVERSUBSCRIBE"


def oversubscribe_allowed() -> bool:
    raw = os.environ.get(OVERSUBSCRIBE_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


@dataclass(frozen=True)
class RunSpec:
    """One (workload, scheme, thp) run, described by values that pickle.

    ``config`` is the sweep's *base* config; the worker clones it with
    ``thp`` applied, exactly like the serial loop, so a spec stays a
    pure description and the clone point is identical in both paths.

    ``scheme`` is a canonical registry name — descriptors themselves
    never pickle.  ``scheme_module`` records the module whose import
    registers the descriptor, so a worker that does not inherit the
    parent's registry (``spawn`` start method) can re-import it before
    resolving the name.
    """

    workload: str
    scheme: str
    thp: bool
    scale: int
    workload_seed: int
    config: SimConfig = field(repr=False)
    scheme_module: Optional[str] = None


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial), capped at
    ``os.cpu_count()``.

    A malformed value is a configuration mistake, not a silent
    fallback: ``REPRO_JOBS=abc`` or ``-3`` raises :class:`ConfigError`
    naming the offending value (the CLI maps it to exit code 2).  A
    value above the visible CPU count is clamped — more workers than
    cores is measured slower than serial (BENCH_sweep.json) — unless
    :data:`OVERSUBSCRIBE_ENV` opts out of the cap.
    """
    raw = os.environ.get("REPRO_JOBS")
    if raw is None or raw == "":
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_JOBS={raw!r} is not an integer worker count"
        ) from None
    if jobs < 1:
        raise ConfigError(f"REPRO_JOBS={raw!r} must be >= 1")
    if not oversubscribe_allowed():
        jobs = min(jobs, os.cpu_count() or 1)
    return jobs


def resolve_jobs(
    jobs: int,
    num_specs: int,
    run_timeout: Optional[float] = None,
) -> "tuple[int, Optional[str]]":
    """The worker count a sweep should actually use: ``(jobs, reason)``.

    ``reason`` is non-None when the guardrail overrode the request and
    explains why (the runner logs it).  Two cases fall back to serial:

    * ``jobs`` exceeds the visible CPU count — oversubscribed workers
      contend for the same cores and lose to the serial loop (measured
      0.77x in BENCH_sweep.json on a 1-CPU host);
    * the grid has fewer cells than workers — pool startup/teardown
      costs more than it can ever recover on so small a sweep.

    A ``run_timeout`` disables the guardrail entirely: deadlines can
    only be enforced by killing a *subprocess*, so supervised runs keep
    their pool even where it is slower.  So does
    :data:`OVERSUBSCRIBE_ENV` (chaos tests kill workers on purpose).
    """
    if jobs <= 1 or run_timeout is not None or oversubscribe_allowed():
        return jobs, None
    cpus = os.cpu_count() or 1
    if jobs > cpus:
        return 1, (
            f"jobs={jobs} exceeds the {cpus} visible CPU(s); "
            "oversubscribed workers are slower than the serial loop "
            f"(set {OVERSUBSCRIBE_ENV}=1 to force a pool)"
        )
    if num_specs < jobs:
        return 1, (
            f"grid has {num_specs} cell(s) for {jobs} workers; pool "
            "startup would cost more than it recovers"
        )
    return jobs, None


def make_specs(
    names: Sequence[str],
    schemes: Sequence[str],
    page_modes: Sequence[bool],
    config: SimConfig,
) -> List[RunSpec]:
    """Spec list in the serial sweep's nesting order (thp, name, scheme).

    Unknown workload *and* scheme names are rejected here — before any
    worker forks — with the same :class:`ConfigError` family the serial
    path raises (schemes get :class:`~repro.errors.UnknownSchemeError`
    listing ``registry.available()``).
    """
    for name in names:
        if name not in WORKLOADS and name not in PRODUCTION_WORKLOADS:
            raise ConfigError(
                f"unknown workload {name!r}; choose from "
                f"{SUITE + list(PRODUCTION_WORKLOADS)}"
            )
    resolved = [
        (scheme_registry.canonical_name(s), scheme_registry.provider_module(s))
        for s in schemes
    ]
    return [
        RunSpec(
            workload=name,
            scheme=scheme,
            thp=thp,
            scale=config.footprint_scale,
            workload_seed=config.workload_seed,
            config=config,
            scheme_module=module,
        )
        for thp in page_modes
        for name in names
        for scheme, module in resolved
    ]


# Per-worker-process workload cache; (name, scale, seed) -> workload.
# Module-global so it survives across tasks within one worker but is
# never shared between processes.
_WORKER_WORKLOADS: Dict[tuple, BuiltWorkload] = {}


def _worker_run(spec: RunSpec):
    """Execute one spec in a worker; returns ("ok", result) or
    ("error", ReproError).  Non-ReproError exceptions escape on purpose
    (the parent re-raises them as genuine bugs)."""
    if not scheme_registry.is_registered(spec.scheme) and spec.scheme_module:
        # ``spawn`` workers start with only the built-in registry; a
        # custom scheme re-registers by importing its provider module.
        # (Under the default ``fork`` start the parent's registry is
        # inherited and this branch never runs.)
        importlib.import_module(spec.scheme_module)
    key = (spec.workload, spec.scale, spec.workload_seed)
    built = _WORKER_WORKLOADS.get(key)
    if built is None:
        built = build_workload(
            spec.workload, scale=spec.scale, seed=spec.workload_seed
        )
        _WORKER_WORKLOADS[key] = built
    cfg = spec.config.clone(thp=spec.thp)
    try:
        return "ok", Simulator(spec.scheme, built, cfg).run()
    except ReproError as exc:
        return "error", exc


def run_specs_parallel(
    specs: Sequence[RunSpec],
    jobs: int,
    on_error: str = "raise",
    verbose: bool = False,
) -> ResultSet:
    """Run ``specs`` across ``jobs`` worker processes.

    Since PR 4 this is a thin wrapper over the sweep supervisor
    (:mod:`repro.sim.supervisor`) with its default policy: no per-spec
    deadline, but worker crashes (``BrokenProcessPool``) respawn the
    pool and retry instead of poisoning the whole sweep, and a
    KeyboardInterrupt drains in-flight futures and shuts the pool down
    instead of leaking it.  Outcomes are still slotted by spec index
    and folded in spec order, so the returned set is field-for-field
    identical to the serial sweep's.
    """
    from repro.sim.supervisor import run_specs_supervised

    return run_specs_supervised(
        specs, jobs=jobs, on_error=on_error, verbose=verbose
    )
