"""Trace-driven full-system-style simulation (section 6.1 analogue).

The paper uses SST + QEMU + DRAMSim3; here a trace of data references
flows through the TLB hierarchy, the scheme-specific page walker (with
its walk cache), and the L1/L2/L3/DRAM chain.  Translation cycles, walk
traffic, cache misses and execution cycles fall out of the same runs,
exactly as Figures 9-12 are produced from one set of simulations.

Everything scheme-specific — page-table construction, walker
construction, the trace loop, per-scheme stats — is delegated to the
scheme's :class:`~repro.schemes.base.SchemeDescriptor`, resolved
through :mod:`repro.schemes.registry`.  The simulator itself only
knows the scheme-independent machinery: allocator, process, TLBs,
cache hierarchy, and the two trace loops the descriptors choose from.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import LVMConfig
from repro.faults import FaultInjector
from repro.kernel.manager import LVMManager
from repro.kernel.process import Process
from repro.mem.allocator import BumpAllocator
from repro.mem.buddy import BuddyAllocator
from repro.mmu.hierarchy import MemoryHierarchy
from repro.mmu.mmu import MMU
from repro.schemes import registry
from repro.sim.config import SimConfig
from repro.sim.results import SimResult
from repro.types import BASE_PAGE_SIZE, TranslationError
from repro.workloads.compile import CompiledTrace
from repro.workloads.registry import BuiltWorkload


class Simulator:
    """One (workload, scheme, page-size) simulation.

    ``scheme`` may be a registered scheme name (or alias) or a
    :class:`~repro.schemes.base.SchemeDescriptor` instance; unknown
    names raise :class:`~repro.errors.UnknownSchemeError` before any
    simulation state is built.
    """

    def __init__(
        self,
        scheme,
        workload: BuiltWorkload,
        config: Optional[SimConfig] = None,
        lvm_config: Optional[LVMConfig] = None,
        allocator=None,
    ):
        self.descriptor = registry.get(scheme)
        self.scheme = self.descriptor.name
        self.workload = workload
        self.config = config or SimConfig()
        self.config.validate()
        self.lvm_config = lvm_config
        self.hierarchy = MemoryHierarchy(self.config.hierarchy)
        # An all-zero (or absent) plan builds no injector at all, so
        # fault-free runs stay bit-identical to the pre-injector code.
        plan = self.config.faults
        self.injector: Optional[FaultInjector] = (
            FaultInjector(plan) if plan is not None and plan.enabled else None
        )
        self.incorrect_translations = 0
        # Filled by the vectorized engine when a run goes through it:
        # per-phase fastpath attribution (see repro/sim/vectorized.py).
        self.vectorized_stats: Optional[dict] = None
        # ``allocator`` lets the fragmentation studies (sections 7.3,
        # 7.5.3) back the page tables with a pre-fragmented buddy.
        self.allocator = allocator if allocator is not None else self._make_allocator()
        if self.injector is not None and self.descriptor.wraps_allocator_under_faults:
            self.allocator = self.injector.wrap_allocator(self.allocator)
        # The scheme's OS-side manager, if it has one (LVM's descriptor
        # sets this from make_page_table).
        self.manager: Optional[LVMManager] = None
        self.page_table = self.descriptor.make_page_table(self)
        self.process = Process(
            self.page_table,
            allocator=self.allocator,
            thp=self.config.thp,
            thp_coverage=self.config.thp_coverage,
            injector=self.injector,
        )
        self._populate()
        self.walker = self.descriptor.make_walker(self)
        self.mmu = MMU(self.walker, self.config.tlb)

    # -- setup -----------------------------------------------------------
    def _make_allocator(self):
        if self.config.phys_mem_bytes is None:
            return BumpAllocator()
        return BuddyAllocator(self.config.phys_mem_bytes)

    def _populate(self) -> None:
        if self.manager is not None:
            self.manager.begin_batch()
        for vma in self.workload.vmas:
            self.process.mmap(vma, populate=True)
        if self.manager is not None:
            self.manager.end_batch()

    # -- the run -----------------------------------------------------------
    def run(self, num_refs: Optional[int] = None) -> SimResult:
        refs = num_refs or self.config.num_refs
        trace = self._trace(refs)
        refs = len(trace)
        data_stall, mmu_cycles = self.descriptor.run_trace(self, trace)
        return self._result(refs, data_stall, mmu_cycles)

    def _trace(self, refs: int):
        """The reference trace for this run — a :class:`CompiledTrace`
        on the packed pipeline (default), a raw address array on the
        legacy path.  Both loops accept either; results are
        bit-identical (the packed ``va`` column *is* the raw trace)."""
        if not self.config.packed_traces:
            return self.workload.trace(refs, self.config.trace_seed)
        from repro.workloads.compile import compiled_trace_for
        from repro.workloads.trace_cache import cache_for_config

        return compiled_trace_for(
            self.workload, refs, self.config.trace_seed,
            cache=cache_for_config(self.config),
        )

    def run_standard(self, trace) -> "tuple[int, int]":
        """The default trace loop: every reference is translated through
        the TLB hierarchy, then accesses the data hierarchy."""
        translate = self.mmu.translate
        access = self.hierarchy.access
        fault = self.process.handle_fault
        injector = self.injector
        verify = self.config.verify_translations
        data_stall = 0
        mmu_cycles = 0
        packed = isinstance(trace, CompiledTrace)
        # One C-level pass converts the trace to plain ints; doing it
        # per element (``int(va)``) costs a boxing round-trip on every
        # reference.  CompiledTrace memoizes its column views, so the
        # 8+ runs per workload of a sweep pay the pass once.
        if packed:
            refs = trace.vas
        else:
            refs = (
                trace.tolist()
                if hasattr(trace, "tolist")
                else [int(v) for v in trace]
            )
        if packed and injector is None and not verify:
            # Epoch-based vectorized engine (repro/sim/vectorized.py):
            # whole-array classification per epoch, this scalar loop's
            # body for the miss minority.  ``try_build`` returns None
            # for any configuration the engine cannot model exactly,
            # and the loops below remain the reference semantics.
            if self.config.vectorized_engine and self.descriptor.supports_vectorized:
                from repro.sim.vectorized import VectorizedEngine

                engine = VectorizedEngine.try_build(self, trace)
                if engine is not None:
                    totals = engine.run()
                    # Fastpath attribution for benchmarks/tests (where
                    # references went: batch replay vs scalar body).
                    self.vectorized_stats = engine.counters
                    return totals
            # Packed fast loop: the trace's precomputed VPN column
            # feeds the L1 front-index probe directly, inlined from
            # ``MMU.translate`` with identical counter updates (a front
            # hit costs zero MMU cycles there too).  A miss falls
            # through to ``translate``, whose own probe of the absent
            # key is a no-op — stats stay bit-identical either way.
            ctx = self.mmu.packed_context()
            front, l1_4k, stats = ctx.front, ctx.l1_4k, ctx.stats
            for va, vpn in zip(refs, trace.vpns):
                entry = front.get(vpn)
                if entry is not None and entry[0] == 0:
                    pte, tlb_set, key = entry[1], entry[2], entry[3]
                    del tlb_set[key]
                    tlb_set[key] = pte
                    l1_4k.hits += 1
                    stats.translations += 1
                    stats.l1_tlb_hits += 1
                    data_stall += access(pte.translate(va))
                    continue
                pte, tcycles = translate(va)
                if pte is None:
                    fault(va)
                    pte, more = translate(va)
                    tcycles += more
                    if pte is None:
                        raise TranslationError(f"unmappable VA {va:#x}")
                mmu_cycles += tcycles
                data_stall += access(pte.translate(va))
            return data_stall, mmu_cycles
        if injector is None and not verify:
            # Common case: no chaos hooks.  Hoisting the two per-ref
            # branches out of the loop is worth several percent at
            # 200k+ references.
            for va in refs:
                pte, tcycles = translate(va)
                if pte is None:
                    # Demand fault: the OS maps the page, the access
                    # retries.
                    fault(va)
                    pte, more = translate(va)
                    tcycles += more
                    if pte is None:
                        raise TranslationError(f"unmappable VA {va:#x}")
                mmu_cycles += tcycles
                data_stall += access(pte.translate(va))
            return data_stall, mmu_cycles
        for va in refs:
            if injector is not None:
                injector.on_reference(self)
            pte, tcycles = translate(va)
            if pte is None:
                # Demand fault: the OS maps the page, the access retries.
                fault(va)
                pte, more = translate(va)
                tcycles += more
                if pte is None:
                    raise TranslationError(f"unmappable VA {va:#x}")
            if verify:
                self._verify_translation(va, pte)
            mmu_cycles += tcycles
            data_stall += access(pte.translate(va))
        return data_stall, mmu_cycles

    def _verify_translation(self, va: int, pte) -> None:
        """Chaos-harness cross-check: the translation the MMU returned
        must agree with the OS's authoritative mapping records."""
        vpn = va // BASE_PAGE_SIZE
        auth = self.process.page_table.find(vpn)
        if (
            auth is None
            or not pte.covers(vpn)
            or auth.ppn != pte.ppn
            or auth.page_size != pte.page_size
        ):
            self.incorrect_translations += 1

    def run_virtual_hierarchy(self, trace) -> "tuple[int, int]":
        """Midgard's trace loop (section 7.5.2): the cache hierarchy is
        indexed by intermediate (virtual) addresses, so hits need no
        translation; only LLC misses walk the page table."""
        access_info = self.hierarchy.access_info
        injector = self.injector
        data_stall = 0
        mmu_cycles = 0
        if isinstance(trace, CompiledTrace):
            refs = trace.vas
        else:
            refs = (
                trace.tolist()
                if hasattr(trace, "tolist")
                else [int(v) for v in trace]
            )
        for va in refs:
            if injector is not None:
                injector.on_reference(self)
            latency, level = access_info(va, entry="l1")
            data_stall += latency
            if level == "DRAM":
                outcome = self.walker.walk(va >> 12)
                mmu_cycles += outcome.cycles
                self.mmu.stats.walks += 1
                self.mmu.stats.walk_cycles += outcome.cycles
                self.mmu.stats.walk_traffic += outcome.memory_accesses
        return data_stall, mmu_cycles

    # -- accounting ----------------------------------------------------
    def _result(self, refs: int, data_stall: int, mmu_cycles: int) -> SimResult:
        core = self.config.core
        instructions = int(refs * self.workload.info.instructions_per_ref)
        mgmt_cycles, mgmt_detail = self.descriptor.mgmt_cycles(self)
        cycles = (
            instructions * core.base_cpi
            + data_stall * core.data_stall_exposure
            + mmu_cycles * core.walk_stall_exposure
            + mgmt_cycles
        )
        stats = self.mmu.stats
        result = SimResult(
            workload=self.workload.info.name,
            scheme=self.scheme,
            thp=self.config.thp,
            refs=refs,
            instructions=instructions,
            cycles=cycles,
            mmu_cycles=stats.mmu_cycles,
            walk_cycles=stats.walk_cycles,
            walks=stats.walks,
            walk_traffic=stats.walk_traffic,
            l1_tlb_hits=stats.l1_tlb_hits,
            l2_tlb_hits=stats.l2_tlb_hits,
            l2_tlb_miss_rate=stats.l2_tlb_miss_rate,
            l1_mpki=self.hierarchy.l1.mpki(instructions),
            l2_mpki=self.hierarchy.l2.mpki(instructions),
            l3_mpki=self.hierarchy.l3.mpki(instructions),
            dram_accesses=self.hierarchy.dram_accesses,
            table_bytes=self.page_table.table_bytes,
            mgmt_cycles=mgmt_cycles,
            mgmt_detail=mgmt_detail,
        )
        self.descriptor.fill_walk_cache_stats(self, result)
        self.descriptor.fill_scheme_stats(self, result)
        self._fill_fault_stats(result)
        return result

    def _fill_fault_stats(self, result: SimResult) -> None:
        if self.injector is not None:
            result.faults_injected = self.injector.total_injected
            result.fault_counts = dict(self.injector.counts)
        result.incorrect_translations = self.incorrect_translations
        detail = {}
        pstats = self.process.stats
        for name in (
            "dropped_mmap_events",
            "dropped_munmap_events",
            "duplicate_events",
            "duplicate_rejects",
            "stale_reconciled",
        ):
            value = getattr(pstats, name)
            if value:
                detail[name] = value
        detections = getattr(self.walker, "poison_detections", 0)
        if detections:
            detail["poison_detections"] = detections
        result.poison_detections = detections
        if self.manager is not None:
            istats = self.manager.index.stats
            for name in (
                "recovered_scans",
                "recovered_retrains",
                "recovered_rebuilds",
                "corrupt_entries_detected",
                "alloc_retries",
                "rescale_fallback_rebuilds",
            ):
                value = getattr(istats, name)
                if value:
                    detail[name] = value
            result.recovery_cycles = getattr(self.walker, "recovery_cycles", 0)
        result.recovery_detail = detail
        result.recoveries = sum(detail.values())


def simulate(
    scheme,
    workload: BuiltWorkload,
    config: Optional[SimConfig] = None,
    lvm_config: Optional[LVMConfig] = None,
) -> SimResult:
    """Convenience one-shot: build the simulator and run it."""
    return Simulator(scheme, workload, config, lvm_config).run()
