"""Simulation configuration (Table 1 plus the core timing model).

The architectural parameters mirror Table 1 of the paper.  The core
model is deliberately simple — a 4-issue out-of-order core at 2 GHz is
reduced to a base CPI plus partially-overlapped memory stalls — because
the quantities the paper reports (MMU overhead, walk traffic, MPKI,
relative speedups) come from the cache/TLB/walker models, not from a
pipeline model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.mmu.hierarchy import HierarchyConfig
from repro.mmu.tlb import TLBConfig

SCHEMES = ("radix", "ecpt", "lvm", "ideal")
EXTENDED_SCHEMES = SCHEMES + ("fpt", "asap", "midgard")


@dataclass
class CoreModel:
    """Reduced core timing model."""

    frequency_ghz: float = 2.0
    base_cpi: float = 0.35  # 4-issue OoO on non-stalled work
    # Fraction of data-access stall cycles the OoO window fails to hide.
    data_stall_exposure: float = 0.35
    # Page walks serialize the load that triggered them; most of their
    # latency is exposed.
    walk_stall_exposure: float = 0.85


@dataclass
class LVMCostModel:
    """Cycle charges for LVM's OS management work (section 7.3).

    Derived from the paper's measured retrain cost (< 1.7 ms for
    multi-million-page address spaces, i.e. ~a cycle per key) and the
    observed ~1% total management overhead.
    """

    build_cycles_per_key: float = 1.5
    insert_cycles: float = 60.0
    rescale_cycles: float = 1500.0
    local_retrain_cycles: float = 4000.0
    rebuild_cycles_per_key: float = 1.5


#: Cache-capacity scaling used by default: workload footprints are
#: divided by FOOTPRINT_SCALE (64), so cache capacities shrink by the
#: same factor to preserve the paper's footprint-to-cache pressure —
#: without this, page-directory-level entries become unrealistically
#: cache-resident and the radix baseline looks better than it is at
#: datacenter scale.  Latencies and line sizes stay at Table 1 values.
CACHE_PRESSURE_SCALE = 64

#: TLB reach scaling: milder than the cache factor (TLB reach matters
#: linearly, and the 4 KB miss-rate regime is already saturated), but
#: necessary so the 2 MB TLB cannot cover an entire scaled footprint
#: under THP — which would hide every page walk the paper studies.
TLB_PRESSURE_SCALE = 16


@dataclass
class SimConfig:
    """Everything one simulation run needs."""

    hierarchy: HierarchyConfig = field(
        default_factory=lambda: HierarchyConfig.scaled(CACHE_PRESSURE_SCALE)
    )
    tlb: TLBConfig = field(
        default_factory=lambda: TLBConfig.scaled(TLB_PRESSURE_SCALE)
    )
    core: CoreModel = field(default_factory=CoreModel)
    lvm_costs: LVMCostModel = field(default_factory=LVMCostModel)
    num_refs: int = 200_000
    trace_seed: int = 1
    thp: bool = False
    thp_coverage: float = 0.9
    footprint_scale: int = 64
    workload_seed: int = 0
    # Physical memory for buddy-backed runs; None = unfragmented bump
    # allocator (the common, lightly fragmented datacenter case).
    phys_mem_bytes: Optional[int] = None
    asap_prefetch_success: float = 1.0

    def clone(self, **overrides) -> "SimConfig":
        import copy

        cfg = copy.deepcopy(self)
        for key, value in overrides.items():
            if not hasattr(cfg, key):
                raise AttributeError(f"SimConfig has no field {key!r}")
            setattr(cfg, key, value)
        return cfg


def table1_rows() -> List[tuple]:
    """Render Table 1 (architectural parameters) as (name, value)."""
    h = HierarchyConfig()
    t = TLBConfig()
    return [
        ("Core", "4-issue out-of-order cores at 2GHz"),
        ("L1-I and L1-D cache", f"{h.l1_size >> 10}KB each, {h.l1_ways}-way, {h.l1_latency} cycle RT"),
        ("L2 cache", f"{h.l2_size >> 20}MB, {h.l2_ways}-way, {h.l2_latency} cycles RT"),
        ("L3 cache", f"{h.l3_size >> 20}MB per core, {h.l3_ways}-way, {h.l3_latency} cycles RT"),
        ("L1 DTLB/ITLB (4KB pages)", f"{t.l1_4k_entries} entries, {t.l1_4k_ways}-way"),
        ("L1 DTLB/ITLB (2MB pages)", f"{t.l1_2m_entries} entries, {t.l1_2m_ways}-way"),
        ("L2 TLB (4KB pages)", f"{t.l2_entries_per_size} entries, {t.l2_ways}-way"),
        ("L2 TLB (2MB pages)", f"{t.l2_entries_per_size} entries, {t.l2_ways}-way"),
        ("Radix Page Walk Cache", "3 levels, 32 entries per level, 2 cycles"),
        ("LVM Page Walk Cache", "16 entries, 2 cycles"),
        ("Cuckoo Walk Cache", "PMD: 16 entries. PUD: 2 entries. 2 cycles"),
        ("Cuckoo Page Tables", "3 ways. 16384 entry initial size."),
        ("Main Memory", "DDR4 3200MT/s-class latency"),
        ("OS", "modelled Linux-like kernel layer"),
    ]
