"""Simulation configuration (Table 1 plus the core timing model).

The architectural parameters mirror Table 1 of the paper.  The core
model is deliberately simple — a 4-issue out-of-order core at 2 GHz is
reduced to a base CPI plus partially-overlapped memory stalls — because
the quantities the paper reports (MMU overhead, walk traffic, MPKI,
relative speedups) come from the cache/TLB/walker models, not from a
pipeline model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.mmu.hierarchy import HierarchyConfig
from repro.mmu.tlb import TLBConfig
from repro.schemes import registry as scheme_registry

#: The paper's headline comparison set and the full built-in set, both
#: derived from the scheme registry (one place defines a scheme).
#: Captured at import time — after the built-ins have registered — so
#: they remain the stable tuples tests and sweeps rely on.
SCHEMES = scheme_registry.core_schemes()
EXTENDED_SCHEMES = scheme_registry.available()


@dataclass
class CoreModel:
    """Reduced core timing model."""

    frequency_ghz: float = 2.0
    base_cpi: float = 0.35  # 4-issue OoO on non-stalled work
    # Fraction of data-access stall cycles the OoO window fails to hide.
    data_stall_exposure: float = 0.35
    # Page walks serialize the load that triggered them; most of their
    # latency is exposed.
    walk_stall_exposure: float = 0.85

    def validate(self) -> None:
        if self.frequency_ghz <= 0:
            raise ConfigError(
                f"core frequency must be positive, got {self.frequency_ghz!r}"
            )
        if self.base_cpi <= 0:
            raise ConfigError(f"base CPI must be positive, got {self.base_cpi!r}")
        for name in ("data_stall_exposure", "walk_stall_exposure"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigError(
                    f"{name}={value!r} must be a fraction within [0, 1]"
                )


@dataclass
class LVMCostModel:
    """Cycle charges for LVM's OS management work (section 7.3).

    Derived from the paper's measured retrain cost (< 1.7 ms for
    multi-million-page address spaces, i.e. ~a cycle per key) and the
    observed ~1% total management overhead.
    """

    build_cycles_per_key: float = 1.5
    insert_cycles: float = 60.0
    rescale_cycles: float = 1500.0
    local_retrain_cycles: float = 4000.0
    rebuild_cycles_per_key: float = 1.5

    def validate(self) -> None:
        for name in (
            "build_cycles_per_key",
            "insert_cycles",
            "rescale_cycles",
            "local_retrain_cycles",
            "rebuild_cycles_per_key",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(
                    f"LVM cost {name}={value!r} cannot be negative"
                )


#: Cache-capacity scaling used by default: workload footprints are
#: divided by FOOTPRINT_SCALE (64), so cache capacities shrink by the
#: same factor to preserve the paper's footprint-to-cache pressure —
#: without this, page-directory-level entries become unrealistically
#: cache-resident and the radix baseline looks better than it is at
#: datacenter scale.  Latencies and line sizes stay at Table 1 values.
CACHE_PRESSURE_SCALE = 64

#: TLB reach scaling: milder than the cache factor (TLB reach matters
#: linearly, and the 4 KB miss-rate regime is already saturated), but
#: necessary so the 2 MB TLB cannot cover an entire scaled footprint
#: under THP — which would hide every page walk the paper studies.
TLB_PRESSURE_SCALE = 16


@dataclass
class SimConfig:
    """Everything one simulation run needs."""

    hierarchy: HierarchyConfig = field(
        default_factory=lambda: HierarchyConfig.scaled(CACHE_PRESSURE_SCALE)
    )
    tlb: TLBConfig = field(
        default_factory=lambda: TLBConfig.scaled(TLB_PRESSURE_SCALE)
    )
    core: CoreModel = field(default_factory=CoreModel)
    lvm_costs: LVMCostModel = field(default_factory=LVMCostModel)
    num_refs: int = 200_000
    trace_seed: int = 1
    thp: bool = False
    thp_coverage: float = 0.9
    footprint_scale: int = 64
    workload_seed: int = 0
    # Physical memory for buddy-backed runs; None = unfragmented bump
    # allocator (the common, lightly fragmented datacenter case).
    phys_mem_bytes: Optional[int] = None
    asap_prefetch_success: float = 1.0
    # Fault-injection plan; None (or an all-zero plan) leaves every
    # run bit-identical to a build without the injector.
    faults: Optional[FaultPlan] = None
    # Cross-check every translation against the OS's authoritative
    # records (chaos-harness mode; costs a software lookup per ref).
    verify_translations: bool = False
    # --- trace pipeline knobs (never change results, only speed; all
    # three are excluded from the journal's config fingerprint) -------
    # Iterate packed compiled traces (repro/workloads/compile.py) with
    # precomputed column views; False falls back to the legacy
    # raw-array loop (A/B'd bit-identical in tests and benchmarks).
    packed_traces: bool = True
    # Content-addressed on-disk trace cache
    # (repro/workloads/trace_cache.py); workers memmap cached entries
    # instead of re-synthesizing traces.  ``--no-trace-cache`` or
    # REPRO_TRACE_CACHE=0 clears it.
    use_trace_cache: bool = True
    # Cache directory override; None = $REPRO_CACHE_DIR or
    # ~/.cache/repro/traces.
    trace_cache_dir: Optional[str] = None
    # Epoch-based vectorized trace engine (repro/sim/vectorized.py):
    # whole-array TLB classification per epoch, scalar walker fallback
    # for the miss minority.  Bit-identical to the scalar loops by
    # contract (golden cells + property tests); it silently disables
    # itself for configurations it cannot model exactly.  All three
    # knobs are speed-only and excluded from the journal fingerprint.
    vectorized_engine: bool = True
    # References per epoch (the batch-classification window).
    vectorized_epoch: int = 4096
    # Epochs whose predicted L1-TLB-hit fraction falls below this run
    # through the scalar loop instead (batch bookkeeping would cost
    # more than it saves); 0.0 forces every epoch through the engine.
    vectorized_min_fast: float = 0.55

    def validate(self) -> None:
        """Reject impossible configurations with a clear message.

        Raises :class:`~repro.errors.ConfigError` (a ``ValueError``
        subclass) so pre-existing callers that caught ValueError keep
        working.
        """
        if self.num_refs <= 0:
            raise ConfigError(f"num_refs must be positive, got {self.num_refs!r}")
        if self.footprint_scale < 1:
            raise ConfigError(
                f"footprint_scale must be >= 1, got {self.footprint_scale!r}"
            )
        if not (0.0 <= self.thp_coverage <= 1.0):
            raise ConfigError(
                f"thp_coverage={self.thp_coverage!r} must be within [0, 1]"
            )
        if not (0.0 <= self.asap_prefetch_success <= 1.0):
            raise ConfigError(
                "asap_prefetch_success="
                f"{self.asap_prefetch_success!r} must be within [0, 1]"
            )
        if self.phys_mem_bytes is not None and self.phys_mem_bytes <= 0:
            raise ConfigError(
                f"phys_mem_bytes must be positive, got {self.phys_mem_bytes!r}"
            )
        if self.vectorized_epoch < 1:
            raise ConfigError(
                f"vectorized_epoch must be >= 1, got {self.vectorized_epoch!r}"
            )
        if not (0.0 <= self.vectorized_min_fast <= 1.0):
            raise ConfigError(
                f"vectorized_min_fast={self.vectorized_min_fast!r} must be "
                "within [0, 1]"
            )
        self.hierarchy.validate()
        self.tlb.validate()
        self.core.validate()
        self.lvm_costs.validate()
        if self.faults is not None:
            self.faults.validate()

    def clone(self, **overrides) -> "SimConfig":
        import copy

        cfg = copy.deepcopy(self)
        for key, value in overrides.items():
            if not hasattr(cfg, key):
                raise AttributeError(f"SimConfig has no field {key!r}")
            setattr(cfg, key, value)
        return cfg


def table1_rows() -> List[tuple]:
    """Render Table 1 (architectural parameters) as (name, value)."""
    h = HierarchyConfig()
    t = TLBConfig()
    return [
        ("Core", "4-issue out-of-order cores at 2GHz"),
        ("L1-I and L1-D cache", f"{h.l1_size >> 10}KB each, {h.l1_ways}-way, {h.l1_latency} cycle RT"),
        ("L2 cache", f"{h.l2_size >> 20}MB, {h.l2_ways}-way, {h.l2_latency} cycles RT"),
        ("L3 cache", f"{h.l3_size >> 20}MB per core, {h.l3_ways}-way, {h.l3_latency} cycles RT"),
        ("L1 DTLB/ITLB (4KB pages)", f"{t.l1_4k_entries} entries, {t.l1_4k_ways}-way"),
        ("L1 DTLB/ITLB (2MB pages)", f"{t.l1_2m_entries} entries, {t.l1_2m_ways}-way"),
        ("L2 TLB (4KB pages)", f"{t.l2_entries_per_size} entries, {t.l2_ways}-way"),
        ("L2 TLB (2MB pages)", f"{t.l2_entries_per_size} entries, {t.l2_ways}-way"),
        ("Radix Page Walk Cache", "3 levels, 32 entries per level, 2 cycles"),
        ("LVM Page Walk Cache", "16 entries, 2 cycles"),
        ("Cuckoo Walk Cache", "PMD: 16 entries. PUD: 2 entries. 2 cycles"),
        ("Cuckoo Page Tables", "3 ways. 16384 entry initial size."),
        ("Main Memory", "DDR4 3200MT/s-class latency"),
        ("OS", "modelled Linux-like kernel layer"),
    ]
