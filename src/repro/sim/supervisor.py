"""Crash-safe sweep supervisor: timeouts, retries, quarantine, resume.

``run_specs_parallel`` (PR 2) fans specs across a process pool but
inherits the pool's failure modes wholesale: a hung worker stalls the
sweep forever, a killed worker poisons every pending future with
``BrokenProcessPool``, and a Ctrl-C discards all completed cells.  The
supervisor wraps the same pool — and the same ``_worker_run`` function,
so results stay bit-identical — with a host-level reliability layer:

* **Deadlines in the parent.**  Each attempt gets a wall-clock
  deadline checked from the parent's wait loop (no SIGALRM, no signals
  into workers — a worker stuck in C code cannot be trusted to time
  itself out).  An expired attempt counts as a host-level failure; the
  hung worker is killed with the rest of its pool and the pool is
  respawned.
* **Bounded retry with exponential backoff.**  Host-level failures
  (timeout, worker crash) retry up to ``retries`` extra attempts with
  ``backoff_base * backoff_factor**(attempt-1)`` delay, capped at
  ``backoff_max``.  *Simulated* failures (:class:`ReproError` returned
  by the worker) are deterministic and never retried — they follow the
  serial sweep's ``on_error`` semantics exactly.
* **Quarantine, not silence.**  A spec that exhausts its retry budget
  is recorded as a structured
  :class:`~repro.errors.SpecQuarantinedError` in
  ``ResultSet.failures`` (or raised, under ``on_error="raise"``) with
  its attempt count — never dropped.
* **Pool respawn.**  ``BrokenProcessPool`` marks every in-flight spec
  as a crashed attempt (the culprit cannot be identified from the
  parent, so all of them were "possibly it"), kills the pool, and
  respawns it; specs queued behind the crash re-run untouched.
* **Journal integration.**  With a :class:`~repro.sim.journal.RunJournal`
  attached, completed cells are checkpointed as they finish and
  journal hits are replayed instead of re-run — a resumed sweep is
  bit-identical to an uninterrupted one.
* **Shared traces.**  ``run_suite`` pre-compiles every distinct trace
  into the content-addressed cache
  (:mod:`repro.workloads.trace_cache`) before the pool spins up; the
  workers supervised here memmap those packed entries read-only
  instead of re-synthesizing them, so a respawned pool (or a retried
  spec) re-opens a file rather than re-running a generator.
* **Graceful shutdown.**  SIGINT/SIGTERM stop new submissions, drain
  the in-flight futures (workers ignore SIGINT, so Ctrl-C in a
  terminal does not kill them mid-cell), flush the journal, and raise
  :class:`~repro.errors.SweepInterrupted` — a ``KeyboardInterrupt``
  subclass carrying the journal path, which the CLI turns into an
  exit-130 "resume with ..." hint.  A second signal aborts
  immediately.

State machine per spec (see ``docs/INTERNALS.md`` §11)::

    JOURNAL-HIT ──────────────────────────────────────────▶ DONE
    PENDING ─▶ RUNNING ─▶ ok / simulated failure ─────────▶ DONE
                 │ timeout / worker crash
                 ▼
              BACKOFF ─▶ RUNNING (attempt+1) ...
                 │ attempts exhausted
                 ▼
            QUARANTINED ──────────────────────────────────▶ DONE
"""

from __future__ import annotations

import faulthandler
import heapq
import os
import signal
import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from time import monotonic, sleep
from typing import Dict, List, Optional, Sequence

from repro.errors import (
    ConfigError,
    ReproError,
    SpecQuarantinedError,
    SpecTimeoutError,
    SweepInterrupted,
    WorkerCrashError,
)
from repro.sim.journal import RunJournal
from repro.sim.parallel import RunSpec, _worker_run
from repro.sim.results import ResultSet, RunFailure, SimResult

__all__ = ["SupervisorPolicy", "SweepSupervisor", "run_specs_supervised"]


def _init_worker() -> None:
    """Pool initializer: workers must not die from a terminal Ctrl-C
    (the signal goes to the whole foreground process group); the parent
    decides whether to drain or abort them.  SIGUSR1 dumps every
    thread's Python stack to stderr — the parent sends it before
    killing a worker that blew its deadline, so a hang leaves a
    post-mortem trace instead of a silent kill."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        faulthandler.register(signal.SIGUSR1, chain=False)
    except (AttributeError, ValueError, OSError):
        pass  # no SIGUSR1 (non-POSIX) or no faulthandler support


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/timeout policy for host-level failures.

    ``run_timeout`` is per *attempt*, in wall-clock seconds, measured
    from submission (the supervisor keeps at most ``jobs`` specs in
    flight, so submission and start coincide); ``None`` disables
    deadlines.  ``retries`` counts extra attempts after the first.
    """

    run_timeout: Optional[float] = None
    retries: int = 2
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 5.0

    def validate(self) -> None:
        if self.run_timeout is not None and self.run_timeout <= 0:
            raise ConfigError(
                f"run_timeout must be positive, got {self.run_timeout!r}"
            )
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries!r}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigError("backoff delays cannot be negative")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )

    def backoff(self, attempt: int) -> float:
        """Delay before the attempt *after* failed attempt ``attempt``."""
        return min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )

    @property
    def max_attempts(self) -> int:
        return 1 + self.retries


@dataclass
class _Inflight:
    """Bookkeeping for one submitted attempt."""

    idx: int
    attempt: int  # 1-based
    deadline: Optional[float]


class SweepSupervisor:
    """Drives one spec list to completion; see the module docstring."""

    def __init__(
        self,
        specs: Sequence[RunSpec],
        jobs: int,
        on_error: str = "raise",
        verbose: bool = False,
        journal: Optional[RunJournal] = None,
        policy: Optional[SupervisorPolicy] = None,
    ):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs!r}")
        if on_error not in ("raise", "collect"):
            raise ConfigError(
                f"on_error must be 'raise' or 'collect', got {on_error!r}"
            )
        self.specs = list(specs)
        self.jobs = jobs
        self.on_error = on_error
        self.verbose = verbose
        self.journal = journal
        self.policy = policy or SupervisorPolicy()
        self.policy.validate()
        # One slot per spec: None until the spec reaches DONE, then
        # ("ok", SimResult) / ("error", exception) / ("failure", RunFailure).
        self._outcomes: List[Optional[tuple]] = [None] * len(self.specs)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pending: Dict[object, _Inflight] = {}
        # (idx, attempt) runnable now / (ready_time, idx, attempt) heap
        # of backoff retries not runnable before ready_time.
        self._ready: deque = deque()
        self._delayed: List[tuple] = []
        self._stop_signals = 0

    # -- public entry --------------------------------------------------

    def run(self) -> ResultSet:
        self._replay_journal_hits()
        self._ready = deque(
            (idx, 1)
            for idx, slot in enumerate(self._outcomes)
            if slot is None
        )
        restore = self._install_signal_handlers()
        try:
            if self._ready:
                self._pool = self._make_pool()
            while self._ready or self._delayed or self._pending:
                if self._stop_signals:
                    self._ready.clear()
                    self._delayed.clear()
                    if self._stop_signals > 1 and self._pending:
                        # Second signal: stop draining, abort now.
                        self._pending.clear()
                        self._kill_pool()
                        break
                    if not self._pending:
                        break
                now = monotonic()
                while self._delayed and self._delayed[0][0] <= now:
                    _, idx, attempt = heapq.heappop(self._delayed)
                    self._ready.append((idx, attempt))
                while self._ready and len(self._pending) < self.jobs:
                    idx, attempt = self._ready.popleft()
                    self._submit(idx, attempt)
                if not self._pending:
                    if self._delayed:
                        sleep(max(0.0, self._delayed[0][0] - monotonic()))
                    continue
                self._reap(self._wait_timeout())
            if self._stop_signals:
                raise SweepInterrupted(
                    journal_path=self.journal.path if self.journal else None,
                    completed=sum(
                        1 for slot in self._outcomes if slot is not None
                    ),
                    total=len(self.specs),
                )
            return self._fold()
        except BaseException:
            # Exceptional exit (quarantine under on_error="raise", a
            # simulated failure propagating, SweepInterrupted): workers
            # may be mid-cell or outright hung — kill the pool rather
            # than let _shutdown() join a worker that never returns.
            self._kill_pool()
            raise
        finally:
            restore()
            self._shutdown()

    # -- pool lifecycle ------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs, initializer=_init_worker
        )

    def _kill_pool(self) -> None:
        """Terminate every worker and discard the executor.  Private
        ``_processes`` is the only handle ProcessPoolExecutor exposes;
        guard it so a stdlib change degrades to a plain shutdown."""
        if self._pool is None:
            return
        for proc in list((getattr(self._pool, "_processes", None) or {}).values()):
            try:
                proc.kill()
            except OSError:
                pass
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None

    def _dump_worker_stacks(self) -> None:
        """Best-effort SIGUSR1 to every pool worker (each registered a
        faulthandler dump at init) plus a short grace so the tracebacks
        reach stderr before the kill.  A worker wedged in C code or
        already gone simply produces no dump."""
        if self._pool is None or not hasattr(signal, "SIGUSR1"):
            return
        procs = list((getattr(self._pool, "_processes", None) or {}).values())
        signalled = False
        for proc in procs:
            if proc.pid is None:
                continue
            try:
                os.kill(proc.pid, signal.SIGUSR1)
                signalled = True
            except OSError:
                pass
        if signalled:
            sleep(0.05)

    def _respawn(self) -> None:
        """Kill the (hung or broken) pool and start a fresh one.
        In-flight specs that were not themselves charged with a failure
        re-run at their *same* attempt number — they were innocent
        passengers of the respawn."""
        for inflight in self._pending.values():
            self._ready.append((inflight.idx, inflight.attempt))
        self._pending.clear()
        self._kill_pool()
        self._pool = self._make_pool()

    def _shutdown(self) -> None:
        """Final teardown: join workers so the interpreter exits clean.
        (``wait=False`` here would leave the executor's atexit hook
        poking a dead pipe.)  Pending futures are cancelled; anything
        still *running* finishes its cell first — by this point that is
        either nothing (clean completion) or the drain the user asked
        for with Ctrl-C."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- the wait loop -------------------------------------------------

    def _submit(self, idx: int, attempt: int) -> None:
        deadline = (
            monotonic() + self.policy.run_timeout
            if self.policy.run_timeout is not None
            else None
        )
        future = self._pool.submit(_worker_run, self.specs[idx])
        self._pending[future] = _Inflight(idx, attempt, deadline)

    def _wait_timeout(self) -> Optional[float]:
        """How long ``wait()`` may block: until the nearest deadline or
        the nearest backoff expiry, whichever comes first."""
        horizons = [
            inflight.deadline
            for inflight in self._pending.values()
            if inflight.deadline is not None
        ]
        if self._delayed:
            horizons.append(self._delayed[0][0])
        if not horizons:
            return None
        return max(0.05, min(horizons) - monotonic())

    def _reap(self, timeout: Optional[float]) -> None:
        done, _ = wait(
            list(self._pending), timeout=timeout, return_when=FIRST_COMPLETED
        )
        broken = False
        for future in done:
            inflight = self._pending.pop(future)
            try:
                status, payload = future.result()
            except BrokenProcessPool:
                broken = True
                self._host_failure(
                    inflight,
                    WorkerCrashError(
                        f"worker process died during attempt "
                        f"{inflight.attempt} of {self._key(inflight.idx)}"
                    ),
                )
                continue
            self._complete(inflight, status, payload)
        if broken:
            self._respawn()
            return
        now = monotonic()
        expired = [
            (future, inflight)
            for future, inflight in self._pending.items()
            if inflight.deadline is not None and inflight.deadline <= now
        ]
        if expired:
            for future, inflight in expired:
                del self._pending[future]
                self._host_failure(
                    inflight,
                    SpecTimeoutError(
                        f"attempt {inflight.attempt} of "
                        f"{self._key(inflight.idx)} exceeded the "
                        f"{self.policy.run_timeout}s run timeout"
                    ),
                )
            # The expired attempts are still burning CPU inside the
            # pool; the only way to reclaim those workers is to kill
            # the pool and respawn it for the survivors.  Ask each for
            # a stack dump first — the kill destroys the evidence.
            self._dump_worker_stacks()
            self._respawn()

    # -- outcome handling ----------------------------------------------

    def _key(self, idx: int) -> str:
        spec = self.specs[idx]
        return f"{spec.workload}/{spec.scheme}/thp={int(spec.thp)}"

    def _complete(self, inflight: _Inflight, status: str, payload) -> None:
        """A worker returned: either a result or a *simulated* failure
        (deterministic — journaled and never retried)."""
        spec = self.specs[inflight.idx]
        self._outcomes[inflight.idx] = (status, payload)
        if self.journal is not None:
            if status == "ok":
                self.journal.record_result(
                    spec.workload, spec.scheme, spec.thp, payload
                )
            else:
                self.journal.record_failure(
                    spec.workload,
                    spec.scheme,
                    spec.thp,
                    RunFailure(
                        spec.workload,
                        spec.scheme,
                        spec.thp,
                        type(payload).__name__,
                        str(payload),
                    ),
                )
        if status == "error" and self.on_error == "raise":
            raise payload
        if self.verbose:
            if status == "ok":
                print(
                    f"  {spec.workload:6s} {spec.scheme:7s} "
                    f"thp={int(spec.thp)} "
                    f"cycles={payload.cycles/1e6:8.2f}M "
                    f"mmu={payload.mmu_cycles/1e6:6.2f}M "
                    f"traffic={payload.walk_traffic:8d}"
                )
            else:
                print(
                    f"  {spec.workload:6s} {spec.scheme:7s} "
                    f"thp={int(spec.thp)} "
                    f"FAILED: {type(payload).__name__}: {payload}"
                )

    def _host_failure(self, inflight: _Inflight, exc: Exception) -> None:
        """A timeout or crash: retry with backoff, or quarantine."""
        if inflight.attempt >= self.policy.max_attempts:
            quarantined = SpecQuarantinedError(
                f"{self._key(inflight.idx)} quarantined after "
                f"{inflight.attempt} attempts; last failure: "
                f"{type(exc).__name__}: {exc}"
            )
            if self.on_error == "raise":
                raise quarantined
            self._outcomes[inflight.idx] = ("error", quarantined)
            if self.verbose:
                spec = self.specs[inflight.idx]
                print(
                    f"  {spec.workload:6s} {spec.scheme:7s} "
                    f"thp={int(spec.thp)} QUARANTINED: {quarantined}"
                )
            return
        delay = self.policy.backoff(inflight.attempt)
        if self.verbose:
            print(
                f"  retrying {self._key(inflight.idx)} in {delay:.2f}s "
                f"(attempt {inflight.attempt + 1}/"
                f"{self.policy.max_attempts}): {type(exc).__name__}: {exc}"
            )
        heapq.heappush(
            self._delayed,
            (monotonic() + delay, inflight.idx, inflight.attempt + 1),
        )

    # -- journal replay and folding ------------------------------------

    def _replay_journal_hits(self) -> None:
        if self.journal is None:
            return
        for idx, spec in enumerate(self.specs):
            hit = self.journal.result_for(spec.workload, spec.scheme, spec.thp)
            if hit is not None:
                self._outcomes[idx] = ("ok", hit)
                continue
            failure = self.journal.failure_for(
                spec.workload, spec.scheme, spec.thp
            )
            if failure is not None:
                if self.on_error == "raise":
                    raise ReproError(
                        f"journaled failure for {self._key(idx)}: "
                        f"{failure.error}: {failure.message}"
                    )
                self._outcomes[idx] = ("failure", failure)

    def _fold(self) -> ResultSet:
        """Outcomes → ResultSet in spec order, exactly like the serial
        sweep would have produced them."""
        results = ResultSet()
        for spec, outcome in zip(self.specs, self._outcomes):
            status, payload = outcome
            if status == "ok":
                results.add(payload)
            elif status == "failure":
                results.failures.append(payload)
            else:
                results.add_failure(
                    spec.workload, spec.scheme, spec.thp, payload
                )
        return results

    # -- signals -------------------------------------------------------

    def _install_signal_handlers(self):
        """SIGINT/SIGTERM → drain; only possible from the main thread
        (signal.signal raises elsewhere, e.g. under a threaded caller,
        in which case Ctrl-C keeps its default behaviour)."""
        if threading.current_thread() is not threading.main_thread():
            return lambda: None

        def _request_stop(signum, frame):
            self._stop_signals += 1

        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, _request_stop)

        def restore():
            for signum, handler in previous.items():
                signal.signal(signum, handler)

        return restore


def run_specs_supervised(
    specs: Sequence[RunSpec],
    jobs: int,
    on_error: str = "raise",
    verbose: bool = False,
    journal: Optional[RunJournal] = None,
    policy: Optional[SupervisorPolicy] = None,
) -> ResultSet:
    """Run ``specs`` under supervision; see :class:`SweepSupervisor`."""
    return SweepSupervisor(
        specs,
        jobs=jobs,
        on_error=on_error,
        verbose=verbose,
        journal=journal,
        policy=policy,
    ).run()
