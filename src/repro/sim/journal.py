"""Append-only run journal: crash-safe checkpointing for sweeps.

A sweep over the (workload × scheme × THP) grid can run for hours; a
crash — or a Ctrl-C at 95% — must not discard the completed cells.
The journal is the durability layer underneath ``run_suite(...,
journal=path, resume=True)``:

* **Append-only JSONL.**  One record per line.  The first line is a
  header carrying the schema version and the sweep's *config
  fingerprint*; every later line is a completed cell — a ``result``
  (the full :class:`~repro.sim.results.SimResult`) or a ``failure`` (a
  *simulated* :class:`~repro.errors.ReproError`, which is
  deterministic and therefore safe to replay).  Host-level failures
  (timeouts, crashed workers) are deliberately **not** journaled: they
  are retryable, and a resume should retry them.
* **Checksummed records.**  Each line wraps its payload with a SHA-256
  digest; a record whose digest does not match is treated as
  corruption, not data.
* **Torn-write tolerant.**  A crash can leave a partial final line (or
  a corrupt tail).  Loading stops at the first unparsable or
  checksum-failing record and keeps everything before it — the torn
  cell simply re-runs on resume.
* **Fingerprint-validated resume.**  The header pins a canonical hash
  of the sweep's :class:`~repro.sim.config.SimConfig`; resuming with a
  different configuration raises a typed
  :class:`~repro.errors.JournalMismatchError` (exit code 2 in the CLI)
  instead of silently mixing cells simulated under different
  parameters.

Records are flushed and fsync'd as they are written: a journal entry
either exists durably or the cell re-runs.  Replayed cells are
bit-identical to fresh runs because ``SimResult`` round-trips through
JSON exactly (floats serialize via ``repr``).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ConfigError, JournalMismatchError
from repro.sim.config import SimConfig
from repro.sim.results import RunFailure, SimResult

__all__ = [
    "RunJournal",
    "canonical_json",
    "config_fingerprint",
    "parse_record_line",
    "record_digest",
    "record_line",
    "spec_key",
]

#: Bump when the record layout changes incompatibly; a journal written
#: under another version is rejected on resume (JournalMismatchError).
JOURNAL_SCHEMA_VERSION = 1


def canonical_json(payload) -> str:
    """Canonical JSON: the byte-stable form both checksums and the
    config fingerprint hash over."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


def record_digest(payload) -> str:
    """SHA-256 of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def record_line(record: dict) -> str:
    """One checksummed JSONL line (no trailing newline).

    The record wrapped with its own digest — the append format shared
    by the run journal here and the per-tenant serve journals
    (:mod:`repro.serve.tenant_journal`)."""
    return json.dumps({"record": record, "sha256": record_digest(record)})


def parse_record_line(line: str) -> Optional[dict]:
    """Inverse of :func:`record_line`: the record, or None if the line
    is torn, unparsable, or fails its checksum."""
    try:
        wrapper = json.loads(line)
    except ValueError:
        return None
    if not isinstance(wrapper, dict):
        return None
    record = wrapper.get("record")
    if record is None or wrapper.get("sha256") != record_digest(record):
        return None
    return record


# Backward-compatible private aliases (tests and older callers poke
# these names).
_canonical = canonical_json
_digest = record_digest


def config_fingerprint(config: SimConfig) -> str:
    """Stable hash of every field that shapes a cell's result.

    Two sweeps share a journal only if their configs hash identically;
    the grid (workloads/schemes/page modes) is *not* part of the
    fingerprint on purpose — journal hits are keyed per cell, so a
    resumed sweep may legitimately extend or shrink the grid.

    ``thp`` is excluded: the sweep clones the base config with each
    page mode, and the journal key already carries the THP flag — a
    journal written from a ``thp=True`` base must still hit.

    The trace-pipeline knobs (``packed_traces``, ``use_trace_cache``,
    ``trace_cache_dir``) are excluded too: they change how traces are
    produced and shared, never the simulated numbers — a sweep
    journaled with the cache on must resume cleanly with it off.  The
    vectorized-engine knobs (``vectorized_engine``, ``vectorized_epoch``,
    ``vectorized_min_fast``) are excluded for the same reason: the
    engine is bit-identical to the scalar loop by contract.
    """
    fields = asdict(config)
    fields.pop("thp", None)
    fields.pop("packed_traces", None)
    fields.pop("use_trace_cache", None)
    fields.pop("trace_cache_dir", None)
    fields.pop("vectorized_engine", None)
    fields.pop("vectorized_epoch", None)
    fields.pop("vectorized_min_fast", None)
    return _digest(fields)


def spec_key(workload: str, scheme: str, thp: bool) -> str:
    """Canonical per-cell key (scale/seed live in the fingerprint)."""
    return f"{workload}/{scheme}/thp={int(thp)}"


class RunJournal:
    """One sweep's append-only journal file.

    Use :meth:`open` (the only constructor callers need): it creates a
    fresh journal, or — with ``resume=True`` — loads completed cells
    from an existing one after validating its fingerprint.
    """

    def __init__(self, path: Path, fingerprint: str):
        self.path = path
        self.fingerprint = fingerprint
        self.completed: Dict[str, SimResult] = {}
        self.failed: Dict[str, RunFailure] = {}
        self._fh = None

    # -- construction -------------------------------------------------

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        config: SimConfig,
        resume: bool = False,
    ) -> "RunJournal":
        """Open ``path`` for the sweep described by ``config``.

        * ``resume=False``: truncate and write a fresh header.
        * ``resume=True`` + existing journal: load it (tolerating a
          torn tail) and verify the fingerprint — raise
          :class:`JournalMismatchError` on any disagreement.
        * ``resume=True`` + no journal: a :class:`ConfigError` (exit
          code 2 in the CLI) — asking to resume work that never
          happened is a configuration mistake, distinct from the
          stale-fingerprint :class:`JournalMismatchError`.
        * ``resume=True`` + an unreadable header (a crash during
          journal creation): nothing usable to resume; start fresh
          with a warning.
        """
        path = Path(path)
        journal = cls(path, config_fingerprint(config))
        if resume:
            if not path.exists():
                raise ConfigError(
                    f"nothing to resume at {path}: the journal does not "
                    "exist (re-run without --resume to start one)"
                )
            if journal._load():
                journal._fh = path.open("a", encoding="utf-8")
                return journal
            print(
                f"repro: journal {path} has no readable header; "
                "starting fresh",
                file=sys.stderr,
            )
        journal._start_fresh()
        return journal

    def _start_fresh(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")
        self._append(
            {
                "kind": "header",
                "version": JOURNAL_SCHEMA_VERSION,
                "fingerprint": self.fingerprint,
            }
        )

    def _load(self) -> bool:
        """Read an existing journal; returns False when there is no
        usable header (caller starts fresh).  Stops at the first torn
        or checksum-failing record; later lines are suspect and the
        cells they described simply re-run."""
        lines = self.path.read_text(encoding="utf-8").splitlines()
        records = []
        for number, line in enumerate(lines, start=1):
            record = self._parse_line(line)
            if record is None:
                print(
                    f"repro: journal {self.path}:{number}: torn or "
                    f"corrupt record; keeping the {number - 1} records "
                    "before it",
                    file=sys.stderr,
                )
                break
            records.append(record)
        if not records or records[0].get("kind") != "header":
            return False
        header = records[0]
        if header.get("version") != JOURNAL_SCHEMA_VERSION:
            raise JournalMismatchError(
                f"journal {self.path} has schema version "
                f"{header.get('version')!r}, this build writes "
                f"{JOURNAL_SCHEMA_VERSION}; re-run without --resume to "
                "start a fresh journal"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise JournalMismatchError(
                f"journal {self.path} was written by a sweep with a "
                "different configuration (fingerprint "
                f"{header.get('fingerprint')!r} != {self.fingerprint!r}); "
                "its cells cannot be mixed with this sweep's — re-run "
                "without --resume to start a fresh journal"
            )
        for record in records[1:]:
            key = record.get("key")
            if record.get("kind") == "result":
                # Last record wins: a cell re-journaled after an
                # earlier resume supersedes the older entry.
                self.completed[key] = SimResult.from_dict(record["result"])
            elif record.get("kind") == "failure":
                self.failed[key] = RunFailure.from_dict(record["failure"])
        return True

    @staticmethod
    def _parse_line(line: str) -> Optional[dict]:
        """One JSONL record, or None if torn/corrupt."""
        return parse_record_line(line)

    # -- appending ----------------------------------------------------

    def _append(self, record: dict) -> None:
        self._fh.write(record_line(record) + "\n")
        # Flush + fsync per record: cells take milliseconds to compute
        # at minimum, so durability here is cheap — and a record either
        # survives a crash whole or its cell re-runs.
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_result(self, workload: str, scheme: str, thp: bool,
                      result: SimResult) -> None:
        key = spec_key(workload, scheme, thp)
        self.completed[key] = result
        self._append({"kind": "result", "key": key,
                      "result": asdict(result)})

    def record_failure(self, workload: str, scheme: str, thp: bool,
                       failure: RunFailure) -> None:
        key = spec_key(workload, scheme, thp)
        self.failed[key] = failure
        self._append({"kind": "failure", "key": key,
                      "failure": asdict(failure)})

    # -- lookup -------------------------------------------------------

    def result_for(self, workload: str, scheme: str,
                   thp: bool) -> Optional[SimResult]:
        return self.completed.get(spec_key(workload, scheme, thp))

    def failure_for(self, workload: str, scheme: str,
                    thp: bool) -> Optional[RunFailure]:
        return self.failed.get(spec_key(workload, scheme, thp))

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
