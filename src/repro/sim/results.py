"""Result records and aggregation helpers for the simulation runs."""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.schemes import BASELINE_SCHEME


@dataclass
class SimResult:
    """Everything one (workload, scheme, page-size) run produced."""

    workload: str
    scheme: str
    thp: bool
    refs: int
    instructions: int
    cycles: float
    # MMU breakdown
    mmu_cycles: int = 0
    walk_cycles: int = 0
    walks: int = 0
    walk_traffic: int = 0
    l1_tlb_hits: int = 0
    l2_tlb_hits: int = 0
    l2_tlb_miss_rate: float = 0.0
    # Cache behaviour
    l1_mpki: float = 0.0
    l2_mpki: float = 0.0
    l3_mpki: float = 0.0
    dram_accesses: int = 0
    # Walk-cache behaviour
    walk_cache_hit_rate: float = 0.0
    walk_cache_detail: Dict[str, float] = field(default_factory=dict)
    # Structure characterization
    table_bytes: int = 0
    index_size_bytes: int = 0
    index_depth: int = 0
    collision_rate: float = 0.0
    avg_extra_accesses: float = 0.0
    mgmt_cycles: float = 0.0
    mgmt_detail: Dict[str, float] = field(default_factory=dict)
    # Fault injection and graceful degradation
    faults_injected: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    incorrect_translations: int = 0
    recoveries: int = 0
    recovery_detail: Dict[str, int] = field(default_factory=dict)
    recovery_cycles: int = 0
    poison_detections: int = 0

    @property
    def walk_cycles_per_walk(self) -> float:
        return self.walk_cycles / self.walks if self.walks else 0.0

    @property
    def walk_traffic_per_walk(self) -> float:
        return self.walk_traffic / self.walks if self.walks else 0.0

    @property
    def mgmt_fraction(self) -> float:
        return self.mgmt_cycles / self.cycles if self.cycles else 0.0

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2)

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "SimResult":
        """Inverse of ``dataclasses.asdict``.

        JSON round-trips every field exactly (floats serialize via
        ``repr``), so a result replayed from the run journal or a saved
        ResultSet is bit-identical to the freshly-computed one.
        """
        return cls(**record)


@dataclass
class RunFailure:
    """One (workload, scheme, thp) run that raised instead of finishing."""

    workload: str
    scheme: str
    thp: bool
    error: str  # exception class name
    message: str

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "RunFailure":
        return cls(**record)


class ResultSet:
    """A collection of runs with the paper's normalizations built in."""

    def __init__(self, results: Optional[Iterable[SimResult]] = None):
        self.results: List[SimResult] = list(results or [])
        self.failures: List[RunFailure] = []
        # Filled by run_suite when the trace cache is in play: this
        # sweep's {"root", "hits", "builds", "invalidated"} counters.
        # Reporting metadata only — never part of SimResult, whose
        # fields are pinned by the golden bit-identity tests.
        self.trace_cache: Optional[dict] = None

    def add(self, result: SimResult) -> None:
        self.results.append(result)

    def add_failure(
        self, workload: str, scheme: str, thp: bool, exc: BaseException
    ) -> None:
        self.failures.append(
            RunFailure(workload, scheme, thp, type(exc).__name__, str(exc))
        )

    # -- persistence -----------------------------------------------------
    def save(self, path) -> None:
        """Write all runs to a JSON file (EXPERIMENTS.md provenance)."""
        from pathlib import Path

        records = [asdict(r) for r in self.results]
        Path(path).write_text(json.dumps(records, indent=1))

    @staticmethod
    def load(path) -> "ResultSet":
        from pathlib import Path

        records = json.loads(Path(path).read_text())
        return ResultSet(SimResult.from_dict(record) for record in records)

    def get(self, workload: str, scheme: str, thp: bool) -> SimResult:
        for r in self.results:
            if r.workload == workload and r.scheme == scheme and r.thp == thp:
                return r
        raise KeyError(f"no run for ({workload}, {scheme}, thp={thp})")

    def workloads(self) -> List[str]:
        seen: List[str] = []
        for r in self.results:
            if r.workload not in seen:
                seen.append(r.workload)
        return seen

    def schemes(self) -> List[str]:
        """Distinct scheme names present, in first-seen order."""
        seen: List[str] = []
        for r in self.results:
            if r.scheme not in seen:
                seen.append(r.scheme)
        return seen

    # -- the paper's metrics ------------------------------------------
    def speedup(self, workload: str, scheme: str, thp: bool,
                baseline_scheme: str = BASELINE_SCHEME,
                baseline_thp: Optional[bool] = None) -> float:
        """Execution-time speedup vs. a baseline run (Figure 9)."""
        if baseline_thp is None:
            baseline_thp = thp
        base = self.get(workload, baseline_scheme, baseline_thp)
        run = self.get(workload, scheme, thp)
        return base.cycles / run.cycles

    def mmu_overhead_relative(self, workload: str, scheme: str, thp: bool) -> float:
        """MMU cycles normalized to the baseline scheme at the same
        page size (Figure 10)."""
        base = self.get(workload, BASELINE_SCHEME, thp)
        run = self.get(workload, scheme, thp)
        return run.mmu_cycles / base.mmu_cycles if base.mmu_cycles else 0.0

    def walk_traffic_relative(self, workload: str, scheme: str, thp: bool) -> float:
        """Page-walk memory requests normalized to the baseline (Fig 11)."""
        base = self.get(workload, BASELINE_SCHEME, thp)
        run = self.get(workload, scheme, thp)
        return run.walk_traffic / base.walk_traffic if base.walk_traffic else 0.0

    def mpki_relative(self, workload: str, scheme: str, thp: bool, level: str) -> float:
        """L2/L3 MPKI normalized to the baseline (Figure 12)."""
        base = self.get(workload, BASELINE_SCHEME, thp)
        run = self.get(workload, scheme, thp)
        base_v = getattr(base, f"{level}_mpki")
        return getattr(run, f"{level}_mpki") / base_v if base_v else 0.0


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def mean(values: Iterable[float]) -> float:
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0
