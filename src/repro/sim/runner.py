"""Experiment runner: scheme × workload × page-size sweeps.

``run_suite`` produces the single :class:`ResultSet` from which every
figure of section 7.1/7.2 is derived, exactly as the paper derives
Figures 9-12 from one set of simulations.

Long sweeps can be made crash-safe: ``journal=path`` checkpoints every
completed cell to an append-only JSONL journal
(:mod:`repro.sim.journal`), and ``resume=True`` replays journal hits
instead of re-running them — a resumed sweep is bit-identical to an
uninterrupted one.  ``run_timeout``/``retries`` engage the sweep
supervisor (:mod:`repro.sim.supervisor`) for per-run deadlines and
bounded retry of hung or crashed workers.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import ConfigError, ReproError, SweepInterrupted
from repro.schemes import registry as scheme_registry
from repro.sim.config import SCHEMES, SimConfig
from repro.sim.journal import RunJournal
from repro.sim.parallel import make_specs, resolve_jobs
from repro.sim.results import ResultSet, RunFailure
from repro.sim.simulator import Simulator
from repro.workloads.compile import compiled_trace_for, trace_spec
from repro.workloads.registry import SUITE, BuiltWorkload, build_workload
from repro.workloads.trace_cache import TraceCache, cache_for_config


def run_suite(
    workload_names: Optional[Iterable[str]] = None,
    schemes: Iterable[str] = SCHEMES,
    page_modes: Iterable[bool] = (False, True),
    config: Optional[SimConfig] = None,
    verbose: bool = False,
    on_error: str = "raise",
    jobs: int = 1,
    journal: Optional[Union[str, "RunJournal"]] = None,
    resume: bool = False,
    run_timeout: Optional[float] = None,
    retries: Optional[int] = None,
) -> ResultSet:
    """Run every (workload, scheme, thp) combination.

    ``page_modes`` holds THP flags: False = 4 KB pages only, True =
    transparent huge pages (section 6.3's two configurations).

    ``on_error`` controls what happens when one run raises a
    :class:`ReproError`: ``"raise"`` propagates immediately (fail
    fast), ``"collect"`` records it in ``ResultSet.failures`` and moves
    on to the remaining combinations.  Non-``ReproError`` exceptions
    (genuine bugs) always propagate.

    ``jobs`` > 1 fans the combinations out across that many worker
    processes under the sweep supervisor
    (:mod:`repro.sim.supervisor`); results are bit-identical to the
    serial sweep and come back in the same order.

    ``journal`` names a crash-safe run journal (a path, or an
    already-open :class:`RunJournal`): every completed cell is
    checkpointed as it finishes.  ``resume=True`` loads the journal
    first — rejecting one written under a different config with
    :class:`~repro.errors.JournalMismatchError` — and re-runs only the
    cells it does not hold.  ``run_timeout`` (seconds per run) and
    ``retries`` (extra attempts for hung/crashed runs, default 2)
    engage supervised execution; a ``run_timeout`` with ``jobs=1``
    still runs through a one-worker pool, since only a subprocess can
    be killed on deadline.
    """
    if on_error not in ("raise", "collect"):
        raise ConfigError(
            f"on_error must be 'raise' or 'collect', got {on_error!r}"
        )
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs!r}")
    if resume and journal is None:
        raise ConfigError("resume=True requires a journal path")
    base = config or SimConfig()
    names = list(workload_names or SUITE)
    # Resolve every scheme through the registry up front: a typo'd name
    # fails here — with the list of registered schemes — not deep inside
    # a worker process mid-sweep.  Aliases canonicalize so serial and
    # parallel sweeps record identical ``SimResult.scheme`` strings.
    schemes = [scheme_registry.canonical_name(s) for s in schemes]
    page_modes = list(page_modes)

    owns_journal = journal is not None and not isinstance(journal, RunJournal)
    jnl: Optional[RunJournal] = (
        RunJournal.open(journal, base, resume=resume)
        if owns_journal
        else journal
    )
    try:
        # Guardrail (see resolve_jobs): a pool that cannot win falls
        # back to the serial loop, with the reason on stderr — small
        # grids and oversubscribed CPUs measured *slower* than serial.
        jobs, fallback_reason = resolve_jobs(
            jobs, len(names) * len(schemes) * len(page_modes), run_timeout
        )
        if fallback_reason is not None:
            print(
                f"repro: parallel sweep falling back to serial: "
                f"{fallback_reason}",
                file=sys.stderr,
            )
        cache = cache_for_config(base) if base.packed_traces else None
        stats_before = cache.stats() if cache is not None else None
        if jobs > 1 or run_timeout is not None:
            from repro.sim.supervisor import (
                SupervisorPolicy,
                run_specs_supervised,
            )

            policy = SupervisorPolicy(
                run_timeout=run_timeout,
                retries=2 if retries is None else retries,
            )
            specs = make_specs(names, schemes, page_modes, base)
            if cache is not None:
                # Pre-compile each distinct trace once, in the parent,
                # before any worker forks: workers then memmap the
                # cached entries instead of re-synthesizing the same
                # trace jobs times.
                _precompile_traces(
                    _pending_workloads(names, schemes, page_modes, jnl),
                    base,
                    cache,
                )
            results = run_specs_supervised(
                specs,
                jobs=jobs,
                on_error=on_error,
                verbose=verbose,
                journal=jnl,
                policy=policy,
            )
        else:
            results = _run_serial(
                names, schemes, page_modes, base, verbose, on_error, jnl,
                cache,
            )
        if cache is not None:
            results.trace_cache = _cache_delta(cache, stats_before)
        return results
    finally:
        if owns_journal and jnl is not None:
            jnl.close()


def _pending_workloads(
    names: List[str],
    schemes: List[str],
    page_modes: List[bool],
    jnl: Optional[RunJournal],
) -> List[str]:
    """Workload names some non-journaled cell still needs, in sweep
    order: resuming an almost-finished sweep must not rebuild (or even
    touch traces for) fully-journaled names."""
    pending = []
    for name in names:
        for thp in page_modes:
            for scheme in schemes:
                if jnl is not None and (
                    jnl.result_for(name, scheme, thp) is not None
                    or jnl.failure_for(name, scheme, thp) is not None
                ):
                    continue
                if name not in pending:
                    pending.append(name)
    return pending


def _precompile_traces(
    names: List[str],
    base: SimConfig,
    cache: TraceCache,
    built: Optional[Dict[str, BuiltWorkload]] = None,
) -> None:
    """Ensure the cache holds each pending workload's trace.

    A warm entry is a digest-keyed lookup plus a checksum pass — no
    workload construction at all, which is where the warm-cache sweep
    setup's >=5x win over cold comes from.  A cold miss builds the
    workload (unless the caller already has it), synthesizes, packs
    and stores."""
    for name in names:
        workload = built.get(name) if built else None
        if workload is None:
            spec = trace_spec(
                name,
                base.footprint_scale,
                base.workload_seed,
                base.num_refs,
                base.trace_seed,
            )
            if cache.get(spec) is not None:
                continue
            try:
                workload = build_workload(
                    name, scale=base.footprint_scale, seed=base.workload_seed
                )
            except KeyError as exc:
                raise ConfigError(exc.args[0] if exc.args else str(exc)) from exc
        compiled_trace_for(workload, base.num_refs, base.trace_seed, cache)


def _cache_delta(cache: TraceCache, before: Dict[str, object]) -> Dict[str, object]:
    """This sweep's share of the per-process cache counters."""
    after = cache.stats()
    return {
        "root": after["root"],
        "hits": after["hits"] - before["hits"],
        "builds": after["builds"] - before["builds"],
        "invalidated": after["invalidated"] - before["invalidated"],
    }


def _run_serial(
    names: List[str],
    schemes: List[str],
    page_modes: List[bool],
    base: SimConfig,
    verbose: bool,
    on_error: str,
    jnl: Optional[RunJournal],
    cache: Optional[TraceCache] = None,
) -> ResultSet:
    """The in-process sweep loop, with optional journal checkpoints."""
    cells = [
        (thp, name, scheme)
        for thp in page_modes
        for name in names
        for scheme in schemes
    ]
    # Build each workload once — but only the ones some non-journaled
    # cell still needs: resuming an almost-finished sweep must not
    # rebuild multi-second workloads for fully-journaled names.
    needed = []
    for thp, name, scheme in cells:
        if jnl is not None and (
            jnl.result_for(name, scheme, thp) is not None
            or jnl.failure_for(name, scheme, thp) is not None
        ):
            continue
        if name not in needed:
            needed.append(name)
    built: Dict[str, BuiltWorkload] = {}
    for name in needed:
        try:
            built[name] = build_workload(
                name, scale=base.footprint_scale, seed=base.workload_seed
            )
        except KeyError as exc:
            # A typo'd workload name is a configuration mistake, not a
            # crash: surface it as the CLI's one-line exit-code-2 path.
            raise ConfigError(exc.args[0] if exc.args else str(exc)) from exc
    if cache is not None:
        # Compile each distinct trace once up front (the memo on the
        # workload makes every cell below a lookup); with a warm cache
        # this is a checksum + memmap per workload, not a synthesis.
        _precompile_traces(needed, base, cache, built)
    results = ResultSet()
    try:
        for thp, name, scheme in cells:
            if jnl is not None:
                hit = jnl.result_for(name, scheme, thp)
                if hit is not None:
                    results.add(hit)
                    continue
                failure = jnl.failure_for(name, scheme, thp)
                if failure is not None:
                    if on_error == "raise":
                        raise ReproError(
                            f"journaled failure for {name}/{scheme}/"
                            f"thp={int(thp)}: {failure.error}: "
                            f"{failure.message}"
                        )
                    results.failures.append(failure)
                    continue
            cfg = base.clone(thp=thp)
            try:
                result = Simulator(scheme, built[name], cfg).run()
            except ReproError as exc:
                if on_error == "raise":
                    raise
                failure = RunFailure(
                    name, scheme, thp, type(exc).__name__, str(exc)
                )
                results.failures.append(failure)
                if jnl is not None:
                    jnl.record_failure(name, scheme, thp, failure)
                if verbose:
                    print(
                        f"  {name:6s} {scheme:7s} thp={int(thp)} "
                        f"FAILED: {type(exc).__name__}: {exc}"
                    )
                continue
            results.add(result)
            if jnl is not None:
                jnl.record_result(name, scheme, thp, result)
            if verbose:
                print(
                    f"  {name:6s} {scheme:7s} thp={int(thp)} "
                    f"cycles={result.cycles/1e6:8.2f}M "
                    f"mmu={result.mmu_cycles/1e6:6.2f}M "
                    f"traffic={result.walk_traffic:8d}"
                )
    except KeyboardInterrupt:
        if jnl is not None:
            # Completed cells are already durably journaled; hand the
            # CLI enough context for its "resume with ..." hint.
            raise SweepInterrupted(
                journal_path=jnl.path,
                completed=len(results.results) + len(results.failures),
                total=len(cells),
            ) from None
        raise
    return results


def summarize_speedups(
    results: ResultSet, thp: bool
) -> List[Dict[str, object]]:
    """Speedup rows for Figure 9, one dict per workload.

    Each row maps ``"workload"`` to the workload name and each core
    scheme name (the registry's headline comparison set) to its speedup
    over the radix baseline; schemes missing from ``results`` are
    omitted from the row.
    """
    rows: List[Dict[str, object]] = []
    for workload in results.workloads():
        row: Dict[str, object] = {"workload": workload}
        for scheme in scheme_registry.core_schemes():
            try:
                row[scheme] = results.speedup(workload, scheme, thp)
            except KeyError:
                continue
        rows.append(row)
    return rows
