"""Experiment runner: scheme × workload × page-size sweeps.

``run_suite`` produces the single :class:`ResultSet` from which every
figure of section 7.1/7.2 is derived, exactly as the paper derives
Figures 9-12 from one set of simulations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigError, ReproError
from repro.schemes import registry as scheme_registry
from repro.sim.config import SCHEMES, SimConfig
from repro.sim.parallel import make_specs, run_specs_parallel
from repro.sim.results import ResultSet
from repro.sim.simulator import Simulator
from repro.workloads.registry import SUITE, BuiltWorkload, build_workload


def run_suite(
    workload_names: Optional[Iterable[str]] = None,
    schemes: Iterable[str] = SCHEMES,
    page_modes: Iterable[bool] = (False, True),
    config: Optional[SimConfig] = None,
    verbose: bool = False,
    on_error: str = "raise",
    jobs: int = 1,
) -> ResultSet:
    """Run every (workload, scheme, thp) combination.

    ``page_modes`` holds THP flags: False = 4 KB pages only, True =
    transparent huge pages (section 6.3's two configurations).

    ``on_error`` controls what happens when one run raises a
    :class:`ReproError`: ``"raise"`` propagates immediately (fail
    fast), ``"collect"`` records it in ``ResultSet.failures`` and moves
    on to the remaining combinations.  Non-``ReproError`` exceptions
    (genuine bugs) always propagate.

    ``jobs`` > 1 fans the combinations out across that many worker
    processes (:mod:`repro.sim.parallel`); results are bit-identical to
    the serial sweep and come back in the same order.
    """
    if on_error not in ("raise", "collect"):
        raise ConfigError(
            f"on_error must be 'raise' or 'collect', got {on_error!r}"
        )
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs!r}")
    base = config or SimConfig()
    names = list(workload_names or SUITE)
    # Resolve every scheme through the registry up front: a typo'd name
    # fails here — with the list of registered schemes — not deep inside
    # a worker process mid-sweep.  Aliases canonicalize so serial and
    # parallel sweeps record identical ``SimResult.scheme`` strings.
    schemes = [scheme_registry.canonical_name(s) for s in schemes]
    page_modes = list(page_modes)
    if jobs > 1:
        specs = make_specs(names, schemes, page_modes, base)
        return run_specs_parallel(
            specs, jobs=jobs, on_error=on_error, verbose=verbose
        )
    results = ResultSet()
    built: Dict[str, BuiltWorkload] = {}
    for name in names:
        try:
            built[name] = build_workload(
                name, scale=base.footprint_scale, seed=base.workload_seed
            )
        except KeyError as exc:
            # A typo'd workload name is a configuration mistake, not a
            # crash: surface it as the CLI's one-line exit-code-2 path.
            raise ConfigError(exc.args[0] if exc.args else str(exc)) from exc
    for thp in page_modes:
        for name in names:
            for scheme in schemes:
                cfg = base.clone(thp=thp)
                try:
                    sim = Simulator(scheme, built[name], cfg)
                    result = sim.run()
                except ReproError as exc:
                    if on_error == "raise":
                        raise
                    results.add_failure(name, scheme, thp, exc)
                    if verbose:
                        print(
                            f"  {name:6s} {scheme:7s} thp={int(thp)} "
                            f"FAILED: {type(exc).__name__}: {exc}"
                        )
                    continue
                results.add(result)
                if verbose:
                    print(
                        f"  {name:6s} {scheme:7s} thp={int(thp)} "
                        f"cycles={result.cycles/1e6:8.2f}M "
                        f"mmu={result.mmu_cycles/1e6:6.2f}M "
                        f"traffic={result.walk_traffic:8d}"
                    )
    return results


def summarize_speedups(
    results: ResultSet, thp: bool
) -> List[Dict[str, object]]:
    """Speedup rows for Figure 9, one dict per workload.

    Each row maps ``"workload"`` to the workload name and each core
    scheme name (the registry's headline comparison set) to its speedup
    over the radix baseline; schemes missing from ``results`` are
    omitted from the row.
    """
    rows: List[Dict[str, object]] = []
    for workload in results.workloads():
        row: Dict[str, object] = {"workload": workload}
        for scheme in scheme_registry.core_schemes():
            try:
                row[scheme] = results.speedup(workload, scheme, thp)
            except KeyError:
                continue
        rows.append(row)
    return rows
