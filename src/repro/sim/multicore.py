"""Multi-tenant and multi-threaded simulation (paper section 7.1).

*Multi-tenancy*: stacked workloads on an 8-core setup, one workload per
core, private L1/L2 and TLBs, shared L3.  The paper finds LVM's
speedups unchanged (within 0.5%) — per-process learned indexes are
independent and the LWC is ASID-tagged, so tenants do not interfere in
the MMU.

*Multi-threading*: one process, its trace interleaved across N threads,
each with its own core/MMU but one shared page table and ASID.  The
paper finds results within 1% of single-threaded because PTE updates
use per-table locking and retrains are exceedingly rare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.mmu.cache import Cache
from repro.mmu.hierarchy import MemoryHierarchy
from repro.mmu.mmu import MMU
from repro.sim.config import SimConfig
from repro.sim.results import SimResult
from repro.sim.simulator import Simulator
from repro.workloads.registry import BuiltWorkload


@dataclass
class LockStats:
    """Locking behaviour of LVM's multi-threaded updates (section 5.2)."""

    pte_lock_acquisitions: int = 0
    pte_lock_conflicts: int = 0
    retrain_lock_acquisitions: int = 0

    @property
    def conflict_rate(self) -> float:
        if not self.pte_lock_acquisitions:
            return 0.0
        return self.pte_lock_conflicts / self.pte_lock_acquisitions


class MultiTenantSimulator:
    """One workload per core, private MMUs, shared last-level cache."""

    def __init__(
        self,
        scheme: str,
        workloads: Sequence[BuiltWorkload],
        config: Optional[SimConfig] = None,
    ):
        self.config = config or SimConfig()
        self.scheme = scheme
        self.sims: List[Simulator] = []
        shared_l3: Optional[Cache] = None
        for asid, workload in enumerate(workloads):
            sim = Simulator(scheme, workload, self.config)
            if shared_l3 is None:
                shared_l3 = sim.hierarchy.l3
            else:
                # All cores contend for one L3 slice set, as stacked
                # tenants do.
                sim.hierarchy.l3 = shared_l3
            self.sims.append(sim)

    def run(self, num_refs: Optional[int] = None) -> List[SimResult]:
        """Interleave the tenants' traces round-robin through the
        shared L3 and return per-tenant results."""
        refs = num_refs or self.config.num_refs
        traces = [
            sim.workload.trace(refs, self.config.trace_seed + i)
            for i, sim in enumerate(self.sims)
        ]
        cursors = [0] * len(self.sims)
        stalls = [0] * len(self.sims)
        mmu_cycles = [0] * len(self.sims)
        chunk = 256
        active = True
        while active:
            active = False
            for i, sim in enumerate(self.sims):
                trace = traces[i]
                if cursors[i] >= len(trace):
                    continue
                active = True
                stop = min(cursors[i] + chunk, len(trace))
                for va in trace[cursors[i]:stop]:
                    va = int(va)
                    pte, tcycles = sim.mmu.translate(va, asid=i)
                    if pte is None:
                        sim.process.handle_fault(va)
                        pte, more = sim.mmu.translate(va, asid=i)
                        tcycles += more
                    mmu_cycles[i] += tcycles
                    stalls[i] += sim.hierarchy.access(pte.translate(va))
                cursors[i] = stop
        return [
            sim._result(len(traces[i]), stalls[i], mmu_cycles[i])
            for i, sim in enumerate(self.sims)
        ]


class MultiThreadedSimulator:
    """One process, N threads: shared page table, private cores."""

    def __init__(
        self,
        scheme: str,
        workload: BuiltWorkload,
        num_threads: int = 8,
        config: Optional[SimConfig] = None,
    ):
        self.config = config or SimConfig()
        self.num_threads = num_threads
        # One simulator owns the page table and its walker state...
        self.primary = Simulator(scheme, workload, self.config)
        # ...while each thread gets its own MMU front-end (per-core
        # TLBs) over a per-core walker sharing the page table and L3.
        self.mmus: List[MMU] = []
        self.hierarchies: List[MemoryHierarchy] = []
        shared_l3 = self.primary.hierarchy.l3
        for _ in range(num_threads):
            hier = MemoryHierarchy(self.config.hierarchy)
            hier.l3 = shared_l3
            sim_clone = Simulator.__new__(Simulator)
            sim_clone.descriptor = self.primary.descriptor
            sim_clone.scheme = self.primary.scheme
            sim_clone.config = self.config
            sim_clone.hierarchy = hier
            sim_clone.manager = self.primary.manager
            sim_clone.page_table = self.primary.page_table
            walker = sim_clone.descriptor.make_walker(sim_clone)
            self.mmus.append(MMU(walker, self.config.tlb))
            self.hierarchies.append(hier)
        self.locks = LockStats()

    def run(self, num_refs: Optional[int] = None) -> Dict[str, float]:
        refs = num_refs or self.config.num_refs
        trace = self.primary.workload.trace(refs, self.config.trace_seed)
        shards = np.array_split(trace, self.num_threads)
        per_thread_cycles = []
        core = self.config.core
        ipr = self.primary.workload.info.instructions_per_ref
        last_table = {}
        for tid, shard in enumerate(shards):
            mmu = self.mmus[tid]
            hier = self.hierarchies[tid]
            stalls = 0
            mmu_cycles = 0
            for va in shard:
                va = int(va)
                pte, tcycles = mmu.translate(va, asid=0)
                if pte is None:
                    # Concurrent fault: the table lock serializes the
                    # mapping (section 5.2, "Multi-threading").
                    self.locks.pte_lock_acquisitions += 1
                    owner = last_table.get(va >> 21)
                    if owner is not None and owner != tid:
                        self.locks.pte_lock_conflicts += 1
                    last_table[va >> 21] = tid
                    self.primary.process.handle_fault(va)
                    pte, more = mmu.translate(va, asid=0)
                    tcycles += more
                mmu_cycles += tcycles
                stalls += hier.access(pte.translate(va))
            cycles = (
                len(shard) * ipr * core.base_cpi
                + stalls * core.data_stall_exposure
                + mmu_cycles * core.walk_stall_exposure
            )
            per_thread_cycles.append(cycles)
        return {
            "max_thread_cycles": max(per_thread_cycles),
            "total_refs": refs,
            "lock_conflict_rate": self.locks.conflict_rate,
        }
