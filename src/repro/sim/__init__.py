"""Trace-driven simulation: configs, simulator, runner, results."""

from repro.sim.config import (
    EXTENDED_SCHEMES,
    SCHEMES,
    CoreModel,
    LVMCostModel,
    SimConfig,
    table1_rows,
)
from repro.sim.parallel import RunSpec, default_jobs
from repro.sim.results import ResultSet, RunFailure, SimResult, geomean, mean
from repro.sim.runner import run_suite, summarize_speedups
from repro.sim.simulator import Simulator, simulate

__all__ = [
    "CoreModel",
    "EXTENDED_SCHEMES",
    "LVMCostModel",
    "ResultSet",
    "RunFailure",
    "RunSpec",
    "SCHEMES",
    "SimConfig",
    "SimResult",
    "Simulator",
    "default_jobs",
    "geomean",
    "mean",
    "run_suite",
    "simulate",
    "summarize_speedups",
    "table1_rows",
]
