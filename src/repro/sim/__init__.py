"""Trace-driven simulation: configs, simulator, runner, results."""

from repro.sim.config import (
    EXTENDED_SCHEMES,
    SCHEMES,
    CoreModel,
    LVMCostModel,
    SimConfig,
    table1_rows,
)
from repro.sim.journal import RunJournal, config_fingerprint
from repro.sim.parallel import RunSpec, default_jobs, resolve_jobs
from repro.sim.results import ResultSet, RunFailure, SimResult, geomean, mean
from repro.sim.runner import run_suite, summarize_speedups
from repro.sim.simulator import Simulator, simulate
from repro.sim.supervisor import SupervisorPolicy, run_specs_supervised

__all__ = [
    "CoreModel",
    "EXTENDED_SCHEMES",
    "LVMCostModel",
    "ResultSet",
    "RunFailure",
    "RunJournal",
    "RunSpec",
    "SCHEMES",
    "SimConfig",
    "SimResult",
    "Simulator",
    "SupervisorPolicy",
    "config_fingerprint",
    "default_jobs",
    "geomean",
    "resolve_jobs",
    "mean",
    "run_specs_supervised",
    "run_suite",
    "simulate",
    "summarize_speedups",
    "table1_rows",
]
