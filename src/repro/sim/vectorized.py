"""Epoch-based vectorized batch translation engine.

The scalar trace loops (:meth:`Simulator.run_standard`) pay the Python
interpreter per reference — a dict probe, a handful of counter
increments and a cache access per loop iteration.  This engine
processes a :class:`~repro.workloads.compile.CompiledTrace` in fixed
*epochs* (``SimConfig.vectorized_epoch`` references at a time) and does
the classification work as whole-array NumPy math, dropping to the
scalar ``MMU.translate``/``MemoryHierarchy.access`` path only for the
references it cannot prove fast:

* **TLB side** — the L1 front index (``vpn -> entry``) is snapshotted
  into a sorted key array once per epoch; one ``searchsorted`` per
  epoch classifies every reference as *front hit* or *scalar*.  The
  4 KB front index is exact: membership of the VPN (ASID 0) in the
  snapshot is equivalent to the scalar probe hitting, and every
  membership change between snapshot and use is caught by the
  :attr:`~repro.mmu.tlb.TLBArray.membership_log` (drained after each
  scalar reference; affected later positions are downgraded to
  scalar).
* **Data side** — a front-hit reference's physical address is
  ``va + delta`` with a per-PTE constant ``delta``, so the epoch's L1D
  line numbers are one vector op.  Lines resident in the L1D snapshot
  whose set has seen no fill/eviction since the snapshot are
  *guaranteed hits* (a hit never changes membership); everything else
  runs through the scalar ``access()``.  Scalar misses mark their
  fill/prefetch target sets dirty, downgrading later references in
  those sets.
* **Batch replay** — a run of consecutive fast references is replayed
  in bulk: counters advance by the run length, latency accumulates as
  ``count * l1_latency``, and the LRU state of both the TLB set dicts
  and the L1D set dicts is fixed up per *unique* key in last-touch
  order, which reproduces the scalar loop's final LRU order exactly
  (within a fast run every touch is a hit, so only recency changes).
* **Miss-path batching** — schemes whose walk is closed-form (the
  ideal oracle; see :meth:`SchemeDescriptor.make_batch_walker`) get an
  inline miss path: when a VPN's key is provably absent from all four
  TLB arrays, the engine replays the full miss recipe (four array
  misses, L2-TLB latency, one ``walk_access``, walker counters, TLB
  insert) without entering the walker call chain.

Exactness is the hard contract: every counter, every cycle total and
the final TLB/cache state are bit-identical to the scalar loops.  The
engine is *conservative* everywhere — any reference it is not sure
about runs scalar, which is always exact — and it self-disables (falls
back to the scalar loop) for configurations it cannot model:

* fault injection or translation verification enabled,
* a scheme that opts out (``supports_vectorized = False``),
* a non-stock cache hierarchy / TLB hierarchy subclass,
* page walks entering at the L1 (walker L1D traffic would invalidate
  the residency snapshot),
* cache level latencies that collide (the scalar path's returned
  latency is the engine's only signal of which level hit),
* the L1 front index disabled.

Epochs whose predicted fast fraction falls below
``SimConfig.vectorized_min_fast`` run through the scalar loop body
instead (the batch bookkeeping would cost more than it saves); a
membership-churn budget likewise degrades a pathological epoch to the
scalar body rather than going quadratic.  docs/INTERNALS.md §14 walks
through the model and its proofs.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from repro.mmu.hierarchy import MemoryHierarchy
from repro.mmu.tlb import TLBHierarchy
from repro.types import PageSize, TranslationError
from repro.workloads.compile import CompiledTrace

__all__ = ["VectorizedEngine", "serve_batch_translate", "SERVE_BATCH_MIN"]

#: Minimum serve-request batch size routed through the vectorized
#: translate path; smaller requests stay on the scalar loop (the
#: per-batch NumPy setup would dominate).
SERVE_BATCH_MIN = 256

_2M_SPAN_SHIFT = 9  # 2 MB pages span 512 = 2**9 base pages


class VectorizedEngine:
    """One run's engine instance; build via :meth:`try_build`.

    Holds per-run references (MMU, hierarchy, trace) plus the derived
    per-epoch state (front-index snapshot, L1D residency snapshot,
    dirty-set mask).  All derived state is rebuilt every epoch and kept
    honest between rebuilds by the TLB membership log and the scalar
    path's returned latencies.
    """

    # -- construction --------------------------------------------------

    @classmethod
    def try_build(cls, sim, trace) -> Optional["VectorizedEngine"]:
        """The engine for this run, or None when any exactness
        precondition fails (the caller then uses the scalar loop)."""
        config = sim.config
        if not isinstance(trace, CompiledTrace) or len(trace) == 0:
            return None
        if not config.vectorized_engine or not sim.descriptor.supports_vectorized:
            return None
        if sim.injector is not None or config.verify_translations:
            return None
        hierarchy = sim.hierarchy
        if type(hierarchy) is not MemoryHierarchy:
            return None
        if hierarchy.config.walker_entry == "l1":
            # Walk traffic through the L1D would change line residency
            # outside the engine's dirty-set tracking.
            return None
        l1 = hierarchy.l1
        if not l1._stock_locate or l1._line_shift is None:
            return None
        mmu = sim.mmu
        if type(mmu.tlb) is not TLBHierarchy:
            return None
        l1_4k = mmu.tlb.l1[PageSize.SIZE_4K]
        if l1_4k.front is None:
            return None
        # The scalar access() return value must identify the level that
        # hit (the engine's only signal for dirty-set marking).
        lats = {
            hierarchy.l1.latency, hierarchy.l2.latency,
            hierarchy.l3.latency, hierarchy._dram_latency,
        }
        if len(lats) != 4:
            return None
        return cls(sim, trace)

    def __init__(self, sim, trace: CompiledTrace):
        self.sim = sim
        self.trace = trace
        config = sim.config
        self.epoch = config.vectorized_epoch
        self.min_fast = config.vectorized_min_fast
        mmu = sim.mmu
        self.mmu = mmu
        self.stats = mmu.stats
        self.tlb = mmu.tlb
        self.l1_4k = mmu.tlb.l1[PageSize.SIZE_4K]
        self.front = self.l1_4k.front
        self.translate = mmu.translate
        self.fault = sim.process.handle_fault
        hierarchy = sim.hierarchy
        self.access = hierarchy.access
        self.walk_access = hierarchy.walk_access
        self.l1c = hierarchy.l1
        self.num_sets = hierarchy.l1.num_sets
        self.line_shift = hierarchy.l1._line_shift
        self.l1_lat = hierarchy.l1.latency
        self.dram_lat = hierarchy._dram_latency
        self.prefetch_degree = (
            hierarchy.config.prefetch_degree if hierarchy._do_prefetch else 0
        )
        self.l2_tlb_lat = mmu.tlb.config.l2_latency
        self.walker = sim.walker
        self.batch_walk = sim.descriptor.make_batch_walker(sim)
        # Arrays whose membership the engine mirrors: the L1-4K array
        # always (front classification); all four when the miss-path
        # batcher needs whole-hierarchy absence proofs.
        l1_2m = mmu.tlb.l1[PageSize.SIZE_2M]
        l2_4k = mmu.tlb.l2[PageSize.SIZE_4K]
        l2_2m = mmu.tlb.l2[PageSize.SIZE_2M]
        if self.batch_walk is not None:
            self._logged = [self.l1_4k, l1_2m, l2_4k, l2_2m]
            self._key_sets: Optional[List[set]] = [set(), set(), set(), set()]
            self._key_versions = [-1, -1, -1, -1]
        else:
            self._logged = [self.l1_4k]
            self._key_sets = None
            self._key_versions = [-1]
        # A non-zero ASID anywhere disables the engine for the rest of
        # the run: the front index keeps only the latest insert per
        # VPN, so multi-ASID traffic can shadow the snapshot's entries.
        self._disabled = False
        # Snapshot caches.  Batch replay never changes membership of
        # anything, so on a steady-state hot loop (whole epochs with
        # zero scalar refs) both snapshots stay valid across epochs:
        # the front cache is keyed on the L1-4K membership version and
        # the residency cache is invalidated whenever a scalar
        # reference has touched the data hierarchy since it was taken.
        self._front_cache: "tuple" = (None, None)
        self._front_cache_version = -1
        self._resident_cache = None
        self._resident_dirty = True
        #: Fastpath attribution, surfaced as ``Simulator.
        #: vectorized_stats`` for the benchmark's per-phase breakdown:
        #: epochs processed vs bailed, references replayed in batch vs
        #: run scalar (front-index miss, data-hierarchy downgrade, or a
        #: bailed epoch), and closed-form miss-batch walks.
        self.counters = {
            "epochs": 0,
            "bailed_epochs": 0,
            "batched_refs": 0,
            "scalar_refs": 0,
            "missbatch_refs": 0,
        }

    # -- the run -------------------------------------------------------

    def run(self) -> "tuple[int, int]":
        """Drive the whole trace; returns (data_stall, mmu_cycles)."""
        trace = self.trace
        va_list = trace.vas
        vpn_list = trace.vpns
        data_stall = 0
        mmu_cycles = 0
        for arr in self._logged:
            arr.membership_log = []
        try:
            for start, stop, va_arr, vpn_arr in trace.epochs(self.epoch):
                self.counters["epochs"] += 1
                if self._disabled:
                    self.counters["bailed_epochs"] += 1
                    ds, mc = self._scalar_span(start, stop, va_list, vpn_list)
                else:
                    ds, mc = self._run_epoch(
                        start, stop, va_arr, vpn_arr, va_list, vpn_list
                    )
                data_stall += ds
                mmu_cycles += mc
        finally:
            for arr in self._logged:
                arr.membership_log = None
        return data_stall, mmu_cycles

    # -- per-epoch machinery -------------------------------------------

    def _sync_views(self) -> None:
        """Epoch-start resync: discard stale log entries (the epoch
        snapshots are taken fresh below) and rebuild the miss-path key
        sets for any array whose membership moved while the engine was
        not draining (a scalar-body epoch)."""
        for arr in self._logged:
            arr.membership_log.clear()
        if self._key_sets is None:
            return
        for i, arr in enumerate(self._logged):
            if self._key_versions[i] != arr.membership_version:
                self._key_sets[i] = {
                    page_vpn
                    for asid, page_vpn, _pte, _s, _k in arr.snapshot_entries()
                    if asid == 0
                }
                self._key_versions[i] = arr.membership_version

    def _snapshot_front(self):
        """Sorted (vpn, delta) arrays over the live front index's
        ASID-0 entries.  ``delta`` is the per-PTE constant such that
        ``paddr = va + delta`` (4 KB entries only live here, so
        ``delta = (ppn - vpn) << 12``)."""
        version = self.l1_4k.membership_version
        if version == self._front_cache_version:
            return self._front_cache
        vpns = []
        deltas = []
        for vpn, entry in self.front.items():
            if entry[0] == 0:
                pte = entry[1]
                vpns.append(vpn)
                deltas.append((pte.ppn - pte.vpn) << 12)
        if not vpns:
            self._front_cache = (None, None)
        else:
            fva = np.fromiter(vpns, dtype=np.int64, count=len(vpns))
            fda = np.fromiter(deltas, dtype=np.int64, count=len(deltas))
            order = np.argsort(fva)
            self._front_cache = (fva[order], fda[order])
        self._front_cache_version = version
        return self._front_cache

    def _snapshot_residency(self):
        """Sorted array of the L1D's resident line numbers."""
        if not self._resident_dirty:
            return self._resident_cache
        lines: List[int] = []
        for _set_idx, set_lines in self.l1c.lru_snapshot():
            lines.extend(set_lines)
        if not lines:
            arr = None
        else:
            arr = np.fromiter(lines, dtype=np.int64, count=len(lines))
            arr.sort()
        self._resident_cache = arr
        self._resident_dirty = False
        return arr

    def _run_epoch(self, start, stop, va_arr, vpn_arr, va_list, vpn_list):
        n = stop - start
        self._sync_views()
        fva, fda = self._snapshot_front()
        if fva is None:
            # Empty front: nothing to batch.
            self.counters["bailed_epochs"] += 1
            return self._scalar_span(start, stop, va_list, vpn_list)
        # -- whole-array classification -------------------------------
        idx = np.searchsorted(fva, vpn_arr)
        np.minimum(idx, len(fva) - 1, out=idx)
        front_hit = fva[idx] == vpn_arr
        # Early bail on the front-index test alone: fast refs are a
        # subset of front hits, so an epoch that can't clear the
        # threshold here never will — and skipping the L1D residency
        # snapshot (a walk over every resident line) is the whole point
        # of bailing cheaply on miss-heavy epochs.
        if int(front_hit.sum()) < self.min_fast * n:
            self.counters["bailed_epochs"] += 1
            return self._scalar_span(start, stop, va_list, vpn_list)
        delta = fda[idx]
        paddr = va_arr + delta
        line = paddr >> self.line_shift
        set_col = line % self.num_sets
        resident = self._snapshot_residency()
        if resident is None:
            fast = np.zeros(n, dtype=bool)
        else:
            ridx = np.searchsorted(resident, line)
            np.minimum(ridx, len(resident) - 1, out=ridx)
            fast = front_hit & (resident[ridx] == line)
        nfast = int(fast.sum())
        if nfast < self.min_fast * n:
            self.counters["bailed_epochs"] += 1
            return self._scalar_span(start, stop, va_list, vpn_list)
        # -- the cursor loop ------------------------------------------
        data_stall = 0
        mmu_cycles = 0
        dirty = np.zeros(self.num_sets, dtype=bool)
        scalar_pos = np.nonzero(~fast)[0].tolist()
        heap: List[int] = []
        sp_i = 0
        # Membership/dirty churn budget: each unit is one vector scan
        # over the epoch's tail.  A pathological epoch (every scalar
        # reference churning the TLB or a fresh cache set) degrades to
        # the scalar body instead of going quadratic.
        budget = n
        vpn_lo = int(vpn_arr.min())
        vpn_hi = int(vpn_arr.max())
        cursor = 0
        while cursor < n:
            while sp_i < len(scalar_pos) and scalar_pos[sp_i] < cursor:
                sp_i += 1
            while heap and heap[0] < cursor:
                heapq.heappop(heap)
            nxt = scalar_pos[sp_i] if sp_i < len(scalar_pos) else n
            if heap and heap[0] < nxt:
                nxt = heap[0]
            if nxt > cursor:
                data_stall += self._batch_run(cursor, nxt, vpn_arr, line)
            if nxt >= n:
                break
            pos = nxt
            ds, mc = self._scalar_ref(
                va_list[start + pos], vpn_list[start + pos],
                pos, n, fast, heap, set_col, dirty,
            )
            data_stall += ds
            mmu_cycles += mc
            cursor = pos + 1
            budget = self._drain(pos, n, vpn_arr, vpn_lo, vpn_hi,
                                 fast, heap, budget)
            budget = self._apply_dirty(pos, n, fast, heap, set_col,
                                       dirty, budget)
            if budget < 0 or self._disabled:
                ds, mc = self._scalar_span(
                    start + cursor, stop, va_list, vpn_list
                )
                return data_stall + ds, mmu_cycles + mc
        return data_stall, mmu_cycles

    # -- batch (fast-run) replay ---------------------------------------

    def _batch_run(self, i, j, vpn_arr, line) -> int:
        """Replay fast positions [i, j): every one is an L1-front TLB
        hit and a guaranteed L1D hit.  Counters advance in bulk; the
        TLB and L1D set dicts get one MRU fixup per unique key, applied
        in last-touch order — which leaves exactly the LRU state the
        scalar loop would have left (all touches are hits, so only
        recency changes, and final recency order is last-touch order).
        """
        count = j - i
        self.counters["batched_refs"] += count
        l1_4k = self.l1_4k
        stats = self.stats
        l1_4k.hits += count
        stats.translations += count
        stats.l1_tlb_hits += count
        l1c = self.l1c
        l1c.hits += count
        # TLB MRU fixups (front entries are live: any membership or
        # payload change before these positions would have downgraded
        # them via the log drain).
        seg = vpn_arr[i:j]
        uniq, ridx = np.unique(seg[::-1], return_index=True)
        order = np.argsort((count - 1) - ridx)
        front = self.front
        for vpn in uniq[order].tolist():
            entry = front[vpn]
            tlb_set, key = entry[2], entry[3]
            pte = tlb_set.pop(key)
            tlb_set[key] = pte
        # L1D MRU fixups.
        seg_lines = line[i:j]
        uniq, ridx = np.unique(seg_lines[::-1], return_index=True)
        order = np.argsort((count - 1) - ridx)
        sets = l1c._sets
        num_sets = self.num_sets
        for ln in uniq[order].tolist():
            cache_set = sets[ln % num_sets]
            tag = ln // num_sets
            del cache_set[tag]
            cache_set[tag] = None
        return count * self.l1_lat

    # -- the scalar reference body -------------------------------------

    def _scalar_ref(self, va, vpn, pos, n, fast, heap, set_col, dirty):
        """One reference through the exact scalar path (with the
        closed-form miss batch when the scheme provides one and the VPN
        is provably absent from every TLB array)."""
        pte = None
        tcycles = 0
        mmu_cycles = 0
        self.counters["scalar_refs"] += 1
        key_sets = self._key_sets
        if key_sets is not None:
            k14, k12, k24, k22 = key_sets
            big = vpn >> _2M_SPAN_SHIFT
            if (
                vpn not in k14 and big not in k12
                and vpn not in k24 and big not in k22
            ):
                walked = self.batch_walk(vpn)
                if walked is not None:
                    # Inline replay of MMU.translate's all-miss path:
                    # front probe misses (key absence implies it), all
                    # four array probes miss, the walk issues its one
                    # access, and the result fills the TLB.
                    pte, wpaddr = walked
                    stats = self.stats
                    stats.translations += 1
                    for arr in self._logged:
                        arr.misses += 1
                    stats.tlb_cycles += self.l2_tlb_lat
                    wcycles = self.walk_access(wpaddr)
                    walker = self.walker
                    walker.walks += 1
                    walker.total_cycles += wcycles
                    walker.total_accesses += 1
                    stats.walks += 1
                    stats.walk_cycles += wcycles
                    stats.walk_traffic += 1
                    self.tlb.insert(pte, 0)
                    mmu_cycles = self.l2_tlb_lat + wcycles
                    self.counters["missbatch_refs"] += 1
        if pte is None:
            pte, tcycles = self.translate(va)
            if pte is None:
                self.fault(va)
                pte, more = self.translate(va)
                tcycles += more
                if pte is None:
                    raise TranslationError(f"unmappable VA {va:#x}")
            mmu_cycles = tcycles
        paddr = pte.translate(va)
        lat = self.access(paddr)
        if lat != self.l1_lat:
            # The L1D filled (and possibly evicted); its set — and the
            # prefetch target sets on a full DRAM miss — can no longer
            # vouch for the epoch's residency snapshot.
            base_line = paddr >> self.line_shift
            self._resident_dirty = True
            self._pending_dirty = [base_line % self.num_sets]
            if lat == self.dram_lat:
                for step in range(1, self.prefetch_degree + 1):
                    self._pending_dirty.append(
                        (base_line + step) % self.num_sets
                    )
        else:
            self._pending_dirty = []
        return lat, mmu_cycles

    def _apply_dirty(self, pos, n, fast, heap, set_col, dirty, budget):
        """Mark the scalar reference's fill/prefetch target sets dirty
        and downgrade every later fast position mapping into them."""
        for s in self._pending_dirty:
            if dirty[s]:
                continue
            dirty[s] = True
            budget -= 1
            tail = pos + 1
            if tail < n:
                rel = np.nonzero(fast[tail:] & (set_col[tail:] == s))[0]
                if rel.size:
                    hits = rel + tail
                    fast[hits] = False
                    for p in hits.tolist():
                        heapq.heappush(heap, p)
        self._pending_dirty = []
        return budget

    def _drain(self, pos, n, vpn_arr, vpn_lo, vpn_hi, fast, heap, budget):
        """Apply the TLB membership deltas a scalar reference produced:
        key-set updates for the miss-path batcher, and — for L1-4K
        changes — downgrade later positions whose classification the
        change invalidates (an eviction makes a predicted hit wrong; a
        re-insert may carry a different PTE payload)."""
        key_sets = self._key_sets
        for i, arr in enumerate(self._logged):
            log = arr.membership_log
            if not log:
                continue
            for event in log:
                kind, asid, page_vpn = event[0], event[1], event[2]
                if asid != 0:
                    self._disabled = True
                    continue
                if key_sets is not None:
                    if kind == "add":
                        key_sets[i].add(page_vpn)
                    else:
                        key_sets[i].discard(page_vpn)
                if arr is self.l1_4k and vpn_lo <= page_vpn <= vpn_hi:
                    budget -= 1
                    tail = pos + 1
                    if tail < n:
                        rel = np.nonzero(
                            fast[tail:] & (vpn_arr[tail:] == page_vpn)
                        )[0]
                        if rel.size:
                            hits = rel + tail
                            fast[hits] = False
                            for p in hits.tolist():
                                heapq.heappush(heap, p)
            log.clear()
            if key_sets is not None:
                self._key_versions[i] = arr.membership_version
        return budget

    # -- the scalar epoch body -----------------------------------------

    def _scalar_span(self, lo, hi, va_list, vpn_list):
        """References [lo, hi) through the scalar packed-loop body —
        the bail path for epochs not worth batching.  An exact copy of
        :meth:`Simulator.run_standard`'s packed fast loop."""
        front = self.front
        l1_4k = self.l1_4k
        stats = self.stats
        translate = self.translate
        access = self.access
        fault = self.fault
        data_stall = 0
        mmu_cycles = 0
        self.counters["scalar_refs"] += hi - lo
        # Any reference below may fill/evict L1D lines.
        self._resident_dirty = True
        # Slicing + zip keeps the per-reference iteration at C speed —
        # a bailed epoch costs within noise of the packed loop itself.
        for va, vpn in zip(va_list[lo:hi], vpn_list[lo:hi]):
            entry = front.get(vpn)
            if entry is not None and entry[0] == 0:
                pte, tlb_set, key = entry[1], entry[2], entry[3]
                del tlb_set[key]
                tlb_set[key] = pte
                l1_4k.hits += 1
                stats.translations += 1
                stats.l1_tlb_hits += 1
                data_stall += access(pte.translate(va))
                continue
            pte, tcycles = translate(va)
            if pte is None:
                fault(va)
                pte, more = translate(va)
                tcycles += more
                if pte is None:
                    raise TranslationError(f"unmappable VA {va:#x}")
            mmu_cycles += tcycles
            data_stall += access(pte.translate(va))
        return data_stall, mmu_cycles


# ---------------------------------------------------------------------
# Serving-layer batch translation (TLB side only: tenant translate ops
# never touch a data hierarchy).
# ---------------------------------------------------------------------

def serve_batch_translate(mmu, handle_fault, vas, progress,
                          epoch: int = 4096,
                          min_fast: float = 0.55) -> None:
    """Batch the serving layer's translate op through the epoch engine.

    ``vas`` must already be plain ints (the caller pre-converts and
    falls back to its scalar loop if any element refuses).  ``progress``
    is a mutable ``[done, mmu_cycles]`` pair updated *in order*, so a
    mid-batch :class:`TranslationError` leaves exactly the partial
    counts the scalar loop would have accumulated — the caller's
    ``finally`` accounting and its journal digests stay bit-identical.

    Only the TLB side exists here (tenants translate; they do not
    access a modelled data hierarchy), so classification is purely the
    L1 front index: front hits replay in bulk (counters plus last-touch
    MRU fixups), everything else runs the exact scalar translate body.
    """
    l1_4k = mmu.tlb.l1[PageSize.SIZE_4K]
    front = l1_4k.front
    stats = mmu.stats
    translate = mmu.translate

    def scalar_span(span):
        for va in span:
            pte, tcycles = translate(va)
            if pte is None:
                handle_fault(va)
                pte, more = translate(va)
                tcycles += more
                if pte is None:
                    raise TranslationError(f"unmappable VA {va:#x}")
            progress[1] += tcycles
            progress[0] += 1

    if front is None or type(mmu.tlb) is not TLBHierarchy:
        scalar_span(vas)
        return
    va_all = np.asarray(vas, dtype=np.int64)
    log_owner = l1_4k.membership_log is None
    if log_owner:
        l1_4k.membership_log = []
    try:
        for start in range(0, len(vas), epoch):
            stop = min(start + epoch, len(vas))
            _serve_epoch(
                mmu, handle_fault, vas, va_all[start:stop], start,
                progress, min_fast, l1_4k, front, stats, translate,
            )
    finally:
        if log_owner:
            l1_4k.membership_log = None


def _serve_epoch(mmu, handle_fault, va_list, va_arr, start, progress,
                 min_fast, l1_4k, front, stats, translate):
    n = len(va_arr)
    l1_4k.membership_log.clear()
    vpns = []
    for vpn, entry in front.items():
        if entry[0] == 0:
            vpns.append(vpn)
    vpn_arr = va_arr >> 12

    def scalar_span(lo, hi):
        for i in range(lo, hi):
            va = va_list[start + i]
            pte, tcycles = translate(va)
            if pte is None:
                handle_fault(va)
                pte, more = translate(va)
                tcycles += more
                if pte is None:
                    raise TranslationError(f"unmappable VA {va:#x}")
            progress[1] += tcycles
            progress[0] += 1

    if not vpns:
        scalar_span(0, n)
        return
    fva = np.fromiter(vpns, dtype=np.int64, count=len(vpns))
    fva.sort()
    idx = np.searchsorted(fva, vpn_arr)
    np.minimum(idx, len(fva) - 1, out=idx)
    fast = fva[idx] == vpn_arr
    if int(fast.sum()) < min_fast * n:
        scalar_span(0, n)
        return
    vpn_lo = int(vpn_arr.min())
    vpn_hi = int(vpn_arr.max())
    scalar_pos = np.nonzero(~fast)[0].tolist()
    heap: List[int] = []
    sp_i = 0
    budget = n
    cursor = 0
    log = l1_4k.membership_log
    while cursor < n:
        while sp_i < len(scalar_pos) and scalar_pos[sp_i] < cursor:
            sp_i += 1
        while heap and heap[0] < cursor:
            heapq.heappop(heap)
        nxt = scalar_pos[sp_i] if sp_i < len(scalar_pos) else n
        if heap and heap[0] < nxt:
            nxt = heap[0]
        if nxt > cursor:
            count = nxt - cursor
            l1_4k.hits += count
            stats.translations += count
            stats.l1_tlb_hits += count
            seg = vpn_arr[cursor:nxt]
            uniq, ridx = np.unique(seg[::-1], return_index=True)
            order = np.argsort((count - 1) - ridx)
            for vpn in uniq[order].tolist():
                entry = front[vpn]
                tlb_set, key = entry[2], entry[3]
                pte = tlb_set.pop(key)
                tlb_set[key] = pte
            progress[0] += count
        if nxt >= n:
            break
        scalar_span(nxt, nxt + 1)
        cursor = nxt + 1
        # Drain the L1-4K membership deltas the scalar reference made;
        # downgrade later positions whose front prediction they break.
        if log:
            for event in log:
                asid, page_vpn = event[1], event[2]
                if asid != 0:
                    budget = -1
                    break
                if not (vpn_lo <= page_vpn <= vpn_hi):
                    continue
                budget -= 1
                if cursor < n:
                    rel = np.nonzero(
                        fast[cursor:] & (vpn_arr[cursor:] == page_vpn)
                    )[0]
                    if rel.size:
                        hits = rel + cursor
                        fast[hits] = False
                        for p in hits.tolist():
                            heapq.heappush(heap, p)
            log.clear()
        if budget < 0:
            scalar_span(cursor, n)
            return
