"""Physical-memory allocator protocol used by every page-table scheme.

LVM queries the allocator for available contiguity before sizing its
gapped page tables (paper section 4.3.2); radix/ECPT allocate their
tables through the same interface so all schemes see the same physical
memory conditions.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import AllocationError, OutOfPhysicalMemory

__all__ = [
    "AllocationError",
    "BumpAllocator",
    "OutOfPhysicalMemory",
    "PhysicalAllocator",
]


@runtime_checkable
class PhysicalAllocator(Protocol):
    """Minimal allocator interface the translation schemes rely on."""

    def alloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` of physically-contiguous memory.

        Returns the base physical address.  Raises
        :class:`OutOfPhysicalMemory` if no contiguous block fits.
        """
        ...

    def free(self, paddr: int, nbytes: int) -> None:
        """Return a previously allocated block."""
        ...

    def max_contiguous_bytes(self) -> int:
        """Largest contiguous block immediately allocatable.

        This is LVM's "query the OS allocator for physical contiguity"
        (e.g. the highest non-empty buddy order in Linux).
        """
        ...


class BumpAllocator:
    """Infinite, never-fragmented allocator for tests and fast studies.

    Hands out addresses from a monotonically increasing cursor and
    reports effectively unlimited contiguity.  ``free`` only tracks
    balance so leak assertions stay possible.
    """

    def __init__(self, base: int = 1 << 30, contiguity_cap: int = 1 << 40):
        self._cursor = base
        self._contiguity_cap = contiguity_cap
        self.allocated_bytes = 0
        self.freed_bytes = 0

    def alloc(self, nbytes: int) -> int:
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        if nbytes > self._contiguity_cap:
            raise OutOfPhysicalMemory(
                f"request of {nbytes} exceeds contiguity cap {self._contiguity_cap}"
            )
        # Keep blocks cache-line aligned so walk accesses are realistic.
        self._cursor = (self._cursor + 63) & ~63
        paddr = self._cursor
        self._cursor += nbytes
        self.allocated_bytes += nbytes
        return paddr

    def free(self, paddr: int, nbytes: int) -> None:
        self.freed_bytes += nbytes

    def max_contiguous_bytes(self) -> int:
        return self._contiguity_cap

    @property
    def live_bytes(self) -> int:
        return self.allocated_bytes - self.freed_bytes
