"""Fragmentation injection and measurement (paper sections 3.2, 7.3).

The paper's Figure 3 measures, across Meta's fleet, the median fraction
of free memory immediately allocatable as a contiguous block of a given
size: plentiful at hundreds of KBs, practically zero at hundreds of
MBs.  We reproduce the *generator* of that condition: a buddy allocator
subjected to datacenter-like churn (many small allocations with long
and mixed lifetimes pinning pages inside large blocks), then measure
the same metric.

Two fragmentation knobs are exposed, matching the studies in 7.3:

* ``fragment_to_max_contiguity`` caps the largest available block
  (e.g. 256 KB);
* ``fragment_to_fmfi`` drives the free-memory fragmentation index at a
  target order to a chosen level (0.8 / 0.85 / 0.9).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.mem.allocator import OutOfPhysicalMemory
from repro.mem.buddy import BuddyAllocator
from repro.types import BASE_PAGE_SIZE

#: Block sizes reported in Figure 3 (bytes).
FIGURE3_SIZES = [
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    16 << 20,
    64 << 20,
    256 << 20,
    1 << 30,
]


@dataclass
class ContiguityProfile:
    """Fraction of free memory allocatable per contiguous block size."""

    fractions: Dict[int, float]

    def at(self, block_bytes: int) -> float:
        return self.fractions[block_bytes]

    def rows(self) -> List[Tuple[int, float]]:
        return sorted(self.fractions.items())


def measure_contiguity(
    buddy: BuddyAllocator, sizes: List[int] = FIGURE3_SIZES
) -> ContiguityProfile:
    return ContiguityProfile(
        {size: buddy.contiguity_fraction(size) for size in sizes}
    )


def datacenter_churn(
    buddy: BuddyAllocator,
    target_occupancy: float = 0.7,
    churn_rounds: int = 4,
    seed: int = 42,
    high_water: float = 0.97,
) -> None:
    """Fragment a buddy allocator the way long-running servers do.

    Long-lived small allocations pepper the physical space while bulk
    (short-lived) memory comes and goes: each round fills memory to the
    high-water mark with mostly-small allocations, then frees a random
    scatter of them back down toward ``target_occupancy``.  What
    survives pins pages everywhere, so the free memory left behind is
    made of small holes — Figure 3's shape: contiguity plentiful at
    tens-to-hundreds of KBs, gone at hundreds of MBs.
    """
    rng = random.Random(seed)
    live: List[Tuple[int, int]] = []  # (paddr, order)
    target_used = int(buddy.total_pages * target_occupancy)
    high_used = int(buddy.total_pages * high_water)
    for _ in range(churn_rounds):
        # Fill phase: mostly order 0-2 with occasional mid-size blocks.
        while buddy.total_pages - buddy.free_pages < high_used:
            order = rng.choice([0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 5, 6])
            try:
                paddr = buddy.alloc_order(order)
            except OutOfPhysicalMemory:
                break
            live.append((paddr, order))
        # Drain phase: free a random scatter down to the target; the
        # survivors are the long-lived population pinning the space.
        rng.shuffle(live)
        keep: List[Tuple[int, int]] = []
        for paddr, order in live:
            if buddy.total_pages - buddy.free_pages > target_used:
                buddy.free_order(paddr, order)
            else:
                keep.append((paddr, order))
        live = keep


def fragment_to_max_contiguity(
    buddy: BuddyAllocator, max_block_bytes: int, seed: int = 7
) -> None:
    """Pin single pages until no free block exceeds ``max_block_bytes``.

    Used by the 7.3 fragmentation study that caps LVM's allocations at
    256 KB.  The pinned pages are leaked deliberately: they model other
    tenants' memory.
    """
    limit_order = BuddyAllocator.order_for(max_block_bytes)
    del seed  # deterministic pinning; parameter kept for API stability
    # Carve every block larger than the cap into (2 * cap)-sized chunks
    # and pin the first page of each chunk (leaked on purpose: it models
    # another tenant's memory).  Freeing the remaining pages coalesces
    # into one buddy block per order up to exactly `limit_order`, so
    # blocks of `max_block_bytes` stay plentiful but nothing larger can
    # ever reform.
    step = 1 << (limit_order + 1)
    for order in range(buddy.max_order, limit_order, -1):
        while buddy.free_lists[order]:
            base = buddy.alloc_order(order)
            pages = 1 << order
            for chunk_start in range(0, pages, step):
                chunk_base = base + chunk_start * BASE_PAGE_SIZE
                span = min(step, pages - chunk_start)
                for page in range(1, span):
                    buddy.free_order(chunk_base + page * BASE_PAGE_SIZE, 0)


def fragment_to_fmfi(
    buddy: BuddyAllocator,
    target_fmfi: float,
    order: int = 9,
    seed: int = 11,
) -> None:
    """Drive the FMFI at ``order`` (default 2 MB) up to ``target_fmfi``.

    Pins individual pages inside the largest free blocks until the
    requested fraction of free memory is unavailable at ``order``.
    """
    rng = random.Random(seed)
    guard = 0
    while buddy.fmfi(order) < target_fmfi and guard < 10_000_000:
        guard += 1
        # Break one block at or above `order` by pinning one page in it.
        top = None
        for o in range(buddy.max_order, order - 1, -1):
            if buddy.free_lists[o]:
                top = o
                break
        if top is None:
            break
        base = buddy.alloc_order(top)
        pages = 1 << top
        pin = rng.randrange(pages)
        for page in range(pages):
            if page == pin:
                continue
            buddy.free_order(base + page * BASE_PAGE_SIZE, 0)
