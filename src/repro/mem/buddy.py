"""Binary buddy allocator modelling Linux's physical page allocator.

LVM sizes its gapped page tables to the contiguity the buddy allocator
can provide *right now* (paper section 4.3.2), and the fragmentation
studies of sections 3.2 and 7.3 are defined in terms of buddy-order
availability, so the reproduction needs a faithful buddy: power-of-two
blocks, split on demand, coalesce with the buddy on free, free lists
per order.
"""

from __future__ import annotations

from typing import Dict, List

from repro.mem.allocator import OutOfPhysicalMemory
from repro.types import BASE_PAGE_SHIFT, BASE_PAGE_SIZE

DEFAULT_MAX_ORDER = 18  # 4 KB << 18 = 1 GB largest block, > Linux's 10


class BuddyAllocator:
    """A binary buddy allocator over a contiguous physical range."""

    def __init__(
        self,
        total_bytes: int,
        base_paddr: int = 0,
        max_order: int = DEFAULT_MAX_ORDER,
    ):
        if total_bytes < BASE_PAGE_SIZE:
            raise ValueError("need at least one page of physical memory")
        self.base_paddr = base_paddr
        self.max_order = max_order
        self.total_pages = total_bytes // BASE_PAGE_SIZE
        # free_lists[order] -> sorted-ish list of page-frame numbers
        # (relative to base) of free blocks of 2**order pages.
        self.free_lists: List[List[int]] = [[] for _ in range(max_order + 1)]
        self._free_set: Dict[int, int] = {}  # pfn -> order, for coalescing
        self.free_pages = 0
        self._seed_free_blocks()

    def _seed_free_blocks(self) -> None:
        pfn = 0
        remaining = self.total_pages
        while remaining > 0:
            order = min(self.max_order, remaining.bit_length() - 1)
            # Keep blocks naturally aligned, as real buddies are.
            while order > 0 and pfn % (1 << order) != 0:
                order -= 1
            self._insert_free(pfn, order)
            pfn += 1 << order
            remaining -= 1 << order

    # -- free-list bookkeeping ----------------------------------------
    def _insert_free(self, pfn: int, order: int) -> None:
        self.free_lists[order].append(pfn)
        self._free_set[pfn] = order
        self.free_pages += 1 << order

    def _remove_free(self, pfn: int, order: int) -> None:
        self.free_lists[order].remove(pfn)
        del self._free_set[pfn]
        self.free_pages -= 1 << order

    # -- public API ------------------------------------------------------
    @staticmethod
    def order_for(nbytes: int) -> int:
        pages = -(-nbytes // BASE_PAGE_SIZE)
        return max(0, (pages - 1).bit_length())

    def alloc_order(self, order: int) -> int:
        """Allocate a block of 2**order pages; returns its base paddr."""
        if order > self.max_order:
            raise OutOfPhysicalMemory(f"order {order} exceeds max {self.max_order}")
        current = order
        while current <= self.max_order and not self.free_lists[current]:
            current += 1
        if current > self.max_order:
            raise OutOfPhysicalMemory(
                f"no free block of order >= {order} "
                f"({self.free_pages} pages free but fragmented)"
            )
        pfn = self.free_lists[current].pop()
        del self._free_set[pfn]
        self.free_pages -= 1 << current
        # Split down to the requested order, freeing the upper halves.
        while current > order:
            current -= 1
            buddy = pfn + (1 << current)
            self._insert_free(buddy, current)
        return self.base_paddr + (pfn << BASE_PAGE_SHIFT)

    def alloc(self, nbytes: int) -> int:
        return self.alloc_order(self.order_for(nbytes))

    def free(self, paddr: int, nbytes: int) -> None:
        self.free_order(paddr, self.order_for(nbytes))

    def free_order(self, paddr: int, order: int) -> None:
        pfn = (paddr - self.base_paddr) >> BASE_PAGE_SHIFT
        if pfn % (1 << order) != 0:
            raise ValueError(f"pfn {pfn} misaligned for order {order}")
        # Coalesce with the buddy while possible.
        while order < self.max_order:
            buddy = pfn ^ (1 << order)
            if self._free_set.get(buddy) != order:
                break
            self._remove_free(buddy, order)
            pfn = min(pfn, buddy)
            order += 1
        self._insert_free(pfn, order)

    def max_contiguous_bytes(self) -> int:
        for order in range(self.max_order, -1, -1):
            if self.free_lists[order]:
                return (1 << order) * BASE_PAGE_SIZE
        return 0

    # -- introspection for the fragmentation studies -------------------
    @property
    def free_bytes(self) -> int:
        return self.free_pages * BASE_PAGE_SIZE

    @property
    def used_bytes(self) -> int:
        return (self.total_pages - self.free_pages) * BASE_PAGE_SIZE

    def free_blocks_at_order(self, order: int) -> int:
        return len(self.free_lists[order])

    def free_pages_at_or_above(self, order: int) -> int:
        """Free pages sitting in blocks of at least 2**order pages."""
        return sum(
            len(self.free_lists[o]) << o for o in range(order, self.max_order + 1)
        )

    def contiguity_fraction(self, block_bytes: int) -> float:
        """Fraction of free memory immediately allocatable as
        ``block_bytes``-sized contiguous blocks (Figure 3's metric)."""
        if self.free_pages == 0:
            return 0.0
        order = self.order_for(block_bytes)
        if order > self.max_order:
            return 0.0
        usable = 0
        for o in range(order, self.max_order + 1):
            usable += (len(self.free_lists[o]) << o) // (1 << order) * (1 << order)
        return usable / self.free_pages

    def fmfi(self, order: int) -> float:
        """Free-memory fragmentation index at ``order`` (Gorman 2005).

        0 means all free memory is available at the requested order;
        values toward 1 mean free memory exists but is too fragmented.
        """
        if self.free_pages == 0:
            return 0.0
        satisfying = self.free_pages_at_or_above(order)
        return 1.0 - satisfying / self.free_pages
