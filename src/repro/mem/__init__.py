"""Physical memory substrate: buddy allocator and fragmentation tools."""

from repro.mem.allocator import BumpAllocator, OutOfPhysicalMemory, PhysicalAllocator
from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import (
    FIGURE3_SIZES,
    ContiguityProfile,
    datacenter_churn,
    fragment_to_fmfi,
    fragment_to_max_contiguity,
    measure_contiguity,
)

__all__ = [
    "FIGURE3_SIZES",
    "BuddyAllocator",
    "BumpAllocator",
    "ContiguityProfile",
    "OutOfPhysicalMemory",
    "PhysicalAllocator",
    "datacenter_churn",
    "fragment_to_fmfi",
    "fragment_to_max_contiguity",
    "measure_contiguity",
]
