"""Figure 3: physical contiguity in fragmented datacenters (section 3.2).

The paper measures, across tens of thousands of Meta servers, the
median fraction of free memory immediately allocatable as a contiguous
block of each size.  We reproduce the *mechanism*: a buddy allocator
fragmented by datacenter-like churn, measured with the same metric.
The expected shape: plentiful contiguity up to a few hundred KB,
falling toward zero in the hundreds-of-MB range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import (
    FIGURE3_SIZES,
    ContiguityProfile,
    datacenter_churn,
    measure_contiguity,
)


@dataclass
class ContiguityStudy:
    """One simulated server's contiguity profile after churn."""

    profile: ContiguityProfile
    free_fraction: float
    fmfi_2m: float


def run_contiguity_study(
    mem_bytes: int = 4 << 30,
    occupancy: float = 0.7,
    seed: int = 42,
    churn_rounds: int = 40,
) -> ContiguityStudy:
    """Fragment one simulated server and measure Figure 3's metric."""
    buddy = BuddyAllocator(mem_bytes)
    datacenter_churn(
        buddy, target_occupancy=occupancy, churn_rounds=churn_rounds, seed=seed
    )
    return ContiguityStudy(
        profile=measure_contiguity(buddy),
        free_fraction=buddy.free_bytes / (buddy.total_pages * 4096),
        fmfi_2m=buddy.fmfi(9),
    )


def median_profile(studies: List[ContiguityStudy]) -> ContiguityProfile:
    """Median across simulated servers, as the paper reports medians
    across its fleet."""
    sizes = FIGURE3_SIZES
    med = {}
    for size in sizes:
        values = sorted(s.profile.at(size) for s in studies)
        med[size] = values[len(values) // 2]
    return ContiguityProfile(med)


def run_fleet_study(
    num_servers: int = 9, mem_bytes: int = 2 << 30, occupancy: float = 0.7
) -> ContiguityProfile:
    """Figure 3 over a small simulated fleet (distinct churn seeds)."""
    studies = [
        run_contiguity_study(mem_bytes, occupancy, seed=1000 + i)
        for i in range(num_servers)
    ]
    return median_profile(studies)
