"""Plain-text renderers for the paper's tables and figures.

Every benchmark harness prints through these helpers so the regenerated
rows/series are directly comparable to the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Monospace table with auto-sized columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_series(
    name: str, points: Dict, value_format: str = "{:.3f}"
) -> str:
    """One figure series as "name: k=v k=v ..." (for figure benches)."""
    parts = [f"{k}={value_format.format(v)}" for k, v in points.items()]
    return f"{name}: " + " ".join(parts)


def bytes_human(n: int) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024 or unit == "TB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n}B"
