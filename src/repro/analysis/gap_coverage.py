"""Figure 2: virtual-memory gap coverage study (paper section 3.1).

For every workload (the nine-benchmark suite plus the four
production-shaped spaces) and for both userspace allocator models, we
build the virtual address space and measure the fraction of
consecutive mapped-VPN pairs with gap exactly 1.  The paper's finding:
a minimum of 78% across workloads, with benchmarks and production
workloads alike, and near-identical results across allocators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.workloads.allocator import ALLOCATORS
from repro.workloads.registry import (
    PRODUCTION_WORKLOADS,
    SUITE,
    build_workload,
)


@dataclass
class GapCoverageRow:
    workload: str
    allocator: str
    coverage: float


def gap_coverage_study(
    workload_names: Optional[List[str]] = None,
    allocators: Optional[List[str]] = None,
    scale: int = 64,
    seed: int = 0,
) -> List[GapCoverageRow]:
    """Reproduce Figure 2: gap-1 coverage per workload per allocator."""
    names = workload_names or (SUITE + list(PRODUCTION_WORKLOADS))
    allocs = allocators or list(ALLOCATORS)
    rows: List[GapCoverageRow] = []
    for name in names:
        for alloc_name in allocs:
            built = build_workload(
                name, scale=scale, seed=seed, allocator=ALLOCATORS[alloc_name]
            )
            rows.append(
                GapCoverageRow(name, alloc_name, built.space.gap_coverage())
            )
    return rows


def minimum_coverage(rows: List[GapCoverageRow]) -> float:
    return min(r.coverage for r in rows)


def allocator_divergence(rows: List[GapCoverageRow]) -> float:
    """Largest coverage difference between allocators for any workload
    (the paper: "practically the same")."""
    by_workload: Dict[str, List[float]] = {}
    for row in rows:
        by_workload.setdefault(row.workload, []).append(row.coverage)
    return max(
        (max(vals) - min(vals)) for vals in by_workload.values() if len(vals) > 1
    )
