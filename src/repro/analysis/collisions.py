"""Section 7.3 characterization: collision rates, collision resolution,
index sizes, and memory consumption.

The paper compares LVM's learned index against "a hash table that has a
load factor of 0.6 and uses the state-of-the-art hash function Blake2":
LVM averages 0.2% (4 KB) / 0.6% (THP) collisions versus 22% / 19% for
the hash table, resolves collisions in 2.36 extra accesses on average
(bounded by C_err = 3), and its gapped tables cost at most 1.3x the
minimal 8 B/translation (e.g. +12 MB for MUMmer vs. +27 MB for ECPT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.kernel.manager import LVMManager
from repro.kernel.thp import plan_vma_mappings
from repro.mem.allocator import BumpAllocator
from repro.pagetables.ecpt import ECPT
from repro.pagetables.hashed import HashedPageTable
from repro.types import PTE, PTE_SIZE
from repro.workloads.registry import BuiltWorkload, build_workload


@dataclass
class CollisionRow:
    """One workload's collision comparison (section 7.3)."""

    workload: str
    thp: bool
    lvm_collision_rate: float
    hash_collision_rate: float
    lvm_avg_extra_accesses: float
    index_size_bytes: int
    index_peak_bytes: int


def _mappings_for(workload: BuiltWorkload, thp: bool) -> List[PTE]:
    """The PTE set a populated process would install."""
    ptes: List[PTE] = []
    ppn = 1 << 20
    for vma in workload.vmas:
        for plan in plan_vma_mappings(vma, thp):
            ptes.append(PTE(vpn=plan.vpn, ppn=ppn, page_size=plan.page_size))
            ppn += plan.page_size.pages_4k
    return ptes


def build_lvm_for(workload: BuiltWorkload, thp: bool = False) -> LVMManager:
    """An LVM manager populated with the workload's address space."""
    manager = LVMManager(BumpAllocator())
    manager.begin_batch()
    for pte in _mappings_for(workload, thp):
        manager.map(pte)
    manager.end_batch()
    return manager


def collision_study(
    workload_name: str,
    thp: bool = False,
    num_lookups: int = 50_000,
    scale: int = 64,
    seed: int = 0,
) -> CollisionRow:
    """Measure LVM vs. Blake2-hash-table collision rates for one
    workload, driving both with the workload's own access trace."""
    workload = build_workload(workload_name, scale=scale, seed=seed)
    mappings = _mappings_for(workload, thp)
    manager = LVMManager(BumpAllocator())
    manager.begin_batch()
    for pte in mappings:
        manager.map(pte)
    manager.end_batch()
    index = manager.index
    peak = index.index_size_bytes

    hash_table = HashedPageTable(BumpAllocator(), max_load=0.6)
    for pte in mappings:
        hash_table.map(pte)

    trace = workload.trace(num_lookups, seed + 1)
    vpns = (trace >> 12).astype(np.int64)
    for vpn in vpns.tolist():
        walk = index.lookup(int(vpn))
        # The hash-table comparison measures the *hash function's* slot
        # collisions at load factor 0.6 (the paper's framing), so it is
        # queried with the entry's own key; the index handles the
        # huge-page round-down itself.
        key = walk.pte.vpn if walk.pte is not None else int(vpn)
        hash_table.walk(key)
    return CollisionRow(
        workload=workload_name,
        thp=thp,
        lvm_collision_rate=index.stats.collision_rate,
        hash_collision_rate=hash_table.collision_rate,
        lvm_avg_extra_accesses=index.stats.avg_extra_accesses_per_collision,
        index_size_bytes=index.index_size_bytes,
        index_peak_bytes=peak,
    )


@dataclass
class MemoryConsumptionRow:
    """Section 7.3 memory-consumption comparison for one workload."""

    workload: str
    mapped_pages: int
    minimum_bytes: int  # 8 B per translation entry
    lvm_overhead_bytes: int
    ecpt_overhead_bytes: int
    radix_overhead_bytes: int


def memory_consumption_study(
    workload_name: str, scale: int = 64, seed: int = 0
) -> MemoryConsumptionRow:
    """Page-table space overhead versus the 8 B/translation minimum."""
    workload = build_workload(workload_name, scale=scale, seed=seed)
    mappings = _mappings_for(workload, thp=False)
    minimum = len(mappings) * PTE_SIZE

    manager = LVMManager(BumpAllocator())
    manager.begin_batch()
    for pte in mappings:
        manager.map(pte)
    manager.end_batch()
    lvm_bytes = manager.index.table_bytes + manager.index.index_size_bytes

    ecpt = ECPT(BumpAllocator())
    for pte in mappings:
        ecpt.map(pte)

    from repro.pagetables.radix import RadixPageTable

    radix = RadixPageTable(BumpAllocator())
    for pte in mappings:
        radix.map(pte)

    return MemoryConsumptionRow(
        workload=workload_name,
        mapped_pages=len(mappings),
        minimum_bytes=minimum,
        lvm_overhead_bytes=max(0, lvm_bytes - minimum),
        ecpt_overhead_bytes=max(0, ecpt.table_bytes - minimum),
        radix_overhead_bytes=max(0, radix.table_bytes - minimum),
    )


def index_size_table(
    workload_names: List[str],
    scale: int = 64,
    seed: int = 0,
) -> Dict[str, Dict[str, int]]:
    """Table 2: steady-state LVM index size in bytes, 4 KB and THP."""
    table: Dict[str, Dict[str, int]] = {}
    for name in workload_names:
        workload = build_workload(name, scale=scale, seed=seed)
        row = {}
        for label, thp in (("4KB", False), ("THP", True)):
            manager = build_lvm_for(workload, thp)
            row[label] = manager.index.index_size_bytes
        table[name] = row
    return table


def scaling_study(
    footprints_gb: Optional[List[int]] = None, scale: int = 64, seed: int = 0
) -> Dict[int, int]:
    """Section 7.3 scaling study: memcached from 32 GB to 240 GB; the
    steady-state index size should not grow with the footprint."""
    footprints = footprints_gb or [32, 64, 128, 240]
    sizes: Dict[int, int] = {}
    for gb in footprints:
        workload = build_workload(
            "mem$", scale=scale, seed=seed, footprint_override=gb << 30
        )
        manager = build_lvm_for(workload, thp=False)
        sizes[gb] = manager.index.index_size_bytes
    return sizes
