"""Section 7.4 hardware characterization: area, power, storage.

The paper implements the LVM page walker in RTL, synthesizes it in a
commercial 22 nm PDK, and uses CACTI for the SRAM structures, reporting:

* a page-walk model computation + LWC lookup completes in 2 cycles,
* one LVM page walker: 0.000637 mm^2,
* the LWC: 0.00364 mm^2 and 0.588 mW leakage,
* versus radix PWCs: 3.0x storage bytes, 1.5x area, 1.9x power in
  LVM's favour.

We substitute a CACTI-style analytical model: small SRAM/CAM structures
cost a fixed periphery term plus a per-bit term.  The two constants are
fitted to the paper's published LWC and ratio numbers, then the model
generalizes to other capacities — which is what powers the scalability
ablation (radix PWCs must grow with memory footprint; the LWC does
not).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fixed_point import MODEL_BYTES

# Tag widths (bits): ASID + VPN prefix for PWC entries; ASID + level +
# offset for LWC entries.
PWC_TAG_BITS = 40
LWC_TAG_BITS = 48

# CACTI-style linear fit: area = periphery + per-bit * bits.  Constants
# are anchored so the default structures reproduce the paper's numbers
# (LWC 0.00364 mm^2 / 0.588 mW; radix PWC 1.5x area, 1.9x power).
AREA_PERIPHERY_UM2 = 2925.0
AREA_PER_BIT_UM2 = 0.254
LEAKAGE_PERIPHERY_UW = 380.0
LEAKAGE_PER_BIT_UW = 0.0738

#: Synthesized LVM walker datapath (one 64-bit multiplier + adder +
#: control) at 22 nm.
WALKER_AREA_MM2 = 0.000637
#: Walker latency: model computation + LWC lookup (cycles at 2 GHz).
WALKER_CYCLES = 2


@dataclass(frozen=True)
class StructureCost:
    """Area/power/storage of one MMU caching structure."""

    name: str
    entries: int
    payload_bits_per_entry: int
    tag_bits_per_entry: int

    @property
    def payload_bytes(self) -> int:
        return self.entries * self.payload_bits_per_entry // 8

    @property
    def total_bits(self) -> int:
        return self.entries * (self.payload_bits_per_entry + self.tag_bits_per_entry)

    @property
    def area_mm2(self) -> float:
        return (AREA_PERIPHERY_UM2 + AREA_PER_BIT_UM2 * self.total_bits) / 1e6

    @property
    def leakage_mw(self) -> float:
        return (LEAKAGE_PERIPHERY_UW + LEAKAGE_PER_BIT_UW * self.total_bits) / 1e3


def lwc_cost(entries: int = 16) -> StructureCost:
    """The LVM Walk Cache: 16-byte models, fully associative."""
    return StructureCost("LWC", entries, MODEL_BYTES * 8, LWC_TAG_BITS)


def radix_pwc_cost(entries_per_level: int = 32, levels: int = 3) -> StructureCost:
    """The radix page walk cache: 8-byte entries across three levels,
    modelled as one combined structure (shared periphery), as the
    paper's 1.5x area ratio implies."""
    return StructureCost(
        "RadixPWC", entries_per_level * levels, 64, PWC_TAG_BITS
    )


@dataclass
class HardwareComparison:
    """The headline ratios of section 7.4 (radix / LVM)."""

    lwc: StructureCost
    pwc: StructureCost

    @property
    def bytes_ratio(self) -> float:
        return self.pwc.payload_bytes / self.lwc.payload_bytes

    @property
    def area_ratio(self) -> float:
        return self.pwc.area_mm2 / self.lwc.area_mm2

    @property
    def power_ratio(self) -> float:
        return self.pwc.leakage_mw / self.lwc.leakage_mw


def compare_default() -> HardwareComparison:
    return HardwareComparison(lwc_cost(), radix_pwc_cost())


def pwc_entries_for_footprint(footprint_bytes: int, target_pmd_reach: float = 0.05) -> int:
    """PWC entries radix needs at the PMD level to keep a given reach.

    Radix page walk caches must scale with the footprint (each PMD
    entry covers 2 MB); this drives the scalability comparison — LVM's
    LWC stays at 16 entries because the whole learned index fits."""
    needed = int(footprint_bytes * target_pmd_reach) // (2 << 20)
    return max(32, needed)


def scalability_curve(footprints_gb) -> dict:
    """Area required vs. footprint for radix PWC and LWC (section 7.3
    "future-proof" claim rendered as hardware cost)."""
    rows = {}
    for gb in footprints_gb:
        entries = pwc_entries_for_footprint(gb << 30)
        rows[gb] = {
            "radix_pwc_mm2": radix_pwc_cost(entries_per_level=entries).area_mm2,
            "lvm_lwc_mm2": lwc_cost().area_mm2,
        }
    return rows
