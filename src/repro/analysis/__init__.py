"""Analyses reproducing the paper's studies and characterizations."""

from repro.analysis.area_model import (
    HardwareComparison,
    StructureCost,
    compare_default,
    lwc_cost,
    pwc_entries_for_footprint,
    radix_pwc_cost,
    scalability_curve,
)
from repro.analysis.collisions import (
    CollisionRow,
    MemoryConsumptionRow,
    build_lvm_for,
    collision_study,
    index_size_table,
    memory_consumption_study,
    scaling_study,
)
from repro.analysis.contiguity import (
    ContiguityStudy,
    median_profile,
    run_contiguity_study,
    run_fleet_study,
)
from repro.analysis.gap_coverage import (
    GapCoverageRow,
    allocator_divergence,
    gap_coverage_study,
    minimum_coverage,
)
from repro.analysis.figures import render_bars, render_cdf, render_grouped_bars
from repro.analysis.report import bytes_human, render_series, render_table

__all__ = [
    "CollisionRow",
    "ContiguityStudy",
    "GapCoverageRow",
    "HardwareComparison",
    "MemoryConsumptionRow",
    "StructureCost",
    "allocator_divergence",
    "build_lvm_for",
    "bytes_human",
    "collision_study",
    "compare_default",
    "gap_coverage_study",
    "index_size_table",
    "lwc_cost",
    "median_profile",
    "memory_consumption_study",
    "minimum_coverage",
    "pwc_entries_for_footprint",
    "radix_pwc_cost",
    "render_bars",
    "render_cdf",
    "render_grouped_bars",
    "render_series",
    "render_table",
    "run_contiguity_study",
    "run_fleet_study",
    "scalability_curve",
    "scaling_study",
]
