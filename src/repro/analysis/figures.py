"""ASCII figure rendering: bar charts and series for the harnesses.

The paper's Figures 9-12 are grouped bar charts; the benches print
tables for exactness, and these helpers add a visual rendering so a
terminal diff against the paper's figures is possible at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

BAR_WIDTH = 40


def render_bars(
    data: Dict[str, float],
    title: Optional[str] = None,
    reference: float = 1.0,
    width: int = BAR_WIDTH,
    value_format: str = "{:.3f}",
) -> str:
    """Horizontal bars with a reference marker (the radix = 1.0 line).

    Bars are scaled to the max value; the reference value's position is
    marked with '|' so over/under-unity reads instantly.
    """
    if not data:
        return title or ""
    label_width = max(len(k) for k in data)
    peak = max(max(data.values()), reference) or 1.0
    ref_col = min(width - 1, int(width * reference / peak))
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, value in data.items():
        filled = int(width * value / peak)
        bar = []
        for col in range(width):
            if col == ref_col and col >= filled:
                bar.append("|")
            elif col < filled:
                bar.append("#")
            else:
                bar.append(" ")
        lines.append(
            f"{name.ljust(label_width)}  {''.join(bar)} "
            f"{value_format.format(value)}"
        )
    return "\n".join(lines)


def render_grouped_bars(
    groups: Dict[str, Dict[str, float]],
    title: Optional[str] = None,
    reference: float = 1.0,
) -> str:
    """One bar block per group (per workload), same scale throughout."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max(
        (v for series in groups.values() for v in series.values()),
        default=1.0,
    )
    peak = max(peak, reference)
    for group, series in groups.items():
        lines.append(f"[{group}]")
        lines.append(
            render_bars(series, reference=reference, width=BAR_WIDTH)
        )
    return "\n".join(lines)


def render_cdf(
    values: Sequence[float],
    points: int = 10,
    title: Optional[str] = None,
    value_format: str = "{:.1f}",
) -> str:
    """A compact percentile table (latency-distribution figures)."""
    ordered = sorted(values)
    if not ordered:
        return title or ""
    lines: List[str] = []
    if title:
        lines.append(title)
    for i in range(points + 1):
        quantile = i / points
        idx = min(len(ordered) - 1, int(quantile * len(ordered)))
        lines.append(
            f"p{100 * quantile:5.1f}  {value_format.format(ordered[idx])}"
        )
    return "\n".join(lines)
