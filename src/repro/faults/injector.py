"""The fault-injection runtime.

One :class:`FaultInjector` is built per :class:`~repro.sim.simulator.
Simulator` run from the plan in its config.  Each fault site draws from
its own ``random.Random`` stream (derived from the plan seed and the
site name) so enabling one fault class never shifts the injection
points of another — runs stay bit-reproducible per class.

The injector only *damages* state; every structure it touches carries
its own detection + recovery path (see ``docs/INTERNALS.md``):

=====================  ==============================================
fault site             defense
=====================  ==============================================
PTE bit flip           integrity tag check on every probed entry →
                       leaf scan → leaf retrain from the
                       authoritative mapping set → full rebuild
model perturbation     bounded probe misses → leaf scan finds the
                       intact entry → leaf retrain repairs the model
allocator failure      retry-with-backoff at halved contiguity
                       (gapped tables); rescale falls back to rebuild
walk-cache poison      tag mismatch on use → invalidate + refetch,
                       charged as extra walk cycles
kernel event drop      dropped mmaps recovered by demand faults;
                       dropped munmaps by the reconciliation audit
kernel event dup       duplicate maps rejected by the kernel's
                       invariant guard / DuplicateMappingError
=====================  ==============================================
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.errors import OutOfPhysicalMemory
from repro.faults.plan import FaultPlan


class FaultyAllocator:
    """Allocator proxy that probabilistically fails ``alloc`` requests.

    Models a buddy allocator under fragmentation pressure: a request
    that would normally succeed transiently fails, forcing the caller
    into its retry/backoff path.  ``free`` and introspection pass
    through untouched.
    """

    def __init__(self, inner, rng: random.Random, rate: float, counts: Dict[str, int]):
        self._inner = inner
        self._rng = rng
        self._rate = rate
        self._counts = counts

    def alloc(self, nbytes: int) -> int:
        if self._rate > 0.0 and self._rng.random() < self._rate:
            self._counts["alloc_fail"] = self._counts.get("alloc_fail", 0) + 1
            raise OutOfPhysicalMemory(
                f"injected allocation failure for {nbytes} bytes"
            )
        return self._inner.alloc(nbytes)

    def free(self, paddr: int, nbytes: int) -> None:
        self._inner.free(paddr, nbytes)

    def max_contiguous_bytes(self) -> int:
        return self._inner.max_contiguous_bytes()

    def __getattr__(self, name):
        # Buddy-specific introspection (fragmentation studies) and any
        # other inner API pass straight through.
        return getattr(self._inner, name)


class FaultInjector:
    """Applies a :class:`FaultPlan` to live simulator state."""

    def __init__(self, plan: FaultPlan):
        plan.validate()
        self.plan = plan
        self.counts: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {}

    # -- plumbing ------------------------------------------------------
    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = random.Random(f"{self.plan.seed}:{site}")
            self._rngs[site] = rng
        return rng

    def _fire(self, site: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if self._rng(site).random() >= rate:
            return False
        self.counts[site] = self.counts.get(site, 0) + 1
        return True

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    # -- allocator faults ----------------------------------------------
    def wrap_allocator(self, allocator):
        """Wrap ``allocator`` if allocation faults are enabled."""
        if self.plan.alloc_fail_rate <= 0.0:
            return allocator
        return FaultyAllocator(
            allocator, self._rng("alloc_fail"), self.plan.alloc_fail_rate, self.counts
        )

    # -- kernel event-stream faults ------------------------------------
    def drop_kernel_event(self) -> bool:
        return self._fire("kernel_event_drop", self.plan.kernel_event_drop_rate)

    def duplicate_kernel_event(self) -> bool:
        return self._fire("kernel_event_dup", self.plan.kernel_event_dup_rate)

    # -- per-reference translation-path faults -------------------------
    def on_reference(self, sim) -> None:
        """Called once per trace reference by the simulator run loop."""
        if self._fire("pte_bitflip", self.plan.pte_bitflip_rate):
            self._flip_pte(sim)
        if self._fire("model_perturb", self.plan.model_perturb_rate):
            self._perturb_model(sim)
        if self._fire("walk_cache_corrupt", self.plan.walk_cache_corrupt_rate):
            self._poison_walk_cache(sim)

    def _random_leaf(self, sim, rng: random.Random, occupied_only: bool = True):
        index = getattr(getattr(sim, "manager", None), "index", None)
        if index is None or index.root is None:
            return None
        from repro.core.nodes import leaf_nodes

        leaves = leaf_nodes(index.root)
        if occupied_only:
            leaves = [leaf for leaf in leaves if leaf.table.occupied]
        if not leaves:
            return None
        return rng.choice(leaves)

    def _flip_pte(self, sim) -> None:
        """Corrupt one live gapped-page-table entry (single bit flip)."""
        rng = self._rng("pte_bitflip_target")
        leaf = self._random_leaf(sim, rng)
        if leaf is None:
            return
        entries = leaf.table.entries()
        slot, _entry = entries[rng.randrange(len(entries))]
        fld = "vpn" if rng.random() < 0.5 else "ppn"
        bit = rng.randrange(40)
        leaf.table.corrupt_slot(slot, fld=fld, bit=bit)

    def _perturb_model(self, sim) -> None:
        """Shift a leaf model's intercept beyond its search window, so
        the bounded probe can no longer find the leaf's entries."""
        rng = self._rng("model_perturb_target")
        leaf = self._random_leaf(sim, rng)
        if leaf is None:
            return
        from repro.core.fixed_point import FRACTION_BITS, saturate_raw
        from repro.core.linear_model import LinearModel

        index = sim.manager.index
        window = leaf.search_window + leaf.table.max_displacement
        shift_slots = window + index.config.max_leaf_error_slots + (
            2 * index.config.slots_per_line
        ) + 4
        if rng.random() < 0.5:
            shift_slots = -shift_slots
        leaf.model = LinearModel(
            leaf.model.slope_raw,
            saturate_raw(leaf.model.intercept_raw + (shift_slots << FRACTION_BITS)),
        )

    def _poison_walk_cache(self, sim) -> None:
        """Corrupt a resident walk-cache entry of the active walker."""
        rng = self._rng("walk_cache_target")
        walker = sim.walker
        for attr in ("lwc", "pwc", "cwc"):
            cache = getattr(walker, attr, None)
            if cache is not None and cache.poison_random(rng):
                return
