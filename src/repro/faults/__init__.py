"""Deterministic, seeded fault injection for the LVM stack.

The subsystem has two halves:

* :class:`~repro.faults.plan.FaultPlan` — a declarative description of
  *which* fault classes fire and at what rate, carried inside
  :class:`~repro.sim.config.SimConfig` so every run is reproducible
  from its configuration alone.
* :class:`~repro.faults.injector.FaultInjector` — the runtime that
  draws from seeded per-site RNG streams and applies faults to live
  simulator state: PTE bit flips in gapped page tables, leaf-model
  perturbations, injected allocator failures, walk-cache poisoning,
  and dropped/duplicated kernel mmap/munmap events.

The defense side (detection and the bounded-probe → leaf-scan →
leaf-retrain → full-rebuild degradation ladder) lives with the
structures themselves; see ``docs/INTERNALS.md`` §"Fault model".
"""

from repro.faults.injector import FaultInjector, FaultyAllocator
from repro.faults.plan import FaultKind, FaultPlan

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultyAllocator",
]
