"""Declarative fault plans: which fault classes fire, and how often.

A :class:`FaultPlan` is plain data — it can be cloned, serialized, and
compared — and is deterministic by construction: the injector derives
one independent RNG stream per fault site from ``seed``, so two runs
with the same plan (and the same workload seed) inject the exact same
faults at the exact same points.

Rates are *per opportunity*: per trace reference for the translation-
path faults (PTE bit flips, model perturbation, walk-cache
corruption), per allocation request for allocator failures, and per
mmap/munmap event for the kernel stream faults.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass

from repro.errors import FaultInjectionError


class FaultKind(str, enum.Enum):
    """The injectable fault classes."""

    #: Flip a bit in a live gapped-page-table entry (vpn or ppn).
    PTE_BITFLIP = "pte_bitflip"
    #: Perturb a leaf model's intercept so predictions land outside the
    #: error bound (stale/corrupted model state).
    MODEL_PERTURB = "model_perturb"
    #: Fail a physical allocation request (buddy under pressure),
    #: forcing retry-with-backoff at smaller contiguity.
    ALLOC_FAIL = "alloc_fail"
    #: Poison a resident LWC/PWC/CWC entry (walk-cache corruption).
    WALK_CACHE_CORRUPT = "walk_cache_corrupt"
    #: Drop or duplicate mmap/munmap events in the kernel stream to the
    #: LVM agent.
    KERNEL_EVENTS = "kernel_events"


@dataclass
class FaultPlan:
    """Seeded fault-injection configuration, carried by ``SimConfig``."""

    seed: int = 0
    pte_bitflip_rate: float = 0.0  # per trace reference
    model_perturb_rate: float = 0.0  # per trace reference
    alloc_fail_rate: float = 0.0  # per allocation request
    walk_cache_corrupt_rate: float = 0.0  # per trace reference
    kernel_event_drop_rate: float = 0.0  # per mmap/munmap event
    kernel_event_dup_rate: float = 0.0  # per mmap event

    _RATE_FIELDS = (
        "pte_bitflip_rate",
        "model_perturb_rate",
        "alloc_fail_rate",
        "walk_cache_corrupt_rate",
        "kernel_event_drop_rate",
        "kernel_event_dup_rate",
    )

    @staticmethod
    def single(
        kind: "FaultKind | str", rate: float = 1e-3, seed: int = 0
    ) -> "FaultPlan":
        """A plan enabling exactly one fault class at ``rate``."""
        kind = FaultKind(kind)
        plan = FaultPlan(seed=seed)
        if kind is FaultKind.PTE_BITFLIP:
            plan.pte_bitflip_rate = rate
        elif kind is FaultKind.MODEL_PERTURB:
            plan.model_perturb_rate = rate
        elif kind is FaultKind.ALLOC_FAIL:
            plan.alloc_fail_rate = rate
        elif kind is FaultKind.WALK_CACHE_CORRUPT:
            plan.walk_cache_corrupt_rate = rate
        else:  # KERNEL_EVENTS: drops and duplicates share the rate
            plan.kernel_event_drop_rate = rate
            plan.kernel_event_dup_rate = rate
        plan.validate()
        return plan

    @property
    def enabled(self) -> bool:
        """Whether any fault class has a non-zero rate."""
        return any(getattr(self, f) > 0.0 for f in self._RATE_FIELDS)

    def validate(self) -> None:
        if not isinstance(self.seed, int):
            raise FaultInjectionError(
                f"fault plan seed must be an int, got {type(self.seed).__name__}"
            )
        for name in self._RATE_FIELDS:
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise FaultInjectionError(
                    f"fault rate {name}={rate!r} must be within [0, 1]"
                )

    def to_dict(self) -> dict:
        return asdict(self)
