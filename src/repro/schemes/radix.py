"""The x86-64 radix baseline (4-level page table + PWC)."""

from __future__ import annotations

from repro.mmu.walker import RadixWalker
from repro.pagetables.radix import RadixPageTable
from repro.schemes.base import RadixWalkCacheStats, SchemeDescriptor
from repro.schemes.registry import register


class RadixScheme(RadixWalkCacheStats, SchemeDescriptor):
    name = "radix"
    description = "x86-64 4-level radix walk with a 3-level page-walk cache"
    aliases = ("x86", "4level")
    core = True
    supports_virtualization = True
    # Walker state (the radix PWC) mutates only on walks, which stay
    # on the scalar miss path under the vectorized engine.
    trace_loop = "standard"
    supports_vectorized = True

    def make_page_table(self, sim):
        return RadixPageTable(sim.allocator)

    def make_walker(self, sim):
        return RadixWalker(sim.page_table, sim.hierarchy)

    def make_host_table(self, allocator, ptes):
        table = RadixPageTable(allocator)
        for pte in ptes:
            table.map(pte)
        return table


DESCRIPTOR = register(RadixScheme())
