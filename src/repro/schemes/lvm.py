"""Learned virtual memory (LVM) — the paper's contribution."""

from __future__ import annotations

from repro.core.learned_index import LearnedIndex
from repro.kernel.manager import LVMManager
from repro.mmu.walker import LVMWalker
from repro.schemes.base import SchemeDescriptor
from repro.schemes.registry import register


class LVMScheme(SchemeDescriptor):
    name = "lvm"
    description = "learned index over gapped page tables with the LVM walk cache"
    aliases = ("learned",)
    core = True
    supports_virtualization = True
    walk_cache_kind = "lwc"
    # Injected allocation failures target the LVM structures (gapped
    # tables, model arrays), which own the retry-with-backoff defense.
    wraps_allocator_under_faults = True
    # Learned-index lookups and LWC state only move on walks; the
    # OS-side management cycles are accounted after the trace loop, so
    # LVM runs unchanged under the vectorized engine.
    trace_loop = "standard"
    supports_vectorized = True

    def make_page_table(self, sim):
        sim.manager = LVMManager(sim.allocator, sim.lvm_config)
        return sim.manager

    def make_walker(self, sim):
        return LVMWalker(sim.manager.index, sim.hierarchy)

    def mgmt_cycles(self, sim):
        """Section 7.3's OS management charges, from the index's own
        operation counters and the configured per-operation costs."""
        stats = sim.manager.index.stats
        costs = sim.config.lvm_costs
        keys = sim.manager.index.num_mappings
        detail = {
            "inserts": costs.insert_cycles * stats.inserts,
            "rescales": costs.rescale_cycles * stats.rescales,
            "local_retrains": costs.local_retrain_cycles * stats.local_retrains,
            "rebuilds": costs.rebuild_cycles_per_key * keys * stats.full_rebuilds,
        }
        charged = sum(detail.values())
        # The initial build happens during process start-up, before the
        # region of interest (the paper's 1B-instruction window starts
        # after initialization); report it but do not charge it.
        detail["initial_build_uncharged"] = costs.build_cycles_per_key * keys
        return charged, detail

    def fill_walk_cache_stats(self, sim, result):
        result.walk_cache_hit_rate = sim.walker.lwc.hit_rate
        result.walk_cache_detail = {"lwc": sim.walker.lwc.hit_rate}

    def fill_scheme_stats(self, sim, result):
        index = sim.manager.index
        result.index_size_bytes = index.index_size_bytes
        result.index_depth = index.depth
        result.collision_rate = index.stats.collision_rate
        result.avg_extra_accesses = index.stats.avg_extra_accesses_per_collision

    def make_host_table(self, allocator, ptes):
        index = LearnedIndex(allocator)
        index.bulk_build(ptes)
        return index


DESCRIPTOR = register(LVMScheme())
