"""Midgard: virtually-indexed cache hierarchy (section 7.5.2)."""

from __future__ import annotations

from repro.mmu.walker import RadixWalker
from repro.pagetables.radix import RadixPageTable
from repro.schemes.base import RadixWalkCacheStats, SchemeDescriptor
from repro.schemes.registry import register


class MidgardScheme(RadixWalkCacheStats, SchemeDescriptor):
    name = "midgard"
    description = (
        "virtually-indexed caches; only LLC misses walk the (radix) table"
    )
    # Cache hits need no translation at all; the TLB fast path is
    # bypassed and only DRAM-bound references reach the walker — so
    # neither the standard loop nor the vectorized engine applies.
    trace_loop = "virtual_hierarchy"
    supports_vectorized = False

    def make_page_table(self, sim):
        return RadixPageTable(sim.allocator)

    def make_walker(self, sim):
        return RadixWalker(sim.page_table, sim.hierarchy)


DESCRIPTOR = register(MidgardScheme())
