"""Flattened page tables (section 7.5.1 comparison point)."""

from __future__ import annotations

from repro.mmu.walker import FPTWalker
from repro.pagetables.fpt import FlattenedPageTable
from repro.schemes.base import RadixWalkCacheStats, SchemeDescriptor
from repro.schemes.registry import register


class FPTScheme(RadixWalkCacheStats, SchemeDescriptor):
    name = "fpt"
    description = "flattened page tables: folded levels, radix-style walk cache"
    aliases = ("flattened",)
    # Folded-level walks mutate nothing per TLB hit; standard loop,
    # vectorizable.
    trace_loop = "standard"
    supports_vectorized = True

    def make_page_table(self, sim):
        return FlattenedPageTable(sim.allocator)

    def make_walker(self, sim):
        return FPTWalker(sim.page_table, sim.hierarchy)


DESCRIPTOR = register(FPTScheme())
