"""Translation schemes as first-class, self-describing components.

One module per scheme defines a :class:`SchemeDescriptor` — factories,
capability flags, stats hooks — and registers it with the
:mod:`~repro.schemes.registry`.  The simulator, the serial/parallel
sweeps, the CLI and the virtualization layer all resolve scheme names
here; adding a scheme touches exactly one new module (or none: any
importable module may call :func:`registry.register` itself, see
``examples/custom_scheme.py``).

Import order fixes the canonical listing: the paper's headline four
(radix, ecpt, lvm, ideal) first, then the section-7.5 extended set
(fpt, asap, midgard).
"""

from repro.schemes import registry
from repro.schemes.base import RadixWalkCacheStats, SchemeDescriptor

# Built-in descriptors self-register on import, in presentation order.
from repro.schemes import radix as _radix  # noqa: F401,E402
from repro.schemes import ecpt as _ecpt  # noqa: F401,E402
from repro.schemes import lvm as _lvm  # noqa: F401,E402
from repro.schemes import ideal as _ideal  # noqa: F401,E402
from repro.schemes import fpt as _fpt  # noqa: F401,E402
from repro.schemes import asap as _asap  # noqa: F401,E402
from repro.schemes import midgard as _midgard  # noqa: F401,E402

#: The normalization baseline of every relative metric (Figures 9-12).
BASELINE_SCHEME = "radix"

__all__ = [
    "BASELINE_SCHEME",
    "RadixWalkCacheStats",
    "SchemeDescriptor",
    "registry",
]
