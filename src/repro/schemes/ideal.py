"""The single-access oracle (upper bound of Figures 9-12)."""

from __future__ import annotations

from repro.mmu.walker import IdealWalker
from repro.pagetables.ideal import IdealPageTable
from repro.schemes.base import SchemeDescriptor
from repro.schemes.registry import register


class IdealScheme(SchemeDescriptor):
    name = "ideal"
    description = "oracle translation: exactly one memory access per walk"
    aliases = ("oracle",)
    core = True

    def make_page_table(self, sim):
        return IdealPageTable(sim.allocator)

    def make_walker(self, sim):
        return IdealWalker(sim.page_table, sim.hierarchy)


DESCRIPTOR = register(IdealScheme())
