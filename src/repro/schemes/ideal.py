"""The single-access oracle (upper bound of Figures 9-12)."""

from __future__ import annotations

from repro.mmu.walker import IdealWalker
from repro.pagetables.ideal import IdealPageTable
from repro.schemes.base import SchemeDescriptor
from repro.schemes.registry import register


class IdealScheme(SchemeDescriptor):
    name = "ideal"
    description = "oracle translation: exactly one memory access per walk"
    aliases = ("oracle",)
    core = True
    # Stateless single-access walks run fine under the vectorized
    # engine, and the oracle's walk is closed-form (one dict chase, no
    # walk-cache state), so the engine's batched miss path applies too.
    trace_loop = "standard"
    supports_vectorized = True

    def make_page_table(self, sim):
        return IdealPageTable(sim.allocator)

    def make_walker(self, sim):
        return IdealWalker(sim.page_table, sim.hierarchy)

    def make_batch_walker(self, sim):
        """Closed-form walk: the oracle's one access is the entry slot
        of the covering mapping.  ``map()`` pre-allocates every entry's
        backing slot, so the lookups below are side-effect-free; an
        unmapped VPN returns None and the engine falls back to the full
        scalar walker (whose miss probe lazily allocates its target).
        """
        table = sim.page_table
        covering = table._covering
        entries = table._entries
        entry_paddrs = table._entry_paddrs

        def batch_walk(vpn):
            first = covering.get(vpn)
            if first is None:
                return None
            return entries[first], entry_paddrs[first]

        return batch_walk


DESCRIPTOR = register(IdealScheme())
