"""Elastic cuckoo page tables (ECPT) with the cuckoo walk cache."""

from __future__ import annotations

from repro.mmu.walker import ECPTWalker
from repro.pagetables.ecpt import DEFAULT_INITIAL_SIZE, ECPT
from repro.schemes.base import SchemeDescriptor
from repro.schemes.registry import register


class ECPTScheme(SchemeDescriptor):
    name = "ecpt"
    description = "elastic cuckoo page tables, parallel probes + cuckoo walk cache"
    aliases = ("cuckoo",)
    core = True
    walk_cache_kind = "cwc"
    # Cuckoo-table rehashing and the CWC only move on walks, so the
    # engine's hit-side batching is exact for ECPT.
    trace_loop = "standard"
    supports_vectorized = True

    @staticmethod
    def initial_size_for_scale(footprint_scale: int) -> int:
        """Initial table size scaled with the workload footprint.

        Table 1's 16384 entries correspond to full-size workloads;
        scaled-down footprints shrink the initial tables by the same
        factor (floored so the cuckoo ways stay functional).  This is
        *the* single definition of ECPT footprint sizing — the
        simulator and any host-mapping construction both come here.
        """
        return max(256, DEFAULT_INITIAL_SIZE // footprint_scale)

    def make_page_table(self, sim):
        initial = self.initial_size_for_scale(sim.config.footprint_scale)
        return ECPT(sim.allocator, initial_size=initial)

    def make_walker(self, sim):
        return ECPTWalker(sim.page_table, sim.hierarchy)

    def fill_walk_cache_stats(self, sim, result):
        cwc = sim.walker.cwc
        result.walk_cache_hit_rate = cwc.hit_rate
        result.walk_cache_detail = {
            "pmd": cwc.pmd.hit_rate,
            "pud": cwc.pud.hit_rate,
        }


DESCRIPTOR = register(ECPTScheme())
