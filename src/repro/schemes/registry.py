"""The scheme registry: name -> :class:`SchemeDescriptor` resolution.

One place defines a scheme; everything else — the simulator, the
serial and parallel sweeps, the CLI, the virtualization layer — looks
it up here.  ``register()`` is the extension point: a descriptor
registered from *any* module (a test, an example, a user script)
immediately works everywhere a scheme name is accepted, including
``run_suite(jobs=N)``.

Pickling rules for the parallel sweep
-------------------------------------

Descriptors themselves are never pickled.  A :class:`RunSpec` carries
the scheme's canonical *name* plus the module that registered it
(:func:`provider_module`); a worker process resolves the name through
this registry, importing the provider module first if the name is not
yet registered there.  Under the default ``fork`` start method workers
inherit the parent's registry wholesale, so even schemes registered
from ``__main__`` or a REPL work; under ``spawn`` a custom scheme must
live in an importable module whose import registers it (module-level
``register(...)`` call), which is exactly what the built-in descriptor
modules do.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigError, UnknownSchemeError
from repro.schemes.base import SchemeDescriptor

#: canonical name -> descriptor, in registration order (dicts preserve
#: insertion order, which fixes ``available()`` and the sweep default).
_DESCRIPTORS: Dict[str, SchemeDescriptor] = {}
#: alias -> canonical name.
_ALIASES: Dict[str, str] = {}
#: canonical name -> module whose import (re-)registers the descriptor.
_PROVIDERS: Dict[str, str] = {}

SchemeLike = Union[str, SchemeDescriptor]


def register(
    descriptor: SchemeDescriptor, *, replace: bool = False
) -> SchemeDescriptor:
    """Register ``descriptor`` under its name and aliases.

    Returns the descriptor so modules can write
    ``DESCRIPTOR = register(MyScheme())``.  Name/alias collisions are
    configuration errors unless ``replace=True`` (which also drops the
    previous registration's aliases).
    """
    name = descriptor.name
    if not name or not isinstance(name, str):
        raise ConfigError(
            f"scheme descriptor {descriptor!r} needs a non-empty string name"
        )
    taken = set(_DESCRIPTORS) | set(_ALIASES)
    claimed = (name,) + tuple(descriptor.aliases)
    if not replace:
        clash = [c for c in claimed if c in taken]
        if clash:
            raise ConfigError(
                f"scheme name(s) {clash!r} already registered; pass "
                "replace=True to override"
            )
    else:
        unregister(name)
    for alias in descriptor.aliases:
        _ALIASES[alias] = name
    _DESCRIPTORS[name] = descriptor
    _PROVIDERS[name] = type(descriptor).__module__
    return descriptor


def unregister(name: str) -> None:
    """Remove a registration (test/teardown helper).  Unknown names are
    a no-op so teardown paths can call this unconditionally."""
    canonical = _ALIASES.get(name, name)
    _DESCRIPTORS.pop(canonical, None)
    _PROVIDERS.pop(canonical, None)
    for alias, target in list(_ALIASES.items()):
        if target == canonical:
            del _ALIASES[alias]


def get(scheme: SchemeLike) -> SchemeDescriptor:
    """Resolve a scheme name (or alias, or descriptor instance) to its
    descriptor, raising :class:`UnknownSchemeError` — with the list of
    registered names — for anything unknown."""
    if isinstance(scheme, SchemeDescriptor):
        return scheme
    canonical = _ALIASES.get(scheme, scheme)
    descriptor = _DESCRIPTORS.get(canonical)
    if descriptor is None:
        raise UnknownSchemeError(
            f"unknown translation scheme {scheme!r}; registered schemes: "
            f"{', '.join(available())}"
        )
    return descriptor


def canonical_name(scheme: SchemeLike) -> str:
    """The canonical name for a scheme name/alias/descriptor."""
    return get(scheme).name


def is_registered(scheme: str) -> bool:
    return scheme in _DESCRIPTORS or scheme in _ALIASES


def available() -> Tuple[str, ...]:
    """All registered canonical names, in registration order."""
    return tuple(_DESCRIPTORS)


def core_schemes() -> Tuple[str, ...]:
    """The paper's headline comparison set (``core=True`` descriptors)."""
    return tuple(n for n, d in _DESCRIPTORS.items() if d.core)


def virtualization_schemes() -> Tuple[str, ...]:
    """Schemes that can host the second dimension of a nested walk."""
    return tuple(
        n for n, d in _DESCRIPTORS.items() if d.supports_virtualization
    )


def provider_module(scheme: SchemeLike) -> Optional[str]:
    """The module whose import registers ``scheme`` (for sweep workers)."""
    return _PROVIDERS.get(canonical_name(scheme))


def descriptors() -> List[SchemeDescriptor]:
    """All registered descriptors, in registration order."""
    return list(_DESCRIPTORS.values())
