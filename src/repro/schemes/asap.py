"""ASAP: radix translation with leaf-entry prefetching (section 7.5.1)."""

from __future__ import annotations

from repro.mmu.walker import ASAPWalker
from repro.pagetables.radix import RadixPageTable
from repro.schemes.base import RadixWalkCacheStats, SchemeDescriptor
from repro.schemes.registry import register


class ASAPScheme(RadixWalkCacheStats, SchemeDescriptor):
    name = "asap"
    description = "radix walk plus direct leaf/PDE prefetching (extra traffic)"
    # ASAP's prefetches fire inside the walker, i.e. only on the
    # scalar miss path — TLB-hit batching stays exact.
    trace_loop = "standard"
    supports_vectorized = True

    def make_page_table(self, sim):
        return RadixPageTable(sim.allocator)

    def make_walker(self, sim):
        return ASAPWalker(
            sim.page_table,
            sim.hierarchy,
            prefetch_success_rate=sim.config.asap_prefetch_success,
        )


DESCRIPTOR = register(ASAPScheme())
