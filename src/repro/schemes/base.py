"""The scheme descriptor protocol: one object fully describes a
translation scheme.

The paper's evaluation is a bake-off between translation schemes —
radix, elastic cuckoo (ECPT), flattened (FPT), ASAP, Midgard, the
learned index (LVM), and a single-access oracle.  Everything the
simulation stack needs to run one of them is captured here as a
:class:`SchemeDescriptor`:

* how to build the scheme's page-table structure for a simulator run,
* how to build the hardware walker that drives it,
* which trace loop the scheme uses (Midgard's virtually-indexed cache
  hierarchy walks only on LLC misses; everyone else translates every
  reference),
* which per-scheme statistics flow into the :class:`SimResult`
  (walk-cache hit rates, learned-index size/collision metrics, OS
  management cycles),
* capability flags (THP, virtualization host mappings, walk-cache
  kind) that the CLI's ``repro schemes`` listing and the virtualization
  layer consult instead of matching on name strings.

Descriptors are *stateless*: every hook receives the live
:class:`~repro.sim.simulator.Simulator` (or explicit arguments) and
stores nothing on ``self``, so a single registered instance can serve
any number of concurrent runs — and never needs to pickle.  The
parallel sweep ships scheme *names*, and workers resolve them through
:mod:`repro.schemes.registry` (see the pickling notes there).

Adding a scheme means subclassing this, filling in the two factory
hooks, and calling :func:`repro.schemes.registry.register` — see
``examples/custom_scheme.py`` and docs/INTERNALS.md §10.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.errors import SchemeCapabilityError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports us)
    from repro.sim.results import SimResult
    from repro.sim.simulator import Simulator


class SchemeDescriptor:
    """Base class for translation-scheme descriptors.

    Subclasses override the class attributes and the two factory hooks;
    the stats/run hooks have sensible defaults (standard trace loop, no
    walk cache, no extra stats).
    """

    #: Canonical scheme name — the string recorded in ``SimResult.scheme``
    #: and accepted everywhere a scheme is named.
    name: str = ""
    #: One-line human description for the ``repro schemes`` listing.
    description: str = ""
    #: Alternate accepted names (``registry.get`` resolves them).
    aliases: Tuple[str, ...] = ()
    #: True for the paper's headline four-scheme comparison
    #: (Figures 9-12); False for the section-7.5 extended studies.
    core: bool = False
    #: The scheme runs under transparent huge pages.
    supports_thp: bool = True
    #: The scheme can serve as the host dimension of a nested (2D)
    #: translation (:func:`repro.virt.nested.build_host_mapping`).
    supports_virtualization: bool = False
    #: Which walk-cache structure the walker carries:
    #: ``"pwc"`` (radix page-walk cache), ``"cwc"`` (cuckoo walk
    #: cache), ``"lwc"`` (LVM walk cache) or ``"none"``.
    walk_cache_kind: str = "none"
    #: Fault-injection plans wrap this scheme's allocator (allocation
    #: failures target the scheme's own structures, which must own a
    #: retry/backoff defense).
    wraps_allocator_under_faults: bool = False
    #: Which trace loop drives this scheme: ``"standard"`` translates
    #: every reference through the TLB hierarchy; ``"virtual_hierarchy"``
    #: is Midgard's virtually-indexed-cache loop (walks only on LLC
    #: misses).  :meth:`run_trace` dispatches on this.
    trace_loop: str = "standard"
    #: The standard loop may process this scheme's references through
    #: the epoch-based vectorized engine (repro/sim/vectorized.py).
    #: True for every scheme whose walker only runs on the scalar miss
    #: path; a custom scheme whose walker or page table observes
    #: per-reference state (beyond walks) must opt out.
    supports_vectorized: bool = True

    # -- vectorized miss-path batching ---------------------------------
    def make_batch_walker(self, sim: "Simulator"):
        """Closed-form miss-path hook for the vectorized engine.

        Schemes whose walk is pure array math (the single-access ideal
        oracle; a hashed table with a side-effect-free slot function)
        may return a callable ``vpn -> (pte, walk paddr) | None``: the
        authoritative translation plus the one physical address the
        walk would touch, with *no* state mutation.  The engine then
        replays the walk's counter updates inline and skips the
        walker-object call chain for references it has proven miss in
        every TLB level.  ``None`` (the default) disables the mode.
        """
        return None

    # -- construction hooks -------------------------------------------
    def make_page_table(self, sim: "Simulator"):
        """Build and return the scheme's page-table structure.

        Runs before the process/VMAs exist; ``sim.allocator``,
        ``sim.config`` and ``sim.lvm_config`` are available.  A scheme
        with an OS-side manager (LVM) may set ``sim.manager`` here.
        """
        raise NotImplementedError(
            f"{type(self).__name__} must implement make_page_table()"
        )

    def make_walker(self, sim: "Simulator"):
        """Build and return the hardware walker.

        Runs after the address space is populated; ``sim.page_table``,
        ``sim.hierarchy`` and (for LVM) ``sim.manager`` are available.
        """
        raise NotImplementedError(
            f"{type(self).__name__} must implement make_walker()"
        )

    # -- the trace loop -----------------------------------------------
    def run_trace(self, sim: "Simulator", trace) -> Tuple[int, int]:
        """Drive the reference trace; returns (data_stall, mmu_cycles).

        Dispatches on :attr:`trace_loop`: the standard loop translates
        every reference through the TLB hierarchy then accesses the
        data (and may run vectorized, see
        :attr:`supports_vectorized`); Midgard declares the
        virtually-indexed-hierarchy loop instead.
        """
        if self.trace_loop == "virtual_hierarchy":
            return sim.run_virtual_hierarchy(trace)
        return sim.run_standard(trace)

    # -- per-scheme accounting ----------------------------------------
    def mgmt_cycles(self, sim: "Simulator") -> Tuple[float, Dict[str, float]]:
        """OS-side management cycles charged to the run, plus a
        breakdown.  Only LVM models management work (section 7.3)."""
        return 0.0, {}

    def fill_walk_cache_stats(self, sim: "Simulator", result: "SimResult") -> None:
        """Populate ``result.walk_cache_hit_rate``/``walk_cache_detail``
        from the scheme's walk-cache structure (if any)."""

    def fill_scheme_stats(self, sim: "Simulator", result: "SimResult") -> None:
        """Populate any scheme-specific result fields (LVM's index
        size/depth/collision metrics)."""

    # -- virtualization -----------------------------------------------
    def make_host_table(self, allocator, ptes):
        """Build the hypervisor's GPA->HPA mapping over ``ptes`` for the
        second dimension of a nested (2D) walk.

        Only schemes with ``supports_virtualization`` implement this;
        the default raises the capability error the virt layer surfaces.
        """
        raise SchemeCapabilityError(
            f"scheme {self.name!r} does not support virtualization host "
            "mappings"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class RadixWalkCacheStats:
    """Mixin: walk-cache stats for any walker carrying a radix-style
    :class:`~repro.mmu.walk_cache.RadixPWC` (radix, FPT, ASAP, Midgard).
    """

    walk_cache_kind = "pwc"

    def fill_walk_cache_stats(self, sim: "Simulator", result: "SimResult") -> None:
        pwc = sim.walker.pwc
        rates = pwc.hit_rate_by_level
        result.walk_cache_detail = {f"L{k}": v for k, v in rates.items()}
        lookups = sum(l.accesses for l in pwc.levels.values())
        hits = sum(l.hits for l in pwc.levels.values())
        result.walk_cache_hit_rate = hits / lookups if lookups else 0.0
