"""``python -m repro`` — the artifact-regeneration CLI."""

from repro.cli import main

raise SystemExit(main())
