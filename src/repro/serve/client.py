"""Clients for the translation service.

Two shapes over the same frames (:mod:`repro.serve.protocol`):

* :class:`ServeClient` — blocking, one request at a time.  What tests,
  the CLI one-shots and simple scripts want: call, get the result, or
  catch the rehydrated typed error.
* :class:`AsyncServeClient` — asyncio, pipelined.  Requests are
  matched to responses by id, so many can be in flight on one
  connection; the traffic generator uses this to put real concurrency
  behind the admission controller.

Both raise the *typed* server error (:func:`decode_error`): a shed
request surfaces as :class:`~repro.errors.ServerOverloadedError`, a
poisoned tenant as :class:`~repro.errors.TenantQuarantinedError`, and
so on — clients branch on exception class, never on message text.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Dict, List, Optional

from repro.errors import ProtocolError
from repro.serve.protocol import (
    decode_error,
    read_frame,
    read_frame_sock,
    write_frame,
    write_frame_sock,
)

__all__ = ["AsyncServeClient", "ServeClient"]


class ServeClient:
    """Blocking client: one connection, serial request/response."""

    def __init__(self, socket_path: str, timeout: Optional[float] = 60.0):
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(socket_path)
        self._next_id = 0

    # -- plumbing ------------------------------------------------------

    def call(self, op: str, **payload) -> dict:
        self._next_id += 1
        request = dict(payload, op=op, id=self._next_id)
        write_frame_sock(self._sock, request)
        response = read_frame_sock(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if response.get("ok"):
            return response.get("result") or {}
        raise decode_error(response.get("error") or {})

    # -- convenience wrappers -----------------------------------------

    def create_tenant(self, spec: dict) -> dict:
        return self.call("create_tenant", args={"spec": spec})

    def drop_tenant(self, name: str) -> dict:
        return self.call("drop_tenant", args={"name": name})

    def mmap(self, tenant: str, start_vpn: int, pages: int, name: str = "") -> dict:
        return self.call(
            "mmap",
            tenant=tenant,
            args={"start_vpn": start_vpn, "pages": pages, "name": name},
        )

    def munmap(self, tenant: str, start_vpn: int) -> dict:
        return self.call("munmap", tenant=tenant, args={"start_vpn": start_vpn})

    def translate(self, tenant: str, vas: List[int]) -> dict:
        return self.call("translate", tenant=tenant, args={"vas": vas})

    def stats(self, tenant: str) -> dict:
        return self.call("stats", tenant=tenant, args={})

    def digest(self, tenant: str) -> dict:
        return self.call("digest", tenant=tenant, args={})

    def server_stats(self) -> dict:
        return self.call("server_stats")

    def ping(self) -> dict:
        return self.call("ping")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncServeClient:
    """Pipelined asyncio client; see the module docstring."""

    def __init__(self):
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, "asyncio.Future[dict]"] = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()
        self._read_task: Optional[asyncio.Task] = None

    @classmethod
    async def connect(cls, socket_path: str) -> "AsyncServeClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_unix_connection(
            socket_path
        )
        client._read_task = asyncio.create_task(client._read_loop())
        return client

    async def _read_loop(self) -> None:
        error: BaseException = ProtocolError("server closed the connection")
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except BaseException as exc:  # noqa: BLE001 — fail all pending
            error = exc
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()

    async def call(self, op: str, **payload) -> dict:
        self._next_id += 1
        request = dict(payload, op=op, id=self._next_id)
        future: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        self._pending[self._next_id] = future
        async with self._write_lock:
            await write_frame(self._writer, request)
        response = await future
        if response.get("ok"):
            return response.get("result") or {}
        raise decode_error(response.get("error") or {})

    async def close(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
