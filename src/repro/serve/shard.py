"""Shard worker: one process hosting a subset of the server's tenants.

The front end forks one worker per shard and talks to it over a unix
``socketpair`` using the same length-prefixed JSON frames as the
client protocol (:mod:`repro.serve.protocol`).  The worker is
deliberately single-threaded and blocking: requests for one shard
apply in arrival order, which is what makes the per-tenant event
journals a total order and recovery replay exact.

Crash-recovery contract (the other half lives in ``shards.py``):

* **Write-ahead.**  Every mutating op is appended to the tenant's
  journal — and flushed — *before* it is applied.  After a SIGKILL the
  journal is a superset of applied state; replay rebuilds the tenant
  bit-identically because every op is deterministic.
* **Exactly-once.**  The front end stamps each mutating op with a
  per-tenant monotonic ``seq``.  The worker drops ``seq <=
  tenant.last_seq`` as a duplicate (answering from a bounded ring of
  recent results), so the front end can blindly resubmit everything
  in flight after a respawn: ops that survived in the journal dedup,
  ops torn out of the tail re-run.
* **Deterministic errors.**  A request that fails for a *modeled*
  reason (unmapped VA, quarantine-class corruption) still consumed its
  ``seq`` and still sits in the journal; replay re-raises the same
  error at the same record, which is how a recovered shard
  re-quarantines exactly the tenants that were quarantined before the
  crash.

Hung-worker diagnostics: the worker registers :mod:`faulthandler` on
``SIGUSR1`` at startup, so the supervising parent can demand a stack
dump (to the inherited stderr) before it SIGKILLs a shard that missed
its heartbeat deadline — the dump says *where* the shard was wedged.
"""

from __future__ import annotations

import faulthandler
import signal
import socket
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    ProtocolError,
    ReproError,
    TenantExistsError,
    UnknownTenantError,
)
from repro.serve.protocol import error_payload, read_frame_sock, write_frame_sock
from repro.serve.tenant import MUTATING_OPS, Tenant, TenantSpec
from repro.serve.tenant_journal import TenantJournal

__all__ = ["ShardWorker", "install_worker_signals", "shard_main"]

#: Per-tenant ring of recent (seq → response) pairs used to answer
#: resubmitted duplicates.  Must exceed the front end's per-tenant
#: in-flight bound, so a duplicate is always either in the ring or
#: below it (in which case a bare dedup ack is enough).
RESULT_RING = 512


def install_worker_signals() -> None:
    """Worker-process signal discipline.

    * ``SIGINT`` is ignored: a terminal Ctrl-C goes to the whole
      process group, and shutdown must stay the parent's decision so
      journals close in a controlled order.
    * ``SIGUSR1`` dumps every thread's stack to stderr via
      :mod:`faulthandler` — the supervisor's pre-kill diagnostic for
      wedged workers (also installed by the sweep pool; see
      ``sim/supervisor.py``).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    faulthandler.register(signal.SIGUSR1, chain=False)


class ShardWorker:
    """The state and dispatch loop of one shard process."""

    def __init__(self, shard_id: int, journal_dir: str):
        self.shard_id = shard_id
        self.journal_dir = journal_dir
        self.tenants: Dict[str, Tenant] = {}
        self.journals: Dict[str, TenantJournal] = {}
        #: seq → response payload, per tenant, for duplicate resubmits.
        self._rings: Dict[str, Dict[int, dict]] = {}

    # -- dispatch ------------------------------------------------------

    def handle(self, request: dict) -> Tuple[dict, bool]:
        """One request in, one response out.

        Returns ``(response, keep_running)``.  Every failure — modeled
        or a plain bug — becomes a typed error frame; the worker
        itself only exits on ``shutdown`` or a closed socket.
        """
        rid = request.get("id")
        op = request.get("op")
        try:
            if op == "shutdown":
                self.close_all()
                return {"id": rid, "ok": True, "result": {"stopped": True}}, False
            result = self._dispatch(op, request)
            return {"id": rid, "ok": True, "result": result}, True
        except BaseException as exc:  # noqa: BLE001 — one bad request
            # must never take the whole shard (and its tenants) down.
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            return {"id": rid, "ok": False, "error": error_payload(exc)}, True

    def _dispatch(self, op: Optional[str], request: dict) -> dict:
        if op == "ping":
            return {"pong": True, "shard": self.shard_id, "tenants": len(self.tenants)}
        if op == "sleep":
            # Chaos/test aid: wedge the shard on purpose so deadline
            # detection and the SIGUSR1 dump path can be exercised.
            time.sleep(float(request.get("args", {}).get("seconds", 0.0)))
            return {"slept": True}
        if op == "create_tenant":
            return self._create_tenant(request.get("args") or {})
        if op == "drop_tenant":
            return self._drop_tenant(request.get("args") or {})
        if op == "restore":
            return self.restore((request.get("args") or {}).get("tenants") or [])
        if op == "shard_stats":
            return self._shard_stats()
        # Everything else is a per-tenant op.
        tenant = self._tenant(request.get("tenant"))
        args = request.get("args") or {}
        if op in MUTATING_OPS:
            return self._apply_mutating(tenant, op, args, request.get("seq"))
        if op in ("stats", "digest"):
            return tenant.apply(op, args)
        raise ProtocolError(f"unknown op {op!r}")

    def _tenant(self, name) -> Tenant:
        if not isinstance(name, str):
            raise ProtocolError(f"request needs a tenant name, got {name!r}")
        tenant = self.tenants.get(name)
        if tenant is None:
            raise UnknownTenantError(f"no tenant {name!r} on shard {self.shard_id}")
        return tenant

    # -- tenant lifecycle ---------------------------------------------

    def _create_tenant(self, args: dict) -> dict:
        spec = TenantSpec.from_dict(args.get("spec") or {})
        if spec.name in self.tenants:
            raise TenantExistsError(f"tenant {spec.name!r} already exists")
        journal = TenantJournal.create(self.journal_dir, spec)
        try:
            tenant = Tenant(spec)
        except BaseException:
            journal.delete()
            raise
        self.tenants[spec.name] = tenant
        self.journals[spec.name] = journal
        self._rings[spec.name] = {}
        return {"tenant": spec.name, "shard": self.shard_id}

    def _drop_tenant(self, args: dict) -> dict:
        name = args.get("name")
        tenant = self._tenant(name)
        self.journals.pop(name).delete()
        self._rings.pop(name, None)
        del self.tenants[name]
        return {"tenant": name, "dropped": True, "was_quarantined": tenant.quarantined}

    # -- the write-ahead mutating path --------------------------------

    def _apply_mutating(self, tenant: Tenant, op: str, args: dict, seq) -> dict:
        if not isinstance(seq, int):
            raise ProtocolError(f"mutating op {op!r} needs an integer seq, got {seq!r}")
        name = tenant.spec.name
        if seq <= tenant.last_seq:
            # Resubmitted duplicate: already journaled and applied (or
            # deterministically failed).  Answer from the ring when the
            # response is still there; otherwise a bare dedup ack.
            ring = self._rings.get(name, {})
            cached = ring.get(seq)
            if cached is not None:
                if not cached.get("__ok__", True):
                    raise _rehydrate(cached["error"])
                return cached["result"]
            return {"deduped": True, "seq": seq}
        if seq != tenant.last_seq + 1:
            raise ProtocolError(
                f"tenant {name!r}: out-of-order seq {seq} "
                f"(expected {tenant.last_seq + 1})"
            )
        self.journals[name].append_event(seq, op, args)
        tenant.last_seq = seq
        try:
            result = tenant.apply(op, args)
        except BaseException as exc:
            self._remember(name, seq, {"__ok__": False, "error": error_payload(exc)})
            raise
        self._remember(name, seq, {"__ok__": True, "result": result})
        return result

    def _remember(self, name: str, seq: int, response: dict) -> None:
        ring = self._rings.setdefault(name, {})
        ring[seq] = response
        while len(ring) > RESULT_RING:
            ring.pop(min(ring))

    # -- recovery ------------------------------------------------------

    def restore(self, tenant_names: List[str]) -> dict:
        """Rebuild tenants from their journals (post-respawn).

        Replays every journaled op through a fresh :class:`Tenant`.
        Modeled errors during replay are *expected* — they happened
        live, they happen again identically (quarantines included) —
        and the recomputed responses repopulate the dedup ring so
        resubmitted in-flight requests get their original answers.
        """
        restored, quarantined = [], []
        for name in tenant_names:
            journal, events = TenantJournal.load(self.journal_dir, name)
            tenant = Tenant(journal.spec)
            ring: Dict[int, dict] = {}
            for event in events:
                seq, op, args = event["seq"], event["op"], event["args"]
                tenant.last_seq = seq
                try:
                    result = tenant.apply(op, args)
                except ReproError as exc:
                    ring[seq] = {"__ok__": False, "error": error_payload(exc)}
                else:
                    ring[seq] = {"__ok__": True, "result": result}
                while len(ring) > RESULT_RING:
                    ring.pop(min(ring))
            self.tenants[name] = tenant
            self.journals[name] = journal
            self._rings[name] = ring
            restored.append(name)
            if tenant.quarantined is not None:
                quarantined.append(name)
        return {
            "restored": restored,
            "quarantined": quarantined,
            "shard": self.shard_id,
        }

    # -- stats / lifecycle --------------------------------------------

    def _shard_stats(self) -> dict:
        return {
            "shard": self.shard_id,
            "tenants": sorted(self.tenants),
            "quarantined": sorted(
                n for n, t in self.tenants.items() if t.quarantined is not None
            ),
            "last_seqs": {n: t.last_seq for n, t in self.tenants.items()},
        }

    def close_all(self) -> None:
        for journal in self.journals.values():
            journal.close()
        self.journals.clear()


def _rehydrate(error: dict) -> ReproError:
    from repro.serve.protocol import decode_error

    return decode_error(error)


def shard_main(sock: socket.socket, shard_id: int, journal_dir: str) -> None:
    """Entry point of the forked shard process: serve until EOF or
    ``shutdown``.  A torn frame (the parent died mid-write) also ends
    the loop — orphaned shards must not outlive the front end."""
    install_worker_signals()
    worker = ShardWorker(shard_id, journal_dir)
    try:
        while True:
            try:
                request = read_frame_sock(sock)
            except ProtocolError:
                break
            if request is None:
                break
            response, keep_running = worker.handle(request)
            write_frame_sock(sock, response)
            if not keep_running:
                break
    finally:
        worker.close_all()
        try:
            sock.close()
        except OSError:
            pass
