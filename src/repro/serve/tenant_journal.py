"""Per-tenant event journals: the serving layer's crash-recovery log.

Each tenant the server hosts gets one append-only JSONL file under the
server's journal directory, reusing the checksummed record format of
the sweep run journal (:func:`repro.sim.journal.record_line` /
:func:`~repro.sim.journal.parse_record_line`):

* line 1 is a header pinning the journal schema version, the tenant
  name and the canonical fingerprint of its
  :class:`~repro.serve.tenant.TenantSpec` — a journal can never be
  replayed into a tenant built from a different spec;
* every later line is one applied mutating operation
  ``{"seq": n, "op": "mmap"|"munmap"|"translate", "args": {...}}``.

**Write-ahead discipline.**  The shard appends and *flushes* the
record **before** applying the operation to the tenant, so after a
crash the journal is a superset of the applied state; replaying it
top-to-bottom (results are recomputed, never stored — every op is
deterministic) reconstructs the tenant bit-identically, and the
per-tenant ``seq`` lets the front end resubmit in-flight requests with
exactly-once semantics: a replayed record and a resubmitted duplicate
of the same ``seq`` are the same operation.

**Durability model.**  Records are flushed to the kernel per append —
that is what SIGKILL-crash recovery (the supervisor killing a wedged
shard) needs, because the page cache survives process death.  An
``os.fsync`` runs every :data:`FSYNC_EVERY` records (and on ``close``)
to bound the loss window of a *host* crash; per-record fsync — the run
journal's policy, affordable at sweep-cell granularity — would cap a
shard at a few hundred requests/second.

**Torn tails.**  Like the run journal, loading stops at the first
unparsable or checksum-failing line — and then **truncates the file**
to the end of the last valid record before reopening it for append.
Without the truncate, ops journaled after recovery would be appended
*after* (or concatenated onto) the torn line, and the next replay
would stop at the torn line and silently discard every acknowledged
post-recovery record.  The truncated record itself simply re-runs when
the front end resubmits the request that wrote it.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.errors import JournalError, JournalMismatchError
from repro.sim.journal import parse_record_line, record_line
from repro.serve.tenant import TenantSpec

__all__ = ["TenantJournal", "FSYNC_EVERY", "journal_path", "list_tenants"]

#: Bump when the record layout changes incompatibly.
TENANT_JOURNAL_VERSION = 1

#: fsync cadence, in records.  Flush-per-record already survives a
#: killed worker; fsync bounds host-crash loss to this many requests.
FSYNC_EVERY = 256


def journal_path(journal_dir: Union[str, Path], tenant: str) -> Path:
    """The journal file for ``tenant``, with the name made filesystem-
    safe (tenant names are client-controlled wire data)."""
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else f"%{ord(ch):02x}" for ch in tenant
    )
    return Path(journal_dir) / f"tenant-{safe}.jsonl"


class TenantJournal:
    """One tenant's append-only event journal.

    Construct via :meth:`create` (fresh tenant) or :meth:`load`
    (recovery replay); both validate the header discipline described
    in the module docstring.
    """

    def __init__(self, path: Path, spec: TenantSpec):
        self.path = path
        self.spec = spec
        self._fh = None
        self._since_fsync = 0

    # -- construction -------------------------------------------------

    @classmethod
    def create(cls, journal_dir: Union[str, Path], spec: TenantSpec) -> "TenantJournal":
        """Start a fresh journal for a newly created tenant."""
        path = journal_path(journal_dir, spec.name)
        path.parent.mkdir(parents=True, exist_ok=True)
        journal = cls(path, spec)
        journal._fh = path.open("w", encoding="utf-8")
        journal._write(
            {
                "kind": "header",
                "version": TENANT_JOURNAL_VERSION,
                "tenant": spec.name,
                "spec": spec.to_dict(),
                "fingerprint": spec.fingerprint(),
            }
        )
        # The header is the recovery anchor: make it durable before
        # acknowledging the tenant exists.
        journal._fh.flush()
        os.fsync(journal._fh.fileno())
        return journal

    @classmethod
    def load(
        cls, journal_dir: Union[str, Path], tenant: str
    ) -> Tuple["TenantJournal", List[dict]]:
        """Open an existing journal for replay; returns the journal
        (positioned for appending) and its event records in order.

        Raises :class:`JournalError` when the file or its header is
        unusable, :class:`JournalMismatchError` when the header was
        written under a different schema version.  A torn or corrupt
        tail is tolerated: it is dropped with a warning and the file is
        truncated to the last valid record, so records appended after
        recovery land on a clean line boundary and survive the *next*
        replay (see "Torn tails" in the module docstring).
        """
        path = journal_path(journal_dir, tenant)
        if not path.exists():
            raise JournalError(
                f"no journal for tenant {tenant!r} at {path}; "
                "cannot reconstruct its state"
            )
        events: List[dict] = []
        header: Optional[dict] = None
        # Read in binary so valid_end is an exact byte offset to
        # truncate to.  A record only counts if its line is newline-
        # terminated: a parseable line with no trailing newline is a
        # torn write and must be truncated too, or the next append
        # would concatenate onto it.
        valid_end = 0
        with path.open("rb") as fh:
            number = 0
            while True:
                raw = fh.readline()
                if not raw:
                    break
                number += 1
                record = None
                if raw.endswith(b"\n"):
                    try:
                        record = parse_record_line(raw.decode("utf-8"))
                    except UnicodeDecodeError:
                        record = None
                if record is None:
                    print(
                        f"repro: tenant journal {path}:{number}: torn or "
                        f"corrupt record; keeping the {number - 1} before "
                        "it and truncating the tail",
                        file=sys.stderr,
                    )
                    break
                valid_end = fh.tell()
                if number == 1:
                    header = record
                else:
                    events.append(record)
        if header is None or header.get("kind") != "header":
            raise JournalError(
                f"tenant journal {path} has no readable header; "
                "the tenant cannot be reconstructed"
            )
        if header.get("version") != TENANT_JOURNAL_VERSION:
            raise JournalMismatchError(
                f"tenant journal {path} has schema version "
                f"{header.get('version')!r}, this build writes "
                f"{TENANT_JOURNAL_VERSION}"
            )
        spec = TenantSpec.from_dict(header.get("spec") or {})
        if header.get("fingerprint") != spec.fingerprint():
            raise JournalMismatchError(
                f"tenant journal {path}: header fingerprint does not match "
                "its own spec; refusing to replay a tampered journal"
            )
        if valid_end < path.stat().st_size:
            os.truncate(path, valid_end)
        journal = cls(path, spec)
        journal._fh = path.open("a", encoding="utf-8")
        return journal, events

    # -- appending ----------------------------------------------------

    def append_event(self, seq: int, op: str, args: dict) -> None:
        """Write-ahead one mutating op (call *before* applying it)."""
        self._write({"seq": seq, "op": op, "args": args})

    def _write(self, record: dict) -> None:
        if self._fh is None:
            raise JournalError(f"tenant journal {self.path} is closed")
        self._fh.write(record_line(record) + "\n")
        self._fh.flush()
        self._since_fsync += 1
        if self._since_fsync >= FSYNC_EVERY:
            os.fsync(self._fh.fileno())
            self._since_fsync = 0

    # -- lifecycle ----------------------------------------------------

    def delete(self) -> None:
        """Close and remove the journal (tenant dropped)."""
        self.close(fsync=False)
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def close(self, fsync: bool = True) -> None:
        if self._fh is not None:
            if fsync:
                self._fh.flush()
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TenantJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_spec(journal_dir: Union[str, Path], tenant: str) -> TenantSpec:
    """Read-only peek at a journal's header spec (the front end uses
    this at server restart; it never holds an append handle — the
    owning shard worker does)."""
    path = journal_path(journal_dir, tenant)
    try:
        with path.open("r", encoding="utf-8") as fh:
            header = parse_record_line(fh.readline())
    except OSError as exc:
        raise JournalError(f"cannot read tenant journal {path}: {exc}") from exc
    if not header or header.get("kind") != "header":
        raise JournalError(f"tenant journal {path} has no readable header")
    return TenantSpec.from_dict(header.get("spec") or {})


def list_tenants(journal_dir: Union[str, Path]) -> Iterator[str]:
    """Tenant names with a journal under ``journal_dir`` (the unescaped
    name comes from each journal's header, not the filename)."""
    root = Path(journal_dir)
    if not root.exists():
        return
    for path in sorted(root.glob("tenant-*.jsonl")):
        try:
            with path.open("r", encoding="utf-8") as fh:
                header = parse_record_line(fh.readline())
        except OSError:
            continue
        if header and header.get("kind") == "header" and header.get("tenant"):
            yield header["tenant"]
