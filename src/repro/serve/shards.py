"""Front-end shard management: spawn, supervise, kill, respawn, restore.

The serving front end (``server.py``) never touches tenant state
directly: every tenant lives in exactly one shard worker process
(``shard.py``), chosen by a stable hash of the tenant name so that a
respawned shard and a restarted server both place tenants identically.

Supervision follows the sweep supervisor's playbook
(``sim/supervisor.py``) adapted from pool-of-cells to
shards-of-tenants:

* **Heartbeats + deadlines.**  Each shard is pinged every
  ``heartbeat_interval``; a ping (or any request) that misses the
  shard ``deadline`` marks the shard wedged.
* **Diagnose, then kill.**  A wedged shard first gets ``SIGUSR1`` —
  its :mod:`faulthandler` hook dumps every stack to stderr, so the
  post-mortem shows *where* it hung — then ``SIGKILL``.  Workers are
  also killed this way when they simply die (EOF on the socket).
* **Respawn + journal replay.**  A fresh worker is forked and told to
  ``restore`` the dead shard's tenants from their write-ahead journals
  (bit-identical replay; quarantines reproduce).
* **Transparent resubmission.**  Requests in flight on the dead shard
  are resubmitted in ``(tenant, seq)`` order after the restore; the
  worker's seq dedup makes this exactly-once, so callers see latency,
  not errors.  Only when recovery itself fails do callers get a typed
  :class:`~repro.errors.ShardUnavailableError`.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import socket
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ShardUnavailableError, TenantExistsError
from repro.serve.protocol import decode_error, encode_frame, read_frame
from repro.serve.shard import shard_main

__all__ = ["ShardManager", "ShardStats"]


@dataclass
class ShardStats:
    """Supervision counters, reported in ``server_stats`` frames."""

    respawns: int = 0
    deadline_kills: int = 0
    crash_respawns: int = 0
    last_recovery_s: Optional[float] = None
    recoveries: List[dict] = field(default_factory=list)


class _Pending:
    """One request in flight to a shard (kept for resubmission)."""

    __slots__ = ("payload", "future", "tenant", "seq")

    def __init__(self, payload: dict, future: "asyncio.Future[dict]"):
        self.payload = payload
        self.future = future
        self.tenant = payload.get("tenant") or (payload.get("args") or {}).get(
            "spec", {}
        ).get("name")
        self.seq = payload.get("seq")


class _Shard:
    """Parent-side handle of one worker process."""

    def __init__(self, index: int):
        self.index = index
        self.process: Optional[multiprocessing.Process] = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.pending: Dict[int, _Pending] = {}
        self.write_lock = asyncio.Lock()
        self.ready = asyncio.Event()
        self.reader_task: Optional[asyncio.Task] = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None


class ShardManager:
    """Owns the shard processes and all parent↔shard traffic."""

    def __init__(
        self,
        num_shards: int,
        journal_dir: str,
        heartbeat_interval: float = 1.0,
        deadline: float = 10.0,
    ):
        self.num_shards = num_shards
        self.journal_dir = journal_dir
        self.heartbeat_interval = heartbeat_interval
        self.deadline = deadline
        self.stats = ShardStats()
        self.tenants_by_shard: Dict[int, Set[str]] = {
            i: set() for i in range(num_shards)
        }
        self._shards = [_Shard(i) for i in range(num_shards)]
        self._next_id = 0
        self._recovery_locks = [asyncio.Lock() for _ in range(num_shards)]
        self._heartbeat_tasks: List[asyncio.Task] = []
        self._closing = False
        self._ctx = multiprocessing.get_context("fork")

    # -- placement -----------------------------------------------------

    def shard_of(self, tenant: str) -> int:
        """Stable tenant→shard placement (crc32, not ``hash()``: the
        latter is salted per process and would scatter tenants across
        different shards after a server restart)."""
        return zlib.crc32(tenant.encode("utf-8")) % self.num_shards

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        for shard in self._shards:
            await self._spawn(shard)
            shard.ready.set()
        self._heartbeat_tasks = [
            asyncio.create_task(self._heartbeat_loop(s)) for s in self._shards
        ]

    async def _spawn(self, shard: _Shard) -> None:
        """Fork + wire a worker.  Does NOT set ``shard.ready``: during
        recovery the readiness gate must stay closed until the journal
        restore completes, or a fresh request races the restore into
        the empty worker and bounces off ``UnknownTenantError``."""
        parent_sock, child_sock = socket.socketpair()
        process = self._ctx.Process(
            target=shard_main,
            args=(child_sock, shard.index, self.journal_dir),
            daemon=True,
            name=f"repro-serve-shard-{shard.index}",
        )
        process.start()
        child_sock.close()
        reader, writer = await asyncio.open_connection(sock=parent_sock)
        shard.process = process
        shard.reader = reader
        shard.writer = writer
        shard.reader_task = asyncio.create_task(self._read_loop(shard))

    async def close(self) -> None:
        self._closing = True
        for task in self._heartbeat_tasks:
            task.cancel()
        for shard in self._shards:
            try:
                await asyncio.wait_for(
                    self._request(shard, {"op": "shutdown"}), timeout=2.0
                )
            except Exception:  # noqa: BLE001 — best-effort shutdown
                pass
            await self._kill(shard)
            if shard.reader_task is not None:
                shard.reader_task.cancel()

    # -- request plumbing ---------------------------------------------

    async def submit(self, tenant_or_shard, payload: dict) -> "asyncio.Future[dict]":
        """Enqueue one request; returns the future of its raw response
        frame (settle with :meth:`settle`).

        Splitting submission from completion lets the front end pin
        per-tenant frame *order* (seq discipline) while many requests
        stay in flight: assign seq + submit under a per-tenant lock,
        await the future outside it.

        ``tenant_or_shard`` is a tenant name (placed via
        :meth:`shard_of`) or an explicit shard index.
        """
        if isinstance(tenant_or_shard, int):
            shard = self._shards[tenant_or_shard]
        else:
            shard = self._shards[self.shard_of(tenant_or_shard)]
        await shard.ready.wait()
        self._next_id += 1
        payload = dict(payload, id=self._next_id)
        future: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        shard.pending[self._next_id] = _Pending(payload, future)
        await self._send(shard, payload)
        return future

    @staticmethod
    async def settle(future: "asyncio.Future[dict]") -> dict:
        """Await a submitted request; returns its ``result`` payload or
        raises the rehydrated typed error."""
        response = await future
        if response.get("ok"):
            return response.get("result") or {}
        raise decode_error(response.get("error") or {})

    async def request(self, tenant_or_shard, payload: dict) -> dict:
        """submit + settle in one call (order-insensitive requests)."""
        return await self.settle(await self.submit(tenant_or_shard, payload))

    async def _request(self, shard: _Shard, payload: dict) -> dict:
        """Like :meth:`request` but on a raw shard handle and without
        the readiness gate — the recovery path itself uses this while
        the shard is marked not-ready."""
        self._next_id += 1
        payload = dict(payload, id=self._next_id)
        future: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        shard.pending[self._next_id] = _Pending(payload, future)
        await self._send(shard, payload)
        return await self.settle(future)

    async def _send(self, shard: _Shard, payload: dict) -> None:
        async with shard.write_lock:
            if shard.writer is None:
                return  # recovery will resubmit from shard.pending
            try:
                shard.writer.write(encode_frame(payload))
                await shard.writer.drain()
            except (ConnectionError, OSError):
                pass  # the read loop notices the death and recovers

    async def _read_loop(self, shard: _Shard) -> None:
        """Resolve responses until the worker dies or shuts down."""
        try:
            while True:
                frame = await read_frame(shard.reader)
                if frame is None:
                    break
                pending = shard.pending.pop(frame.get("id"), None)
                if pending is not None and not pending.future.done():
                    pending.future.set_result(frame)
        except Exception:  # noqa: BLE001 — torn frame == dead worker
            pass
        if not self._closing:
            asyncio.create_task(self._recover(shard, reason="worker died"))

    # -- supervision ---------------------------------------------------

    async def _heartbeat_loop(self, shard: _Shard) -> None:
        while not self._closing:
            await asyncio.sleep(self.heartbeat_interval)
            if not shard.ready.is_set():
                continue  # mid-recovery
            try:
                await asyncio.wait_for(
                    self._request(shard, {"op": "ping"}), timeout=self.deadline
                )
            except asyncio.TimeoutError:
                self.stats.deadline_kills += 1
                await self._recover(shard, reason="heartbeat deadline")
            except Exception:  # noqa: BLE001 — death handled by read loop
                await asyncio.sleep(self.heartbeat_interval)

    async def _kill(self, shard: _Shard) -> None:
        process = shard.process
        if process is None or not process.is_alive():
            return
        try:
            process.kill()  # SIGKILL — the worker ignores SIGINT
        except (OSError, ValueError):
            pass
        # join() blocks; run it off-loop so reaping one dead shard
        # cannot freeze heartbeats and every other tenant's traffic.
        await asyncio.to_thread(process.join, 5.0)

    async def _request_stack_dump(self, shard: _Shard) -> None:
        """Ask a live worker to faulthandler-dump its stacks (SIGUSR1)
        before it is killed; the dump lands on the shared stderr."""
        process = shard.process
        if process is None or not process.is_alive() or process.pid is None:
            return
        try:
            os.kill(process.pid, signal.SIGUSR1)
        except (OSError, ProcessLookupError):
            return
        # Give the handler a beat to write before SIGKILL truncates it.
        await asyncio.sleep(0.05)

    async def _recover(self, shard: _Shard, reason: str) -> None:
        """Kill → respawn → journal-restore → resubmit, exactly once
        per death (concurrent detections coalesce on the lock)."""
        lock = self._recovery_locks[shard.index]
        if lock.locked():
            return
        async with lock:
            if self._closing:
                return
            started = time.monotonic()
            shard.ready.clear()
            if reason == "heartbeat deadline":
                await self._request_stack_dump(shard)
            await self._kill(shard)
            if shard.reader_task is not None:
                shard.reader_task.cancel()
            if shard.writer is not None:
                shard.writer.close()
                shard.writer = None
            # Everything unanswered rides over to the new worker.
            carried = sorted(
                shard.pending.items(),
                key=lambda kv: (kv[1].tenant or "", kv[1].seq or 0, kv[0]),
            )
            shard.pending = {}
            self.stats.respawns += 1
            if reason == "worker died":
                self.stats.crash_respawns += 1
            await self._spawn(shard)
            tenants = sorted(self.tenants_by_shard[shard.index])
            restored: dict = {}
            try:
                if tenants:
                    restored = await asyncio.wait_for(
                        self._request(
                            shard, {"op": "restore", "args": {"tenants": tenants}}
                        ),
                        timeout=max(self.deadline * 6, 60.0),
                    )
            except Exception as exc:  # noqa: BLE001 — recovery failed:
                # fail the carried requests with a typed error rather
                # than hanging their callers forever.
                for _, pending in carried:
                    if not pending.future.done():
                        pending.future.set_exception(
                            ShardUnavailableError(
                                f"shard {shard.index} failed to recover: {exc}"
                            )
                        )
                shard.ready.set()  # fresh worker still serves new tenants
                return
            await self._resubmit(shard, carried)
            elapsed = time.monotonic() - started
            self.stats.last_recovery_s = elapsed
            self.stats.recoveries.append(
                {
                    "shard": shard.index,
                    "reason": reason,
                    "tenants": len(tenants),
                    "restored": sorted(restored.get("restored", [])),
                    "quarantined": restored.get("quarantined", []),
                    "seconds": elapsed,
                    "resubmitted": len(carried),
                }
            )
            shard.ready.set()

    async def _resubmit(self, shard: _Shard, carried) -> None:
        """Re-send carried requests under their original ids/seqs; the
        worker's dedup ring answers anything the journal already has."""
        for rid, pending in carried:
            if pending.future.done():
                continue
            if pending.payload.get("op") == "restore":
                continue  # superseded by the fresh restore
            shard.pending[rid] = pending
            if pending.payload.get("op") == "create_tenant":
                # The journal header may have survived the crash, in
                # which case the resubmit bounces off TenantExistsError
                # — that *is* success for an exactly-once create.
                asyncio.create_task(self._settle_create(shard, rid, pending))
                continue
            await self._send(shard, pending.payload)

    async def _settle_create(self, shard: _Shard, rid: int, pending: _Pending) -> None:
        inner: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        proxy = _Pending(pending.payload, inner)
        shard.pending[rid] = proxy
        await self._send(shard, pending.payload)
        try:
            response = await inner
        except asyncio.CancelledError:
            return
        if not response.get("ok"):
            error = decode_error(response.get("error") or {})
            if isinstance(error, TenantExistsError):
                response = {
                    "ok": True,
                    "result": {"tenant": pending.tenant, "recovered": True},
                }
        if not pending.future.done():
            pending.future.set_result(response)

    # -- introspection -------------------------------------------------

    def pids(self) -> List[Optional[int]]:
        return [shard.pid for shard in self._shards]

    def shard_stats(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "pids": self.pids(),
            "respawns": self.stats.respawns,
            "deadline_kills": self.stats.deadline_kills,
            "crash_respawns": self.stats.crash_respawns,
            "last_recovery_s": self.stats.last_recovery_s,
            "recoveries": self.stats.recoveries[-16:],
            "tenants_by_shard": {
                str(i): sorted(names)
                for i, names in self.tenants_by_shard.items()
            },
        }
