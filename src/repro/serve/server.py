"""The serving front end: admission control, quotas, shedding, routing.

``TranslationServer`` listens on a unix socket for length-prefixed
JSON frames (:mod:`repro.serve.protocol`) and hosts many tenant
address spaces across the shard workers managed by
:class:`~repro.serve.shards.ShardManager`.  The front end holds **no
tenant translation state** — it owns exactly the things that must
survive a shard crash without replay: tenant placement, per-tenant
``seq`` counters, quota accounting, and the quarantine cache.

Admission control (checked *before* a request touches a shard, so a
rejected request provably mutated nothing):

* **Bounded queues.**  At most ``max_global_inflight`` requests (and
  ``max_tenant_inflight`` per tenant) may be in flight; the newest
  request past the bound is shed with a typed
  :class:`~repro.errors.ServerOverloadedError` frame — reject-newest,
  because the requests already admitted are the ones closest to
  completing.
* **Latency shedding.**  A rolling window of response latencies feeds
  a p99 estimate; when it crosses ``shed_p99_ms`` the server sheds
  mutating load until the tail drains.
* **Per-tenant quotas.**  ``max_vmas`` bounds address-space size
  (checked against the front end's VMA ledger) and ``max_refs_per_sec``
  is a token bucket over translate batch sizes; both reject with
  :class:`~repro.errors.QuotaExceededError`.

A tenant the shards report quarantined is cached here and fast-failed
with :class:`~repro.errors.TenantQuarantinedError` without a shard
round-trip — a poisoned tenant cannot consume shard time, which is
half of the isolation story (the other half is that quarantine is
per-tenant state inside the shard; see ``tenant.py``).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.errors import (
    ProtocolError,
    QuotaExceededError,
    ReproError,
    ServerOverloadedError,
    TenantExistsError,
    TenantQuarantinedError,
    UnknownTenantError,
)
from repro.serve.protocol import error_payload, read_frame, write_frame
from repro.serve.shards import ShardManager
from repro.serve.tenant import MUTATING_OPS, TenantSpec

__all__ = ["ServePolicy", "TranslationServer"]


@dataclass
class ServePolicy:
    """Everything tunable about the serving layer's robustness."""

    num_shards: int = 2
    #: Admission bounds (reject-newest shedding past either).
    max_global_inflight: int = 64
    max_tenant_inflight: int = 16
    #: Latency shed threshold in milliseconds; None disables.
    shed_p99_ms: Optional[float] = None
    latency_window: int = 256
    #: Default per-tenant quotas (a tenant's spec may set its own).
    max_vmas: Optional[int] = None
    max_refs_per_sec: Optional[float] = None
    #: Supervision cadence.
    heartbeat_interval: float = 1.0
    shard_deadline: float = 10.0
    #: ``--chaos``: default fault plan injected into tenants that do
    #: not bring their own (dict form of a FaultPlan).
    chaos_plan: Optional[dict] = None


@dataclass
class _TenantEntry:
    """Front-end bookkeeping for one hosted tenant."""

    spec: TenantSpec
    shard: int
    seq: int = 0
    inflight: int = 0
    vmas: int = 0
    #: Token bucket for the refs/sec quota; None until first use, then
    #: initialized to full capacity so a fresh tenant's first batch is
    #: admitted instead of waiting for tokens to accrue.
    tokens: Optional[float] = None
    tokens_at: float = field(default_factory=time.monotonic)
    #: Serializes seq assignment + submission so frames reach the
    #: shard in seq order (the worker rejects gaps); responses are
    #: awaited outside the lock, so requests still pipeline.
    order_lock: asyncio.Lock = field(default_factory=asyncio.Lock)


@dataclass
class ServerStats:
    requests: int = 0
    served: int = 0
    shed_overload: int = 0
    shed_latency: int = 0
    quota_rejects: int = 0
    quarantine_rejects: int = 0
    errors: int = 0


def _reap_abandoned_submit(task: "asyncio.Task") -> None:
    """Done-callback for a shielded submit whose awaiter was cancelled:
    consume its exception (or its response future's) quietly so the
    event loop never logs a 'never retrieved' warning for a request
    nobody is waiting on anymore."""
    if task.cancelled():
        return
    if task.exception() is not None:
        return
    response = task.result()
    response.add_done_callback(lambda f: f.cancelled() or f.exception())


class TranslationServer:
    """One serving front end over a unix socket; see module docstring."""

    def __init__(self, socket_path: str, journal_dir: str, policy: ServePolicy):
        self.socket_path = socket_path
        self.journal_dir = journal_dir
        self.policy = policy
        self.shards = ShardManager(
            policy.num_shards,
            journal_dir,
            heartbeat_interval=policy.heartbeat_interval,
            deadline=policy.shard_deadline,
        )
        self.tenants: Dict[str, _TenantEntry] = {}
        self.quarantined: Dict[str, str] = {}
        self.stats = ServerStats()
        self._latencies: Deque[float] = deque(maxlen=policy.latency_window)
        self._inflight = 0
        self._server: Optional[asyncio.AbstractServer] = None
        #: Tenant names re-hosted from journals by :meth:`start`.
        self.adopted: list = []

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        await self.shards.start()
        # A restarted server (same journal dir) re-hosts its tenants
        # *before* the listener exists: a client connecting right
        # after restart must never see UnknownTenantError for a
        # tenant whose journal survives.
        self.adopted = await self.adopt_journaled_tenants()
        self._server = await asyncio.start_unix_server(
            self._serve_client, path=self.socket_path
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.shards.close()

    async def serve_forever(self) -> None:
        await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.close()

    # -- client connections -------------------------------------------

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: requests are handled concurrently
        (a slow translate must not block an independent tenant's
        traffic on the same connection), responses are written under a
        lock, matched by id."""
        write_lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except asyncio.CancelledError:
                    # Shutdown while parked on the socket: exit cleanly
                    # so the streams machinery doesn't log the cancel.
                    break
                except ProtocolError as exc:
                    async with write_lock:
                        await write_frame(
                            writer,
                            {"id": None, "ok": False, "error": error_payload(exc)},
                        )
                    break
                if request is None:
                    break
                task = asyncio.create_task(
                    self._answer(request, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _answer(self, request: dict, writer, write_lock) -> None:
        rid = request.get("id")
        started = time.monotonic()
        try:
            result = await self.handle(request)
            response = {"id": rid, "ok": True, "result": result}
            self.stats.served += 1
        except ReproError as exc:
            response = {"id": rid, "ok": False, "error": error_payload(exc)}
        except Exception as exc:  # noqa: BLE001 — a bug serving one
            # request must not sever the connection (or the server).
            self.stats.errors += 1
            response = {"id": rid, "ok": False, "error": error_payload(exc)}
        self._latencies.append(time.monotonic() - started)
        try:
            async with write_lock:
                await write_frame(writer, response)
        except (ConnectionError, OSError):
            pass  # client went away; nothing to tell it

    # -- dispatch ------------------------------------------------------

    async def handle(self, request: dict) -> dict:
        """The op switch, shared by socket clients and in-process
        callers (the bench drives a server object directly in tests)."""
        op = request.get("op")
        self.stats.requests += 1
        if op == "ping":
            return {"pong": True}
        if op == "server_stats":
            return self.server_stats()
        if op == "create_tenant":
            return await self._create_tenant(request.get("args") or {})
        if op == "drop_tenant":
            return await self._drop_tenant(request.get("args") or {})
        if op == "sleep":
            # Test/chaos aid: wedge one shard to exercise deadline
            # detection end to end.
            shard = int(request.get("shard", 0))
            return await self.shards.request(
                shard, {"op": "sleep", "args": request.get("args") or {}}
            )
        if op in MUTATING_OPS or op in ("stats", "digest"):
            return await self._tenant_op(op, request)
        raise ProtocolError(f"unknown op {op!r}")

    # -- tenant lifecycle ---------------------------------------------

    async def _create_tenant(self, args: dict) -> dict:
        spec = TenantSpec.from_dict(args.get("spec") or {})
        if spec.name in self.tenants:
            raise TenantExistsError(f"tenant {spec.name!r} already exists")
        if spec.fault_plan is None and self.policy.chaos_plan is not None:
            spec = TenantSpec.from_dict(
                dict(spec.to_dict(), fault_plan=dict(self.policy.chaos_plan))
            )
        shard = self.shards.shard_of(spec.name)
        # Register placement *before* the shard call: if the worker
        # crashes after writing the journal header, recovery must know
        # this tenant belongs to that shard.
        self.shards.tenants_by_shard[shard].add(spec.name)
        try:
            result = await self.shards.request(
                shard, {"op": "create_tenant", "args": {"spec": spec.to_dict()}}
            )
        except BaseException:
            self.shards.tenants_by_shard[shard].discard(spec.name)
            raise
        self.tenants[spec.name] = _TenantEntry(spec=spec, shard=shard)
        return result

    async def adopt_journaled_tenants(self) -> list:
        """Whole-server restart: re-host every tenant whose journal
        survives in ``journal_dir``.

        Placement is recomputed (``shard_of`` is a stable hash, so each
        tenant lands on the same shard index it did before), each shard
        replays its tenants' journals, and the front end rebuilds the
        bookkeeping a shard cannot: seq counters resume from the
        replayed ``last_seq``, the VMA ledger from the rebuilt address
        space, and quarantines re-enter the fast-fail cache.  Returns
        the adopted tenant names.
        """
        from repro.serve.tenant_journal import list_tenants, read_spec

        by_shard: Dict[int, list] = {}
        for name in list_tenants(self.journal_dir):
            if name not in self.tenants:
                by_shard.setdefault(self.shards.shard_of(name), []).append(name)
        adopted = []
        for shard, names in sorted(by_shard.items()):
            self.shards.tenants_by_shard[shard].update(names)
            restored = await self.shards.request(
                shard, {"op": "restore", "args": {"tenants": names}}
            )
            seqs = (
                await self.shards.request(shard, {"op": "shard_stats"})
            ).get("last_seqs", {})
            for name in names:
                entry = _TenantEntry(
                    spec=read_spec(self.journal_dir, name),
                    shard=shard,
                    seq=int(seqs.get(name, 0)),
                )
                stats = await self.shards.request(
                    shard, {"op": "stats", "tenant": name, "args": {}}
                )
                entry.vmas = int(stats.get("vmas", 0))
                self.tenants[name] = entry
                adopted.append(name)
            for name in restored.get("quarantined", []):
                self.quarantined[name] = "quarantined during journal replay"
        return adopted

    async def _drop_tenant(self, args: dict) -> dict:
        name = args.get("name")
        entry = self._entry(name)
        result = await self.shards.request(
            entry.shard, {"op": "drop_tenant", "args": {"name": name}}
        )
        self.shards.tenants_by_shard[entry.shard].discard(name)
        del self.tenants[name]
        self.quarantined.pop(name, None)
        return result

    def _entry(self, name) -> _TenantEntry:
        if not isinstance(name, str):
            raise ProtocolError(f"request needs a tenant name, got {name!r}")
        entry = self.tenants.get(name)
        if entry is None:
            raise UnknownTenantError(f"no tenant {name!r}")
        return entry

    # -- the admitted path --------------------------------------------

    async def _tenant_op(self, op: str, request: dict) -> dict:
        entry = self._entry(request.get("tenant"))
        name = entry.spec.name
        args = request.get("args") or {}
        if name in self.quarantined:
            self.stats.quarantine_rejects += 1
            raise TenantQuarantinedError(
                f"tenant {name!r} is quarantined: {self.quarantined[name]}"
            )
        self._admit(entry, op, args)
        payload = {"op": op, "tenant": name, "args": args}
        self._inflight += 1
        entry.inflight += 1
        try:
            # Seq assignment + frame submission run as one *shielded*
            # task: if this request is cancelled (client disconnect)
            # while the submit is parked on a recovering shard, the
            # shielded task still carries the frame to the shard — a
            # consumed seq is always followed by its frame, so the
            # tenant's seq stream never develops a permanent gap that
            # would fail every later mutating op out-of-order.
            submit = asyncio.ensure_future(
                self._ordered_submit(entry, op, payload)
            )
            try:
                future = await asyncio.shield(submit)
            except asyncio.CancelledError:
                submit.add_done_callback(_reap_abandoned_submit)
                raise
            result = await self.shards.settle(future)
        except TenantQuarantinedError as exc:
            self.quarantined[name] = str(exc)
            raise
        finally:
            self._inflight -= 1
            entry.inflight -= 1
        self._settle_quota(entry, op, result)
        return result

    async def _ordered_submit(
        self, entry: _TenantEntry, op: str, payload: dict
    ) -> "asyncio.Future[dict]":
        """Assign the next seq and enqueue the frame under the
        per-tenant order lock; run via :func:`asyncio.shield` so the
        critical section cannot be torn by caller cancellation."""
        async with entry.order_lock:
            if op not in MUTATING_OPS:
                return await self.shards.submit(entry.shard, payload)
            entry.seq += 1
            payload["seq"] = entry.seq
            try:
                return await self.shards.submit(entry.shard, payload)
            except BaseException:
                # submit only raises before the frame is enqueued
                # (_send swallows connection errors), so the seq can
                # be given back without creating a gap; the lock is
                # still held, so nothing assigned a later one.
                entry.seq -= 1
                raise

    def _admit(self, entry: _TenantEntry, op: str, args: dict) -> None:
        """Every reject happens here, before any shard traffic."""
        policy = self.policy
        if self._inflight >= policy.max_global_inflight:
            self.stats.shed_overload += 1
            raise ServerOverloadedError(
                f"global queue full ({self._inflight} in flight >= "
                f"{policy.max_global_inflight}); retry later"
            )
        if entry.inflight >= policy.max_tenant_inflight:
            self.stats.shed_overload += 1
            raise ServerOverloadedError(
                f"tenant {entry.spec.name!r} queue full "
                f"({entry.inflight} in flight); retry later"
            )
        if policy.shed_p99_ms is not None and op in MUTATING_OPS:
            p99 = self.latency_p99_ms()
            if p99 is not None and p99 > policy.shed_p99_ms:
                self.stats.shed_latency += 1
                raise ServerOverloadedError(
                    f"p99 latency {p99:.1f} ms over the "
                    f"{policy.shed_p99_ms:.1f} ms shed threshold; retry later"
                )
        if op == "mmap":
            max_vmas = entry.spec.max_vmas
            if max_vmas is None:
                max_vmas = policy.max_vmas
            if max_vmas is not None and entry.vmas >= max_vmas:
                self.stats.quota_rejects += 1
                raise QuotaExceededError(
                    f"tenant {entry.spec.name!r} is at its VMA quota "
                    f"({entry.vmas}/{max_vmas})"
                )
        if op == "translate":
            rate = entry.spec.max_refs_per_sec
            if rate is None:
                rate = policy.max_refs_per_sec
            if rate is not None:
                self._take_tokens(entry, rate, len(args.get("vas") or []))

    def _take_tokens(self, entry: _TenantEntry, rate: float, refs: int) -> None:
        """Refs/sec token bucket: capacity one second of rate, starting
        full so a freshly created tenant's first batch is admitted."""
        if refs > rate:
            # Larger than the bucket can ever hold: no amount of
            # waiting admits it, so reject it as permanent (the error
            # says so) instead of inviting an infinite retry loop.
            self.stats.quota_rejects += 1
            raise QuotaExceededError(
                f"tenant {entry.spec.name!r}: batch of {refs} refs exceeds "
                f"the {rate:.0f} refs/sec bucket capacity; permanent — "
                "split the batch instead of retrying"
            )
        now = time.monotonic()
        if entry.tokens is None:
            entry.tokens = rate
        else:
            entry.tokens = min(
                rate, entry.tokens + (now - entry.tokens_at) * rate
            )
        entry.tokens_at = now
        if refs > entry.tokens:
            self.stats.quota_rejects += 1
            raise QuotaExceededError(
                f"tenant {entry.spec.name!r} is over its {rate:.0f} refs/sec "
                f"quota (batch of {refs}, {entry.tokens:.0f} tokens left)"
            )
        entry.tokens -= refs

    def _settle_quota(self, entry: _TenantEntry, op: str, result: dict) -> None:
        """Keep the VMA ledger in sync from authoritative results."""
        if op in ("mmap", "munmap") and isinstance(result.get("vmas"), int):
            entry.vmas = result["vmas"]

    # -- introspection -------------------------------------------------

    def latency_p99_ms(self) -> Optional[float]:
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        return ordered[int(0.99 * (len(ordered) - 1))] * 1000.0

    def latency_p50_ms(self) -> Optional[float]:
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        return ordered[len(ordered) // 2] * 1000.0

    def server_stats(self) -> dict:
        return {
            "tenants": len(self.tenants),
            "quarantined": sorted(self.quarantined),
            "inflight": self._inflight,
            "requests": self.stats.requests,
            "served": self.stats.served,
            "shed_overload": self.stats.shed_overload,
            "shed_latency": self.stats.shed_latency,
            "quota_rejects": self.stats.quota_rejects,
            "quarantine_rejects": self.stats.quarantine_rejects,
            "errors": self.stats.errors,
            "p50_ms": self.latency_p50_ms(),
            "p99_ms": self.latency_p99_ms(),
            "shards": self.shards.shard_stats(),
        }
