"""Wire protocol: length-prefixed JSON frames over a unix socket.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  The same framing is used on every hop — client ↔
front end and front end ↔ shard worker — so one set of codecs (and one
set of failure modes) covers the whole service.

Requests and responses are plain dicts::

    {"id": 7, "op": "translate", "tenant": "web-1", "args": {...}}
    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false,
     "error": {"type": "ServerOverloadedError", "message": "..."}}

Error frames are *typed*: ``error.type`` carries the
:class:`~repro.errors.ReproError` subclass name, and
:func:`decode_error` rehydrates the matching class on the client — a
shed request, an exhausted quota and a quarantined tenant are
distinguishable without string matching.

Robustness rules:

* A frame longer than :data:`MAX_FRAME_BYTES` is a
  :class:`~repro.errors.ProtocolError` — the reader refuses to
  allocate attacker-controlled amounts of memory and drops the
  connection instead.
* Unparsable JSON, a non-dict payload, or a negative length are
  equally :class:`ProtocolError`; one malformed client connection
  never takes down the server.
* A cleanly closed socket between frames reads as ``None`` (EOF); a
  socket closed *mid-frame* is a :class:`ProtocolError` (torn frame).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Optional

from repro import errors as _errors
from repro.errors import ProtocolError, ReproError, ServeError

__all__ = [
    "MAX_FRAME_BYTES",
    "decode_error",
    "encode_frame",
    "error_payload",
    "read_frame",
    "read_frame_sock",
    "write_frame",
    "write_frame_sock",
]

#: Upper bound on one frame's JSON payload.  Large enough for a
#: 64k-reference translate batch, small enough that a corrupt length
#: prefix cannot make the reader allocate gigabytes.
MAX_FRAME_BYTES = 8 << 20

_LEN = struct.Struct(">I")


def encode_frame(payload: dict) -> bytes:
    """Serialize one frame (length prefix + JSON body)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _LEN.pack(len(body)) + body


def _decode_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"unparsable frame payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_length(raw: bytes) -> int:
    (length,) = _LEN.unpack(raw)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return length


# -- asyncio side (the front end) ---------------------------------------

async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one frame; None on clean EOF between frames."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside a frame header") from exc
    length = _check_length(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed inside a frame body") from exc
    return _decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


# -- blocking side (shard workers, sync clients, tests) -----------------

def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and not chunks:
                return None  # clean EOF on a frame boundary
            raise ProtocolError("connection closed inside a frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sock(sock: socket.socket) -> Optional[dict]:
    """Blocking read of one frame; None on clean EOF between frames."""
    header = _recv_exactly(sock, _LEN.size)
    if header is None:
        return None
    length = _check_length(header)
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed inside a frame body")
    return _decode_body(body)


def write_frame_sock(sock: socket.socket, payload: dict) -> None:
    sock.sendall(encode_frame(payload))


# -- typed error frames -------------------------------------------------

def error_payload(exc: BaseException) -> dict:
    """The ``error`` object of a failure frame."""
    return {"type": type(exc).__name__, "message": str(exc)}


def decode_error(error: dict) -> ReproError:
    """Rehydrate a typed error frame into the matching exception class.

    Unknown types (a newer server, a plain bug serialized by an older
    one) degrade to :class:`~repro.errors.ServeError`, keeping the
    type name in the message.
    """
    name = error.get("type", "ServeError")
    message = error.get("message", "")
    cls = getattr(_errors, name, None)
    if (
        isinstance(cls, type)
        and issubclass(cls, ReproError)
        and cls is not _errors.ReproError
    ):
        try:
            return cls(message)
        except TypeError:  # exotic __init__ signature
            pass
    return ServeError(f"{name}: {message}")
