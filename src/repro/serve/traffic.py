"""Deterministic multi-tenant traffic for the serving layer.

The generator plays a memcached-style tenant mix against a running
server: every tenant maps a working set, then issues zipf-skewed
``translate`` batches with occasional mmap/munmap churn — the access
pattern the paper's server workloads exhibit (hot keys, long tails,
address spaces that grow and shrink).

Determinism is load-bearing, not cosmetic: each tenant's op stream is
a pure function of ``(config.seed, tenant name)``, so the recovery
acceptance test can run the same mix twice — once uninterrupted, once
with a shard SIGKILLed mid-run — and demand bit-identical tenant
digests at the end.  The wall clock is used only to *measure* latency,
never to decide what to send.

Error accounting is typed: shed requests, quota rejects and
quarantine rejections are counted per exception class (that is what
the overload and chaos acceptance criteria assert on), while
unexpected errors are kept separately and fail the run's health check.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import (
    QuotaExceededError,
    ReproError,
    ServerOverloadedError,
    TenantQuarantinedError,
)
from repro.serve.client import AsyncServeClient

__all__ = ["TrafficConfig", "TrafficReport", "run_traffic"]


@dataclass
class TrafficConfig:
    """One traffic run, fully described (and so fully replayable)."""

    tenants: int = 2
    #: Total translate requests across all tenants.
    requests: int = 1000
    #: References per translate batch.
    batch: int = 64
    #: Pages in each tenant's initial working set.
    working_set_pages: int = 2048
    #: Zipf skew over the working set (1.0 ≈ memcached key popularity).
    zipf_alpha: float = 1.1
    #: Probability a request slot does mmap/munmap churn instead.
    churn: float = 0.02
    #: Concurrent in-flight requests per tenant connection.
    concurrency: int = 4
    seed: int = 1
    scheme: str = "lvm"
    tenant_prefix: str = "tenant"
    #: Optional fault plan installed on tenants whose index ends in a
    #: poisoned slot (chaos scenarios poison exactly one tenant).
    poison_tenants: Dict[str, dict] = field(default_factory=dict)
    create_tenants: bool = True

    def tenant_names(self) -> List[str]:
        return [f"{self.tenant_prefix}-{i}" for i in range(self.tenants)]


@dataclass
class TrafficReport:
    """What one traffic run observed (client-side truth)."""

    requests: int = 0
    ok: int = 0
    refs: int = 0
    shed: int = 0
    quota_rejected: int = 0
    quarantine_rejected: int = 0
    other_repro_errors: int = 0
    unexpected_errors: int = 0
    elapsed_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    errors_by_tenant: Dict[str, int] = field(default_factory=dict)
    ok_by_tenant: Dict[str, int] = field(default_factory=dict)

    @property
    def rps(self) -> float:
        return self.ok / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def percentile_ms(self, fraction: float) -> Optional[float]:
        if not self.latencies_ms:
            return None
        ordered = sorted(self.latencies_ms)
        return ordered[int(fraction * (len(ordered) - 1))]

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "refs": self.refs,
            "shed": self.shed,
            "quota_rejected": self.quota_rejected,
            "quarantine_rejected": self.quarantine_rejected,
            "other_repro_errors": self.other_repro_errors,
            "unexpected_errors": self.unexpected_errors,
            "elapsed_s": self.elapsed_s,
            "rps": self.rps,
            "p50_ms": self.percentile_ms(0.50),
            "p99_ms": self.percentile_ms(0.99),
            "errors_by_tenant": dict(self.errors_by_tenant),
            "ok_by_tenant": dict(self.ok_by_tenant),
        }


def _zipf_ranks(rng: random.Random, alpha: float, n: int, count: int) -> List[int]:
    """``count`` zipf-distributed ranks in [0, n) via inverse CDF over
    precomputed weights (numpy-free, deterministic)."""
    weights = [1.0 / ((i + 1) ** alpha) for i in range(n)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    ranks = []
    for _ in range(count):
        u = rng.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        ranks.append(lo)
    return ranks


class _TenantScript:
    """The deterministic op stream of one tenant."""

    def __init__(self, name: str, config: TrafficConfig, requests: int):
        self.name = name
        self.rng = random.Random(f"{config.seed}:{name}")
        self.config = config
        self.requests = requests
        self.base_vpn = 1 << 20
        self.next_extra_vpn = 1 << 24
        self.extra_vmas: List[int] = []

    def setup_ops(self) -> List[dict]:
        return [
            {
                "op": "mmap",
                "args": {
                    "start_vpn": self.base_vpn,
                    "pages": self.config.working_set_pages,
                    "name": "working-set",
                },
            }
        ]

    def next_op(self) -> dict:
        cfg = self.config
        if self.extra_vmas and self.rng.random() < cfg.churn / 2:
            return {
                "op": "munmap",
                "args": {"start_vpn": self.extra_vmas.pop()},
            }
        if self.rng.random() < cfg.churn:
            start = self.next_extra_vpn
            self.next_extra_vpn += 512
            self.extra_vmas.append(start)
            return {
                "op": "mmap",
                "args": {"start_vpn": start, "pages": 64, "name": "churn"},
            }
        ranks = _zipf_ranks(
            self.rng, cfg.zipf_alpha, cfg.working_set_pages, cfg.batch
        )
        vas = [(self.base_vpn + r) * 4096 for r in ranks]
        return {"op": "translate", "args": {"vas": vas}}


async def _drive_tenant(
    socket_path: str,
    script: _TenantScript,
    report: TrafficReport,
    lock: asyncio.Lock,
) -> None:
    """One tenant's connection: ``concurrency`` workers draining the
    tenant's (serialized) op stream.

    Mutating ops must arrive in script order for the server's seq
    assignment, so ops are *taken* under the lock but may complete out
    of order only when independent (translate batches).  Simpler and
    still true to the design: one sender pipelines up to
    ``concurrency`` ops, each awaited by its own task.
    """
    client = await AsyncServeClient.connect(socket_path)
    name = script.name
    sem = asyncio.Semaphore(script.config.concurrency)
    pending = set()

    async def fire(op: dict) -> None:
        started = time.monotonic()
        try:
            result = await client.call(op["op"], tenant=name, args=op["args"])
            async with lock:
                report.ok += 1
                report.ok_by_tenant[name] = report.ok_by_tenant.get(name, 0) + 1
                report.refs += result.get("refs", 0)
                report.latencies_ms.append((time.monotonic() - started) * 1e3)
        except ServerOverloadedError:
            async with lock:
                report.shed += 1
        except QuotaExceededError:
            async with lock:
                report.quota_rejected += 1
        except TenantQuarantinedError:
            async with lock:
                report.quarantine_rejected += 1
                report.errors_by_tenant[name] = (
                    report.errors_by_tenant.get(name, 0) + 1
                )
        except ReproError:
            async with lock:
                report.other_repro_errors += 1
                report.errors_by_tenant[name] = (
                    report.errors_by_tenant.get(name, 0) + 1
                )
        except Exception:  # noqa: BLE001 — counted, surfaced via report
            async with lock:
                report.unexpected_errors += 1
                report.errors_by_tenant[name] = (
                    report.errors_by_tenant.get(name, 0) + 1
                )
        finally:
            sem.release()

    try:
        for op in script.setup_ops():
            await sem.acquire()
            async with lock:
                report.requests += 1
            await fire(op)  # setup is sequential; fire releases sem
        for _ in range(script.requests):
            op = script.next_op()
            await sem.acquire()
            async with lock:
                report.requests += 1
            task = asyncio.create_task(fire(op))
            pending.add(task)
            task.add_done_callback(pending.discard)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
    finally:
        await client.close()


async def run_traffic(socket_path: str, config: TrafficConfig) -> TrafficReport:
    """Run the configured mix against a live server; returns the
    client-side report (the server's own counters come from
    ``server_stats``)."""
    report = TrafficReport()
    lock = asyncio.Lock()
    names = config.tenant_names()
    per_tenant = max(1, config.requests // max(1, len(names)))

    if config.create_tenants:
        admin = await AsyncServeClient.connect(socket_path)
        try:
            for name in names:
                spec = {"name": name, "scheme": config.scheme}
                if name in config.poison_tenants:
                    spec["fault_plan"] = config.poison_tenants[name]
                await admin.call("create_tenant", args={"spec": spec})
        finally:
            await admin.close()

    started = time.monotonic()
    scripts = [_TenantScript(name, config, per_tenant) for name in names]
    await asyncio.gather(
        *(_drive_tenant(socket_path, s, report, lock) for s in scripts)
    )
    report.elapsed_s = time.monotonic() - started
    return report
