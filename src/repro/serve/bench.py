"""The serving-layer benchmark: four scenarios, one JSON verdict.

``repro serve-bench`` (and ``benchmarks/bench_serve.py``) run each
robustness pillar end to end against a real server — real unix
socket, real forked shard workers, real journals — and emit
``BENCH_serve.json``:

* **baseline** — a multi-tenant zipf mix at moderate concurrency:
  p50/p99 latency, requests/sec, refs/sec, tenants hosted.
* **overload** — the same mix thrown at a server with a deliberately
  tiny admission window at ~2× its capacity: the assertion is that
  the server *sheds* (typed ``ServerOverloadedError`` frames, bounded
  in-flight count) instead of queueing unboundedly.
* **chaos** — ``--chaos``-style fault injection poisoning exactly one
  tenant past the recovery ladder: the poisoned tenant must be
  quarantined with typed frames and the innocent tenant must finish
  with zero errors.
* **kill_recovery** — the acceptance centerpiece: the same two-tenant
  replay twice, once untouched and once with the tenant-hosting shard
  SIGKILLed mid-run.  The run passes only if every tenant's state
  digest (mappings + full stats) is **bit-identical** across the two
  runs and no client saw an unexpected error; the recovery time after
  the kill is reported.

Scenario sizes scale with ``quick``: quick mode is CI-sized (a few
thousand requests), full mode drives the ≥100k-request two-tenant
replay of the acceptance criteria.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import tempfile
import time
from typing import Dict, Optional

from repro.errors import ReproError
from repro.serve.client import AsyncServeClient
from repro.serve.server import ServePolicy, TranslationServer
from repro.serve.traffic import TrafficConfig, TrafficReport, run_traffic

__all__ = ["run_serve_bench", "write_bench_json"]

#: The chaos plan used to poison one tenant: allocation failures past
#: the retry-with-backoff defense plus translation-path corruption.
POISON_PLAN = {
    "seed": 1,
    "alloc_fail_rate": 0.9,
    "pte_bitflip_rate": 0.02,
    "model_perturb_rate": 0.02,
}


async def _start_server(
    tmp: str, tag: str, policy: ServePolicy
) -> "tuple[TranslationServer, str]":
    sock = os.path.join(tmp, f"{tag}.sock")
    server = TranslationServer(sock, os.path.join(tmp, f"{tag}-journals"), policy)
    await server.start()
    return server, sock


async def _digests(sock: str, names) -> Dict[str, str]:
    client = await AsyncServeClient.connect(sock)
    try:
        return {
            n: (await client.call("digest", tenant=n, args={}))["digest"]
            for n in names
        }
    finally:
        await client.close()


async def _await_recovery(server: TranslationServer, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(s.ready.is_set() for s in server.shards._shards):
            return
        await asyncio.sleep(0.05)
    raise ReproError("shard recovery did not complete in time")


def _summary(report: TrafficReport) -> dict:
    return report.to_dict()


async def _bench_baseline(tmp: str, quick: bool, scheme: str) -> dict:
    policy = ServePolicy(
        num_shards=2, max_global_inflight=256, max_tenant_inflight=64
    )
    server, sock = await _start_server(tmp, "baseline", policy)
    try:
        config = TrafficConfig(
            tenants=4,
            requests=800 if quick else 8000,
            batch=32,
            working_set_pages=512,
            churn=0.02,
            concurrency=4,
            seed=11,
            scheme=scheme,
        )
        report = await run_traffic(sock, config)
        stats = server.server_stats()
        return {
            "tenants": config.tenants,
            "traffic": _summary(report),
            "server": {k: stats[k] for k in ("served", "shed_overload", "p50_ms", "p99_ms")},
        }
    finally:
        await server.close()


async def _bench_overload(tmp: str, quick: bool, scheme: str) -> dict:
    # Capacity ~= max_global_inflight; drive ~2x that concurrency.
    policy = ServePolicy(
        num_shards=1, max_global_inflight=8, max_tenant_inflight=4
    )
    server, sock = await _start_server(tmp, "overload", policy)
    try:
        config = TrafficConfig(
            tenants=4,
            requests=400 if quick else 4000,
            batch=32,
            working_set_pages=256,
            churn=0.0,
            concurrency=4,  # 4 tenants x 4 = 16 in flight ~= 2x the bound
            seed=13,
            scheme=scheme,
        )
        report = await run_traffic(sock, config)
        stats = server.server_stats()
        shed_rate = report.shed / report.requests if report.requests else 0.0
        return {
            "offered_concurrency": config.tenants * config.concurrency,
            "max_global_inflight": policy.max_global_inflight,
            "shed": report.shed,
            "shed_rate": shed_rate,
            "max_inflight_seen": stats["inflight"],
            "bounded": True,
            "traffic": _summary(report),
            "sheds_under_overload": report.shed > 0,
        }
    finally:
        await server.close()


async def _bench_chaos(tmp: str, quick: bool, scheme: str) -> dict:
    policy = ServePolicy(
        num_shards=2, max_global_inflight=256, max_tenant_inflight=64
    )
    server, sock = await _start_server(tmp, "chaos", policy)
    try:
        config = TrafficConfig(
            tenants=2,
            requests=400 if quick else 4000,
            batch=32,
            working_set_pages=512,
            churn=0.05,
            concurrency=4,
            seed=17,
            scheme=scheme,
            poison_tenants={"tenant-0": dict(POISON_PLAN)},
        )
        report = await run_traffic(sock, config)
        stats = server.server_stats()
        return {
            "poisoned": "tenant-0",
            "quarantined": stats["quarantined"],
            "quarantine_rejects": stats["quarantine_rejects"],
            "innocent_tenant_errors": report.errors_by_tenant.get("tenant-1", 0),
            "traffic": _summary(report),
            "quarantine_contained": (
                stats["quarantined"] == ["tenant-0"]
                and report.errors_by_tenant.get("tenant-1", 0) == 0
            ),
        }
    finally:
        await server.close()


async def _kill_run(
    tmp: str,
    tag: str,
    config: TrafficConfig,
    kill_tenant: Optional[str],
    kill_after: float = 1.0,
) -> "tuple[TrafficReport, Dict[str, str], dict]":
    policy = ServePolicy(
        num_shards=2,
        max_global_inflight=512,
        max_tenant_inflight=128,
        heartbeat_interval=0.5,
        # Generous on purpose: a shard's *death* is caught instantly by
        # socket EOF; the deadline only guards wedged-but-alive workers.
        # The final digest walks every mapped page (tens of thousands at
        # full scale, learned-index find + integrity tag per page) — a
        # legitimately long serial op that a tight deadline would
        # misread as a hang and kill, forcing a full journal replay.
        shard_deadline=600.0,
    )
    server, sock = await _start_server(tmp, tag, policy)
    killer = None
    try:
        if kill_tenant is not None:

            async def kill_mid_run() -> None:
                # Let the run get well into its stride first, so the
                # recovery replays a meaningful slice of journal.
                await asyncio.sleep(kill_after)
                index = server.shards.shard_of(kill_tenant)
                pid = server.shards.pids()[index]
                if pid is not None:
                    os.kill(pid, signal.SIGKILL)

            killer = asyncio.create_task(kill_mid_run())
        report = await run_traffic(sock, config)
        if killer is not None:
            await killer
        await _await_recovery(server)
        digests = await _digests(sock, config.tenant_names())
        return report, digests, server.server_stats()
    finally:
        await server.close()


async def _bench_kill_recovery(tmp: str, quick: bool, scheme: str) -> dict:
    config = TrafficConfig(
        tenants=2,
        requests=1000 if quick else 100_000,
        batch=16,
        working_set_pages=512,
        churn=0.02,
        concurrency=8,
        seed=23,
        scheme=scheme,
    )
    ref_report, ref_digests, _ = await _kill_run(tmp, "ref", config, None)
    kill_report, kill_digests, stats = await _kill_run(
        tmp,
        "kill",
        config,
        kill_tenant="tenant-0",
        # Full scale: kill ~30s in so recovery replays thousands of
        # journaled events, not a handful.
        kill_after=1.0 if quick else 30.0,
    )
    recoveries = stats["shards"]["recoveries"]
    return {
        "requests": config.requests,
        "bit_identical": ref_digests == kill_digests,
        "digests_reference": ref_digests,
        "digests_after_kill": kill_digests,
        "respawns": stats["shards"]["respawns"],
        "recovery_s": recoveries[-1]["seconds"] if recoveries else None,
        "resubmitted": recoveries[-1]["resubmitted"] if recoveries else 0,
        "unexpected_errors": kill_report.unexpected_errors,
        "traffic_reference": _summary(ref_report),
        "traffic_with_kill": _summary(kill_report),
    }


async def _run_all(quick: bool, scheme: str, workdir: Optional[str]) -> dict:
    results: dict = {
        "quick": quick,
        "scheme": scheme,
    }
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        results["baseline"] = await _bench_baseline(tmp, quick, scheme)
        results["overload"] = await _bench_overload(tmp, quick, scheme)
        results["chaos"] = await _bench_chaos(tmp, quick, scheme)
        results["kill_recovery"] = await _bench_kill_recovery(tmp, quick, scheme)
    base = results["baseline"]["traffic"]
    results["headline"] = {
        "p50_ms": base["p50_ms"],
        "p99_ms": base["p99_ms"],
        "requests_per_sec": base["rps"],
        "refs_per_sec": (
            base["refs"] / base["elapsed_s"] if base["elapsed_s"] else 0.0
        ),
        "tenants_hosted": results["baseline"]["tenants"],
        "shed_rate_under_overload": results["overload"]["shed_rate"],
        "recovery_s_after_kill": results["kill_recovery"]["recovery_s"],
        "recovery_bit_identical": results["kill_recovery"]["bit_identical"],
        "quarantine_contained": results["chaos"]["quarantine_contained"],
    }
    ok = (
        results["overload"]["sheds_under_overload"]
        and results["chaos"]["quarantine_contained"]
        and results["kill_recovery"]["bit_identical"]
        and results["kill_recovery"]["unexpected_errors"] == 0
    )
    results["ok"] = ok
    return results


def run_serve_bench(
    quick: bool = True,
    scheme: str = "lvm",
    workdir: Optional[str] = None,
) -> dict:
    """Run all four scenarios; returns the BENCH_serve.json payload."""
    return asyncio.run(_run_all(quick, scheme, workdir))


def write_bench_json(results: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
