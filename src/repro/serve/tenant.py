"""Per-tenant translation state: one address space behind a request API.

A :class:`Tenant` is the serving-layer analogue of one
:class:`~repro.sim.simulator.Simulator` run, reshaped from
"trace in, result out" into a long-lived state machine driven by
requests: ``mmap``, ``munmap``, ``translate`` (a batch of virtual
addresses) and ``stats``.  It owns the same stack a simulator run owns
— scheme page table (via the scheme descriptor registry), process with
demand paging, TLB hierarchy + walker behind an
:class:`~repro.mmu.mmu.MMU` — so the numbers it serves are the numbers
the paper's sweeps produce.

Two properties carry the serving layer's robustness story:

* **Determinism.**  Every mutating operation is a pure function of the
  tenant's creation spec and the sequence of operations applied so
  far: allocators are bump cursors, the fault injector draws from
  seeded per-site streams, and nothing reads the clock.  Replaying a
  tenant's event journal through a fresh ``Tenant`` therefore rebuilds
  *bit-identical* state — the foundation of shard crash recovery
  (``docs/INTERNALS.md`` §13).
* **Containment.**  A tenant whose learned index degrades past the
  recovery ladder (injected corruption under ``--chaos``) flips to
  *quarantined*: every later request fails with a typed
  :class:`~repro.errors.TenantQuarantinedError` frame, and no other
  tenant — not even on the same shard — is affected.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional

from repro.errors import (
    AllocationError,
    CorruptionError,
    InvariantViolation,
    ProtocolError,
    RecoveryExhaustedError,
    TenantQuarantinedError,
)
from repro.faults import FaultInjector, FaultPlan
from repro.kernel.process import Process
from repro.kernel.vma import VMA
from repro.mem.allocator import BumpAllocator
from repro.mmu.hierarchy import MemoryHierarchy
from repro.mmu.mmu import MMU
from repro.schemes import registry
from repro.sim.config import SimConfig
from repro.sim.journal import record_digest
from repro.sim.vectorized import SERVE_BATCH_MIN, serve_batch_translate
from repro.types import TranslationError

__all__ = ["Tenant", "TenantSpec", "QUARANTINE_ERRORS"]

#: Modeled failures that poison a tenant for good: detected corruption
#: that survived (or exhausted) the graceful-degradation ladder, a
#: violated kernel invariant, or translation structures that cannot be
#: maintained because allocation keeps failing past the retry-with-
#: backoff defense.  Per-request mistakes (an unmapped VA, a double
#: mmap) are *not* here — they fail one request, not the tenant.
QUARANTINE_ERRORS = (
    RecoveryExhaustedError,
    CorruptionError,
    InvariantViolation,
    AllocationError,
)

#: Ops a tenant accepts.  ``MUTATING_OPS`` advance the tenant's journal
#: sequence number and are replayed on recovery; read-only ops are not.
MUTATING_OPS = ("mmap", "munmap", "translate")

#: Digest walks every mapped page up to this many; larger tenants are
#: digested at a deterministic stride sample (see ``_op_digest``).
DIGEST_MAX_PAGES = 2048
READONLY_OPS = ("stats", "digest")


@dataclass(frozen=True)
class TenantSpec:
    """Everything needed to (re)create a tenant, bit for bit.

    The spec is journaled as the tenant journal's header; its canonical
    digest is the journal fingerprint, so a journal can never be
    replayed into a tenant built differently.
    """

    name: str
    scheme: str = "lvm"
    thp: bool = False
    #: Per-tenant fault plan (``--chaos`` installs a server-wide
    #: default; tests poison one tenant and leave its neighbour clean).
    fault_plan: Optional[dict] = None
    #: Quota ceilings, enforced at the front end; carried in the spec
    #: so recovery restores the same limits.
    max_vmas: Optional[int] = None
    max_refs_per_sec: Optional[float] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(raw: dict) -> "TenantSpec":
        try:
            return TenantSpec(**raw)
        except TypeError as exc:
            raise ProtocolError(f"bad tenant spec {raw!r}: {exc}") from exc

    def fingerprint(self) -> str:
        return record_digest(self.to_dict())


@dataclass
class TenantCounters:
    """Serving-side counters, on top of the MMU/process stats."""

    ops: int = 0
    translates: int = 0
    refs: int = 0
    mmaps: int = 0
    munmaps: int = 0
    request_errors: int = 0


class Tenant:
    """One hosted address space; see the module docstring."""

    def __init__(self, spec: TenantSpec):
        self.spec = spec
        descriptor = registry.get(spec.scheme)
        self.descriptor = descriptor
        self.scheme = descriptor.name
        # The scheme descriptors' factory hooks read these simulator
        # attributes; a Tenant quacks like a Simulator during setup.
        self.config = SimConfig(thp=spec.thp)
        self.lvm_config = None
        self.hierarchy = MemoryHierarchy(self.config.hierarchy)
        self.allocator = BumpAllocator()
        plan = (
            FaultPlan(**spec.fault_plan) if spec.fault_plan is not None else None
        )
        if plan is not None:
            plan.validate()
        self.injector: Optional[FaultInjector] = (
            FaultInjector(plan) if plan is not None and plan.enabled else None
        )
        if self.injector is not None and descriptor.wraps_allocator_under_faults:
            self.allocator = self.injector.wrap_allocator(self.allocator)
        self.manager = None  # set by LVM's make_page_table
        self.page_table = descriptor.make_page_table(self)
        self.process = Process(
            self.page_table,
            allocator=self.allocator,
            thp=spec.thp,
            thp_coverage=self.config.thp_coverage,
            injector=self.injector,
        )
        self.walker = descriptor.make_walker(self)
        self.mmu = MMU(self.walker, self.config.tlb)
        self.counters = TenantCounters()
        self.quarantined: Optional[str] = None  # the poisoning message
        #: Sequence number of the last applied mutating op (the shard
        #: sets this from the journal during replay and from the front
        #: end's per-tenant counter during live serving).
        self.last_seq = 0

    # -- the request surface ------------------------------------------

    def apply(self, op: str, args: dict) -> dict:
        """Apply one operation; returns the result payload.

        Mutating ops that raise a :data:`QUARANTINE_ERRORS` member
        leave the tenant quarantined: deterministic poison (the fault
        streams are seeded) reproduces identically on journal replay,
        so a recovered shard re-quarantines the same tenant at the
        same event.
        """
        if self.quarantined is not None:
            raise TenantQuarantinedError(
                f"tenant {self.spec.name!r} is quarantined: {self.quarantined}"
            )
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ProtocolError(f"unknown tenant op {op!r}")
        try:
            result = handler(**args)
        except QUARANTINE_ERRORS as exc:
            self.quarantined = f"{type(exc).__name__}: {exc}"
            self.counters.request_errors += 1
            raise TenantQuarantinedError(
                f"tenant {self.spec.name!r} quarantined by "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        except TypeError as exc:
            # Bad/missing argument names from the wire.
            raise ProtocolError(f"bad arguments for {op!r}: {exc}") from exc
        if op in MUTATING_OPS:
            # Read-only ops must not perturb counters: observable state
            # stays a pure function of the journaled (mutating) history,
            # which is what makes replayed digests bit-identical.
            self.counters.ops += 1
        return result

    # -- mutating ops --------------------------------------------------

    def _op_mmap(self, start_vpn: int, pages: int, name: str = "") -> dict:
        vma = VMA(int(start_vpn), int(pages), name=str(name))
        # A client mapping over an existing VMA is a bad *request*, not
        # corruption: pre-check so the kernel's OverlappingVMAError (an
        # InvariantViolation, which quarantines) never fires for it.
        for existing in self.process.address_space:
            if vma.overlaps(existing):
                raise TranslationError(
                    f"mmap [{vma.start_vpn}, {vma.end_vpn}) overlaps existing "
                    f"VMA [{existing.start_vpn}, {existing.end_vpn})"
                )
        self.process.mmap(vma, populate=True)
        self.counters.mmaps += 1
        return {
            "start_vpn": vma.start_vpn,
            "pages": vma.pages,
            "vmas": len(self.process.address_space),
            "mapped_pages": self.process.stats.mapped_pages,
        }

    def _op_munmap(self, start_vpn: int) -> dict:
        self.process.munmap(int(start_vpn), mmu=self.mmu)
        self.counters.munmaps += 1
        return {
            "start_vpn": int(start_vpn),
            "vmas": len(self.process.address_space),
            "mapped_pages": self.process.stats.mapped_pages,
        }

    def _op_translate(self, vas: List[int]) -> dict:
        """Translate a batch of virtual addresses.

        The loop mirrors :meth:`Simulator.run_standard`'s semantics —
        translate, demand-fault on a miss, retry — so the per-tenant
        counters line up with what a sweep over the same references
        would report.  A VA outside every VMA is a per-request error
        (the batch stops there, state keeps everything already
        applied; deterministic, so replay reproduces it exactly).

        Batches of at least :data:`~repro.sim.vectorized.
        SERVE_BATCH_MIN` addresses route through the vectorized epoch
        engine (fault-free tenants only) — bit-identical counters,
        cycles and TLB state by the engine's contract, so journal
        replays and digests are unaffected by which path served a
        batch.  ``progress`` is updated in order, so a mid-batch
        unmappable VA leaves exactly the scalar loop's partial counts.
        """
        if not isinstance(vas, list):
            raise ProtocolError("translate needs a list of virtual addresses")
        if (
            self.injector is None
            and len(vas) >= SERVE_BATCH_MIN
            and self.config.vectorized_engine
            and self.descriptor.supports_vectorized
        ):
            try:
                ints = [int(va) for va in vas]
            except (TypeError, ValueError):
                # A malformed element: let the scalar loop below reach
                # it in sequence and surface the identical error.
                ints = None
            if ints is not None:
                progress = [0, 0]
                try:
                    serve_batch_translate(
                        self.mmu, self.process.handle_fault, ints, progress,
                        epoch=self.config.vectorized_epoch,
                        min_fast=self.config.vectorized_min_fast,
                    )
                finally:
                    self.counters.translates += 1
                    self.counters.refs += progress[0]
                return {"refs": progress[0], "mmu_cycles": progress[1]}
        translate = self.mmu.translate
        fault = self.process.handle_fault
        injector = self.injector
        mmu_cycles = 0
        done = 0
        try:
            for va in vas:
                va = int(va)
                if injector is not None:
                    injector.on_reference(self)
                pte, tcycles = translate(va)
                if pte is None:
                    fault(va)
                    pte, more = translate(va)
                    tcycles += more
                    if pte is None:
                        raise TranslationError(f"unmappable VA {va:#x}")
                mmu_cycles += tcycles
                done += 1
        finally:
            self.counters.translates += 1
            self.counters.refs += done
        return {"refs": done, "mmu_cycles": mmu_cycles}

    # -- read-only ops -------------------------------------------------

    def _op_stats(self) -> dict:
        """Deterministic counter snapshot (the recovery acceptance test
        diffs this against an uninterrupted run's)."""
        mmu = self.mmu.stats
        proc = self.process.stats
        stats = {
            "tenant": self.spec.name,
            "scheme": self.scheme,
            "quarantined": self.quarantined,
            "last_seq": self.last_seq,
            "ops": self.counters.ops,
            "translates": self.counters.translates,
            "refs": self.counters.refs,
            "mmaps": self.counters.mmaps,
            "munmaps": self.counters.munmaps,
            "translations": mmu.translations,
            "l1_tlb_hits": mmu.l1_tlb_hits,
            "l2_tlb_hits": mmu.l2_tlb_hits,
            "walks": mmu.walks,
            "walk_cycles": mmu.walk_cycles,
            "walk_traffic": mmu.walk_traffic,
            "tlb_cycles": mmu.tlb_cycles,
            "demand_faults": proc.faults,
            "mapped_pages": proc.mapped_pages,
            "vmas": len(self.process.address_space),
            "shootdowns": proc.shootdowns,
            "table_bytes": self.page_table.table_bytes,
        }
        if self.injector is not None:
            stats["faults_injected"] = self.injector.total_injected
        if self.manager is not None:
            istats = self.manager.index.stats
            stats["recoveries"] = (
                istats.recovered_scans
                + istats.recovered_retrains
                + istats.recovered_rebuilds
            )
            stats["index_size_bytes"] = self.manager.index.index_size_bytes
        return stats

    def _op_digest(self) -> dict:
        """Canonical digest of mappings + counters: two tenants agree
        on this iff their observable state is identical (the recovery
        tests' strongest equality check).

        The mapping walk goes through the VMA layer + ``find`` (the
        only iteration every page-table scheme supports).  Up to
        :data:`DIGEST_MAX_PAGES` mapped pages it visits every
        translation, stepping over large pages; past that it probes a
        deterministic stride sample plus each VMA's last page —
        ``find`` against a sparse learned index can cost tens of
        milliseconds per page, and an O(pages) walk at 10⁴⁺ pages
        would outlast any sane shard heartbeat deadline.  The sample
        is a pure function of the VMA layout, so live and replayed
        tenants are always digested at identical probe points, and
        the full counter set (walks, cycles, faults, table bytes)
        rides along — state the sample misses still diverges there."""
        mappings = []
        total_pages = sum(vma.pages for vma in self.process.address_space)
        stride = max(1, -(-total_pages // DIGEST_MAX_PAGES))  # ceil div
        for vma in self.process.address_space:
            if stride == 1:
                vpn = vma.start_vpn
                while vpn < vma.end_vpn:
                    pte = self.page_table.find(vpn)
                    if pte is not None and pte.vpn == vpn:
                        mappings.append(
                            (pte.vpn, pte.ppn, int(pte.page_size.pages_4k))
                        )
                        vpn += pte.page_size.pages_4k
                    else:
                        vpn += 1
            else:
                probes = list(range(vma.start_vpn, vma.end_vpn, stride))
                if probes[-1] != vma.end_vpn - 1:
                    probes.append(vma.end_vpn - 1)
                for vpn in probes:
                    pte = self.page_table.find(vpn)
                    if pte is not None:
                        mappings.append(
                            (vpn, pte.vpn, pte.ppn, int(pte.page_size.pages_4k))
                        )
                    else:
                        mappings.append((vpn, -1, -1, 0))
        return {
            "digest": record_digest(
                {
                    "mappings": mappings,
                    "total_pages": total_pages,
                    "stride": stride,
                    "stats": self._op_stats(),
                }
            ),
            "mappings": len(mappings),
            "sampled": stride > 1,
        }

    # -- introspection -------------------------------------------------

    @property
    def vma_count(self) -> int:
        return len(self.process.address_space)
