"""Translation-as-a-service: a fault-tolerant multi-tenant serving
layer over the simulation stack.

The paper's §7.1 multi-tenancy study is a one-shot sweep; this package
turns it into a long-lived server.  ``repro serve`` listens on a unix
socket for length-prefixed JSON frames, hosts many tenant address
spaces (one translation scheme + process + MMU each), shards tenants
across supervised worker processes, and batches ``translate`` requests
into the simulator.  The robustness machinery is the point:

* **Admission control + load shedding** (``server.py``): bounded
  per-tenant and global queues, a reject-newest shed policy with typed
  :class:`~repro.errors.ServerOverloadedError` frames, and per-tenant
  quotas (max VMAs, refs/sec token bucket) enforced at the front end.
* **Worker supervision + crash recovery** (``shards.py``/``shard.py``):
  heartbeat + deadline detection, kill-and-respawn of wedged shards,
  and bit-identical tenant reconstruction by replaying each tenant's
  checksummed event journal (``tenant_journal.py``).
* **Graceful degradation** (``tenant.py``): a tenant whose learned
  index is corrupted past the recovery ladder (``--chaos``) is
  quarantined with typed error frames; other tenants never notice.

See ``docs/INTERNALS.md`` §13 for the architecture walk-through.
"""

from repro.serve.client import AsyncServeClient, ServeClient
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    decode_error,
    error_payload,
    read_frame,
    read_frame_sock,
    write_frame,
    write_frame_sock,
)
from repro.serve.server import ServePolicy, TranslationServer
from repro.serve.shards import ShardManager
from repro.serve.tenant import Tenant, TenantSpec
from repro.serve.tenant_journal import TenantJournal
from repro.serve.traffic import TrafficConfig, TrafficReport, run_traffic

__all__ = [
    "AsyncServeClient",
    "MAX_FRAME_BYTES",
    "ServeClient",
    "ServePolicy",
    "ShardManager",
    "Tenant",
    "TenantJournal",
    "TenantSpec",
    "TrafficConfig",
    "TrafficReport",
    "TranslationServer",
    "decode_error",
    "error_payload",
    "read_frame",
    "read_frame_sock",
    "run_traffic",
    "write_frame",
    "write_frame_sock",
]
