"""Kronecker (RMAT) graph generation — the graphBIG input (section 6.2).

The paper's graph workloads "take a Kronecker graph that produces a
runtime memory footprint of 75GB".  We generate the same family of
graphs (RMAT with the standard Graph500 parameters) at a scaled size
and build a CSR representation the kernels traverse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# Graph500 RMAT probabilities.
RMAT_A, RMAT_B, RMAT_C = 0.57, 0.19, 0.19


@dataclass
class CSRGraph:
    """Compressed-sparse-row adjacency."""

    offsets: np.ndarray  # int64[num_vertices + 1]
    edges: np.ndarray  # int32[num_edges]

    @property
    def num_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    def neighbors(self, v: int) -> np.ndarray:
        return self.edges[self.offsets[v] : self.offsets[v + 1]]


def rmat_edges(scale: int, edge_factor: int, seed: int = 0) -> np.ndarray:
    """Sample RMAT edge pairs: shape (2, E) with E = edge_factor * 2^scale."""
    rng = np.random.default_rng(seed)
    num_edges = edge_factor << scale
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(num_edges)
        # Quadrant choice per RMAT: a (0,0), b (0,1), c (1,0), d (1,1).
        src_bit = (r >= RMAT_A + RMAT_B).astype(np.int64)
        dst_bit = (
            ((r >= RMAT_A) & (r < RMAT_A + RMAT_B))
            | (r >= RMAT_A + RMAT_B + RMAT_C)
        ).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return np.stack([src, dst])


def kronecker_graph(
    scale: int, edge_factor: int = 16, seed: int = 0, scramble: bool = True
) -> CSRGraph:
    """Build a CSR Kronecker graph with 2^scale vertices.

    ``scramble`` applies the standard Graph500 vertex-id permutation:
    raw RMAT ids correlate with degree (low ids are hubs), which would
    unrealistically concentrate traversal traffic on a few pages.
    """
    pairs = rmat_edges(scale, edge_factor, seed)
    src, dst = pairs[0], pairs[1]
    if scramble:
        rng = np.random.default_rng(seed + 0x5EED)
        perm = rng.permutation(1 << scale)
        src = perm[src]
        dst = perm[dst]
    # Drop self-loops, symmetrize (graphBIG inputs are undirected).
    keep = src != dst
    src, dst = src[keep], dst[keep]
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    order = np.argsort(all_src, kind="stable")
    all_src = all_src[order]
    all_dst = all_dst[order]
    num_vertices = 1 << scale
    counts = np.bincount(all_src, minlength=num_vertices)
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return CSRGraph(offsets=offsets, edges=all_dst.astype(np.int32))
