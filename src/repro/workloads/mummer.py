"""MUMmer DNA sequence alignment traces (BioBench, section 6.2).

MUMmer builds a suffix tree over a reference genome and streams query
sequences against it: long sequential scans over the query/reference
arrays interleaved with pointer-chasing descents through the suffix
tree — the tree walks are the random, TLB-hostile component (the paper
reports >90% TLB miss rates for MUMmer).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.workloads.layout import ArrayRef


def mummer_trace(
    reference: ArrayRef,
    suffix_tree: ArrayRef,
    query: ArrayRef,
    num_refs: int,
    seed: int = 0,
    match_len: int = 24,
) -> np.ndarray:
    """Alternate query streaming with suffix-tree descents.

    Per query position: one sequential query read, ``match_len``-deep
    random tree-node chain, and one reference read at the match site.
    """
    rng = np.random.default_rng(seed)
    per_match = 2 + match_len
    matches = -(-num_refs // per_match)
    out: List[np.ndarray] = []
    q_pos = rng.integers(0, max(1, query.num_elements - matches))
    tree_nodes = rng.integers(0, suffix_tree.num_elements, size=(matches, match_len))
    ref_hits = rng.integers(0, reference.num_elements, size=matches)
    for i in range(matches):
        block = np.empty(per_match, dtype=np.int64)
        block[0] = query.va_of(int(q_pos) + i)
        block[1:-1] = suffix_tree.va_of(tree_nodes[i])
        block[-1] = reference.va_of(int(ref_hits[i]))
        out.append(block)
    return np.concatenate(out)[:num_refs]
