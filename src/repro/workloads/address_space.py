"""Per-workload virtual address space construction.

Each workload declares its segments (text, heap arrays, arenas, stack);
the builder places them at ASLR bases, runs the userspace-allocator
model to inject realistic small holes, and emits the VMA list the OS
layer maps.  The resulting spaces reproduce the gap-1 coverage range
the paper measures in Figure 2 (78%–99.9% across workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel.aslr import ASLRLayout
from repro.kernel.vma import VMA
from repro.types import Permission
from repro.workloads.allocator import JEMALLOC, AllocatorModel


@dataclass(frozen=True)
class SegmentSpec:
    """A logical segment of a workload's address space.

    ``hole_fraction`` = 0 means the segment is one dense allocation
    (large arrays mmap'd in one piece); > 0 means allocator churn
    fragments it.  Churned segments are additionally perturbed by the
    allocator model's own hole statistics, which is how the jemalloc
    vs. tcmalloc comparison of Figure 2 enters the layout.
    """

    name: str
    region: str  # ASLR region: text / data / heap / mmap / stack
    pages: int
    hole_fraction: float = 0.0
    hole_max: int = 8
    perms: Permission = Permission.RW
    file_backed: bool = False


@dataclass
class BuiltAddressSpace:
    """The VMAs of a workload plus bookkeeping for trace generators."""

    vmas: List[VMA]
    segment_base_vpn: Dict[str, int] = field(default_factory=dict)

    @property
    def total_pages(self) -> int:
        return sum(v.pages for v in self.vmas)

    def gap_coverage(self, gap: int = 1) -> float:
        total = 0
        matching = 0
        prev: Optional[int] = None
        for vma in sorted(self.vmas, key=lambda v: v.start_vpn):
            if vma.pages > 1:
                total += vma.pages - 1
                if gap == 1:
                    matching += vma.pages - 1
            if prev is not None:
                total += 1
                if vma.start_vpn - prev == gap:
                    matching += 1
            prev = vma.end_vpn - 1
        return matching / total if total else 0.0


# Gap between consecutive segments placed in the same ASLR region, in
# pages — guard pages plus allocator alignment slack.
_SEGMENT_GUARD_PAGES = 4


def build_address_space(
    specs: List[SegmentSpec],
    aslr: Optional[ASLRLayout] = None,
    allocator: AllocatorModel = JEMALLOC,
    seed: int = 0,
) -> BuiltAddressSpace:
    """Place segments and inject allocator holes; returns the VMAs."""
    aslr = aslr or ASLRLayout(seed=seed)
    cursor: Dict[str, int] = {}
    vmas: List[VMA] = []
    bases: Dict[str, int] = {}
    huge_pages = 512  # pages per 2 MB huge-page frame
    for i, spec in enumerate(specs):
        base = cursor.get(spec.region, aslr.base_vpn(spec.region))
        pages = spec.pages
        if spec.hole_fraction <= 0.0 and pages >= huge_pages and not spec.file_backed:
            # Large anonymous mappings are 2 MB-aligned and sized, as
            # modern kernels/allocators do for THP eligibility — this
            # is what keeps huge regions free of 4 KB heads and tails.
            base = -(-base // huge_pages) * huge_pages
            pages = -(-pages // huge_pages) * huge_pages
        bases[spec.name] = base
        spec = SegmentSpec(
            spec.name, spec.region, pages, spec.hole_fraction,
            spec.hole_max, spec.perms, spec.file_backed,
        )
        if spec.hole_fraction > 0.0:
            # Churned segment: workload-declared churn, perturbed by
            # the allocator's own hole statistics relative to jemalloc.
            effective = max(
                0.0, spec.hole_fraction + (allocator.hole_fraction - JEMALLOC.hole_fraction)
            )
            model = AllocatorModel(
                allocator.name, effective, spec.hole_max, jitter=allocator.jitter
            )
        else:
            # Dense segment: one large allocation, no holes.
            model = AllocatorModel(allocator.name, 0.0, 1, jitter=0.0)
        runs = model.layout_runs(spec.pages, base, seed=seed * 1000 + i)
        for start, pages in runs:
            vmas.append(
                VMA(
                    start_vpn=start,
                    pages=pages,
                    perms=spec.perms,
                    name=spec.name,
                    file_backed=spec.file_backed,
                )
            )
        end = runs[-1][0] + runs[-1][1] if runs else base
        cursor[spec.region] = end + _SEGMENT_GUARD_PAGES
    return BuiltAddressSpace(vmas=vmas, segment_base_vpn=bases)
