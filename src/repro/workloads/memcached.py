"""Memcached-style in-memory key-value store traces (section 6.2).

Memcached's memory is organized in slab classes; a GET hashes the key
(one access in the hash-bucket array) and then dereferences the item in
its slab (a popularity-skewed random access).  Key popularity follows
the classic Zipf distribution of cache workloads, giving high reuse on
hot items but a huge cold tail — a 124 GB footprint whose page working
set dwarfs any TLB.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.layout import ArrayRef


def zipf_ranks(num_items: int, theta: float, size: int, rng) -> np.ndarray:
    """Bounded Zipf sampling via inverse-CDF over item ranks."""
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, theta)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return np.searchsorted(cdf, rng.random(size))


def memcached_trace(
    hash_table: ArrayRef,
    slabs: ArrayRef,
    num_refs: int,
    seed: int = 0,
    theta: float = 0.99,
    hot_items: int = 1 << 20,
) -> np.ndarray:
    """GET-dominated trace: bucket probe then item access.

    Items are scattered over the slab area by a fixed pseudo-random
    permutation (slab allocation order is unrelated to key popularity),
    so even hot keys land on scattered pages.
    """
    rng = np.random.default_rng(seed)
    gets = num_refs // 2
    items = min(hot_items, slabs.num_elements)
    popularity = zipf_ranks(items, theta, gets, rng)
    # Fixed permutation: popularity rank -> slab position.
    placement = rng.permutation(items)
    item_pos = placement[popularity]
    # Spread item positions over the whole slab area.
    scale = max(1, slabs.num_elements // items)
    item_idx = (item_pos * scale + (item_pos % scale)) % slabs.num_elements
    bucket_idx = rng.integers(0, hash_table.num_elements, size=gets)
    trace = np.empty(2 * gets, dtype=np.int64)
    trace[0::2] = hash_table.va_of(bucket_idx)
    trace[1::2] = slabs.va_of(item_idx)
    return trace[:num_refs]
