"""Trace persistence: save and reload workload access traces.

Regenerating a trace (especially the Kronecker-graph kernels) costs
seconds; persisted traces make experiment sweeps reproducible and
shareable.  The format is a `.npz` holding the address array plus a
metadata record (workload name, refs, seed, instructions-per-ref,
footprint scale) so a loaded trace can be validated against the
workload it claims to come from.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.workloads.registry import BuiltWorkload

FORMAT_VERSION = 1


@dataclass(frozen=True)
class TraceHeader:
    """Provenance of a saved trace."""

    workload: str
    refs: int
    seed: int
    instructions_per_ref: float
    format_version: int = FORMAT_VERSION


class TraceMismatch(Exception):
    """A loaded trace does not match the expected provenance."""


def save_trace(
    path: Union[str, Path],
    workload: BuiltWorkload,
    num_refs: int,
    seed: int = 0,
) -> TraceHeader:
    """Generate and persist a trace; returns its header."""
    trace = workload.trace(num_refs, seed)
    header = TraceHeader(
        workload=workload.info.name,
        refs=len(trace),
        seed=seed,
        instructions_per_ref=workload.info.instructions_per_ref,
    )
    np.savez_compressed(
        Path(path),
        addresses=trace,
        header=np.frombuffer(
            json.dumps(asdict(header)).encode(), dtype=np.uint8
        ),
    )
    return header


def load_trace(
    path: Union[str, Path],
    expect_workload: Union[str, None] = None,
) -> "tuple[np.ndarray, TraceHeader]":
    """Load a trace; optionally validate which workload produced it."""
    with np.load(Path(path)) as data:
        addresses = data["addresses"]
        header_dict = json.loads(bytes(data["header"]).decode())
    if header_dict.get("format_version") != FORMAT_VERSION:
        raise TraceMismatch(
            f"unsupported trace format {header_dict.get('format_version')}"
        )
    header = TraceHeader(**header_dict)
    if expect_workload is not None and header.workload != expect_workload:
        raise TraceMismatch(
            f"trace is from {header.workload!r}, expected {expect_workload!r}"
        )
    if len(addresses) != header.refs:
        raise TraceMismatch("trace length does not match its header")
    return addresses, header
