"""Content-addressed on-disk cache for compiled traces.

Entries live under one directory (``$REPRO_CACHE_DIR`` or
``~/.cache/repro/traces``) as a pair of files per trace::

    <sha256-of-spec>.npy    the packed array (np.save format)
    <sha256-of-spec>.json   sidecar: spec, payload checksum, sizes

The key is the SHA-256 of the canonical-JSON trace spec (workload,
scale, seeds, refs, generator version, dtype — see
:func:`repro.workloads.compile.trace_spec`), the same fingerprint
discipline the run journal applies to configs: identical inputs hash to
the identical entry, and *any* input change — including a
``GENERATOR_VERSION`` bump — lands on a fresh key, so stale entries can
never be returned, only orphaned (``gc`` reclaims them).

Durability and trust rules:

* **Atomic writes.**  Both files are written to a temp name in the
  cache directory, fsync'd, then ``os.replace``d — payload first, then
  the sidecar.  A reader never sees a half-written entry: no sidecar
  means no entry.
* **Verify, then memmap.**  ``load`` re-hashes the payload bytes and
  checks them against the sidecar before handing out
  ``np.load(..., mmap_mode="r")``.  A truncated, bit-flipped or
  unparsable entry is deleted and reported as a miss — rebuilt, never
  trusted.
* **Read-only sharing.**  Loaded entries are read-only memmaps; sweep
  workers forked after the parent's pre-compile pass share the parent's
  mapping copy-on-write (zero-copy), and ``spawn`` workers mapping the
  same file share the OS page cache.  Entries are never mutated in
  place, so a mapping stays valid even if ``gc`` unlinks the file
  underneath it (POSIX keeps the inode alive until unmapped).

The cache is an accelerator, not a correctness layer: with it disabled
(``SimConfig.use_trace_cache=False``, ``--no-trace-cache`` or
``REPRO_TRACE_CACHE=0``) every result is bit-identical, just slower.
An unusable cache directory (read-only home, exotic CI sandbox)
degrades the same way: one warning, then cacheless operation.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.workloads.compile import (
    TRACE_DTYPE,
    CompiledTrace,
    spec_digest,
)

__all__ = ["TraceCache", "cache_for_config", "default_cache_root", "get_cache"]

#: Environment override for the cache directory (the CLI documents it).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Kill switch: ``REPRO_TRACE_CACHE=0`` disables the on-disk cache even
#: where the config enables it (in-memory compilation still happens).
CACHE_ENABLE_ENV = "REPRO_TRACE_CACHE"

#: Sidecar schema version — bump on incompatible sidecar changes.
SIDECAR_VERSION = 1


def default_cache_root() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "traces"


class TraceCache:
    """One cache directory plus per-process counters.

    Counters accumulate over the instance's lifetime: ``hits`` (entry
    verified and memmapped), ``builds`` (entry compiled and stored),
    ``invalidated`` (corrupt entry deleted — each one also shows up as
    a subsequent build).  :meth:`stats` snapshots them for reporting.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.builds = 0
        self.invalidated = 0

    # -- key/path plumbing --------------------------------------------

    def _paths(self, digest: str):
        return self.root / f"{digest}.npy", self.root / f"{digest}.json"

    def stats(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "hits": self.hits,
            "builds": self.builds,
            "invalidated": self.invalidated,
        }

    # -- read side ----------------------------------------------------

    def get(self, spec: Dict[str, object]) -> Optional[CompiledTrace]:
        """Verified load of one entry, or None (missing or corrupt).

        Corrupt entries — torn sidecar, wrong length, checksum
        mismatch, unloadable payload, alien dtype — are unlinked and
        counted in ``invalidated`` so the caller rebuilds from source.
        """
        digest = spec_digest(spec)
        npy_path, meta_path = self._paths(digest)
        if not meta_path.exists():
            return None
        if not npy_path.exists():
            # A sidecar whose payload is gone is what a concurrent
            # ``gc`` looks like mid-unlink (payload first, sidecar
            # next): a plain miss, not corruption — the other process
            # is already cleaning up, and a rebuild re-stores both.
            return None
        try:
            meta = json.loads(meta_path.read_text())
        except FileNotFoundError:
            return None  # entry vanished between exists() and read
        except (OSError, ValueError):
            return self._invalidate(digest)
        if (
            meta.get("sidecar_version") != SIDECAR_VERSION
            or meta.get("digest") != digest
        ):
            return self._invalidate(digest)
        try:
            blob = npy_path.read_bytes()
        except FileNotFoundError:
            return None  # concurrent gc beat us to the payload
        except OSError:
            return self._invalidate(digest)
        if (
            len(blob) != meta.get("nbytes")
            or hashlib.sha256(blob).hexdigest() != meta.get("sha256")
        ):
            return self._invalidate(digest)
        try:
            packed = np.load(npy_path, mmap_mode="r")
        except Exception:
            return self._invalidate(digest)
        if packed.dtype != TRACE_DTYPE or packed.ndim != 1:
            return self._invalidate(digest)
        self.hits += 1
        return CompiledTrace(packed, spec, source="cache")

    def _invalidate(self, digest: str) -> None:
        self.invalidated += 1
        for path in self._paths(digest):
            try:
                path.unlink()
            except OSError:
                pass
        return None

    # -- write side ---------------------------------------------------

    def store(self, spec: Dict[str, object], packed: np.ndarray) -> CompiledTrace:
        """Atomically persist one compiled trace; returns it wrapped.

        A cache that cannot write (full or read-only filesystem) warns
        once per process and degrades to in-memory operation — the
        sweep's numbers never depend on the cache.
        """
        digest = spec_digest(spec)
        npy_path, meta_path = self._paths(digest)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp_npy = self.root / f".{digest}.{os.getpid()}.npy.tmp"
            with open(tmp_npy, "wb") as fh:
                np.save(fh, packed)
                fh.flush()
                os.fsync(fh.fileno())
            blob = tmp_npy.read_bytes()
            meta = {
                "sidecar_version": SIDECAR_VERSION,
                "digest": digest,
                "spec": spec,
                "refs": int(len(packed)),
                "nbytes": len(blob),
                "sha256": hashlib.sha256(blob).hexdigest(),
                "created": time.time(),
            }
            tmp_meta = self.root / f".{digest}.{os.getpid()}.json.tmp"
            with open(tmp_meta, "w") as fh:
                json.dump(meta, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            # Payload lands before the sidecar: an entry with a sidecar
            # always has its payload (the reverse half-state is just a
            # miss).
            os.replace(tmp_npy, npy_path)
            os.replace(tmp_meta, meta_path)
        except OSError as exc:
            _warn_once(f"trace cache unusable at {self.root}: {exc}")
        self.builds += 1
        return CompiledTrace(packed, spec, source="built")

    def load_or_build(
        self,
        spec: Dict[str, object],
        build_fn: Callable[[], np.ndarray],
    ) -> CompiledTrace:
        compiled = self.get(spec)
        if compiled is not None:
            return compiled
        return self.store(spec, build_fn())

    # -- maintenance (the ``repro cache`` subcommand) -----------------

    def _scan(self, pattern: str) -> List[Path]:
        """``glob`` that tolerates the directory (or entries in it)
        vanishing mid-scan — another process's ``gc`` racing ours must
        look like an empty result, not a FileNotFoundError.  (Python
        3.12 made ``Path.glob`` swallow this itself; we support
        older interpreters.)"""
        found: List[Path] = []
        try:
            for path in self.root.glob(pattern):
                found.append(path)
        except OSError:
            pass
        return found

    def entries(self) -> List[Dict[str, object]]:
        """Sidecar summaries of every entry, newest first."""
        rows = []
        if not self.root.is_dir():
            return rows
        for meta_path in sorted(self._scan("*.json")):
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError):
                continue
            spec = meta.get("spec", {})
            rows.append(
                {
                    "digest": meta.get("digest", meta_path.stem),
                    "workload": spec.get("workload", "?"),
                    "num_refs": spec.get("num_refs", 0),
                    "trace_seed": spec.get("trace_seed", 0),
                    "scale": spec.get("scale", 0),
                    "generator_version": spec.get("generator_version", 0),
                    "nbytes": meta.get("nbytes", 0),
                    "created": meta.get("created", 0.0),
                }
            )
        rows.sort(key=lambda r: r["created"], reverse=True)
        return rows

    @staticmethod
    def _unlink_quietly(path: Path) -> "tuple[bool, int]":
        """Unlink ``path`` if it still exists; returns (removed, bytes
        reclaimed).  An entry vanishing between the scan and the unlink
        (concurrent ``gc``, a sweep invalidating a corrupt entry) is a
        no-op, never an error — and is not counted as *our* removal."""
        try:
            size = path.stat().st_size
        except OSError:
            return False, 0
        try:
            path.unlink()
        except OSError:
            return False, 0
        return True, size

    def gc(self) -> Dict[str, int]:
        """Delete every entry (plus orphaned payloads and stale temp
        files); returns {"entries": n, "bytes": reclaimed}.

        Safe to run concurrently with sweeps and with other ``gc``
        invocations: files vanishing mid-scan are skipped, and the
        returned counts cover only what *this* call actually removed.
        """
        removed = 0
        reclaimed = 0
        if not self.root.is_dir():
            return {"entries": 0, "bytes": 0}
        for meta_path in self._scan("*.json"):
            npy_path = meta_path.with_suffix(".npy")
            _, payload_bytes = self._unlink_quietly(npy_path)
            reclaimed += payload_bytes
            # The sidecar is the entry: it exists iff the entry does,
            # so it alone drives the removed count.
            was_entry, sidecar_bytes = self._unlink_quietly(meta_path)
            reclaimed += sidecar_bytes
            if was_entry:
                removed += 1
        for stray in self._scan("*.npy") + self._scan(".*.tmp"):
            _, stray_bytes = self._unlink_quietly(stray)
            reclaimed += stray_bytes
        return {"entries": removed, "bytes": reclaimed}


_WARNED: set = set()


def _warn_once(message: str) -> None:
    if message not in _WARNED:
        _WARNED.add(message)
        print(f"repro: warning: {message}", file=sys.stderr)


#: One TraceCache per resolved directory per process, so counters
#: aggregate naturally across a sweep's compile/load calls.
_CACHES: Dict[Path, TraceCache] = {}


def get_cache(root: Union[str, Path, None] = None) -> TraceCache:
    path = Path(root) if root is not None else default_cache_root()
    cache = _CACHES.get(path)
    if cache is None:
        cache = TraceCache(path)
        _CACHES[path] = cache
    return cache


def cache_for_config(config) -> Optional[TraceCache]:
    """The cache a run under ``config`` should use, or None.

    None when the config opts out (``use_trace_cache=False``) or the
    ``REPRO_TRACE_CACHE=0`` kill switch is set; the compiler then runs
    purely in memory.
    """
    if not getattr(config, "use_trace_cache", True):
        return None
    if os.environ.get(CACHE_ENABLE_ENV, "").strip().lower() in (
        "0",
        "false",
        "no",
        "off",
    ):
        return None
    return get_cache(getattr(config, "trace_cache_dir", None))
