"""graphBIG-style graph kernels as memory-access trace generators
(section 6.2: BFS, DFS, CC, DC, PR, SSSP over a Kronecker graph).

Each kernel walks the CSR arrays the way the real benchmark does and
records the virtual addresses it touches: the offsets array (streamed),
the edge array (sequential bursts per vertex), and per-vertex property
arrays (the random component that destroys TLB locality).  The arrays
use a 64-byte element stride, as graphBIG's property structs do, which
also makes the scaled footprint land on the paper's ratios.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.workloads.kronecker import CSRGraph
from repro.workloads.layout import ArrayRef

GRAPH_KERNELS = ("bfs", "dfs", "cc", "dc", "pr", "sssp")


class GraphTracer:
    """Generates access traces for one kernel over one graph."""

    def __init__(
        self,
        graph: CSRGraph,
        offsets_ref: ArrayRef,
        edges_ref: ArrayRef,
        props_ref: ArrayRef,
        seed: int = 0,
    ):
        self.graph = graph
        self.offsets_ref = offsets_ref
        self.edges_ref = edges_ref
        self.props_ref = props_ref
        self.seed = seed

    # -- helpers -------------------------------------------------------
    def _vertex_block(self, vertices: np.ndarray) -> np.ndarray:
        """Accesses for processing a batch of vertices, in true program
        order: per vertex, its offsets read, then alternating edge-array
        and neighbour-property reads for each of its edges."""
        g = self.graph
        starts = g.offsets[vertices]
        stops = g.offsets[vertices + 1]
        degrees = (stops - starts).astype(np.int64)
        total_edges = int(degrees.sum())
        num_v = len(vertices)
        out = np.empty(num_v + 2 * total_edges, dtype=np.int64)
        cum = np.cumsum(degrees) - degrees  # edges before each vertex
        vertex_pos = np.arange(num_v, dtype=np.int64) + 2 * cum
        out[vertex_pos] = self.offsets_ref.va_of(vertices)
        if total_edges > 0:
            base = np.repeat(starts, degrees)
            within = np.arange(total_edges, dtype=np.int64) - np.repeat(cum, degrees)
            edge_idx = base + within
            neighbors = g.edges[edge_idx].astype(np.int64)
            edge_pos = np.repeat(vertex_pos + 1, degrees) + 2 * within
            out[edge_pos] = self.edges_ref.va_of(edge_idx)
            out[edge_pos + 1] = self.props_ref.va_of(neighbors)
        return out

    # -- kernels ----------------------------------------------------------
    def trace(self, kernel: str, num_refs: int) -> np.ndarray:
        if kernel not in GRAPH_KERNELS:
            raise ValueError(f"unknown graph kernel {kernel!r}")
        return getattr(self, f"_trace_{kernel}")(num_refs)

    def _trace_bfs(self, num_refs: int) -> np.ndarray:
        g = self.graph
        rng = np.random.default_rng(self.seed)
        visited = np.zeros(g.num_vertices, dtype=bool)
        out: List[np.ndarray] = []
        count = 0
        frontier = np.array([rng.integers(g.num_vertices)], dtype=np.int64)
        visited[frontier] = True
        while count < num_refs:
            if len(frontier) == 0:
                # Disconnected remainder: restart from an unvisited seed.
                pending = np.flatnonzero(~visited)
                if len(pending) == 0:
                    break
                frontier = pending[:1].astype(np.int64)
                visited[frontier] = True
            chunk = self._vertex_block(frontier)
            out.append(chunk)
            count += len(chunk)
            starts = g.offsets[frontier]
            stops = g.offsets[frontier + 1]
            degrees = (stops - starts).astype(np.int64)
            base = np.repeat(starts, degrees)
            within = np.arange(int(degrees.sum()), dtype=np.int64) - np.repeat(
                np.cumsum(degrees) - degrees, degrees
            )
            neighbors = g.edges[base + within].astype(np.int64)
            fresh = neighbors[~visited[neighbors]]
            fresh = np.unique(fresh)
            visited[fresh] = True
            frontier = fresh
        return np.concatenate(out)[:num_refs] if out else np.empty(0, np.int64)

    def _trace_dfs(self, num_refs: int) -> np.ndarray:
        g = self.graph
        rng = np.random.default_rng(self.seed)
        visited = np.zeros(g.num_vertices, dtype=bool)
        out: List[int] = []
        stack = [int(rng.integers(g.num_vertices))]
        while stack and len(out) < num_refs:
            v = stack.pop()
            if visited[v]:
                continue
            visited[v] = True
            out.append(self.offsets_ref.va_of(v))
            lo, hi = int(g.offsets[v]), int(g.offsets[v + 1])
            for e in range(lo, hi):
                out.append(self.edges_ref.va_of(e))
                n = int(g.edges[e])
                out.append(self.props_ref.va_of(n))
                if not visited[n]:
                    stack.append(n)
            if not stack:
                pending = np.flatnonzero(~visited)
                if len(pending):
                    stack.append(int(pending[0]))
        return np.array(out[:num_refs], dtype=np.int64)

    def _sequential_sweep(
        self, num_refs: int, edge_fraction: float = 1.0, own_prop: bool = False
    ) -> np.ndarray:
        """Vertex-order iteration (PR/CC/DC style): offsets stream, edge
        bursts, and random neighbour-property accesses.

        ``edge_fraction`` < 1 models kernels that skip part of each edge
        list (converged CC components); ``own_prop`` adds a per-vertex
        write to the vertex's own property (PageRank's rank update).
        """
        g = self.graph
        out: List[np.ndarray] = []
        count = 0
        batch = 4096
        v = 0
        rng = np.random.default_rng(self.seed + 7)
        while count < num_refs:
            vertices = np.arange(v, min(v + batch, g.num_vertices), dtype=np.int64)
            if len(vertices) == 0:
                v = 0
                continue
            chunk = self._vertex_block(vertices)
            if edge_fraction < 1.0:
                keep = rng.random(len(chunk)) < edge_fraction
                # Always keep the per-vertex offsets accesses.
                chunk = chunk[keep]
            if own_prop:
                own = self.props_ref.va_of(vertices)
                chunk = np.concatenate([chunk, own])
            out.append(chunk)
            count += len(chunk)
            v += batch
            if v >= g.num_vertices:
                v = 0
        return np.concatenate(out)[:num_refs]

    def _trace_pr(self, num_refs: int) -> np.ndarray:
        # PageRank: full edge sweep plus a rank write per vertex.
        return self._sequential_sweep(num_refs, own_prop=True)

    def _trace_cc(self, num_refs: int) -> np.ndarray:
        # Label propagation: converged regions skip part of each list.
        return self._sequential_sweep(num_refs, edge_fraction=0.7)

    def _trace_dc(self, num_refs: int) -> np.ndarray:
        # Degree centrality: one pass streaming the edge lists while
        # scattering in-degree increments over props[dst] — the edge
        # stream is sequential, the increments are random.
        return self._sequential_sweep(num_refs)

    def _trace_sssp(self, num_refs: int) -> np.ndarray:
        # Bellman-Ford-flavoured: BFS-like wavefronts with an extra
        # distance-array access per relaxed edge.
        bfs = self._trace_bfs(num_refs)
        rng = np.random.default_rng(self.seed + 1)
        extra = self.props_ref.va_of(
            rng.integers(0, self.graph.num_vertices, size=len(bfs) // 3)
        )
        merged = np.empty(len(bfs) + len(extra), dtype=np.int64)
        merged[: len(bfs)] = bfs
        merged[len(bfs):] = extra
        # Interleave deterministically by permutation.
        perm = rng.permutation(len(merged))
        return merged[perm][:num_refs]
