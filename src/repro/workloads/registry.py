"""The evaluation workload suite (paper section 6.2).

Nine workloads: six graphBIG kernels over a Kronecker graph (75 GB),
GUPS (HPC Challenge random access), MUMmer (BioBench, 20 GB) and
memcached (124 GB), plus four production-shaped address spaces
("Workload 1-4") used only by the Figure 2 regularity study.

Footprints are scaled down by ``FOOTPRINT_SCALE`` (default 64) so the
suite runs on one machine while keeping page-table working sets far
beyond TLB and walk-cache reach — the regime the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.kernel.aslr import ASLRLayout
from repro.kernel.vma import VMA
from repro.types import BASE_PAGE_SIZE, Permission
from repro.workloads.address_space import (
    BuiltAddressSpace,
    SegmentSpec,
    build_address_space,
)
from repro.workloads.allocator import JEMALLOC, AllocatorModel
from repro.workloads.graph import GRAPH_KERNELS, GraphTracer
from repro.workloads.gups import gups_trace
from repro.workloads.kronecker import CSRGraph, kronecker_graph
from repro.workloads.layout import ArrayRef, HeapLayout, PagePool
from repro.workloads.memcached import memcached_trace
from repro.workloads.mummer import mummer_trace

FOOTPRINT_SCALE = 64
ELEMENT_STRIDE = 64  # bytes per logical element in workload arrays

GB = 1 << 30


@dataclass(frozen=True)
class WorkloadInfo:
    """Static description of one suite workload."""

    name: str
    paper_footprint_bytes: int
    kind: str  # graph / gups / memcached / mummer / production
    instructions_per_ref: float
    description: str


WORKLOADS: Dict[str, WorkloadInfo] = {
    **{
        kernel: WorkloadInfo(
            kernel, 75 * GB, "graph", 5.0,
            f"graphBIG {kernel.upper()} over a Kronecker graph",
        )
        for kernel in GRAPH_KERNELS
    },
    "gups": WorkloadInfo(
        "gups", 64 * GB, "gups", 2.5, "HPC Challenge random access"
    ),
    "mem$": WorkloadInfo(
        "mem$", 124 * GB, "memcached", 6.0, "memcached in-memory KV store"
    ),
    "MUMr": WorkloadInfo(
        "MUMr", 20 * GB, "mummer", 4.0, "MUMmer DNA sequence alignment"
    ),
}

#: Figure 2 additionally reports four Meta production workloads.
PRODUCTION_WORKLOADS: Dict[str, WorkloadInfo] = {
    f"prod{i}": WorkloadInfo(
        f"prod{i}", 48 * GB, "production", 5.0, f"Meta production workload {i}"
    )
    for i in range(1, 5)
}

SUITE = list(WORKLOADS)


@dataclass
class BuiltWorkload:
    """A constructed workload: VMAs plus its trace generator."""

    info: WorkloadInfo
    space: BuiltAddressSpace
    trace_fn: Callable[[int, int], np.ndarray] = field(repr=False, default=None)
    # Build identity, recorded by ``build_workload``: together with the
    # workload name and a (num_refs, trace_seed) pair these fully key a
    # generated trace — the trace compiler hashes them into its
    # content-addressed cache key (repro/workloads/trace_cache.py).
    # None for hand-constructed instances, which then skip the on-disk
    # cache (an unkeyed entry could alias a real one).
    scale: Optional[int] = None
    seed: Optional[int] = None
    # (num_refs, seed) -> generated trace.  One BuiltWorkload is shared
    # by every (scheme, thp) run of a sweep, and the generators are
    # pure functions of (num_refs, seed), so the 8+ runs per workload
    # regenerate identical arrays — memoize instead.  The instance is
    # already keyed by (name, scale, workload seed) at build time,
    # completing the cache key.
    _trace_cache: Dict[tuple, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )
    # (num_refs, seed) -> CompiledTrace: the packed-array counterpart,
    # shared by every run of a sweep (see repro/workloads/compile.py).
    _packed_cache: Dict[tuple, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def vmas(self) -> List[VMA]:
        return self.space.vmas

    def trace(self, num_refs: int, seed: int = 0) -> np.ndarray:
        if self.trace_fn is None:
            raise ValueError(f"{self.info.name} has no trace generator")
        key = (num_refs, seed)
        cached = self._trace_cache.get(key)
        if cached is None:
            cached = self.trace_fn(num_refs, seed)
            # Consumers only read traces; freeze the shared array so an
            # accidental in-place edit cannot poison later runs.
            cached.setflags(write=False)
            self._trace_cache[key] = cached
        return cached


# ---------------------------------------------------------------------------
# Common scaffolding
# ---------------------------------------------------------------------------

def _common_segments(aux_pages: int, hole_fraction: float, hole_max: int = 6):
    """Text/data/stack plus an allocator-churned metadata arena; the
    churn arena carries the workload's gap>1 transitions (Figure 2)."""
    return [
        SegmentSpec("text", "text", 1024, perms=Permission.RX, file_backed=True),
        SegmentSpec("data", "data", 512),
        SegmentSpec(
            "churn", "mmap", aux_pages, hole_fraction=hole_fraction,
            hole_max=hole_max,
        ),
        SegmentSpec("stack", "stack", 2048),
    ]


def _heap_spec(pages: int) -> SegmentSpec:
    return SegmentSpec("heap", "heap", pages)


def _heap_base(space: BuiltAddressSpace) -> int:
    return space.segment_base_vpn["heap"]


_GRAPH_CACHE: Dict[tuple, CSRGraph] = {}


def _graph_for(scale_bits: int, seed: int) -> CSRGraph:
    key = (scale_bits, seed)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = kronecker_graph(scale_bits, edge_factor=8, seed=seed)
    return _GRAPH_CACHE[key]


# ---------------------------------------------------------------------------
# Builders per workload kind
# ---------------------------------------------------------------------------

#: graphBIG vertex property structs (vertex objects, STL containers,
#: per-vertex algorithm state) are far larger than an edge record; a
#: 1 KB-per-vertex property region makes the randomly-accessed surface
#: span most of the footprint, as in the real 75 GB runs.  CSR offsets
#: and edge records use their natural 8-byte layout.
PROPS_STRIDE = 1024
CSR_STRIDE = 8


def _build_graph(
    info: WorkloadInfo, scale: int, seed: int, allocator: AllocatorModel
) -> BuiltWorkload:
    footprint = info.paper_footprint_bytes // scale
    # Bytes per vertex: offsets entry + property struct + ~16 edge
    # records (edge factor 8, symmetrized).
    per_vertex = CSR_STRIDE + PROPS_STRIDE + 16 * CSR_STRIDE
    n_vertices = max(1 << 14, 1 << int(np.log2(footprint / per_vertex)))
    graph = _graph_for(int(np.log2(n_vertices)), seed)
    aux_pages = footprint // BASE_PAGE_SIZE // 20
    layout_pages = (
        (graph.num_vertices + 1 + graph.num_edges) * CSR_STRIDE
        + graph.num_vertices * PROPS_STRIDE
    ) // BASE_PAGE_SIZE
    specs = _common_segments(aux_pages, hole_fraction=0.25) + [
        _heap_spec(layout_pages + 16)
    ]
    space = build_address_space(specs, ASLRLayout(seed=seed), allocator, seed)
    heap = HeapLayout(_heap_base(space))
    offsets_ref = heap.add_array("offsets", graph.num_vertices + 1, CSR_STRIDE)
    props_ref = heap.add_array("props", graph.num_vertices, PROPS_STRIDE)
    edges_ref = heap.add_array("edges", graph.num_edges, CSR_STRIDE)

    def trace_fn(num_refs: int, trace_seed: int) -> np.ndarray:
        tracer = GraphTracer(graph, offsets_ref, edges_ref, props_ref, trace_seed)
        return tracer.trace(info.name, num_refs)

    return BuiltWorkload(info, space, trace_fn)


def _build_gups(
    info: WorkloadInfo, scale: int, seed: int, allocator: AllocatorModel
) -> BuiltWorkload:
    footprint = info.paper_footprint_bytes // scale
    table_pages = footprint // BASE_PAGE_SIZE
    specs = _common_segments(table_pages // 50, hole_fraction=0.1) + [
        _heap_spec(table_pages)
    ]
    space = build_address_space(specs, ASLRLayout(seed=seed), allocator, seed)
    heap = HeapLayout(_heap_base(space))
    table = heap.add_array(
        "table", table_pages * (BASE_PAGE_SIZE // ELEMENT_STRIDE), ELEMENT_STRIDE
    )

    def trace_fn(num_refs: int, trace_seed: int) -> np.ndarray:
        return gups_trace(table, num_refs, trace_seed)

    return BuiltWorkload(info, space, trace_fn)


def _build_memcached(
    info: WorkloadInfo, scale: int, seed: int, allocator: AllocatorModel
) -> BuiltWorkload:
    footprint = info.paper_footprint_bytes // scale
    slab_pages = int(footprint // BASE_PAGE_SIZE * 0.92)
    hash_pages = int(footprint // BASE_PAGE_SIZE * 0.05)
    aux = footprint // BASE_PAGE_SIZE // 12
    specs = _common_segments(aux, hole_fraction=0.45, hole_max=4) + [
        _heap_spec(hash_pages),
        SegmentSpec("slabs", "mmap", slab_pages),
    ]
    space = build_address_space(specs, ASLRLayout(seed=seed), allocator, seed)
    heap = HeapLayout(_heap_base(space))
    hash_ref = heap.add_array(
        "hash", hash_pages * (BASE_PAGE_SIZE // 8), 8
    )
    slab_ref = ArrayRef(
        "slabs",
        space.segment_base_vpn["slabs"] * BASE_PAGE_SIZE,
        slab_pages * BASE_PAGE_SIZE,
        ELEMENT_STRIDE,
    )

    def trace_fn(num_refs: int, trace_seed: int) -> np.ndarray:
        return memcached_trace(hash_ref, slab_ref, num_refs, trace_seed)

    return BuiltWorkload(info, space, trace_fn)


def _build_mummer(
    info: WorkloadInfo, scale: int, seed: int, allocator: AllocatorModel
) -> BuiltWorkload:
    footprint = info.paper_footprint_bytes // scale
    pages = footprint // BASE_PAGE_SIZE
    ref_pages = pages // 4
    query_pages = pages // 10
    tree_pages = pages - ref_pages - query_pages
    # The suffix tree is built from many node allocations: it carries
    # heavy allocator churn — MUMmer is the paper's least regular space.
    specs = [
        SegmentSpec("text", "text", 1024, perms=Permission.RX, file_backed=True),
        SegmentSpec("data", "data", 512),
        SegmentSpec("reference", "heap", ref_pages),
        SegmentSpec("query", "heap", query_pages),
        SegmentSpec("tree", "mmap", tree_pages, hole_fraction=0.30, hole_max=6),
        SegmentSpec("stack", "stack", 2048),
    ]
    space = build_address_space(specs, ASLRLayout(seed=seed), allocator, seed)
    ref_arr = ArrayRef(
        "reference",
        space.segment_base_vpn["reference"] * BASE_PAGE_SIZE,
        ref_pages * BASE_PAGE_SIZE,
        8,
    )
    query_arr = ArrayRef(
        "query",
        space.segment_base_vpn["query"] * BASE_PAGE_SIZE,
        query_pages * BASE_PAGE_SIZE,
        8,
    )
    tree_vpns = np.concatenate(
        [
            np.arange(v.start_vpn, v.end_vpn)
            for v in space.vmas
            if v.name == "tree"
        ]
    )
    tree_pool = PagePool(tree_vpns, ELEMENT_STRIDE)

    def trace_fn(num_refs: int, trace_seed: int) -> np.ndarray:
        return mummer_trace(ref_arr, tree_pool, query_arr, num_refs, trace_seed)

    return BuiltWorkload(info, space, trace_fn)


def _build_production(
    info: WorkloadInfo, scale: int, seed: int, allocator: AllocatorModel
) -> BuiltWorkload:
    """Production-shaped address space (Figure 2's Workload 1-4): many
    arenas with moderate churn; traces are zipf over the arenas."""
    footprint = info.paper_footprint_bytes // scale
    pages = footprint // BASE_PAGE_SIZE
    idx = int(info.name[-1])
    churn = [0.10, 0.16, 0.22, 0.07][idx - 1]
    num_arenas = [6, 10, 4, 8][idx - 1]
    specs = _common_segments(pages // 16, hole_fraction=churn * 2) + [
        SegmentSpec(
            f"arena{i}", "mmap", pages // num_arenas, hole_fraction=churn,
            hole_max=8,
        )
        for i in range(num_arenas)
    ]
    space = build_address_space(specs, ASLRLayout(seed=seed + idx), allocator, seed)
    arena_vpns = np.concatenate(
        [
            np.arange(v.start_vpn, v.end_vpn)
            for v in space.vmas
            if v.name.startswith("arena")
        ]
    )
    pool = PagePool(arena_vpns, ELEMENT_STRIDE)

    def trace_fn(num_refs: int, trace_seed: int) -> np.ndarray:
        rng = np.random.default_rng(trace_seed)
        return pool.va_of(rng.integers(0, pool.num_elements, size=num_refs))

    return BuiltWorkload(info, space, trace_fn)


_BUILDERS = {
    "graph": _build_graph,
    "gups": _build_gups,
    "memcached": _build_memcached,
    "mummer": _build_mummer,
    "production": _build_production,
}


def build_workload(
    name: str,
    scale: int = FOOTPRINT_SCALE,
    seed: int = 0,
    allocator: AllocatorModel = JEMALLOC,
    footprint_override: Optional[int] = None,
) -> BuiltWorkload:
    """Construct one workload's address space and trace generator.

    ``scale`` divides the paper footprint; ``footprint_override``
    replaces the paper footprint entirely (used by the memcached
    scaling study of section 7.3).
    """
    info = WORKLOADS.get(name) or PRODUCTION_WORKLOADS.get(name)
    if info is None:
        raise KeyError(
            f"unknown workload {name!r}; choose from "
            f"{SUITE + list(PRODUCTION_WORKLOADS)}"
        )
    if footprint_override is not None:
        info = WorkloadInfo(
            info.name, footprint_override, info.kind,
            info.instructions_per_ref, info.description,
        )
    built = _BUILDERS[info.kind](info, scale, seed, allocator)
    # A footprint override or non-default allocator changes the
    # generated addresses without showing up in (name, scale, seed):
    # such workloads must not key into the shared on-disk trace cache.
    if footprint_override is None and allocator is JEMALLOC:
        built.scale = scale
        built.seed = seed
    return built
