"""Userspace allocator models (paper section 3.1).

The paper attributes virtual-address-space regularity largely to
userspace allocators: they pack allocations densely, reuse holes, and
buffer application free patterns so the OS-visible mapping stream stays
contiguous.  We model two allocator families the paper evaluates —
jemalloc (chunk/run based) and tcmalloc (span based) — as generators of
the *mapped-page layout* of a segment: long runs of contiguous pages
separated by small holes whose frequency and size depend on the
allocator and the workload's churn.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class AllocatorModel:
    """Hole statistics an allocator leaves in a segment's page layout.

    ``hole_fraction`` is the probability that the next mapped run ends
    in a hole (equivalently ~the fraction of consecutive-page pairs
    with gap > 1); ``hole_max`` bounds hole size in pages.
    """

    name: str
    hole_fraction: float
    hole_max: int

    #: Fraction of holes that deviate from the allocator's regular
    #: size-class pattern (freed odd-size objects, mmap alignment).
    #: Kept small: the paper's Table 2 index sizes (~112 B) imply real
    #: address spaces resolve into a handful of linear pieces.
    jitter: float = 0.003

    def layout_runs(
        self, total_pages: int, base_vpn: int, seed: int = 0
    ) -> List[Tuple[int, int]]:
        """Produce (start_vpn, pages) runs totalling ``total_pages``
        mapped pages starting at ``base_vpn``.

        Holes follow the allocator's *regular* size-class pattern: a
        fixed-size hole (chunk headers, run metadata, alignment pad)
        after every fixed-length run, with occasional jittered holes.
        Regular spacing is why learned indexes work on these spaces —
        the CDF stays linear with a reduced slope — and it is what the
        paper observes: allocators "pack allocations closely together".
        """
        if total_pages <= 0:
            return []
        if self.hole_fraction <= 0.0:
            return [(base_vpn, total_pages)]
        rng = random.Random(seed)
        runs: List[Tuple[int, int]] = []
        vpn = base_vpn
        remaining = total_pages
        run_len = max(1, int(round(1.0 / self.hole_fraction)))
        hole_len = max(1, self.hole_max // 2)
        while remaining > 0:
            if rng.random() < self.jitter:
                run = min(remaining, max(1, int(run_len * (0.5 + rng.random()))))
                hole = rng.randint(1, self.hole_max)
            else:
                run = min(remaining, run_len)
                hole = hole_len
            runs.append((vpn, run))
            remaining -= run
            vpn += run + hole
        return runs


#: jemalloc: 2 MB-aligned chunks, dense runs; holes are rare and small.
JEMALLOC = AllocatorModel("jemalloc", hole_fraction=0.004, hole_max=8, jitter=0.003)

#: tcmalloc: span-based; marginally different hole statistics.  The
#: paper finds "regularity remains practically the same" across the two.
TCMALLOC = AllocatorModel("tcmalloc", hole_fraction=0.006, hole_max=12, jitter=0.006)

ALLOCATORS = {"jemalloc": JEMALLOC, "tcmalloc": TCMALLOC}


def gap_coverage_of_runs(runs: List[Tuple[int, int]]) -> float:
    """Figure 2's metric computed directly over a run layout."""
    total = 0
    matching = 0
    prev_end = None
    for start, pages in runs:
        if pages > 1:
            total += pages - 1
            matching += pages - 1
        if prev_end is not None:
            total += 1
            if start - prev_end == 1:
                matching += 1
        prev_end = start + pages - 1
    return matching / total if total else 1.0
