"""Heap/arena layout helpers for the workload builders.

Workloads place their data structures (CSR arrays, hash tables, slabs)
inside large VMAs.  ``HeapLayout`` hands out virtually-contiguous array
regions inside one segment — exactly what userspace allocators do for
large objects, and the root cause of the address-space regularity the
paper measures (section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.types import BASE_PAGE_SIZE, align_up


@dataclass(frozen=True)
class ArrayRef:
    """A named, virtually contiguous array placed in the heap."""

    name: str
    base_va: int
    nbytes: int
    stride: int

    def va_of(self, index) -> int:
        """VA of element ``index`` (scalar or numpy array)."""
        return self.base_va + index * self.stride

    @property
    def num_elements(self) -> int:
        return self.nbytes // self.stride

    @property
    def pages(self) -> int:
        return align_up(self.nbytes, BASE_PAGE_SIZE) // BASE_PAGE_SIZE


class HeapLayout:
    """Sequential array placement inside one virtual segment."""

    def __init__(self, base_vpn: int):
        self.base_vpn = base_vpn
        self._cursor_va = base_vpn * BASE_PAGE_SIZE
        self.arrays: List[ArrayRef] = []

    def add_array(self, name: str, num_elements: int, stride: int) -> ArrayRef:
        nbytes = num_elements * stride
        ref = ArrayRef(name, self._cursor_va, nbytes, stride)
        self.arrays.append(ref)
        # Page-align the next array, as large allocations are.
        self._cursor_va = align_up(self._cursor_va + nbytes, BASE_PAGE_SIZE)
        return ref

    @property
    def total_pages(self) -> int:
        end_vpn = align_up(self._cursor_va, BASE_PAGE_SIZE) // BASE_PAGE_SIZE
        return end_vpn - self.base_vpn


class PagePool:
    """Array-like view over the mapped pages of hole-riddled segments.

    Segments built by the allocator model are not virtually contiguous;
    trace generators that want "random element in this structure"
    semantics index into the pool, which maps element indexes onto the
    actual mapped pages.  Duck-types ``ArrayRef``'s ``num_elements`` /
    ``va_of`` so generators accept either.
    """

    def __init__(self, vpns, stride: int = 64):
        import numpy as np

        self.vpns = np.asarray(vpns, dtype=np.int64)
        self.stride = stride
        self.per_page = BASE_PAGE_SIZE // stride

    @property
    def num_elements(self) -> int:
        return len(self.vpns) * self.per_page

    def va_of(self, index):
        page = self.vpns[index // self.per_page]
        return page * BASE_PAGE_SIZE + (index % self.per_page) * self.stride
