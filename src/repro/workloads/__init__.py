"""Workload substrate: address-space builders and trace generators."""

from repro.workloads.address_space import (
    BuiltAddressSpace,
    SegmentSpec,
    build_address_space,
)
from repro.workloads.allocator import ALLOCATORS, JEMALLOC, TCMALLOC, AllocatorModel
from repro.workloads.compile import (
    GENERATOR_VERSION,
    TRACE_DTYPE,
    CompiledTrace,
    compiled_trace_for,
    pack_trace,
    trace_spec,
)
from repro.workloads.graph import GRAPH_KERNELS, GraphTracer
from repro.workloads.gups import gups_trace
from repro.workloads.kronecker import CSRGraph, kronecker_graph
from repro.workloads.layout import ArrayRef, HeapLayout, PagePool
from repro.workloads.memcached import memcached_trace, zipf_ranks
from repro.workloads.mummer import mummer_trace
from repro.workloads.trace_cache import (
    TraceCache,
    cache_for_config,
    default_cache_root,
    get_cache,
)
from repro.workloads.tracefile import (
    TraceHeader,
    TraceMismatch,
    load_trace,
    save_trace,
)
from repro.workloads.registry import (
    FOOTPRINT_SCALE,
    PRODUCTION_WORKLOADS,
    SUITE,
    WORKLOADS,
    BuiltWorkload,
    WorkloadInfo,
    build_workload,
)

__all__ = [
    "ALLOCATORS",
    "ArrayRef",
    "BuiltAddressSpace",
    "BuiltWorkload",
    "CSRGraph",
    "CompiledTrace",
    "GENERATOR_VERSION",
    "TRACE_DTYPE",
    "TraceCache",
    "cache_for_config",
    "compiled_trace_for",
    "default_cache_root",
    "get_cache",
    "pack_trace",
    "trace_spec",
    "FOOTPRINT_SCALE",
    "GRAPH_KERNELS",
    "GraphTracer",
    "HeapLayout",
    "JEMALLOC",
    "PRODUCTION_WORKLOADS",
    "PagePool",
    "SUITE",
    "SegmentSpec",
    "TraceHeader",
    "TraceMismatch",
    "TCMALLOC",
    "WORKLOADS",
    "WorkloadInfo",
    "AllocatorModel",
    "build_address_space",
    "build_workload",
    "gups_trace",
    "kronecker_graph",
    "memcached_trace",
    "load_trace",
    "mummer_trace",
    "save_trace",
    "zipf_ranks",
]
