"""Trace compiler: lower a :class:`BuiltWorkload` trace into one packed
NumPy structured array.

The sweep behind every figure replays the same reference traces through
hundreds of (scheme × workload × thp) cells.  The raw generators return
a bare ``int64`` array of virtual addresses; everything else the
consumers need — the VPN for the TLB probe, the access kind, the stride
to the previous reference — used to be recomputed per run.  The
compiler materialises all of it once, in a single contiguous structured
array (:data:`TRACE_DTYPE`), so that:

* the simulator's per-reference loop reads precomputed *column views*
  (``trace.vas`` / ``trace.vpns``) instead of re-deriving the VPN per
  reference;
* the array round-trips losslessly through ``.npy`` on disk
  (:mod:`repro.workloads.trace_cache`), where sweep workers memmap it
  read-only — zero-copy under ``fork``, shared OS page cache under
  ``spawn`` — instead of re-synthesizing the trace per worker.

Identity discipline mirrors the run journal: a compiled trace is fully
described by its *spec* (workload name, footprint scale, workload seed,
reference count, trace seed) plus :data:`GENERATOR_VERSION`, hashed as
canonical JSON.  Bump the version whenever any generator's output
changes; every cached entry is then invalidated at once.

Bit-identity guarantee: the ``va`` column is exactly the array the raw
generator returned, so ``CompiledTrace.vas`` equals the legacy
``trace.tolist()`` element for element — the golden scheme cells are
unchanged through this path (asserted in tests/test_trace_cache.py).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

import numpy as np

from repro.types import BASE_PAGE_SIZE

__all__ = [
    "ACCESS_KIND_CODES",
    "ACCESS_KIND_NAMES",
    "CompiledTrace",
    "GENERATOR_VERSION",
    "TRACE_DTYPE",
    "compiled_trace_for",
    "pack_trace",
    "spec_digest",
    "trace_spec",
]

#: Bump whenever any trace generator's output changes for the same
#: (workload, scale, seeds, refs) inputs — the version is part of every
#: cache key, so a bump invalidates all on-disk entries at once.
GENERATOR_VERSION = 1

_PAGE_SHIFT = BASE_PAGE_SIZE.bit_length() - 1  # 4 KB -> 12

#: One record per memory reference.  Fixed little-endian layout so a
#: cached ``.npy`` entry is byte-stable across hosts:
#:   va     — the generated virtual address (the legacy raw trace);
#:   vpn    — ``va >> 12``, precomputed for the TLB front-index probe;
#:   kind   — access-kind code (:data:`ACCESS_KIND_CODES`);
#:   stride — signed byte delta from the previous reference (0 for the
#:            first), the regularity signal of the Figure 2 study.
TRACE_DTYPE = np.dtype(
    [
        ("va", "<i8"),
        ("vpn", "<i8"),
        ("kind", "u1"),
        ("stride", "<i8"),
    ]
)

#: Access-kind code per workload *kind* (the generators do not tag
#: individual references, so the kind is uniform per trace): graph
#: kernels, MUMmer and the production spaces read; GUPS is the classic
#: read-modify-write update; memcached mixes GET/SET traffic.
ACCESS_KIND_CODES: Dict[str, int] = {
    "graph": 0,
    "mummer": 0,
    "production": 0,
    "gups": 1,
    "memcached": 2,
}
ACCESS_KIND_NAMES = {0: "read", 1: "update", 2: "mixed"}


def _canonical(payload) -> str:
    """Canonical JSON — the same byte-stable form the run journal
    fingerprints with (:mod:`repro.sim.journal`)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


def trace_spec(
    workload: str,
    scale: int,
    workload_seed: int,
    num_refs: int,
    trace_seed: int,
) -> Dict[str, object]:
    """The complete identity of one compiled trace.

    Everything that shapes the generated addresses is here; nothing
    else is (scheme, THP and timing knobs never touch the generators).
    ``dtype`` pins the record layout so a layout change can never alias
    an old entry.
    """
    return {
        "workload": workload,
        "scale": scale,
        "workload_seed": workload_seed,
        "num_refs": num_refs,
        "trace_seed": trace_seed,
        "generator_version": GENERATOR_VERSION,
        # json round-trip normalises the descr tuples to lists so the
        # spec compares equal to its deserialized form.
        "dtype": json.loads(json.dumps(TRACE_DTYPE.descr)),
    }


def spec_digest(spec: Dict[str, object]) -> str:
    """SHA-256 of the canonical-JSON spec — the cache key."""
    return hashlib.sha256(_canonical(spec).encode("utf-8")).hexdigest()


class CompiledTrace:
    """A packed trace plus lazy column views.

    ``packed`` may be an in-memory array (just compiled) or a read-only
    memmap (loaded from the trace cache) — consumers cannot tell the
    difference.  ``vas``/``vpns`` materialise each column once as plain
    Python ints (one C-level ``tolist`` pass, exactly what the legacy
    loop did per run) and are shared by every run of a sweep that
    reuses the trace.
    """

    __slots__ = ("packed", "spec", "source", "_vas", "_vpns", "_va_col", "_vpn_col")

    def __init__(
        self,
        packed: np.ndarray,
        spec: Dict[str, object],
        source: str = "built",
    ):
        self.packed = packed
        self.spec = spec
        #: "built" (compiled in this process) or "cache" (memmapped).
        self.source = source
        self._vas: Optional[List[int]] = None
        self._vpns: Optional[List[int]] = None
        self._va_col: Optional[np.ndarray] = None
        self._vpn_col: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.packed)

    @property
    def vas(self) -> List[int]:
        if self._vas is None:
            self._vas = self.packed["va"].tolist()
        return self._vas

    @property
    def vpns(self) -> List[int]:
        if self._vpns is None:
            self._vpns = self.packed["vpn"].tolist()
        return self._vpns

    @property
    def va_array(self) -> np.ndarray:
        """The raw address column, for consumers of the legacy array
        shape (analysis scripts, the multicore interleaver)."""
        return self.packed["va"]

    @property
    def va_col(self) -> np.ndarray:
        """Contiguous read-only ``int64`` VA column.

        Structured-array field views are strided; whole-array math over
        them forces a copy per operation.  The contiguous column is
        materialised once per trace and shared by every epoch of every
        run (the vectorized engine slices it zero-copy).
        """
        if self._va_col is None:
            col = np.ascontiguousarray(self.packed["va"], dtype=np.int64)
            col.setflags(write=False)
            self._va_col = col
        return self._va_col

    @property
    def vpn_col(self) -> np.ndarray:
        """Contiguous read-only ``int64`` VPN column (see ``va_col``)."""
        if self._vpn_col is None:
            col = np.ascontiguousarray(self.packed["vpn"], dtype=np.int64)
            col.setflags(write=False)
            self._vpn_col = col
        return self._vpn_col

    def epochs(self, epoch: int):
        """Yield (start, stop, va chunk, vpn chunk) in fixed-size
        epochs — the vectorized engine's unit of batch processing.
        Chunks are zero-copy views of the contiguous columns."""
        if epoch <= 0:
            raise ValueError(f"epoch size must be positive, got {epoch!r}")
        va, vpn = self.va_col, self.vpn_col
        for start in range(0, len(self.packed), epoch):
            stop = min(start + epoch, len(self.packed))
            yield start, stop, va[start:stop], vpn[start:stop]


def pack_trace(vas: np.ndarray, kind_code: int) -> np.ndarray:
    """Lower a raw address trace into the packed record layout."""
    vas = np.ascontiguousarray(vas, dtype=np.int64)
    packed = np.empty(len(vas), dtype=TRACE_DTYPE)
    packed["va"] = vas
    packed["vpn"] = vas >> _PAGE_SHIFT
    packed["kind"] = kind_code
    if len(vas):
        packed["stride"][0] = 0
        np.subtract(vas[1:], vas[:-1], out=packed["stride"][1:])
    packed.setflags(write=False)
    return packed


def compiled_trace_for(
    built,
    num_refs: int,
    trace_seed: int,
    cache=None,
) -> CompiledTrace:
    """Compile (or fetch) the packed trace for one built workload.

    The result is memoized on the workload instance, so the 8+ cells
    per workload of a serial sweep share one compiled array and one
    column materialisation.  With a :class:`TraceCache`, a miss stores
    the entry and later processes (or sweeps) memmap it instead of
    re-synthesizing.

    A workload built outside :func:`build_workload` (tests constructing
    :class:`BuiltWorkload` directly) has no (scale, seed) identity; it
    still compiles, but skips the on-disk cache — an unkeyed entry
    could alias a real one.
    """
    memo = getattr(built, "_packed_cache", None)
    key = (num_refs, trace_seed)
    if memo is not None:
        hit = memo.get(key)
        if hit is not None:
            return hit
    kind_code = ACCESS_KIND_CODES.get(built.info.kind, 0)
    scale = getattr(built, "scale", None)
    seed = getattr(built, "seed", None)
    if cache is not None and scale is not None and seed is not None:
        spec = trace_spec(built.info.name, scale, seed, num_refs, trace_seed)
        compiled = cache.load_or_build(
            spec, lambda: pack_trace(built.trace(num_refs, trace_seed), kind_code)
        )
    else:
        spec = trace_spec(built.info.name, -1, -1, num_refs, trace_seed)
        compiled = CompiledTrace(
            pack_trace(built.trace(num_refs, trace_seed), kind_code), spec
        )
    if memo is not None:
        memo[key] = compiled
    return compiled
