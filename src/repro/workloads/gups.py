"""GUPS (Giga-Updates Per Second) from HPC Challenge (section 6.2).

The canonical TLB-killer: random read-modify-write updates scattered
uniformly over one enormous table.  Every access touches a random page,
so TLB and page-walk-cache hit rates collapse — GUPS is the workload
with the paper's highest reported miss rates (over 90%).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.layout import ArrayRef


def gups_trace(
    table: ArrayRef, num_refs: int, seed: int = 0, batch_locality: int = 1
) -> np.ndarray:
    """Uniform random updates over the table.

    ``batch_locality`` > 1 emits that many consecutive-element accesses
    per random jump (HPCC RandomAccess updates small batches), which
    adds cache-line but not page locality.
    """
    rng = np.random.default_rng(seed)
    jumps = -(-num_refs // batch_locality)
    bases = rng.integers(0, table.num_elements - batch_locality + 1, size=jumps)
    if batch_locality == 1:
        return table.va_of(bases)[:num_refs]
    idx = (bases[:, None] + np.arange(batch_locality)[None, :]).reshape(-1)
    return table.va_of(idx)[:num_refs]
