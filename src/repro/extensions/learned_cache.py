"""Future-work prototype (paper section 9): the LVM framework applied
to other hardware structures.

"Such structures often suffer from hash-table-like collisions that
cause conflict misses and reduce hit rates.  By leveraging lightweight
machine learning, the LVM framework offers a promising direction to
mitigate these collisions."

This module is that direction made concrete for a last-level cache: a
*learned set-index* replaces the modulo set mapping.  It reuses the LVM
toolbox verbatim — spline-seeded even division, Q44.20 linear models, a
depth limit — to learn the CDF of the cache's *resident address
distribution* so hot lines spread evenly over the sets.  On skewed
address streams (strided accesses that alias under modulo indexing, or
hot regions hammering a few sets), the learned index removes the
conflict-miss pathology while behaving like modulo on uniform traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.config import LVMConfig
from repro.core.cost_model import predict_array
from repro.core.learned_index import LearnedIndex
from repro.mem.allocator import BumpAllocator
from repro.mmu.cache import Cache
from repro.types import PTE, CACHE_LINE_SIZE


class LearnedSetIndex:
    """A learned mapping from line address to cache set.

    Trained over a sample of the observed line addresses: internal
    machinery is a :class:`LearnedIndex` over "line number" keys whose
    leaf outputs are *positions in the sorted sample*, rescaled to the
    set count — i.e. the same range·CDF(x) construction LVM's nodes
    use (paper section 4.2.1), serving sets instead of PTE slots.
    """

    def __init__(self, num_sets: int, sample: Sequence[int]):
        if not sample:
            raise ValueError("need a non-empty address sample")
        self.num_sets = num_sets
        lines = np.unique(np.asarray(sample, dtype=np.int64) // CACHE_LINE_SIZE)
        # Reuse the index machinery: map each sampled line to a fake
        # "PTE" so leaf models learn the sample's CDF.
        config = LVMConfig()
        self._index = LearnedIndex(BumpAllocator(), config)
        self._index.bulk_build(
            [PTE(vpn=int(line), ppn=i) for i, line in enumerate(lines)]
        )
        self._num_keys = len(lines)
        # Leaf tables are base-normalized (the GPT base absorbs the
        # absolute part); recover global CDF positions by prefix-summing
        # key counts over the leaves in key order.
        from repro.core.nodes import leaf_nodes

        self._leaf_base: Dict[int, int] = {}
        cumulative = 0
        for leaf in sorted(leaf_nodes(self._index.root), key=lambda l: l.lo):
            self._leaf_base[id(leaf)] = cumulative
            cumulative += leaf.num_keys

    def set_of(self, paddr: int) -> int:
        """Set index for an address: range * CDF(line), via the index."""
        line = paddr // CACHE_LINE_SIZE
        position = self._approx_position(line)
        return int(position * self.num_sets // max(1, self._num_keys)) % self.num_sets

    def _approx_position(self, line: int) -> int:
        node = self._index.root
        if node is None:
            return 0
        from repro.core.nodes import InternalNode

        key = self._index.rebaser.rebase(line)
        while isinstance(node, InternalNode):
            node = node.children[node.route(key)]
        eff = key if key >= node.lo else node.lo
        # Leaf slots approximate positions *within* the leaf (ga-
        # scaled); undo the scaling and add the leaf's global base.
        slot = max(0, node.predict_slot(eff))
        position = self._leaf_base.get(id(node), 0) + int(slot / 1.3)
        return min(self._num_keys - 1, position)

    @property
    def model_bytes(self) -> int:
        return self._index.index_size_bytes


class LearnedCache(Cache):
    """A set-associative cache whose set mapping is learned."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        latency: int,
        sample: Sequence[int],
    ):
        super().__init__(name, size_bytes, ways, latency)
        self.set_index = LearnedSetIndex(self.num_sets, sample)

    def _locate(self, paddr: int):
        line = paddr // self.line_size
        return self.set_index.set_of(paddr), line


@dataclass
class ConflictStudy:
    """Miss comparison: modulo vs. learned set indexing."""

    modulo_misses: int
    learned_misses: int
    accesses: int
    model_bytes: int

    @property
    def miss_reduction(self) -> float:
        if self.modulo_misses == 0:
            return 0.0
        return 1.0 - self.learned_misses / self.modulo_misses


def conflict_study(
    trace: Sequence[int],
    size_bytes: int = 64 << 10,
    ways: int = 4,
    sample_fraction: float = 0.2,
) -> ConflictStudy:
    """Run one address trace through both indexings.

    The learned index trains on a prefix sample of the trace (the warm
    phase), as the OS would retrain it periodically from occupancy
    statistics.
    """
    trace = list(trace)
    sample = trace[: max(1, int(len(trace) * sample_fraction))]
    modulo = Cache("modulo", size_bytes, ways, latency=1)
    learned = LearnedCache("learned", size_bytes, ways, latency=1, sample=sample)
    for paddr in trace:
        modulo.access(paddr)
        learned.access(paddr)
    return ConflictStudy(
        modulo_misses=modulo.misses,
        learned_misses=learned.misses,
        accesses=len(trace),
        model_bytes=learned.set_index.model_bytes,
    )


def strided_trace(
    stride_bytes: int, lines: int, repeats: int, base: int = 1 << 20
) -> List[int]:
    """The classic conflict pathology: a power-of-two stride walks a
    working set that fits the cache but aliases onto a few sets."""
    addrs = [base + i * stride_bytes for i in range(lines)]
    return addrs * repeats


def hot_region_trace(
    num_regions: int,
    region_bytes: int,
    accesses: int,
    seed: int = 0,
    region_stride: int = 1 << 20,
) -> List[int]:
    """Hot regions at large power-of-two pitches: every region's lines
    land on the same modulo sets."""
    rng = np.random.default_rng(seed)
    region = rng.integers(0, num_regions, size=accesses)
    offset = rng.integers(0, region_bytes // 64, size=accesses) * 64
    return ((1 << 22) + region * region_stride + offset).tolist()
