"""Section 9 future-work prototypes built on the LVM framework."""

from repro.extensions.learned_cache import (
    ConflictStudy,
    LearnedCache,
    LearnedSetIndex,
    conflict_study,
    hot_region_trace,
    strided_trace,
)

__all__ = [
    "ConflictStudy",
    "LearnedCache",
    "LearnedSetIndex",
    "conflict_study",
    "hot_region_trace",
    "strided_trace",
]
