"""Shared virtual-memory types used across the whole library.

Addresses are plain Python integers interpreted as 64-bit values.  The
canonical translation granule is the 4 KB *base page*: a virtual page
number (VPN) is ``va >> 12`` regardless of the size of the mapping that
covers it.  Larger pages (2 MB, 1 GB) are identified by the VPN of their
first 4 KB sub-page, exactly as LVM trains its index (paper section 4.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.errors import TranslationError

__all__ = [
    "AccessKind",
    "BASE_PAGE_SHIFT",
    "BASE_PAGE_SIZE",
    "CACHE_LINE_SIZE",
    "PTE",
    "PTE_SIZE",
    "PageSize",
    "Permission",
    "TranslationError",
    "WalkAccess",
    "WalkResult",
    "align_down",
    "align_up",
    "va_of",
    "vpn_of",
]

BASE_PAGE_SHIFT = 12
BASE_PAGE_SIZE = 1 << BASE_PAGE_SHIFT
CACHE_LINE_SIZE = 64
PTE_SIZE = 8


class PageSize(enum.IntEnum):
    """Page sizes supported by the translation schemes.

    The integer value is the page size in bytes; ``encode()`` gives the
    2-bit size field stored in LVM translation entries (section 4.4).
    """

    SIZE_4K = 1 << 12
    SIZE_2M = 1 << 21
    SIZE_1G = 1 << 30

    @property
    def shift(self) -> int:
        return self.bit_length() - 1

    @property
    def pages_4k(self) -> int:
        """Number of 4 KB base pages spanned by one page of this size."""
        return self.value >> BASE_PAGE_SHIFT

    def encode(self) -> int:
        """The 2-bit size encoding used inside translation entries."""
        return {PageSize.SIZE_4K: 0, PageSize.SIZE_2M: 1, PageSize.SIZE_1G: 2}[self]

    @staticmethod
    def decode(bits: int) -> "PageSize":
        return (PageSize.SIZE_4K, PageSize.SIZE_2M, PageSize.SIZE_1G)[bits]


def vpn_of(va: int) -> int:
    """Base-page (4 KB) virtual page number of a virtual address."""
    return va >> BASE_PAGE_SHIFT


def va_of(vpn: int) -> int:
    """First virtual address covered by a base-page VPN."""
    return vpn << BASE_PAGE_SHIFT


def align_down(value: int, alignment: int) -> int:
    return value - (value % alignment)


def align_up(value: int, alignment: int) -> int:
    return align_down(value + alignment - 1, alignment)


class Permission(enum.IntFlag):
    """POSIX-style mapping permissions carried by PTEs and VMAs."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXEC = 4
    RW = READ | WRITE
    RX = READ | EXEC
    RWX = READ | WRITE | EXEC


@dataclass
class PTE:
    """A page-table entry: one virtual-to-physical translation.

    ``vpn`` is always the 4 KB VPN of the *first* sub-page of the
    mapping; ``page_size`` records the actual translation size.
    """

    vpn: int
    ppn: int
    page_size: PageSize = PageSize.SIZE_4K
    perms: Permission = Permission.RW
    accessed: bool = False
    dirty: bool = False
    present: bool = True

    def __post_init__(self) -> None:
        # Integrity tag over the translation-defining fields, the
        # software stand-in for the parity/ECC bits hardware keeps on
        # page-table entries.  ``accessed``/``dirty``/``perms`` mutate
        # legitimately and are excluded.
        self._tag = self._integrity_tag()

    def _integrity_tag(self) -> int:
        return (
            self.vpn * 0x9E3779B97F4A7C15
            + self.ppn * 0xC2B2AE3D27D4EB4F
            + self.page_size.value
        ) & 0xFFFFFFFF

    def is_intact(self) -> bool:
        """Whether the entry passes its integrity check (no bit flips in
        vpn/ppn/page_size since construction)."""
        return getattr(self, "_tag", None) == self._integrity_tag()

    def with_bitflip(self, fld: str = "ppn", bit: int = 0) -> "PTE":
        """A *corrupted copy* of this entry: one bit flipped in ``fld``
        (``"vpn"`` or ``"ppn"``) while the integrity tag keeps its
        pre-flip value, so :meth:`is_intact` fails.

        Used by the fault injector; the original object (the OS's
        authoritative record) is never mutated.
        """
        twin = PTE(
            vpn=self.vpn,
            ppn=self.ppn,
            page_size=self.page_size,
            perms=self.perms,
            accessed=self.accessed,
            dirty=self.dirty,
            present=self.present,
        )
        # Mutate *after* __post_init__ so the tag is stale by one flip.
        setattr(twin, fld, getattr(twin, fld) ^ (1 << bit))
        return twin

    def covers(self, vpn: int) -> bool:
        """Whether this entry translates the given 4 KB VPN."""
        # ``page_size >> BASE_PAGE_SHIFT`` == ``page_size.pages_4k``;
        # the raw shift skips the enum property on a hot path.
        base = self.vpn
        return base <= vpn < base + (self.page_size >> BASE_PAGE_SHIFT)

    def translate(self, va: int) -> int:
        """Physical address for a virtual address inside this mapping."""
        # ``align_down`` inlined: this runs once per simulated reference.
        size = self.page_size
        base_va = self.vpn << BASE_PAGE_SHIFT
        return self.ppn * BASE_PAGE_SIZE + (va - (base_va - base_va % size))


class AccessKind(enum.Enum):
    """What a memory access issued during a page walk is fetching."""

    PT_NODE = "pt_node"  # internal page-table node / learned-index model
    PT_LEAF = "pt_leaf"  # leaf page-table entry (the PTE itself)
    CWT = "cwt"  # cuckoo walk table access (ECPT)
    PREFETCH = "prefetch"  # prefetcher-induced access (ASAP)
    DATA = "data"  # regular program data


class WalkAccess(NamedTuple):
    """One physical memory access performed by a hardware page walker.

    ``level`` tags the page-table level (radix) or learned-index depth
    (LVM) so walk caches can decide which accesses they short-circuit.
    Accesses in the same ``parallel_group`` are issued concurrently
    (ECPT's d-ary probes): latency is their max, traffic is their sum.

    A ``NamedTuple`` rather than a frozen dataclass: page walks build
    several of these per translation, and tuple construction is a
    fraction of the cost of ``object.__setattr__``-based init on the
    simulator's hottest path.
    """

    paddr: int
    kind: AccessKind
    level: int = 0
    parallel_group: int = 0


@dataclass
class WalkResult:
    """Outcome of a software page walk: the PTE plus the accesses a
    hardware walker would have performed to find it."""

    pte: "PTE | None"
    accesses: list = field(default_factory=list)

    @property
    def hit(self) -> bool:
        return self.pte is not None

    @property
    def num_accesses(self) -> int:
        return len(self.accesses)


# ``TranslationError`` historically lived here; it is now defined in
# :mod:`repro.errors` (re-exported above) so the whole exception
# hierarchy shares one root.
