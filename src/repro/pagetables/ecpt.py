"""Elastic Cuckoo Page Tables (ECPT) — the state-of-the-art hashed
baseline the paper compares against (sections 2.2, 6.3, 7).

ECPT keeps one d-ary (d = 3) cuckoo hash table per page size.  A walk
probes the d candidate slots of every page size the region may use —
in *parallel*, trading the sequential accesses of radix for extra
memory traffic ("incurring two unnecessary fetches per translation").
Cuckoo Walk Tables (CWTs) record, per VA region, which page sizes are
present so the walker can skip entire tables; the hardware Cuckoo Walk
Cache (CWC, in :mod:`repro.mmu.walk_cache`) caches CWT entries.

Elasticity: a table whose load factor crosses the threshold (0.6, per
the paper's hash-table baseline) doubles in size; entries are rehashed
into the new table.  The resize cost shows up as management work, as
in the original ECPT design's gradual-rehash window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.mem.allocator import BumpAllocator, PhysicalAllocator
from repro.types import (
    PTE,
    AccessKind,
    PageSize,
    TranslationError,
    WalkAccess,
    WalkResult,
)

ENTRY_BYTES = 8
DEFAULT_WAYS = 3
DEFAULT_INITIAL_SIZE = 16384  # entries per way group (Table 1)
MAX_KICKS = 32

# CWT granularities, mirroring ECPT's PMD- and PUD-level walk tables:
# one PMD-CWT entry per 2 MB region, one PUD-CWT entry per 1 GB region.
PMD_REGION_PAGES = 512
PUD_REGION_PAGES = 512 * 512
CWT_ENTRY_BYTES = 8


_WAY_SEEDS = (0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 0xD6E8FEB86659FD93)


def _way_hash(key: int, way: int, capacity: int) -> int:
    """Fast splitmix64-style integer hash, one independent function per
    way.  (The cryptographic Blake2 hash appears only in the section
    7.3 hash-table *baseline*; cuckoo ways need speed and independence,
    matching the original ECPT implementation's multiplicative hashes.)
    """
    x = (key ^ _WAY_SEEDS[way % len(_WAY_SEEDS)]) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x % capacity


@dataclass
class ECPTStats:
    lookups: int = 0
    probes_issued: int = 0
    resizes: int = 0
    kicks: int = 0

    @property
    def avg_probes(self) -> float:
        return self.probes_issued / self.lookups if self.lookups else 0.0


class _CuckooTable:
    """One d-ary cuckoo hash table for a single page size."""

    def __init__(
        self,
        allocator: PhysicalAllocator,
        page_size: PageSize,
        ways: int,
        initial_size: int,
        max_load: float,
        stats: ECPTStats,
    ):
        self.allocator = allocator
        self.page_size = page_size
        self.ways = ways
        self.max_load = max_load
        self.stats = stats
        self._capacity = initial_size  # slots per way
        self._slots: List[List[Optional[PTE]]] = [
            [None] * self._capacity for _ in range(ways)
        ]
        self._occupied = 0
        self._bases = [
            self.allocator.alloc(self._capacity * ENTRY_BYTES) for _ in range(ways)
        ]

    # ``key`` below is the page-size-specific VPN: the 4 KB VPN shifted
    # down so all sub-pages of one mapping share a key.
    def key_of(self, vpn: int) -> int:
        return vpn // self.page_size.pages_4k

    @property
    def load_factor(self) -> float:
        return self._occupied / (self._capacity * self.ways)

    @property
    def table_bytes(self) -> int:
        return self._capacity * self.ways * ENTRY_BYTES

    def slot_paddr(self, way: int, slot: int) -> int:
        return self._bases[way] + slot * ENTRY_BYTES

    def probe_paddrs(self, vpn: int) -> List[Tuple[int, int, int]]:
        """(way, slot, paddr) for all d candidate locations of a VPN."""
        key = self.key_of(vpn)
        probes = []
        for w in range(self.ways):
            slot = _way_hash(key, w, self._capacity)
            probes.append((w, slot, self.slot_paddr(w, slot)))
        return probes

    def lookup(self, vpn: int) -> Optional[PTE]:
        key = self.key_of(vpn)
        for way in range(self.ways):
            entry = self._slots[way][_way_hash(key, way, self._capacity)]
            if entry is not None and self.key_of(entry.vpn) == key:
                return entry
        return None

    def insert(self, pte: PTE) -> None:
        if (self._occupied + 1) > self.max_load * self._capacity * self.ways:
            self._resize()
        item = pte
        way = 0
        for _ in range(MAX_KICKS):
            key = self.key_of(item.vpn)
            slot = _way_hash(key, way, self._capacity)
            evicted = self._slots[way][slot]
            self._slots[way][slot] = item
            if evicted is None:
                self._occupied += 1
                return
            self.stats.kicks += 1
            item = evicted
            # Re-insert the evicted item through its next way.
            way = (way + 1) % self.ways
        # Kick chain too long: grow and retry (the "elastic" part).
        self._resize()
        self.insert(item)

    def remove(self, vpn: int) -> Optional[PTE]:
        key = self.key_of(vpn)
        for way in range(self.ways):
            slot = _way_hash(key, way, self._capacity)
            entry = self._slots[way][slot]
            if entry is not None and self.key_of(entry.vpn) == key:
                self._slots[way][slot] = None
                self._occupied -= 1
                return entry
        return None

    def _resize(self) -> None:
        self.stats.resizes += 1
        live = [e for way in self._slots for e in way if e is not None]
        for base in self._bases:
            self.allocator.free(base, self._capacity * ENTRY_BYTES)
        self._capacity *= 2
        self._slots = [[None] * self._capacity for _ in range(self.ways)]
        self._bases = [
            self.allocator.alloc(self._capacity * ENTRY_BYTES)
            for _ in range(self.ways)
        ]
        self._occupied = 0
        for entry in live:
            self.insert(entry)

    def entries(self) -> List[PTE]:
        return [e for way in self._slots for e in way if e is not None]


class ECPT:
    """Elastic cuckoo page tables with cuckoo walk tables."""

    def __init__(
        self,
        allocator: Optional[PhysicalAllocator] = None,
        ways: int = DEFAULT_WAYS,
        initial_size: int = DEFAULT_INITIAL_SIZE,
        max_load: float = 0.6,
    ):
        self.allocator = allocator or BumpAllocator()
        self.stats = ECPTStats()
        self.tables: Dict[PageSize, _CuckooTable] = {
            size: _CuckooTable(
                self.allocator, size, ways, initial_size, max_load, self.stats
            )
            for size in PageSize
        }
        # CWT: which page sizes may exist per region (reference counts
        # so unmap can clear bits).
        self._pmd_cwt: Dict[int, Dict[PageSize, int]] = {}
        self._pud_cwt: Dict[int, Dict[PageSize, int]] = {}
        self._pmd_cwt_base = self.allocator.alloc(1 << 20)
        self._pud_cwt_base = self.allocator.alloc(1 << 20)

    # -- CWT maintenance ------------------------------------------------
    def _cwt_add(self, pte: PTE) -> None:
        pmd = pte.vpn // PMD_REGION_PAGES
        pud = pte.vpn // PUD_REGION_PAGES
        self._pmd_cwt.setdefault(pmd, {}).setdefault(pte.page_size, 0)
        self._pmd_cwt[pmd][pte.page_size] += 1
        self._pud_cwt.setdefault(pud, {}).setdefault(pte.page_size, 0)
        self._pud_cwt[pud][pte.page_size] += 1

    def _cwt_drop(self, pte: PTE) -> None:
        pmd = pte.vpn // PMD_REGION_PAGES
        pud = pte.vpn // PUD_REGION_PAGES
        for table, region in ((self._pmd_cwt, pmd), (self._pud_cwt, pud)):
            counts = table.get(region)
            if counts and pte.page_size in counts:
                counts[pte.page_size] -= 1
                if counts[pte.page_size] <= 0:
                    del counts[pte.page_size]
                if not counts:
                    del table[region]

    def sizes_in_region(self, vpn: int) -> List[PageSize]:
        """Page sizes the CWTs say may map this VPN (probe trimming).

        The PUD-level CWT (1 GB granularity) is consulted first: a
        region holding a single page size is fully resolved there.
        Only mixed regions need the finer PMD-level CWT.
        """
        pud_counts = self._pud_cwt.get(vpn // PUD_REGION_PAGES)
        if not pud_counts:
            return []
        if len(pud_counts) == 1:
            return list(pud_counts)
        sizes: List[PageSize] = []
        pmd_counts = self._pmd_cwt.get(vpn // PMD_REGION_PAGES)
        if pmd_counts:
            sizes.extend(
                s for s in (PageSize.SIZE_4K, PageSize.SIZE_2M) if s in pmd_counts
            )
        if PageSize.SIZE_1G in pud_counts:
            sizes.append(PageSize.SIZE_1G)
        return sizes

    def needs_pmd_cwt(self, vpn: int) -> bool:
        """Whether the walk must also consult the PMD-level CWT."""
        pud_counts = self._pud_cwt.get(vpn // PUD_REGION_PAGES)
        return bool(pud_counts) and len(pud_counts) > 1

    def pud_cwt_paddr(self, vpn: int) -> int:
        return (
            self._pud_cwt_base
            + (vpn // PUD_REGION_PAGES) % (1 << 17) * CWT_ENTRY_BYTES
        )

    def pmd_cwt_paddr(self, vpn: int) -> int:
        return (
            self._pmd_cwt_base
            + (vpn // PMD_REGION_PAGES) % (1 << 17) * CWT_ENTRY_BYTES
        )

    def cwt_access_paddrs(self, vpn: int) -> List[int]:
        """Physical addresses of the CWT entries a walk consults: the
        PUD entry always, the PMD entry only for mixed regions."""
        paddrs = [self.pud_cwt_paddr(vpn)]
        if self.needs_pmd_cwt(vpn):
            paddrs.append(self.pmd_cwt_paddr(vpn))
        return paddrs

    # -- PageTable interface ---------------------------------------------
    def map(self, pte: PTE) -> None:
        table = self.tables[pte.page_size]
        if table.lookup(pte.vpn) is not None:
            raise TranslationError(f"VPN {pte.vpn:#x} already mapped")
        table.insert(pte)
        self._cwt_add(pte)

    def unmap(self, vpn: int) -> PTE:
        for table in self.tables.values():
            entry = table.lookup(vpn)
            if entry is not None and entry.vpn == vpn:
                table.remove(vpn)
                self._cwt_drop(entry)
                return entry
        raise TranslationError(f"VPN {vpn:#x} is not mapped")

    def walk(self, vpn: int) -> WalkResult:
        """Parallel cuckoo walk: CWT consult, then d probes per
        candidate page size, all in one parallel group."""
        self.stats.lookups += 1
        accesses: List[WalkAccess] = []
        # Level 6 = PUD CWT, level 5 = PMD CWT (for the CWC's benefit).
        accesses.append(WalkAccess(self.pud_cwt_paddr(vpn), AccessKind.CWT, level=6))
        if self.needs_pmd_cwt(vpn):
            accesses.append(
                WalkAccess(self.pmd_cwt_paddr(vpn), AccessKind.CWT, level=5)
            )
        sizes = self.sizes_in_region(vpn)
        found: Optional[PTE] = None
        group = 0
        for size in sizes:
            table = self.tables[size]
            for way, slot, paddr in table.probe_paddrs(vpn):
                accesses.append(
                    WalkAccess(paddr, AccessKind.PT_LEAF, level=1, parallel_group=group)
                )
                entry = table._slots[way][slot]
                if (
                    entry is not None
                    and table.key_of(entry.vpn) == table.key_of(vpn)
                    and entry.covers(vpn)
                ):
                    found = entry
        self.stats.probes_issued += sum(
            1 for a in accesses if a.kind is AccessKind.PT_LEAF
        )
        return WalkResult(found, accesses)

    def find(self, vpn: int) -> Optional[PTE]:
        for table in self.tables.values():
            entry = table.lookup(vpn)
            if entry is not None and entry.covers(vpn):
                return entry
        return None

    @property
    def table_bytes(self) -> int:
        return sum(t.table_bytes for t in self.tables.values())
