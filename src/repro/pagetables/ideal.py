"""The Ideal page table (paper section 6.3).

An oracle that always finds the PTE with exactly one memory access: the
upper bound the paper compares LVM against.  Entries are laid out
densely in "physical memory" in VPN order per 2 MB-aligned region, so
spatial locality matches the minimum-possible 8-bytes-per-translation
layout used in the paper's memory-consumption accounting.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mem.allocator import BumpAllocator, PhysicalAllocator
from repro.types import (
    PTE,
    PTE_SIZE,
    AccessKind,
    TranslationError,
    WalkAccess,
    WalkResult,
)

_BLOCK_ENTRIES = 512  # entries per allocated storage block


class IdealPageTable:
    """Single-access oracle page table.

    Entries take exactly 8 bytes each and are packed densely in mapping
    order (one entry per *mapping*, not per 4 KB page), which is the
    minimum-possible layout the paper's memory accounting assumes —
    and what gives the oracle its best-case spatial locality.
    """

    def __init__(self, allocator: Optional[PhysicalAllocator] = None):
        self.allocator = allocator or BumpAllocator()
        self._entries: Dict[int, PTE] = {}  # first VPN -> PTE
        self._covering: Dict[int, int] = {}  # any covered VPN -> first VPN
        self._entry_paddrs: Dict[int, int] = {}  # first VPN -> entry paddr
        self._free_slots: list = []  # recycled entry paddrs
        self._block_cursor = 0
        self._blocks = 0

    def _entry_paddr(self, vpn: int) -> int:
        paddr = self._entry_paddrs.get(vpn)
        if paddr is not None:
            return paddr
        if self._free_slots:
            paddr = self._free_slots.pop()
        else:
            if self._block_cursor % _BLOCK_ENTRIES == 0:
                self._current_block = self.allocator.alloc(
                    _BLOCK_ENTRIES * PTE_SIZE
                )
                self._blocks += 1
            paddr = self._current_block + (
                self._block_cursor % _BLOCK_ENTRIES
            ) * PTE_SIZE
            self._block_cursor += 1
        self._entry_paddrs[vpn] = paddr
        return paddr

    def map(self, pte: PTE) -> None:
        if pte.vpn in self._entries:
            raise TranslationError(f"VPN {pte.vpn:#x} already mapped")
        self._entries[pte.vpn] = pte
        for covered in range(pte.vpn, pte.vpn + pte.page_size.pages_4k):
            self._covering[covered] = pte.vpn
        self._entry_paddr(pte.vpn)  # ensure backing storage exists

    def unmap(self, vpn: int) -> PTE:
        pte = self._entries.pop(vpn, None)
        if pte is None:
            raise TranslationError(f"VPN {vpn:#x} is not mapped")
        for covered in range(vpn, vpn + pte.page_size.pages_4k):
            self._covering.pop(covered, None)
        self._free_slots.append(self._entry_paddrs.pop(vpn))
        return pte

    def walk(self, vpn: int) -> WalkResult:
        first = self._covering.get(vpn)
        if first is None:
            # A miss still performs its one probe, but must not
            # allocate entry storage for an unmapped page.
            if not hasattr(self, "_miss_probe"):
                self._miss_probe = self.allocator.alloc(PTE_SIZE * 8)
            access = WalkAccess(self._miss_probe, AccessKind.PT_LEAF, level=1)
            return WalkResult(None, [access])
        access = WalkAccess(self._entry_paddr(first), AccessKind.PT_LEAF, level=1)
        return WalkResult(self._entries.get(first), [access])

    def find(self, vpn: int) -> Optional[PTE]:
        first = self._covering.get(vpn)
        return self._entries.get(first) if first is not None else None

    @property
    def table_bytes(self) -> int:
        return self._blocks * _BLOCK_ENTRIES * PTE_SIZE
