"""Common interface for all translation schemes.

Every page table — radix, hashed, ECPT, FPT, ideal, and LVM — exposes
the same software interface (map / unmap / walk) and reports, per walk,
the exact sequence of physical memory accesses a hardware walker would
issue.  The MMU layer replays those accesses through walk caches and
the cache hierarchy to obtain latency and traffic.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.types import PTE, WalkResult


@runtime_checkable
class PageTable(Protocol):
    """The software view of a translation scheme."""

    def map(self, pte: PTE) -> None:
        """Install a translation.  ``pte.vpn`` is the first 4 KB VPN of
        the mapping; ``pte.page_size`` its size."""
        ...

    def unmap(self, vpn: int) -> PTE:
        """Remove the translation whose first VPN is ``vpn``."""
        ...

    def walk(self, vpn: int) -> WalkResult:
        """Translate a 4 KB VPN, reporting hardware walk accesses.

        A VPN inside a large page resolves to the large page's entry.
        A miss (unmapped VPN) returns ``pte=None`` with the accesses
        performed before the walker could conclude the page is absent.

        (The LVM manager's ``walk`` returns its richer
        :class:`~repro.core.learned_index.LVMWalk` trace — same ``pte``
        semantics, plus the node path its hardware walker needs.)
        """
        ...

    def find(self, vpn: int) -> Optional[PTE]:
        """Software lookup with no statistics side effects."""
        ...

    @property
    def table_bytes(self) -> int:
        """Total physical memory consumed by translation structures."""
        ...


def walk_traffic(result: WalkResult) -> int:
    """Number of memory requests a walk sends to the cache hierarchy."""
    return len(result.accesses)


def walk_serial_length(result: WalkResult) -> int:
    """Number of *dependent* (serialized) access steps in the walk.

    Accesses sharing a ``parallel_group`` are issued concurrently
    (ECPT's d-ary probes), so they count as a single step.
    """
    groups = {(a.parallel_group, a.level) for a in result.accesses}
    return len(groups)
