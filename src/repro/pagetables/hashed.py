"""Open-addressing hashed page table with a Blake2 hash.

The paper's section 7.3 collision study compares LVM against "a hash
table that has a load factor of 0.6 and uses the state-of-the-art hash
function Blake2".  This module is that baseline: open addressing with
linear probing, `hashlib.blake2b`-derived slot indexes, resizing to
stay at the configured load factor.

It doubles as a classic single-hash hashed page table (section 2.2)
when used as a translation scheme: one probe in the collision-free
case, extra sequential probes to resolve collisions.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

from repro.mem.allocator import BumpAllocator, PhysicalAllocator
from repro.types import (
    PTE,
    PTE_SIZE,
    AccessKind,
    CACHE_LINE_SIZE,
    TranslationError,
    WalkAccess,
    WalkResult,
)


def blake2_slot(vpn: int, capacity: int, salt: int = 0) -> int:
    """Blake2b-based slot index for a VPN."""
    digest = hashlib.blake2b(
        vpn.to_bytes(8, "little"), digest_size=8, salt=salt.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little") % capacity


class HashedPageTable:
    """Blake2 open-addressing hashed page table (load factor 0.6)."""

    def __init__(
        self,
        allocator: Optional[PhysicalAllocator] = None,
        initial_capacity: int = 1024,
        max_load: float = 0.6,
    ):
        if not 0.0 < max_load < 1.0:
            raise ValueError("max_load must be in (0, 1)")
        self.allocator = allocator or BumpAllocator()
        self.max_load = max_load
        self._capacity = initial_capacity
        self._slots: List[Optional[PTE]] = [None] * initial_capacity
        self._occupied = 0
        self.base_paddr = self.allocator.alloc(initial_capacity * PTE_SIZE)
        self._allocated = initial_capacity * PTE_SIZE
        # Collision statistics for the section 7.3 study.
        self.lookups = 0
        self.collided_lookups = 0
        self.total_extra_probes = 0

    # -- geometry ------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def occupied(self) -> int:
        return self._occupied

    @property
    def load_factor(self) -> float:
        return self._occupied / self._capacity

    def _slot_paddr(self, slot: int) -> int:
        return self.base_paddr + slot * PTE_SIZE

    # -- resize --------------------------------------------------------
    def _maybe_resize(self) -> None:
        if (self._occupied + 1) / self._capacity <= self.max_load:
            return
        old = [e for e in self._slots if e is not None]
        self.allocator.free(self.base_paddr, self._allocated)
        self._capacity *= 2
        self._slots = [None] * self._capacity
        self._occupied = 0
        self._allocated = self._capacity * PTE_SIZE
        self.base_paddr = self.allocator.alloc(self._allocated)
        for pte in old:
            self._insert_no_resize(pte)

    def _insert_no_resize(self, pte: PTE) -> None:
        slot = blake2_slot(pte.vpn, self._capacity)
        for probe in range(self._capacity):
            candidate = (slot + probe) % self._capacity
            entry = self._slots[candidate]
            if entry is None:
                self._slots[candidate] = pte
                self._occupied += 1
                return
            if entry.vpn == pte.vpn:
                raise TranslationError(f"VPN {pte.vpn:#x} already mapped")
        raise TranslationError("hash table unexpectedly full")

    # -- PageTable interface --------------------------------------------
    def map(self, pte: PTE) -> None:
        self._maybe_resize()
        self._insert_no_resize(pte)

    def unmap(self, vpn: int) -> PTE:
        slot = blake2_slot(vpn, self._capacity)
        for probe in range(self._capacity):
            candidate = (slot + probe) % self._capacity
            entry = self._slots[candidate]
            if entry is None:
                break
            if entry.vpn == vpn:
                # Tombstone-free removal: re-insert the displaced run.
                self._slots[candidate] = None
                self._occupied -= 1
                run = []
                nxt = (candidate + 1) % self._capacity
                while self._slots[nxt] is not None:
                    run.append(self._slots[nxt])
                    self._slots[nxt] = None
                    self._occupied -= 1
                    nxt = (nxt + 1) % self._capacity
                for displaced in run:
                    self._insert_no_resize(displaced)
                return entry
        raise TranslationError(f"VPN {vpn:#x} is not mapped")

    def _probe(self, vpn: int) -> Tuple[Optional[PTE], int, List[int]]:
        """Returns (entry, slot probes, cache-line paddrs touched).

        Slot probes drive the paper's collision metric (a collision is
        another entry sitting in the predicted slot); distinct cache
        lines drive the memory-access accounting.
        """
        slot = blake2_slot(vpn, self._capacity)
        paddrs: List[int] = []
        seen_lines = set()
        probes = 0
        for probe in range(self._capacity):
            candidate = (slot + probe) % self._capacity
            probes += 1
            line = self._slot_paddr(candidate) // CACHE_LINE_SIZE
            if line not in seen_lines:
                seen_lines.add(line)
                paddrs.append(line * CACHE_LINE_SIZE)
            entry = self._slots[candidate]
            if entry is None:
                return None, probes, paddrs
            if entry.covers(vpn):
                return entry, probes, paddrs
        return None, probes, paddrs

    def _probe_multi(self, vpn: int) -> Tuple[Optional[PTE], int, List[int]]:
        """Probe each supported page size in turn (the classic HPT
        answer to multiple page sizes: one probe round per size, keyed
        by the size-aligned first VPN — one reason the paper calls
        per-size structures inefficient)."""
        from repro.types import PageSize

        total_probes = 0
        all_paddrs: List[int] = []
        for size in (PageSize.SIZE_4K, PageSize.SIZE_2M, PageSize.SIZE_1G):
            aligned = vpn - (vpn % size.pages_4k)
            pte, probes, paddrs = self._probe(aligned)
            total_probes += probes
            all_paddrs.extend(paddrs)
            if pte is not None and pte.covers(vpn):
                return pte, total_probes, all_paddrs
        return None, total_probes, all_paddrs

    def walk(self, vpn: int) -> WalkResult:
        self.lookups += 1
        pte, probes, paddrs = self._probe_multi(vpn)
        if probes > 1:
            self.collided_lookups += 1
            self.total_extra_probes += probes - 1
        accesses = [
            WalkAccess(p, AccessKind.PT_LEAF, level=1) for p in paddrs
        ]
        return WalkResult(pte, accesses)

    def find(self, vpn: int) -> Optional[PTE]:
        pte, _, _ = self._probe_multi(vpn)
        return pte

    @property
    def collision_rate(self) -> float:
        return self.collided_lookups / self.lookups if self.lookups else 0.0

    @property
    def table_bytes(self) -> int:
        return self._allocated
