"""Flattened Page Tables (FPT) — prior-work comparison (section 7.5.3).

FPT folds adjacent radix levels into one wider table so a walk takes
two accesses instead of four: L4+L3 become one 2 MB table indexed by 18
VPN bits, and L2+L1 likewise.  The catch the paper highlights: every
fold needs a 2 MB *physically contiguous* allocation, which competes
with the application's own huge pages; when the allocation fails the
subtree falls back to ordinary 4 KB radix tables, and the walk for that
region degrades toward radix.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.mem.allocator import BumpAllocator, OutOfPhysicalMemory, PhysicalAllocator
from repro.pagetables.radix import ENTRY_BYTES, TABLE_BYTES
from repro.types import (
    PTE,
    AccessKind,
    PageSize,
    TranslationError,
    WalkAccess,
    WalkResult,
)

FOLDED_TABLE_BYTES = 2 << 20  # 2 MB: 2**18 eight-byte entries
FOLDED_BITS = 18
FOLDED_ENTRIES = 1 << FOLDED_BITS


class _Node:
    """A table in the (possibly folded) tree."""

    __slots__ = ("paddr", "entries", "folded", "size_bytes")

    def __init__(self, paddr: int, folded: bool, size_bytes: int):
        self.paddr = paddr
        self.folded = folded
        self.size_bytes = size_bytes
        self.entries: Dict[int, Union["_Node", "_Sub", PTE]] = {}

    def entry_paddr(self, index: int) -> int:
        return self.paddr + index * ENTRY_BYTES


class _Sub:
    """An unfolded fallback pair: a 4 KB upper table whose entries point
    at 4 KB lower tables (two accesses instead of one)."""

    __slots__ = ("upper", "lowers")

    def __init__(self, upper: _Node):
        self.upper = upper
        self.lowers: Dict[int, _Node] = {}


class FlattenedPageTable:
    """Radix with L4+L3 and L2+L1 folding when contiguity allows."""

    def __init__(self, allocator: Optional[PhysicalAllocator] = None):
        self.allocator = allocator or BumpAllocator()
        self._bytes = 0
        self.folds_succeeded = 0
        self.folds_failed = 0
        self.root = self._alloc_folded()  # top: folded L4+L3 (always tried once)
        if self.root is None:
            # Even the root fold failed: plain 4 KB upper table.
            self.root = _Sub(self._alloc_small())

    # -- allocation -----------------------------------------------------
    def _alloc_folded(self) -> Optional[_Node]:
        try:
            paddr = self.allocator.alloc(FOLDED_TABLE_BYTES)
        except OutOfPhysicalMemory:
            self.folds_failed += 1
            return None
        # A folded table competes for exactly the 2 MB blocks data huge
        # pages want; the caller may still get None if the buddy has no
        # order-9 block.
        self.folds_succeeded += 1
        self._bytes += FOLDED_TABLE_BYTES
        return _Node(paddr, folded=True, size_bytes=FOLDED_TABLE_BYTES)

    def _alloc_small(self) -> _Node:
        paddr = self.allocator.alloc(TABLE_BYTES)
        self._bytes += TABLE_BYTES
        return _Node(paddr, folded=False, size_bytes=TABLE_BYTES)

    # -- index helpers ----------------------------------------------------
    @staticmethod
    def _upper_index(vpn: int) -> int:
        return (vpn >> FOLDED_BITS) & (FOLDED_ENTRIES - 1)

    @staticmethod
    def _lower_index(vpn: int) -> int:
        return vpn & (FOLDED_ENTRIES - 1)

    # -- mapping ----------------------------------------------------------
    def map(self, pte: PTE) -> None:
        if pte.page_size is PageSize.SIZE_1G:
            raise TranslationError(
                "this FPT configuration folds L2+L1 and cannot hold 1 GB pages"
            )
        if pte.vpn % pte.page_size.pages_4k != 0:
            raise TranslationError(
                f"VPN {pte.vpn:#x} misaligned for {pte.page_size.name}"
            )
        upper_entry = self._upper_slot(pte.vpn, create=True)
        node_or_sub = upper_entry
        if pte.page_size is PageSize.SIZE_2M:
            # A 2 MB page occupies 512 lower slots' span; store it once
            # per covered lower index granule start.
            self._set_lower(node_or_sub, pte.vpn, pte)
        else:
            self._set_lower(node_or_sub, pte.vpn, pte)

    def _upper_slot(self, vpn: int, create: bool):
        """Resolve (creating on demand) the lower-level container for
        this VPN's 1 GB-scale region."""
        index = self._upper_index(vpn)
        if isinstance(self.root, _Node):
            lower = self.root.entries.get(index)
            if lower is None and create:
                lower = self._alloc_folded()
                if lower is None:
                    lower = _Sub(self._alloc_small())
                self.root.entries[index] = lower
            return lower
        # Unfolded root: chase two small tables.
        sub: _Sub = self.root
        up_idx = index >> 9
        lo_idx = index & 511
        lower_tbl = sub.lowers.get(up_idx)
        if lower_tbl is None and create:
            lower_tbl = self._alloc_small()
            sub.lowers[up_idx] = lower_tbl
        if lower_tbl is None:
            return None
        lower = lower_tbl.entries.get(lo_idx)
        if lower is None and create:
            lower = self._alloc_folded()
            if lower is None:
                lower = _Sub(self._alloc_small())
            lower_tbl.entries[lo_idx] = lower
        return lower

    def _set_lower(self, container, vpn: int, pte: PTE) -> None:
        index = self._lower_index(vpn)
        if isinstance(container, _Node):
            if index in container.entries:
                raise TranslationError(f"VPN {vpn:#x} already mapped")
            container.entries[index] = pte
            return
        sub: _Sub = container
        up_idx = index >> 9
        lo_idx = index & 511
        lower = sub.lowers.get(up_idx)
        if lower is None:
            lower = self._alloc_small()
            sub.lowers[up_idx] = lower
        if lo_idx in lower.entries:
            raise TranslationError(f"VPN {vpn:#x} already mapped")
        lower.entries[lo_idx] = pte

    def unmap(self, vpn: int) -> PTE:
        container = self._upper_slot(vpn, create=False)
        if container is None:
            raise TranslationError(f"VPN {vpn:#x} is not mapped")
        index = self._lower_index(vpn)
        if isinstance(container, _Node):
            entry = container.entries.get(index)
            if isinstance(entry, PTE) and entry.vpn == vpn:
                del container.entries[index]
                return entry
            raise TranslationError(f"VPN {vpn:#x} is not mapped")
        sub: _Sub = container
        lower = sub.lowers.get(index >> 9)
        if lower is not None:
            entry = lower.entries.get(index & 511)
            if isinstance(entry, PTE) and entry.vpn == vpn:
                del lower.entries[index & 511]
                return entry
        raise TranslationError(f"VPN {vpn:#x} is not mapped")

    # -- walking -----------------------------------------------------------
    def walk(self, vpn: int) -> WalkResult:
        accesses = []
        index = self._upper_index(vpn)
        # Step 1: upper structure (folded: 1 access; unfolded: 2).
        if isinstance(self.root, _Node):
            # A folded L4+L3 entry covers 1 GB, like a PDPTE: tag it
            # level 3 so the PWC keys and skips it correctly.
            accesses.append(
                WalkAccess(self.root.entry_paddr(index), AccessKind.PT_NODE, level=3)
            )
            container = self.root.entries.get(index)
        else:
            sub: _Sub = self.root
            accesses.append(
                WalkAccess(sub.upper.entry_paddr(index >> 9), AccessKind.PT_NODE, level=4)
            )
            lower_tbl = sub.lowers.get(index >> 9)
            if lower_tbl is None:
                return WalkResult(None, accesses)
            accesses.append(
                WalkAccess(lower_tbl.entry_paddr(index & 511), AccessKind.PT_NODE, level=3)
            )
            container = lower_tbl.entries.get(index & 511)
        if container is None:
            return WalkResult(None, accesses)
        # Step 2: lower structure (folded: 1 access; unfolded: 2).
        low = self._lower_index(vpn)
        if isinstance(container, _Node):
            accesses.append(
                WalkAccess(container.entry_paddr(low), AccessKind.PT_LEAF, level=1)
            )
            entry = container.entries.get(low)
            if isinstance(entry, PTE) and entry.covers(vpn):
                return WalkResult(entry, accesses)
            # 2 MB pages live at their first sub-VPN's slot.
            aligned = low - (low % PageSize.SIZE_2M.pages_4k)
            entry = container.entries.get(aligned)
            if isinstance(entry, PTE) and entry.covers(vpn):
                return WalkResult(entry, accesses)
            return WalkResult(None, accesses)
        sub = container
        accesses.append(
            WalkAccess(sub.upper.entry_paddr(low >> 9), AccessKind.PT_NODE, level=2)
        )
        lower = sub.lowers.get(low >> 9)
        if lower is None:
            return WalkResult(None, accesses)
        accesses.append(
            WalkAccess(lower.entry_paddr(low & 511), AccessKind.PT_LEAF, level=1)
        )
        entry = lower.entries.get(low & 511)
        if isinstance(entry, PTE) and entry.covers(vpn):
            return WalkResult(entry, accesses)
        aligned = (low & 511) - ((low & 511) % PageSize.SIZE_2M.pages_4k)
        entry = lower.entries.get(aligned)
        if isinstance(entry, PTE) and entry.covers(vpn):
            return WalkResult(entry, accesses)
        return WalkResult(None, accesses)

    def find(self, vpn: int) -> Optional[PTE]:
        return self.walk(vpn).pte

    @property
    def table_bytes(self) -> int:
        return self._bytes

    @property
    def fold_success_rate(self) -> float:
        total = self.folds_succeeded + self.folds_failed
        return self.folds_succeeded / total if total else 0.0
