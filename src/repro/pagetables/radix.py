"""Four-level x86-64 radix page table (paper section 2.1).

The baseline the paper measures against: PML4 → PDPT → PD → PT, each a
4 KB table of 512 eight-byte entries, indexed by 9-bit slices of the
VPN.  2 MB pages terminate at the PD level, 1 GB pages at the PDPT.  A
full walk is four sequential, dependent memory accesses; the hardware
page-walk cache (modelled in :mod:`repro.mmu.walk_cache`) short-
circuits the upper levels.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.mem.allocator import BumpAllocator, PhysicalAllocator
from repro.types import (
    PTE,
    AccessKind,
    PageSize,
    TranslationError,
    WalkAccess,
    WalkResult,
)

TABLE_BYTES = 4096
ENTRIES_PER_TABLE = 512
ENTRY_BYTES = 8

# Radix levels, counting down toward the leaf: 4=PML4, 3=PDPT, 2=PD, 1=PT.
LEVELS = (4, 3, 2, 1)
_SHIFTS = {4: 27, 3: 18, 2: 9, 1: 0}
_HUGE_LEVEL = {PageSize.SIZE_1G: 3, PageSize.SIZE_2M: 2, PageSize.SIZE_4K: 1}

# Walk-loop constant: (level, shift, access kind) per step, so the hot
# walk avoids a dict lookup and a conditional per level.
_WALK_STEPS = tuple(
    (level, _SHIFTS[level], AccessKind.PT_LEAF if level == 1 else AccessKind.PT_NODE)
    for level in LEVELS
)


def level_index(vpn: int, level: int) -> int:
    """9-bit table index of a 4 KB VPN at a given radix level."""
    return (vpn >> _SHIFTS[level]) & (ENTRIES_PER_TABLE - 1)


class _Table:
    """One 4 KB radix table: 512 slots of child tables or PTEs."""

    __slots__ = ("paddr", "entries", "level")

    def __init__(self, paddr: int, level: int):
        self.paddr = paddr
        self.level = level
        self.entries: Dict[int, Union["_Table", PTE]] = {}

    def entry_paddr(self, index: int) -> int:
        return self.paddr + index * ENTRY_BYTES


class RadixPageTable:
    """The baseline 4-level radix page table."""

    def __init__(self, allocator: Optional[PhysicalAllocator] = None):
        self.allocator = allocator or BumpAllocator()
        self._num_tables = 0
        self.root = self._new_table(4)

    def _new_table(self, level: int) -> _Table:
        paddr = self.allocator.alloc(TABLE_BYTES)
        self._num_tables += 1
        return _Table(paddr, level)

    # -- mapping -----------------------------------------------------
    def map(self, pte: PTE) -> None:
        leaf_level = _HUGE_LEVEL[pte.page_size]
        if pte.vpn % pte.page_size.pages_4k != 0:
            raise TranslationError(
                f"VPN {pte.vpn:#x} misaligned for {pte.page_size.name}"
            )
        table = self.root
        for level in LEVELS:
            index = level_index(pte.vpn, level)
            if level == leaf_level:
                existing = table.entries.get(index)
                if isinstance(existing, PTE):
                    raise TranslationError(f"VPN {pte.vpn:#x} already mapped")
                if isinstance(existing, _Table):
                    raise TranslationError(
                        f"VPN {pte.vpn:#x}: large mapping overlaps smaller pages"
                    )
                table.entries[index] = pte
                return
            nxt = table.entries.get(index)
            if nxt is None:
                nxt = self._new_table(level - 1)
                table.entries[index] = nxt
            elif isinstance(nxt, PTE):
                raise TranslationError(
                    f"VPN {pte.vpn:#x} overlaps an existing large page"
                )
            table = nxt

    def unmap(self, vpn: int) -> PTE:
        table = self.root
        for level in LEVELS:
            index = level_index(vpn, level)
            entry = table.entries.get(index)
            if entry is None:
                raise TranslationError(f"VPN {vpn:#x} is not mapped")
            if isinstance(entry, PTE):
                if entry.vpn != vpn:
                    raise TranslationError(
                        f"VPN {vpn:#x} is inside a mapping starting at "
                        f"{entry.vpn:#x}; unmap uses the first VPN"
                    )
                del table.entries[index]
                return entry
            table = entry
        raise TranslationError(f"VPN {vpn:#x} is not mapped")

    # -- walking -----------------------------------------------------
    def walk(self, vpn: int) -> WalkResult:
        accesses = []
        append = accesses.append
        table = self.root
        for level, shift, kind in _WALK_STEPS:
            index = (vpn >> shift) & 511
            append(WalkAccess(table.paddr + index * ENTRY_BYTES, kind, level))
            entry = table.entries.get(index)
            if entry is None:
                return WalkResult(None, accesses)
            if entry.__class__ is PTE:
                return WalkResult(entry, accesses)
            table = entry
        return WalkResult(None, accesses)

    def find(self, vpn: int) -> Optional[PTE]:
        table = self.root
        for level in LEVELS:
            entry = table.entries.get(level_index(vpn, level))
            if entry is None or isinstance(entry, PTE):
                return entry
            table = entry
        return None

    @property
    def table_bytes(self) -> int:
        return self._num_tables * TABLE_BYTES
