"""Baseline translation schemes the paper compares LVM against."""

from repro.pagetables.base import PageTable, walk_serial_length, walk_traffic
from repro.pagetables.ecpt import ECPT
from repro.pagetables.fpt import FlattenedPageTable
from repro.pagetables.hashed import HashedPageTable, blake2_slot
from repro.pagetables.ideal import IdealPageTable
from repro.pagetables.radix import RadixPageTable

__all__ = [
    "ECPT",
    "FlattenedPageTable",
    "HashedPageTable",
    "IdealPageTable",
    "PageTable",
    "RadixPageTable",
    "blake2_slot",
    "walk_serial_length",
    "walk_traffic",
]
