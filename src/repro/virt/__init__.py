"""Virtualization: nested (2D) translation with radix and LVM tables."""

from repro.virt.nested import (
    NestedLVMWalker,
    NestedRadixWalker,
    NestedWalkOutcome,
    build_host_mapping,
)

__all__ = [
    "NestedLVMWalker",
    "NestedRadixWalker",
    "NestedWalkOutcome",
    "build_host_mapping",
]
