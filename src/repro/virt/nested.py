"""Virtualization support: nested page tables (paper section 4.6.2).

Under virtualization every *guest* page-table access is itself a guest-
physical address that must be translated through the *host* page table.
For radix this is the infamous 2D walk: 4 guest levels, each needing a
4-step host walk for its GPA, plus the final data GPA translation —
up to 4x5 + 4 = 24 memory accesses.

LVM nests the same way but each dimension is single-access in the
common case: d_g guest model accesses + 1 guest PTE, each translated by
(d_h models + 1 PTE) host lookups — and because the learned models are
tiny and LWC/nested-TLB cached, the effective walk collapses toward a
single host-translated access.  The paper: "Due to the increased
performance cost of nested radix page tables, we expect LVM to provide
even higher performance gains."

The nested walkers below reuse the per-dimension software tables and
cache guest-physical -> host-physical translations in a *nested TLB*
(as real MMUs do for the second dimension).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.learned_index import LearnedIndex
from repro.errors import SchemeCapabilityError
from repro.mmu.hierarchy import MemoryHierarchy
from repro.mmu.tlb import TLBArray
from repro.mmu.walk_cache import LWC, RadixPWC
from repro.pagetables.radix import RadixPageTable
from repro.schemes import registry as scheme_registry
from repro.types import PTE, PageSize


@dataclass
class NestedWalkOutcome:
    """One 2D page walk: result plus latency and traffic accounting."""

    pte: Optional[PTE]  # the guest PTE (GVA -> GPA)
    host_pte: Optional[PTE]  # the host mapping of the final GPA
    cycles: int
    memory_accesses: int
    host_walks: int  # second-dimension walks actually performed

    @property
    def hit(self) -> bool:
        return self.pte is not None and self.host_pte is not None


class _NestedTLB:
    """GPA -> host-PTE cache for the second walk dimension."""

    def __init__(self, entries: int = 32):
        self._arr = TLBArray("nTLB", entries, 4, PageSize.SIZE_4K)
        self.hits = 0
        self.misses = 0

    def lookup(self, gpa_vpn: int) -> Optional[PTE]:
        pte = self._arr.lookup(gpa_vpn, asid=0)
        if pte is not None and pte.covers(gpa_vpn):
            self.hits += 1
            return pte
        self.misses += 1
        return None

    def insert(self, pte: PTE) -> None:
        self._arr.insert(pte, asid=0)


class NestedRadixWalker:
    """The 2D radix walk of hardware-assisted virtualization."""

    def __init__(
        self,
        guest_table: RadixPageTable,
        host_table: RadixPageTable,
        hierarchy: MemoryHierarchy,
        pwc: Optional[RadixPWC] = None,
        host_pwc: Optional[RadixPWC] = None,
    ):
        self.guest = guest_table
        self.host = host_table
        self.hierarchy = hierarchy
        self.pwc = pwc or RadixPWC()
        self.host_pwc = host_pwc or RadixPWC()
        self.ntlb = _NestedTLB()
        self.walks = 0
        self.total_cycles = 0
        self.total_accesses = 0

    def _host_translate(self, gpa: int) -> "tuple[Optional[PTE], int, int]":
        """Translate one guest-physical address; returns
        (host pte, cycles, memory accesses)."""
        gpa_vpn = gpa >> 12
        cached = self.ntlb.lookup(gpa_vpn)
        if cached is not None:
            return cached, 1, 0
        result = self.host.walk(gpa_vpn)
        lowest = self.host_pwc.lowest_cached_level(gpa_vpn, 0)
        cycles = self.host_pwc.latency
        issued = 0
        for access in result.accesses:
            if lowest is not None and access.level >= lowest:
                continue
            cycles += self.hierarchy.walk_access(access.paddr)
            issued += 1
        if len(result.accesses) > 1:
            self.host_pwc.fill(gpa_vpn, 0, result.accesses[-2].level)
        if result.pte is not None:
            self.ntlb.insert(result.pte)
        return result.pte, cycles, issued

    def walk(self, gva_vpn: int, asid: int = 0) -> NestedWalkOutcome:
        """2D walk: each guest page-table access is host-translated."""
        guest_result = self.guest.walk(gva_vpn)
        lowest = self.pwc.lowest_cached_level(gva_vpn, asid)
        cycles = self.pwc.latency
        issued = 0
        host_walks = 0
        for access in guest_result.accesses:
            if lowest is not None and access.level >= lowest:
                continue
            # The guest table entry's address is a GPA: translate it
            # through the host dimension first, then fetch it.
            _, host_cycles, host_issued = self._host_translate(access.paddr)
            host_walks += 1
            cycles += host_cycles + self.hierarchy.walk_access(access.paddr)
            issued += host_issued + 1
        if len(guest_result.accesses) > 1:
            self.pwc.fill(gva_vpn, asid, guest_result.accesses[-2].level)
        host_pte = None
        if guest_result.pte is not None:
            # Finally translate the data GPA itself.
            gpa = guest_result.pte.ppn << 12
            host_pte, host_cycles, host_issued = self._host_translate(gpa)
            host_walks += 1
            cycles += host_cycles
            issued += host_issued
        self.walks += 1
        self.total_cycles += cycles
        self.total_accesses += issued
        return NestedWalkOutcome(
            guest_result.pte, host_pte, cycles, issued, host_walks
        )


class NestedLVMWalker:
    """2D LVM walk: learned indexes in both dimensions.

    The guest OS keeps an LVM index for GVA->GPA; the hypervisor keeps
    one for GPA->HPA (the paper's "Virtualization Support").  Each
    dimension enjoys single-access translation, so the worst-case 2D
    walk is (d_g+1) x (d_h+1) but the common case — LWCs holding both
    tiny indexes, nested TLB covering hot GPAs — is one guest PTE fetch
    plus one host PTE fetch.
    """

    def __init__(
        self,
        guest_index: LearnedIndex,
        host_index: LearnedIndex,
        hierarchy: MemoryHierarchy,
        lwc: Optional[LWC] = None,
        host_lwc: Optional[LWC] = None,
    ):
        self.guest = guest_index
        self.host = host_index
        self.hierarchy = hierarchy
        self.lwc = lwc or LWC()
        self.host_lwc = host_lwc or LWC()
        self.ntlb = _NestedTLB()
        self.walks = 0
        self.total_cycles = 0
        self.total_accesses = 0

    def _host_translate(self, gpa: int) -> "tuple[Optional[PTE], int, int]":
        gpa_vpn = gpa >> 12
        cached = self.ntlb.lookup(gpa_vpn)
        if cached is not None:
            return cached, 1, 0
        trace = self.host.lookup(gpa_vpn)
        cycles = 0
        issued = 0
        for level, offset, paddr in trace.node_accesses:
            cycles += self.host_lwc.latency
            if not self.host_lwc.lookup(1, level, offset):
                cycles += self.hierarchy.walk_access(paddr)
                issued += 1
                self.host_lwc.fill_line(1, level, offset)
        for paddr in trace.pte_line_paddrs:
            cycles += self.hierarchy.walk_access(paddr)
            issued += 1
        if trace.pte is not None:
            self.ntlb.insert(trace.pte)
        return trace.pte, cycles, issued

    def walk(self, gva_vpn: int, asid: int = 0) -> NestedWalkOutcome:
        trace = self.guest.lookup(gva_vpn)
        cycles = 0
        issued = 0
        host_walks = 0
        for level, offset, paddr in trace.node_accesses:
            cycles += self.lwc.latency
            if not self.lwc.lookup(asid, level, offset):
                _, host_cycles, host_issued = self._host_translate(paddr)
                host_walks += 1
                cycles += host_cycles + self.hierarchy.walk_access(paddr)
                issued += host_issued + 1
                self.lwc.fill_line(asid, level, offset)
        for paddr in trace.pte_line_paddrs:
            _, host_cycles, host_issued = self._host_translate(paddr)
            host_walks += 1
            cycles += host_cycles + self.hierarchy.walk_access(paddr)
            issued += host_issued + 1
        host_pte = None
        if trace.pte is not None:
            gpa = trace.pte.ppn << 12
            host_pte, host_cycles, host_issued = self._host_translate(gpa)
            host_walks += 1
            cycles += host_cycles
            issued += host_issued
        self.walks += 1
        self.total_cycles += cycles
        self.total_accesses += issued
        return NestedWalkOutcome(
            trace.pte, host_pte, cycles, issued, host_walks
        )


def build_host_mapping(
    guest_pages: int,
    allocator,
    scheme: str = "lvm",
    base_gpa_vpn: int = 1 << 20,
):
    """The hypervisor's GPA->HPA mapping backing a guest's memory.

    Guest physical memory is one big, regular region (hypervisors
    allocate it in large chunks), which is the learned index's best
    case — one more reason nested LVM nests cheaply.

    ``scheme`` resolves through the scheme registry; schemes without
    virtualization support raise
    :class:`~repro.errors.SchemeCapabilityError` naming the schemes
    that have it.
    """
    ptes = [
        PTE(vpn=base_gpa_vpn + i, ppn=(2 << 20) + i) for i in range(guest_pages)
    ]
    descriptor = scheme_registry.get(scheme)
    if not descriptor.supports_virtualization:
        raise SchemeCapabilityError(
            f"scheme {descriptor.name!r} cannot host nested translation; "
            f"virtualization-capable schemes: "
            f"{', '.join(scheme_registry.virtualization_schemes())}"
        )
    return descriptor.make_host_table(allocator, ptes)
