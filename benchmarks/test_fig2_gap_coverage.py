"""Figure 2: virtual-memory gap coverage (paper section 3.1).

Regenerates the gap = 1 coverage series for the nine-benchmark suite
plus the four production-shaped workloads, under both userspace
allocator models.  Paper findings reproduced here: a minimum of ~78%
coverage across workloads, production workloads similar to benchmarks,
and near-identical coverage across jemalloc and tcmalloc.
"""

from repro.analysis import (
    allocator_divergence,
    gap_coverage_study,
    minimum_coverage,
    render_table,
)


def run_figure2():
    rows = gap_coverage_study()
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row.workload, {})[row.allocator] = row.coverage
    return rows, by_workload


def test_fig2_gap_coverage(benchmark):
    rows, by_workload = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    table_rows = [
        (name, cols.get("jemalloc", 0.0), cols.get("tcmalloc", 0.0))
        for name, cols in by_workload.items()
    ]
    print()
    print(render_table(
        ["workload", "jemalloc", "tcmalloc"], table_rows,
        title="Figure 2 — gap=1 coverage of the virtual address space",
    ))
    minimum = minimum_coverage(rows)
    divergence = allocator_divergence(rows)
    print(f"minimum coverage: {minimum:.3f}   allocator divergence: {divergence:.4f}")
    # Paper: "a minimum of 78% of gaps are equal to 1".
    assert minimum >= 0.70
    # Paper: "regularity remains practically the same" across allocators.
    assert divergence < 0.05
    # Production workloads behave like benchmarks (same coverage band).
    prod = [r.coverage for r in rows if r.workload.startswith("prod")]
    bench = [r.coverage for r in rows if not r.workload.startswith("prod")]
    assert min(prod) >= min(bench) - 0.1
