"""Section 7.3 "Index Size, Cacheability, and Scaling" — the hardware
side of the future-proofing claim.

As the memory footprint grows, radix page walk caches need linearly
more reach (their PMD-level hit rate collapses at fixed capacity),
while LVM's whole index keeps fitting the 16-entry LWC: its hit rate
stays above 99% regardless of footprint.
"""

from repro.analysis import render_table
from repro.sim import SimConfig, Simulator
from repro.workloads import build_workload

from conftest import bench_refs

FOOTPRINTS_GB = (16, 64, 256)


def run_scaling():
    rows = []
    for gb in FOOTPRINTS_GB:
        workload = build_workload("gups", footprint_override=gb << 30)
        cfg = SimConfig(num_refs=bench_refs())
        radix = Simulator("radix", workload, cfg).run()
        lvm_sim = Simulator("lvm", workload, cfg)
        lvm = lvm_sim.run()
        rows.append((
            gb,
            radix.walk_cache_detail.get("L2", 0.0),  # PWC PMD-level hits
            lvm.walk_cache_hit_rate,
            lvm.index_size_bytes,
        ))
    return rows


def test_sec73_cacheability_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    print()
    print(render_table(
        ["footprint", "radix PWC PMD hit", "LVM LWC hit", "LVM index bytes"],
        [(f"{gb}GB", pmd, lwc, size) for gb, pmd, lwc, size in rows],
        title="Section 7.3 — cacheability vs. footprint (gups)",
    ))
    pmd_hits = [r[1] for r in rows]
    lwc_hits = [r[2] for r in rows]
    sizes = [r[3] for r in rows]
    # Radix PWC coverage degrades with footprint at fixed capacity.
    assert pmd_hits[-1] < pmd_hits[0] or pmd_hits[0] < 0.3
    # The LWC stays effectively perfect at every footprint.
    assert min(lwc_hits) > 0.99
    # And the index that makes that possible does not grow.
    assert max(sizes) - min(sizes) <= 64
