"""Figure 10: MMU overhead relative to radix (paper section 7.2).

Total cycles memory requests spend in the MMU (TLBs plus page walker),
normalized to radix separately for 4 KB and THP.  Paper findings: LVM
reduces MMU overhead by an average of 39% (4 KB) / 29% (THP) and
outperforms ECPT by ~8% on average.
"""

from repro.analysis import render_table
from repro.sim import mean


def test_fig10_mmu_overhead(suite_results, benchmark):
    def collect():
        out = {}
        for thp in (False, True):
            rows = []
            for workload in suite_results.workloads():
                rows.append((
                    workload,
                    suite_results.mmu_overhead_relative(workload, "ecpt", thp),
                    suite_results.mmu_overhead_relative(workload, "lvm", thp),
                    suite_results.mmu_overhead_relative(workload, "ideal", thp),
                ))
            out[thp] = rows
        return out

    tables = benchmark.pedantic(collect, rounds=1, iterations=1)
    for thp in (False, True):
        label = "THP" if thp else "4KB"
        print()
        print(render_table(
            ["workload", "ecpt", "lvm", "ideal"], tables[thp],
            title=f"Figure 10 — MMU overhead relative to radix ({label})",
        ))
        print(f"lvm average: {mean(r[2] for r in tables[thp]):.3f}")

    lvm_4k = [r[2] for r in tables[False]]
    # Paper: 39% average reduction at 4 KB; we accept >= 10% in shape.
    assert mean(lvm_4k) < 0.90
    # LVM never exceeds radix MMU overhead at 4 KB.
    assert max(lvm_4k) < 1.1
