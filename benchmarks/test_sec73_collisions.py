"""Section 7.3 collision studies.

* Collision rates: LVM vs. the Blake2 hash table at load factor 0.6
  (paper: LVM 0.2% (4 KB) / 0.6% (THP) vs. 22% / 19% for the table).
* Collision resolution: average additional memory accesses per
  collision, bounded by C_err = 3 (paper measures 2.36).
"""

from repro.analysis import collision_study, render_table
from repro.core.config import LVMConfig
from repro.sim import mean

from conftest import bench_refs, bench_workloads

# The collision study drives the software index directly; a subset of
# workloads keeps the bench quick while spanning all workload kinds.
STUDY_WORKLOADS = [
    n for n in ("bfs", "dc", "gups", "mem$", "MUMr") if n in bench_workloads()
]


def run_study(thp):
    return [
        collision_study(name, thp=thp, num_lookups=bench_refs())
        for name in STUDY_WORKLOADS
    ]


def test_sec73_collision_rates_4k(benchmark):
    rows = benchmark.pedantic(run_study, args=(False,), rounds=1, iterations=1)
    print()
    print(render_table(
        ["workload", "LVM", "Blake2 hash table", "extra acc/collision"],
        [
            (r.workload, r.lvm_collision_rate, r.hash_collision_rate,
             r.lvm_avg_extra_accesses)
            for r in rows
        ],
        title="Section 7.3 — collision rates (4KB)",
    ))
    lvm = mean(r.lvm_collision_rate for r in rows)
    hashed = mean(r.hash_collision_rate for r in rows)
    print(f"averages: lvm={lvm:.4f} hash={hashed:.4f}")
    # Paper: 0.2% vs 22% — a drastic gap; we require >= one order of
    # magnitude and the same "near-zero vs tens of percent" shape.
    assert lvm < 0.05
    assert hashed > 0.10
    assert hashed / max(lvm, 1e-6) > 5
    # Several workloads enjoy near-zero collision rates (paper text).
    assert sum(1 for r in rows if r.lvm_collision_rate < 0.005) >= 2


def test_sec73_collision_resolution_bounded(benchmark):
    rows = benchmark.pedantic(run_study, args=(True,), rounds=1, iterations=1)
    config = LVMConfig()
    for r in rows:
        # C_err bounds the average extra accesses per collision
        # (paper: average 2.36 with C_err = 3).
        if r.lvm_collision_rate > 0:
            assert r.lvm_avg_extra_accesses <= config.c_err + 1.0, r.workload
    lvm_thp = mean(r.lvm_collision_rate for r in rows)
    print(f"\nTHP collision rate average: {lvm_thp:.4f}")
    assert lvm_thp < 0.06
