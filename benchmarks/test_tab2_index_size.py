"""Table 2: LVM learned-index size in bytes (paper section 7.3).

Builds the steady-state index for every suite workload under 4 KB and
THP and reports its size.  Paper values: 96-128 bytes at 4 KB and
112-192 bytes under THP; the key property is that the whole index is a
few cache lines and fits the 16-entry LWC.
"""

from repro.analysis import index_size_table, render_table
from repro.workloads import SUITE

from conftest import bench_workloads


def test_tab2_index_size(benchmark):
    names = [n for n in bench_workloads() if n in SUITE]
    table = benchmark.pedantic(
        index_size_table, args=(names,), rounds=1, iterations=1
    )
    rows = [(name, cols["4KB"], cols["THP"]) for name, cols in table.items()]
    print()
    print(render_table(
        ["workload", "LVM 4KB (bytes)", "LVM THP (bytes)"], rows,
        title="Table 2 — steady-state learned-index size",
    ))
    for name, cols in table.items():
        # Paper: ~96-192 bytes; the reproduction tolerates a few
        # hundred (our synthetic churn is harsher than Meta's spaces).
        assert cols["4KB"] <= 512, name
        assert cols["THP"] <= 1024, name
        # A multiple of the 16-byte model size by construction.
        assert cols["4KB"] % 16 == 0
