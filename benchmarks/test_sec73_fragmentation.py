"""Section 7.3 memory fragmentation study.

The paper caps LVM's physical allocations at 256 KB (abundant even in
highly fragmented datacenters, Figure 3) and pushes the free-memory
fragmentation index (FMFI) to 0.8 / 0.85 / 0.9: LVM adapts by creating
more, smaller gapped page tables, keeps per-node coverage high, and
performance stays put (LWC hit rates above 99%).
"""

from repro.analysis import render_table
from repro.core.nodes import leaf_nodes
from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import fragment_to_fmfi, fragment_to_max_contiguity
from repro.sim import SimConfig, Simulator
from repro.workloads import build_workload

from conftest import bench_refs


def _make_allocator(kind):
    buddy = BuddyAllocator(4 << 30)
    if kind == "cap256k":
        fragment_to_max_contiguity(buddy, 256 << 10)
    elif kind.startswith("fmfi"):
        fragment_to_fmfi(buddy, float(kind[4:]) / 100.0)
    return buddy


def test_sec73_fragmentation(benchmark):
    def run_all():
        workload = build_workload("gups")
        results = {}
        # Baseline: unfragmented.
        sim = Simulator("lvm", workload, SimConfig(num_refs=bench_refs()))
        results["none"] = (sim, sim.run())
        for kind in ("cap256k", "fmfi80", "fmfi85", "fmfi90"):
            cfg = SimConfig(num_refs=bench_refs())
            # Back the LVM structures with a pre-fragmented buddy.
            sim = Simulator("lvm", workload, cfg, allocator=_make_allocator(kind))
            results[kind] = (sim, sim.run())
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base_cycles = results["none"][1].cycles
    rows = []
    for kind, (sim, res) in results.items():
        index = sim.manager.index
        leaves = leaf_nodes(index.root)
        max_table = max(l.table.size_bytes for l in leaves)
        rows.append((
            kind, len(leaves), f"{max_table >> 10}KB",
            f"{res.walk_cache_hit_rate:.4f}",
            f"{base_cycles / res.cycles:.3f}",
        ))
    print()
    print(render_table(
        ["fragmentation", "leaves", "largest GPT", "LWC hit rate",
         "speedup vs unfragmented"],
        rows,
        title="Section 7.3 — LVM under physical memory fragmentation",
    ))
    capped = results["cap256k"]
    for leaf in leaf_nodes(capped[0].manager.index.root):
        assert leaf.table.size_bytes <= 256 << 10
    for kind, (sim, res) in results.items():
        # Paper: LWC hit rates stay above 99% and performance is flat.
        assert res.walk_cache_hit_rate > 0.98, kind
        assert res.cycles < base_cycles * 1.06, kind
