"""Ablations over LVM's design parameters (DESIGN.md extensions).

Sweeps the cost-model weights, the gapped-array scale, the depth limit
and the minimum insertion distance, exposing each design choice's
contribution — the trade-offs section 4.2.3 describes qualitatively.
"""

from repro.analysis import render_table
from repro.core import LearnedIndex, LVMConfig
from repro.kernel.thp import plan_vma_mappings
from repro.mem import BumpAllocator
from repro.types import PTE
from repro.workloads import build_workload


def mappings_for(name: str):
    workload = build_workload(name)
    ptes = []
    ppn = 1 << 20
    for vma in workload.vmas:
        for plan in plan_vma_mappings(vma, thp=False):
            ptes.append(PTE(vpn=plan.vpn, ppn=ppn, page_size=plan.page_size))
            ppn += plan.page_size.pages_4k
    return workload, ptes


def build_with(config: LVMConfig, ptes):
    from repro.core.rebase import AddressSpaceRebaser, cluster_regions

    regions = cluster_regions(
        [p.vpn for p in ptes], [p.page_size.pages_4k for p in ptes]
    )
    index = LearnedIndex(
        BumpAllocator(), config, rebaser=AddressSpaceRebaser(regions)
    )
    index.bulk_build(ptes)
    return index


def probe(index, workload, n=15_000):
    trace = workload.trace(n, seed=2)
    for va in trace:
        index.lookup(int(va) >> 12)
    return index.stats.collision_rate


def test_ablation_x3_collision_weight(benchmark):
    """x3 trades index size for collision rate (equation 1)."""
    def run():
        workload, ptes = mappings_for("MUMr")
        rows = []
        for x3 in (0.0, 20.0, 200.0, 2000.0):
            config = LVMConfig(x3=x3)
            index = build_with(config, ptes)
            cr = probe(index, workload)
            rows.append((x3, index.index_size_bytes, cr))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["x3", "index bytes", "collision rate"], rows,
        title="Ablation — collision weight x3 (MUMr)",
    ))
    # More collision weight never hurts collisions.
    assert rows[-1][2] <= rows[0][2] + 0.01


def test_ablation_ga_scale(benchmark):
    """ga_scale trades memory overhead for insert behaviour (4.3.2)."""
    def run():
        rows = []
        base = [PTE(vpn=2 * v, ppn=v) for v in range(30_000)]
        for ga in (1.05, 1.3, 1.6):
            config = LVMConfig(ga_scale=ga)
            index = LearnedIndex(BumpAllocator(), config)
            index.bulk_build(list(base))
            for v in range(0, 6000, 2):  # gap inserts
                index.insert(PTE(vpn=2 * v + 1, ppn=v))
            overhead = index.table_bytes / index.min_required_bytes
            rows.append((
                ga, f"{overhead:.2f}x",
                index.stats.local_retrains + index.stats.full_rebuilds,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["ga_scale", "table overhead", "retrains during inserts"], rows,
        title="Ablation — gapped-array scale",
    ))
    # Larger gaps absorb more inserts without retraining.
    assert rows[-1][2] <= rows[0][2]


def test_ablation_d_limit(benchmark):
    """d_limit bounds worst-case walk length (section 4.2.3)."""
    def run():
        workload, ptes = mappings_for("mem$")
        rows = []
        for d_limit in (1, 2, 3, 4):
            config = LVMConfig(d_limit=d_limit)
            index = build_with(config, ptes)
            cr = probe(index, workload, n=8_000)
            rows.append((d_limit, index.depth, index.index_size_bytes, cr))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["d_limit", "actual depth", "index bytes", "collision rate"], rows,
        title="Ablation — depth limit (mem$)",
    ))
    for d_limit, depth, _, _ in rows:
        assert depth <= d_limit
    # A one-level index cannot describe a multi-segment space as well.
    assert rows[0][3] >= rows[2][3] - 0.005


def test_ablation_min_insert_distance(benchmark):
    """The minimum insertion distance amortizes edge growth (4.3.4)."""
    def run():
        rows = []
        for dist_mb in (1, 16, 64, 256):
            config = LVMConfig(min_insert_distance_bytes=dist_mb << 20)
            index = LearnedIndex(BumpAllocator(), config)
            index.bulk_build([PTE(vpn=v, ppn=v) for v in range(10_000)])
            for v in range(10_000, 60_000):
                index.insert(PTE(vpn=v, ppn=v))
            rows.append((
                f"{dist_mb}MB", index.stats.rescales,
                index.stats.local_retrains, index.stats.full_rebuilds,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["min insert distance", "rescales", "local retrains", "rebuilds"],
        rows,
        title="Ablation — minimum insertion distance (50k edge inserts)",
    ))
    # Larger distances mean fewer edge expansions.
    assert rows[-1][1] <= rows[0][1]
    # The paper's 64 MB default absorbs 50k pages in a handful of
    # expansions with no rebuilds.
    by_dist = {r[0]: r for r in rows}
    assert by_dist["64MB"][1] <= 16
    assert by_dist["64MB"][3] == 0
