#!/usr/bin/env python
"""Serving-layer benchmark: runs the four robustness scenarios and
writes ``BENCH_serve.json`` at the repo root.

This is a thin argv wrapper around :func:`repro.serve.bench.run_serve_bench`
(also reachable as ``repro serve-bench``).  The four scenarios:

1. **baseline** — four tenants, zipf translate mix: p50/p99 latency,
   requests/sec, refs/sec.
2. **overload** — ~2x the admission window of offered concurrency;
   asserts the server sheds with typed frames instead of queueing.
3. **chaos** — one tenant poisoned past the recovery ladder; asserts
   it is quarantined alone and the innocent tenant sees zero errors.
4. **kill_recovery** — the same two-tenant replay with and without a
   SIGKILL of the tenant-hosting shard mid-run; asserts bit-identical
   tenant digests and reports recovery time.

Not a pytest file on purpose: it forks shard workers, installs signal
handlers and wants a quiet sequential process.  Run via::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick
    PYTHONPATH=src python benchmarks/bench_serve.py          # full, minutes

The full mode drives the >=100k-request two-tenant replay of the
acceptance criteria; on one CPU expect several minutes of genuine
simulation work (zipf-tail LVM walks dominate, not serving overhead).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve.bench import run_serve_bench, write_bench_json  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run (a few thousand requests instead of >=100k)",
    )
    parser.add_argument("--scheme", default="lvm", help="translation scheme for tenants")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serve.json",
    )
    args = parser.parse_args(argv)

    results = run_serve_bench(quick=args.quick, scheme=args.scheme)
    write_bench_json(results, str(args.out))
    print(json.dumps(results["headline"], indent=2))
    print(f"wrote {args.out}")
    if not results["ok"]:
        print("FAIL: a robustness scenario did not meet its assertion")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
