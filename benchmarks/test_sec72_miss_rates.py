"""Section 7.2 "TLB, PWC and LWC Miss Rates".

Paper findings: L2 TLB miss rates are high (57.5%-99.4%) and identical
across schemes; the radix PWC suffers medium-to-high miss rates at the
PMD level while upper levels hit; and LVM's LWC enjoys hit rates above
99% because the whole index fits.
"""

from repro.analysis import render_table


def test_sec72_miss_rates(suite_results, benchmark):
    def collect():
        rows = []
        for workload in suite_results.workloads():
            radix = suite_results.get(workload, "radix", False)
            lvm = suite_results.get(workload, "lvm", False)
            rows.append((
                workload,
                radix.l2_tlb_miss_rate,
                lvm.l2_tlb_miss_rate,
                radix.walk_cache_detail.get("L2", 0.0),
                radix.walk_cache_detail.get("L3", 0.0),
                lvm.walk_cache_hit_rate,
            ))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    print(render_table(
        ["workload", "L2TLB miss (radix)", "L2TLB miss (lvm)",
         "PWC PMD hit", "PWC PUD hit", "LWC hit"],
        rows,
        title="Section 7.2 — TLB / PWC / LWC rates (4KB)",
    ))
    for row in rows:
        name, radix_miss, lvm_miss, pmd_hit, pud_hit, lwc_hit = row
        # TLB behaviour is scheme-independent (paper: "nearly identical").
        assert abs(radix_miss - lvm_miss) < 0.02, name
        # Paper range: 57.5%-99.4% for the L2 TLB.
        assert 0.3 < radix_miss <= 1.0, name
        # LWC hit rate above 99% (paper) on every workload.
        assert lwc_hit > 0.99, name
        # PWC: upper level hits well above the PMD level's.
        assert pud_hit >= pmd_hit - 0.05, name
    # PMD-level PWC miss rates are medium-to-high on random workloads.
    pmd_hits = [r[3] for r in rows]
    assert min(pmd_hits) < 0.45
