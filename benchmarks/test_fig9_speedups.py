"""Figure 9: end-to-end speedups (paper section 7.1).

Regenerates the speedup bars: radix / ECPT / LVM / Ideal under 4 KB
pages and THP, normalized to radix at the same page size.  Paper
findings checked in shape: LVM speeds up every workload at 4 KB
(paper: 5-26%, average 14%), beats or matches ECPT on average, and is
within ~2% of the single-access Ideal design.
"""

from repro.analysis import render_table
from repro.sim import mean
from repro.sim.runner import summarize_speedups


def test_fig9_speedups(suite_results, benchmark):
    def summarize():
        return {
            thp: summarize_speedups(suite_results, thp) for thp in (False, True)
        }

    tables = benchmark.pedantic(summarize, rounds=1, iterations=1)
    for thp in (False, True):
        rows = [
            (r["workload"], r["radix"], r["ecpt"], r["lvm"], r["ideal"])
            for r in tables[thp]
        ]
        label = "THP" if thp else "4KB"
        print()
        print(render_table(
            ["workload", "radix", "ecpt", "lvm", "ideal"], rows,
            title=f"Figure 9 — end-to-end speedup over radix ({label})",
        ))
        avg = {s: mean(r[s] for r in tables[thp]) for s in ("ecpt", "lvm", "ideal")}
        print(f"averages: ecpt={avg['ecpt']:.3f} lvm={avg['lvm']:.3f} ideal={avg['ideal']:.3f}")

    four_kb = tables[False]
    lvm = [r["lvm"] for r in four_kb]
    ecpt = [r["ecpt"] for r in four_kb]
    ideal = [r["ideal"] for r in four_kb]
    # 4 KB: LVM speeds up every workload (paper: 5%-26%).
    assert min(lvm) > 1.0
    assert mean(lvm) > 1.05
    # LVM at least matches ECPT on average (paper: +5%).
    assert mean(lvm) >= mean(ecpt) - 0.01
    # Within ~2% of the ideal single-access design (paper: within 1%).
    assert mean(ideal) - mean(lvm) < 0.03
