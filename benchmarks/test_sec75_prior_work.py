"""Section 7.5 comparisons with prior work: ASAP, Midgard, FPT.

Paper findings reproduced in shape:

* ASAP (7.5.1): slower than both ECPT and LVM — the prefetcher's extra
  traffic erases its latency win.
* Midgard (7.5.2): only a modest gain over radix (translation still
  radix on LLC misses), well below LVM.
* FPT (7.5.3): close to LVM under light fragmentation; degrades toward
  radix when 2 MB page-table allocations cannot be satisfied.
"""

from repro.analysis import render_table
from repro.mem.fragmentation import fragment_to_max_contiguity
from repro.sim import SimConfig, Simulator, mean
from repro.workloads import build_workload

from conftest import bench_refs

WORKLOADS = ("gups", "bfs", "mem$")


def run_schemes(schemes, phys_mem=None, fragment=False, asap_success=1.0):
    out = {}
    for name in WORKLOADS:
        workload = build_workload(name)
        per = {}
        for scheme in schemes:
            cfg = SimConfig(num_refs=bench_refs())
            cfg.asap_prefetch_success = asap_success
            if phys_mem is not None:
                cfg.phys_mem_bytes = phys_mem
            sim = Simulator(scheme, workload, cfg)
            if fragment and scheme in ("fpt",):
                pass  # fragmentation handled via phys_mem + pre-frag below
            per[scheme] = sim.run()
        out[name] = per
    return out


def test_sec75_asap_and_midgard(benchmark):
    results = benchmark.pedantic(
        run_schemes, args=(("radix", "ecpt", "lvm", "asap", "midgard"),),
        rounds=1, iterations=1,
    )
    rows = []
    speedups = {s: [] for s in ("ecpt", "lvm", "asap", "midgard")}
    for name, per in results.items():
        base = per["radix"].cycles
        row = [name]
        for scheme in ("ecpt", "lvm", "asap", "midgard"):
            sp = base / per[scheme].cycles
            speedups[scheme].append(sp)
            row.append(sp)
        rows.append(tuple(row))
    print()
    print(render_table(
        ["workload", "ecpt", "lvm", "asap", "midgard"], rows,
        title="Section 7.5 — prior-work speedups over radix (4KB)",
    ))
    # ASAP below both ECPT and LVM (paper: -3% / -8%).
    assert mean(speedups["asap"]) < mean(speedups["ecpt"])
    assert mean(speedups["asap"]) < mean(speedups["lvm"])
    # Midgard's gain is modest and LVM clearly ahead (paper: +3% vs +14%).
    assert mean(speedups["midgard"]) < mean(speedups["lvm"])


def test_sec75_fpt_fragmentation(benchmark):
    def run_fpt():
        workload = build_workload("gups")
        out = {}
        # Light fragmentation: folds succeed.
        cfg = SimConfig(num_refs=bench_refs())
        out["radix"] = Simulator("radix", workload, cfg).run()
        out["lvm"] = Simulator("lvm", workload, SimConfig(num_refs=bench_refs())).run()
        out["fpt_light"] = Simulator(
            "fpt", workload, SimConfig(num_refs=bench_refs())
        ).run()
        # Heavy fragmentation: no 2 MB blocks for page tables.
        from repro.mem.buddy import BuddyAllocator
        buddy = BuddyAllocator(8 << 30)
        fragment_to_max_contiguity(buddy, 256 << 10)
        sim = Simulator(
            "fpt", workload, SimConfig(num_refs=bench_refs()), allocator=buddy
        )
        out["fpt_frag"] = sim.run()
        out["fpt_frag_folds"] = sim.page_table.fold_success_rate
        return out

    out = benchmark.pedantic(run_fpt, rounds=1, iterations=1)
    base = out["radix"].cycles
    rows = [
        ("lvm", base / out["lvm"].cycles),
        ("fpt (light frag)", base / out["fpt_light"].cycles),
        ("fpt (heavy frag)", base / out["fpt_frag"].cycles),
    ]
    print()
    print(render_table(
        ["scheme", "speedup over radix"], rows,
        title="Section 7.5.3 — FPT vs fragmentation (gups)",
    ))
    print(f"fold success under heavy fragmentation: {out['fpt_frag_folds']:.2f}")
    light = base / out["fpt_light"].cycles
    heavy = base / out["fpt_frag"].cycles
    lvm = base / out["lvm"].cycles
    # Paper: LVM ~5% ahead of FPT in light fragmentation; FPT degrades
    # toward radix when 2 MB allocations fail.
    assert lvm >= light - 0.02
    assert heavy < light
    assert heavy < 1.05  # close to radix
    assert out["fpt_frag_folds"] < 0.5
