"""Section 7.3 tail-latency study (memcached).

"Our results show that LVM computational costs do not affect even the
99th percentile tail latency."  We replay a memcached GET stream,
charging each request its translation + data-access cycles; concurrent
address-space growth runs in the background so LVM's management events
(inserts, rescales, the odd retrain) land *between* requests, and the
request-latency distribution is compared against radix.
"""

import numpy as np

from repro.analysis import render_table
from repro.sim import SimConfig, Simulator
from repro.types import PTE
from repro.workloads import build_workload

from conftest import bench_refs

ACCESSES_PER_REQUEST = 4  # bucket probe + item + metadata touches


def run_request_stream(scheme: str):
    workload = build_workload("mem$")
    cfg = SimConfig(num_refs=bench_refs())
    sim = Simulator(scheme, workload, cfg)
    trace = workload.trace(bench_refs(), cfg.trace_seed)
    num_requests = len(trace) // ACCESSES_PER_REQUEST
    latencies = np.zeros(num_requests)
    core = cfg.core
    # Background growth: a fresh arena faulted in while serving.
    growth_base = max(v.end_vpn for v in workload.vmas) + (1 << 13)
    growth_cursor = 0
    for r in range(num_requests):
        cycles = 0.0
        for k in range(ACCESSES_PER_REQUEST):
            va = int(trace[r * ACCESSES_PER_REQUEST + k])
            pte, tcycles = sim.mmu.translate(va)
            if pte is None:
                sim.process.handle_fault(va)
                pte, more = sim.mmu.translate(va)
                tcycles += more
            cycles += tcycles * core.walk_stall_exposure
            cycles += sim.hierarchy.access(pte.translate(va)) * core.data_stall_exposure
        if scheme == "lvm" and r % 50 == 0:
            # Growth between requests: LVM management work happens here.
            before = sim.manager.index.stats.local_retrains
            sim.page_table.map(PTE(vpn=growth_base + growth_cursor,
                                   ppn=growth_cursor))
            growth_cursor += 1
            retrained = sim.manager.index.stats.local_retrains - before
            cycles += retrained * cfg.lvm_costs.local_retrain_cycles
        latencies[r] = cycles
    return latencies


def test_sec73_tail_latency(benchmark):
    def run_both():
        return {s: run_request_stream(s) for s in ("radix", "lvm")}

    lat = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    stats = {}
    for scheme, values in lat.items():
        p50, p99, p999 = np.percentile(values, [50, 99, 99.9])
        stats[scheme] = (p50, p99, p999)
        rows.append((scheme, f"{p50:.0f}", f"{p99:.0f}", f"{p999:.0f}"))
    print()
    print(render_table(
        ["scheme", "p50 (cycles)", "p99", "p99.9"], rows,
        title="Section 7.3 — memcached request latency under growth",
    ))
    # LVM's p99 beats radix's (its walks are cheaper) and management
    # work between requests does not blow up the tail.
    assert stats["lvm"][1] <= stats["radix"][1] * 1.02
    assert stats["lvm"][2] <= stats["radix"][2] * 1.2
