"""Table 1: architectural parameters.

Renders the simulated configuration so it can be compared line by line
with the paper's Table 1, and checks the structures under study use the
paper's geometry.
"""

from repro.analysis import render_table
from repro.mmu.tlb import TLBConfig
from repro.mmu.walk_cache import CWC, LWC, RadixPWC
from repro.sim import table1_rows


def test_tab1_parameters(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    print()
    print(render_table(["parameter", "value"], rows, title="Table 1"))
    # The hardware structures under study match Table 1 exactly.
    pwc = RadixPWC()
    assert len(pwc.levels) == 3
    assert all(l.capacity == 32 for l in pwc.levels.values())
    assert pwc.latency == 2
    lwc = LWC()
    assert lwc._lru.capacity == 16
    assert lwc.latency == 2
    cwc = CWC()
    assert cwc.pmd.capacity == 16
    assert cwc.pud.capacity == 2
    tlb = TLBConfig()
    assert tlb.l1_4k_entries == 64 and tlb.l1_4k_ways == 4
    assert tlb.l1_2m_entries == 32
    assert tlb.l2_entries_per_size == 2048 and tlb.l2_ways == 12
