"""Section 7.4 hardware characterization.

Analytical (CACTI-style) area/power model for the MMU caching
structures.  Paper results reproduced: a model computation + LWC lookup
takes 2 cycles; the LVM walker needs 0.000637 mm^2; the LWC needs
0.00364 mm^2 and 0.588 mW leakage; and versus the radix PWC, LVM saves
3.0x in storage bytes, 1.5x in area, and 1.9x in power.
"""

import pytest

from repro.analysis import compare_default, render_table, scalability_curve
from repro.analysis.area_model import WALKER_AREA_MM2, WALKER_CYCLES


def test_sec74_hardware_ratios(benchmark):
    cmp = benchmark.pedantic(compare_default, rounds=1, iterations=1)
    print()
    print(render_table(
        ["structure", "payload bytes", "area (mm^2)", "leakage (mW)"],
        [
            ("LVM LWC", cmp.lwc.payload_bytes, f"{cmp.lwc.area_mm2:.5f}",
             f"{cmp.lwc.leakage_mw:.3f}"),
            ("Radix PWC", cmp.pwc.payload_bytes, f"{cmp.pwc.area_mm2:.5f}",
             f"{cmp.pwc.leakage_mw:.3f}"),
        ],
        title="Section 7.4 — hardware structures",
    ))
    print(f"ratios (radix/LVM): bytes={cmp.bytes_ratio:.2f} "
          f"area={cmp.area_ratio:.2f} power={cmp.power_ratio:.2f}")
    print(f"LVM walker: {WALKER_AREA_MM2} mm^2, {WALKER_CYCLES} cycles per model step")
    # Paper headline numbers.
    assert cmp.bytes_ratio == pytest.approx(3.0, rel=0.01)
    assert cmp.area_ratio == pytest.approx(1.5, rel=0.05)
    assert cmp.power_ratio == pytest.approx(1.9, rel=0.05)
    assert cmp.lwc.area_mm2 == pytest.approx(0.00364, rel=0.02)
    assert cmp.lwc.leakage_mw == pytest.approx(0.588, rel=0.02)
    assert WALKER_CYCLES == 2


def test_sec74_scalability(benchmark):
    footprints = [16, 64, 256, 1024]
    curve = benchmark.pedantic(
        scalability_curve, args=(footprints,), rounds=1, iterations=1
    )
    rows = [
        (f"{gb}GB", f"{v['radix_pwc_mm2']:.5f}", f"{v['lvm_lwc_mm2']:.5f}")
        for gb, v in curve.items()
    ]
    print()
    print(render_table(
        ["footprint", "radix PWC area", "LVM LWC area"], rows,
        title="Section 7.4 — walk-cache area needed vs. footprint",
    ))
    # Radix PWC area grows with footprint; the LWC is flat.
    radix_areas = [v["radix_pwc_mm2"] for v in curve.values()]
    lwc_areas = [v["lvm_lwc_mm2"] for v in curve.values()]
    assert radix_areas[-1] > radix_areas[0] * 4
    assert max(lwc_areas) == min(lwc_areas)
