"""Ablations over the error-bound machinery (sections 4.3.3, 4.2.3).

* C_err: the hard cap on collision-resolution accesses.  Tighter bounds
  force finer structure (more index bytes); looser bounds shrink the
  index but lengthen worst-case searches.
* spline_max_error: the tolerance of the spline seed.  Finer splines
  see more segments and propose wider nodes.
"""

import random

from repro.analysis import render_table
from repro.core import LearnedIndex, LVMConfig
from repro.mem import BumpAllocator
from repro.types import PTE


def irregular_space(n=30_000, seed=4):
    """A space irregular enough that the error bound has work to do.

    Small spacing jitter alone is absorbed by the gapped array's 1.3x
    headroom (any local density up to 1/ga_scale of the mean fits);
    what defeats a single line is *large blocks of contrasting
    density*, so the space alternates dense (gap 1) and sparse (gap 6)
    blocks with jittered block lengths.
    """
    rng = random.Random(seed)
    vpns = []
    vpn = 0
    block = 0
    while len(vpns) < n:
        spacing = 1 if block % 2 == 0 else 6
        length = int(2500 * (0.5 + rng.random()))
        for _ in range(length):
            vpns.append(vpn)
            vpn += spacing
        vpn += rng.choice([10, 50, 200])
        block += 1
    return [PTE(vpn=v, ppn=i) for i, v in enumerate(vpns[:n])]


def test_ablation_c_err(benchmark):
    def run():
        ptes = irregular_space()
        rows = []
        for c_err in (1, 3, 8):
            config = LVMConfig(c_err=c_err)
            index = LearnedIndex(BumpAllocator(), config)
            index.bulk_build(list(ptes))
            for pte in ptes[::7]:
                index.lookup(pte.vpn)
            rows.append((
                c_err,
                index.index_size_bytes,
                index.stats.collision_rate,
                index.stats.avg_extra_accesses_per_collision,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["C_err", "index bytes", "collision rate", "extra acc/collision"],
        rows,
        title="Ablation — collision-resolution bound C_err",
    ))
    for c_err, _, cr, extra in rows:
        if cr > 0:
            # The measured average respects the configured bound
            # (paper: 2.36 measured against C_err = 3).
            assert extra <= c_err + 1.0


def test_ablation_spline_error(benchmark):
    def run():
        ptes = irregular_space()
        rows = []
        for max_error in (4, 32, 256):
            config = LVMConfig(spline_max_error=max_error)
            index = LearnedIndex(BumpAllocator(), config)
            index.bulk_build(list(ptes))
            for pte in ptes[::13]:
                index.lookup(pte.vpn)
            rows.append((
                max_error, index.index_size_bytes,
                index.stats.collision_rate,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["spline max error", "index bytes", "collision rate"], rows,
        title="Ablation — spline-seed tolerance",
    ))
    # All configurations must remain correct and bounded; the knob
    # trades index size against collisions, not correctness.
    for _, size, cr in rows:
        assert size < 64 << 10
        assert cr < 0.3
