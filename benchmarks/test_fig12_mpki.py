"""Figure 12: L2/L3 cache MPKI relative to radix (paper section 7.2).

The cache-pollution story: ECPT's parallel probes inflate L2/L3 misses
(paper: +44% / +40% on average, worst on GUPS, memcached and MUMmer),
while LVM stays within ~1% of radix's MPKI.
"""

from repro.analysis import render_table
from repro.sim import mean


def test_fig12_mpki(suite_results, benchmark):
    def collect():
        rows = []
        for workload in suite_results.workloads():
            rows.append((
                workload,
                suite_results.mpki_relative(workload, "ecpt", False, "l2"),
                suite_results.mpki_relative(workload, "lvm", False, "l2"),
                suite_results.mpki_relative(workload, "ecpt", False, "l3"),
                suite_results.mpki_relative(workload, "lvm", False, "l3"),
            ))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    print(render_table(
        ["workload", "ecpt L2", "lvm L2", "ecpt L3", "lvm L3"], rows,
        title="Figure 12 — cache MPKI relative to radix (4KB)",
    ))
    ecpt_l2 = mean(r[1] for r in rows)
    lvm_l2 = mean(r[2] for r in rows)
    ecpt_l3 = mean(r[3] for r in rows)
    lvm_l3 = mean(r[4] for r in rows)
    print(f"averages: ecpt L2={ecpt_l2:.2f} lvm L2={lvm_l2:.2f} "
          f"ecpt L3={ecpt_l3:.2f} lvm L3={lvm_l3:.2f}")
    # Paper: ECPT +44% L2 / +40% L3; LVM within ~1% of radix.
    assert ecpt_l2 > 1.2
    assert ecpt_l3 > 1.15
    assert 0.8 < lvm_l2 < 1.05
    assert 0.8 < lvm_l3 < 1.05
    # Worst pollution on the large-PTE-working-set workloads.
    by_name = {r[0]: r for r in rows}
    for name in ("gups", "mem$", "MUMr"):
        if name in by_name:
            assert by_name[name][1] >= 1.3
