"""Section 7.3 "LVM Overheads in the OS".

Runs the OS manager end-to-end over a growing address space (the
prototype-style run the paper uses beyond simulation) and measures
retrain frequency and cost.  Paper findings: retrains (full rebuilds)
occur at most 3 times / 2 on average, complete in ~ms, and management
is ~1% of execution.
"""

import time

from repro.analysis import render_table
from repro.kernel.manager import LVMManager
from repro.mem.allocator import BumpAllocator
from repro.types import PTE



def run_lifetime(name_seed: int):
    """One process lifetime: init burst, steady growth, churn."""
    mgr = LVMManager(BumpAllocator())
    mgr.begin_batch()
    base = 0x400 + name_seed * (1 << 22)
    for v in range(base, base + 20_000):
        mgr.map(PTE(vpn=v, ppn=v))
    mgr.end_batch()
    # Steady-state growth at the edge (the common case).
    edge = base + 20_000
    for v in range(edge, edge + 30_000):
        mgr.map(PTE(vpn=v, ppn=v))
    # Some mid-life frees and reuses.
    for v in range(base + 100, base + 1100):
        mgr.unmap(v)
    for v in range(base + 100, base + 1100):
        mgr.map(PTE(vpn=v, ppn=v))
    return mgr


def test_sec73_os_overheads(benchmark):
    start = time.perf_counter()
    managers = benchmark.pedantic(
        lambda: [run_lifetime(i) for i in range(4)], rounds=1, iterations=1
    )
    wall = time.perf_counter() - start
    rows = []
    for i, mgr in enumerate(managers):
        report = mgr.report()
        rows.append((
            f"proc{i}",
            report.full_rebuilds,
            report.local_retrains,
            report.rescales,
            f"{report.max_retrain_time_s * 1e3:.2f}ms",
            f"{100 * report.overhead_fraction(wall):.2f}%",
        ))
    print()
    print(render_table(
        ["process", "rebuilds", "local retrains", "rescales",
         "max retrain", "mgmt share"],
        rows,
        title="Section 7.3 — OS management overheads",
    ))
    for mgr in managers:
        report = mgr.report()
        # Paper: full rebuilds at most 3 per lifetime.
        assert report.full_rebuilds <= 3
        # Retrains are fast (paper: < 1.9 ms at full scale; our spaces
        # are smaller, so the bound is comfortably loose).
        assert report.max_retrain_time_s < 0.2
        # Edge growth is absorbed by rescaling, not rebuilds.
        assert report.rescales >= 1
