"""Shared fixtures for the figure/table regeneration benchmarks.

The end-to-end figures (9-12) all derive from one scheme x workload x
page-size sweep, exactly as in the paper; the sweep runs once per
pytest session and is shared by every figure bench.

Environment knobs:

* ``REPRO_REFS``       — trace length per run (default 20000; the
  EXPERIMENTS.md numbers use 50000).
* ``REPRO_WORKLOADS``  — comma-separated subset of the suite.
"""

from __future__ import annotations

import os

import pytest

from repro.sim import SimConfig, run_suite
from repro.workloads import SUITE


def bench_refs() -> int:
    return int(os.environ.get("REPRO_REFS", "20000"))


def bench_workloads():
    names = os.environ.get("REPRO_WORKLOADS")
    if names:
        return [n.strip() for n in names.split(",") if n.strip()]
    return list(SUITE)


@pytest.fixture(scope="session")
def suite_results():
    """The full sweep behind Figures 9-12: all schemes, 4 KB and THP."""
    config = SimConfig(num_refs=bench_refs())
    return run_suite(
        workload_names=bench_workloads(),
        schemes=("radix", "ecpt", "lvm", "ideal"),
        page_modes=(False, True),
        config=config,
    )


@pytest.fixture(scope="session")
def sim_config():
    return SimConfig(num_refs=bench_refs())
