"""Shared fixtures for the figure/table regeneration benchmarks.

The end-to-end figures (9-12) all derive from one scheme x workload x
page-size sweep, exactly as in the paper; the sweep runs once per
pytest session and is shared by every figure bench.

Environment knobs:

* ``REPRO_REFS``       — trace length per run (default 20000; the
  EXPERIMENTS.md numbers use 50000).
* ``REPRO_WORKLOADS``  — comma-separated subset of the suite.
"""

from __future__ import annotations

import os

import pytest

from repro.sim import SimConfig, run_suite
from repro.workloads import SUITE


def bench_refs() -> int:
    return int(os.environ.get("REPRO_REFS", "20000"))


def bench_workloads():
    names = os.environ.get("REPRO_WORKLOADS")
    if names:
        return [n.strip() for n in names.split(",") if n.strip()]
    return list(SUITE)


def pytest_collection_modifyitems(config, items):
    """Every figure/table regeneration is a slow benchmark; give each a
    wall-clock safety net (see ``tests/conftest.py`` for the SIGALRM
    fallback used when pytest-timeout is absent)."""
    for item in items:
        item.add_marker(pytest.mark.slow)
        if item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(3600))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    import signal

    marker = item.get_closest_marker("timeout")
    limit = marker.args[0] if marker and marker.args else None
    use_alarm = (
        limit is not None
        and not item.config.pluginmanager.hasplugin("timeout")
        and hasattr(signal, "SIGALRM")
    )
    if not use_alarm:
        yield
        return

    def _expire(signum, frame):
        pytest.fail(f"benchmark exceeded the {limit}s timeout", pytrace=False)

    old_handler = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, float(limit))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)


@pytest.fixture(scope="session")
def suite_results():
    """The full sweep behind Figures 9-12: all schemes, 4 KB and THP."""
    config = SimConfig(num_refs=bench_refs())
    return run_suite(
        workload_names=bench_workloads(),
        schemes=("radix", "ecpt", "lvm", "ideal"),
        page_modes=(False, True),
        config=config,
    )


@pytest.fixture(scope="session")
def sim_config():
    return SimConfig(num_refs=bench_refs())
