"""Section 7.3 memory consumption.

Page-table space beyond the minimal 8 B per translation.  Paper: LVM's
gapped arrays cost at most 1.3x the minimum (e.g. +12 MB for MUMmer's
20 GB footprint) while ECPT's over-provisioning costs more (+27 MB).
"""

from repro.analysis import bytes_human, memory_consumption_study, render_table


def test_sec73_memory_consumption(benchmark):
    row = benchmark.pedantic(
        memory_consumption_study, args=("MUMr",), rounds=1, iterations=1
    )
    print()
    print(render_table(
        ["scheme", "overhead beyond 8B/translation"],
        [
            ("minimum", bytes_human(0)),
            ("LVM", bytes_human(row.lvm_overhead_bytes)),
            ("ECPT", bytes_human(row.ecpt_overhead_bytes)),
            ("radix", bytes_human(row.radix_overhead_bytes)),
        ],
        title=f"Section 7.3 — memory consumption (MUMr, "
              f"minimum {bytes_human(row.minimum_bytes)})",
    ))
    # Paper: LVM worst case 1.3x the minimum space.
    assert row.lvm_overhead_bytes <= 0.40 * row.minimum_bytes
    # ECPT over-provisions more than LVM (paper: 27 MB vs 12 MB).
    assert row.ecpt_overhead_bytes > row.lvm_overhead_bytes
