"""Figure 11: page-walk memory traffic relative to radix (section 7.2).

Memory requests the walker sends to the cache hierarchy, normalized to
radix per page size.  Paper findings: LVM cuts walk traffic by 43%
(4 KB) / 34% (THP) versus radix, while ECPT *increases* it to 1.7x /
2.1x radix — LVM issues ~3x fewer walk requests than ECPT.
"""

from repro.analysis import render_table
from repro.sim import mean


def test_fig11_walk_traffic(suite_results, benchmark):
    def collect():
        out = {}
        for thp in (False, True):
            rows = []
            for workload in suite_results.workloads():
                rows.append((
                    workload,
                    suite_results.walk_traffic_relative(workload, "ecpt", thp),
                    suite_results.walk_traffic_relative(workload, "lvm", thp),
                    suite_results.walk_traffic_relative(workload, "ideal", thp),
                ))
            out[thp] = rows
        return out

    tables = benchmark.pedantic(collect, rounds=1, iterations=1)
    for thp in (False, True):
        label = "THP" if thp else "4KB"
        print()
        print(render_table(
            ["workload", "ecpt", "lvm", "ideal"], tables[thp],
            title=f"Figure 11 — page-walk traffic relative to radix ({label})",
        ))
        print(
            f"averages: ecpt={mean(r[1] for r in tables[thp]):.2f} "
            f"lvm={mean(r[2] for r in tables[thp]):.2f}"
        )

    lvm_4k = mean(r[2] for r in tables[False])
    ecpt_4k = mean(r[1] for r in tables[False])
    # Paper: LVM -43% vs radix; ECPT 1.7x radix; LVM ~2.9x less than ECPT.
    assert lvm_4k < 0.80
    assert ecpt_4k > 1.2
    assert ecpt_4k / lvm_4k > 2.0
    # LVM walk traffic is within a whisker of ideal (paper: +1%).
    for thp in (False, True):
        for _, _, lvm_rel, ideal_rel in tables[thp]:
            assert lvm_rel <= ideal_rel * 1.35 + 0.05
