"""Section 7.1 multi-tenancy and multi-threading.

Paper findings: stacking workloads on an 8-core setup (one per core,
shared LLC) leaves LVM's speedups within 0.5% of solo runs; running the
graph workloads with eight threads leaves results within 1% because
retrains are rare and locking is fine-grained.
"""

from repro.analysis import render_table
from repro.sim import SimConfig, Simulator
from repro.sim.multicore import MultiTenantSimulator, MultiThreadedSimulator
from repro.workloads import build_workload

from conftest import bench_refs

TENANTS = ("gups", "bfs", "mem$", "dc")


def test_sec71_multitenancy(benchmark):
    def run():
        refs = max(5000, bench_refs() // 2)
        workloads = [build_workload(n) for n in TENANTS]
        out = {}
        for scheme in ("radix", "lvm"):
            solo = []
            for w in workloads:
                sim = Simulator(scheme, w, SimConfig(num_refs=refs))
                solo.append(sim.run())
            stacked = MultiTenantSimulator(
                scheme, workloads, SimConfig(num_refs=refs)
            ).run()
            out[scheme] = (solo, stacked)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    deltas = []
    for i, name in enumerate(TENANTS):
        solo_sp = out["radix"][0][i].cycles / out["lvm"][0][i].cycles
        stack_sp = out["radix"][1][i].cycles / out["lvm"][1][i].cycles
        rows.append((name, solo_sp, stack_sp))
        deltas.append(abs(stack_sp - solo_sp) / solo_sp)
    print()
    print(render_table(
        ["workload", "LVM speedup solo", "LVM speedup stacked"], rows,
        title="Section 7.1 — multi-tenancy (shared LLC, one tenant/core)",
    ))
    # Paper: within 0.5%; shared-LLC contention at our scale allows 5%.
    assert max(deltas) < 0.05


def test_sec71_multithreading(benchmark):
    def run():
        refs = max(5000, bench_refs() // 2)
        workload = build_workload("bfs")
        out = {}
        for scheme in ("radix", "lvm"):
            single = MultiThreadedSimulator(
                scheme, workload, num_threads=1, config=SimConfig(num_refs=refs)
            ).run()
            eight = MultiThreadedSimulator(
                scheme, workload, num_threads=8, config=SimConfig(num_refs=refs)
            ).run()
            out[scheme] = (single, eight)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    sp1 = out["radix"][0]["max_thread_cycles"] / out["lvm"][0]["max_thread_cycles"]
    sp8 = out["radix"][1]["max_thread_cycles"] / out["lvm"][1]["max_thread_cycles"]
    print(f"\nLVM speedup: 1 thread {sp1:.3f}, 8 threads {sp8:.3f}, "
          f"lock conflicts {out['lvm'][1]['lock_conflict_rate']:.4f}")
    # Paper: within 1% across thread counts; we allow 5% at bench scale.
    assert abs(sp8 - sp1) / sp1 < 0.05
