"""Section 9 future work: the LVM framework beyond page tables.

The paper closes by proposing learned indexes for other hardware
structures that "suffer from hash-table-like collisions that cause
conflict misses".  This bench runs the prototype learned LLC set index
over three address-stream classes and reports the conflict-miss
reduction — the exploration the paper leaves open, made measurable.
"""

import numpy as np

from repro.analysis import render_table
from repro.extensions import conflict_study, hot_region_trace, strided_trace


def run_llc_study():
    rng = np.random.default_rng(3)
    traces = {
        "strided (16KB stride)": strided_trace(16 << 10, lines=64, repeats=40),
        "hot regions (1MB pitch)": hot_region_trace(8, 4 << 10, accesses=20_000),
        "uniform random": (rng.integers(0, 1 << 22, size=20_000) * 64).tolist(),
    }
    return {name: conflict_study(trace) for name, trace in traces.items()}


def test_sec9_learned_llc(benchmark):
    studies = benchmark.pedantic(run_llc_study, rounds=1, iterations=1)
    rows = [
        (name, s.modulo_misses, s.learned_misses,
         f"{100 * s.miss_reduction:.1f}%", s.model_bytes)
        for name, s in studies.items()
    ]
    print()
    print(render_table(
        ["address stream", "modulo misses", "learned misses",
         "reduction", "model bytes"],
        rows,
        title="Section 9 — learned set indexing for the LLC (prototype)",
    ))
    assert studies["strided (16KB stride)"].miss_reduction > 0.8
    assert studies["hot regions (1MB pitch)"].miss_reduction > 0.7
    assert abs(studies["uniform random"].miss_reduction) < 0.05
    # The learned set index stays LWC-sized.
    assert all(s.model_bytes <= 512 for s in studies.values())
