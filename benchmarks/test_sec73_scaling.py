"""Section 7.3 scaling study: index size vs. memory footprint.

The paper scales memcached from 32 GB to 240 GB and finds the
steady-state index stays at 112 bytes: the learned index's size depends
on the *structure* of the address space, not its size.  Radix page
walk caches, in contrast, need linearly more reach.
"""

from repro.analysis import (
    pwc_entries_for_footprint,
    render_table,
    scaling_study,
)


def test_sec73_index_size_scaling(benchmark):
    sizes = benchmark.pedantic(scaling_study, rounds=1, iterations=1)
    rows = [
        (f"{gb}GB", size, pwc_entries_for_footprint(gb << 30))
        for gb, size in sizes.items()
    ]
    print()
    print(render_table(
        ["memcached footprint", "LVM index (bytes)", "radix PWC entries needed"],
        rows,
        title="Section 7.3 — index size scaling (memcached)",
    ))
    values = list(sizes.values())
    # Paper: all four footprints give the same 112-byte index.
    assert max(values) - min(values) <= 32
    assert max(values) <= 512
    # Radix PWC reach must scale linearly with the footprint.
    entries = [pwc_entries_for_footprint(gb << 30) for gb in sizes]
    assert entries[-1] > entries[0]
