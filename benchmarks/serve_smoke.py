"""CI smoke for the serving layer (`python -m repro serve`).

Drives a running server over its unix socket with a two-tenant mix,
SIGKILLs the shard hosting one tenant mid-run, and asserts the
robustness contract end to end:

* the killed shard's tenant is reconstructed from its journal — its
  post-run counters account for every op issued, including the ones
  applied *before* the kill, which only the journal remembers;
* the other tenant saw zero errors throughout;
* the server recorded the recovery (respawn + journal replay).

Usage: serve_smoke.py --socket PATH [--rounds N]

Exits non-zero (with a diagnostic on stderr) on any violation, so a
CI step can gate on it directly.
"""

import argparse
import os
import signal
import sys
import zlib

from repro.serve.client import ServeClient

PAGE = 4096


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def pick_tenants(num_shards):
    """Two tenant names that land on different shards (placement is
    crc32 % num_shards, mirroring ``ShardManager.shard_of``)."""
    names = {}
    index = 0
    while len(names) < 2:
        name = f"smoke-{index}"
        shard = zlib.crc32(name.encode("utf-8")) % num_shards
        names.setdefault(shard, name)
        index += 1
    (shard_a, victim), (_, bystander) = sorted(names.items())[:2]
    return victim, bystander, shard_a


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--socket", required=True, help="server unix socket path")
    parser.add_argument("--rounds", type=int, default=30, help="op rounds per tenant")
    args = parser.parse_args(argv)

    client = ServeClient(args.socket)
    stats = client.call("server_stats")
    pids = stats["shards"]["pids"]
    if len(pids) < 2:
        fail(f"need >=2 shards for a blast-radius check, server has {len(pids)}")
    victim, bystander, victim_shard = pick_tenants(len(pids))

    for name in (victim, bystander):
        client.call("create_tenant", args={"spec": {"name": name}})
    print(
        f"serve_smoke: {victim!r} on shard {victim_shard} (to be killed), "
        f"{bystander!r} elsewhere"
    )

    kill_at = args.rounds // 2
    issued = {victim: 0, bystander: 0}  # mutating ops per tenant
    bystander_errors = 0
    for round_no in range(args.rounds):
        if round_no == kill_at:
            pid = client.call("server_stats")["shards"]["pids"][victim_shard]
            print(f"serve_smoke: SIGKILL shard {victim_shard} (pid {pid})")
            os.kill(pid, signal.SIGKILL)
        for name in (victim, bystander):
            base = 4096 + round_no * 64
            try:
                client.call(
                    "mmap", tenant=name, args={"start_vpn": base, "pages": 16}
                )
                client.call(
                    "translate",
                    tenant=name,
                    args={"vas": [(base + i) * PAGE for i in range(16)]},
                )
                client.call("munmap", tenant=name, args={"start_vpn": base})
                issued[name] += 3
            except Exception as exc:  # noqa: BLE001 - smoke records, then judges
                if name == bystander:
                    bystander_errors += 1
                    print(
                        f"serve_smoke: bystander error at round {round_no}: "
                        f"{type(exc).__name__}: {exc}",
                        file=sys.stderr,
                    )
                else:
                    fail(
                        f"victim tenant errored at round {round_no}: "
                        f"{type(exc).__name__}: {exc}"
                    )

    # -- verdicts ------------------------------------------------------
    if bystander_errors:
        fail(f"bystander tenant saw {bystander_errors} errors; blast radius leaked")

    for name in (victim, bystander):
        tstats = client.call("stats", tenant=name, args={})
        if tstats["ops"] != issued[name] or tstats["last_seq"] != issued[name]:
            fail(
                f"tenant {name!r} lost history: ops={tstats['ops']} "
                f"last_seq={tstats['last_seq']}, issued {issued[name]} — "
                "journal replay did not reconstruct pre-kill state"
            )
        if tstats["quarantined"]:
            fail(f"tenant {name!r} unexpectedly quarantined: {tstats['quarantined']}")

    stats = client.call("server_stats")
    recoveries = stats["shards"]["recoveries"]
    if not any(r["shard"] == victim_shard for r in recoveries):
        fail(f"no recorded recovery for shard {victim_shard}: {recoveries!r}")
    if stats["shards"]["respawns"] < 1:
        fail("server never respawned a shard")
    recovery = [r for r in recoveries if r["shard"] == victim_shard][-1]
    if victim not in recovery["restored"]:
        fail(f"recovery did not restore {victim!r}: {recovery!r}")

    client.close()
    print(
        f"serve_smoke: OK — {victim!r} reconstructed after SIGKILL "
        f"({recovery['seconds'] * 1e3:.0f} ms recovery), "
        f"{bystander!r} saw zero errors across {issued[bystander]} ops"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
