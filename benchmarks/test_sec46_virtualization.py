"""Section 4.6.2 "Virtualization Support".

Nested (2D) translation: the guest's and hypervisor's page tables
compose, turning radix's 4-step walks into up-to-24-access 2D walks.
The paper expects LVM's gains to *grow* under virtualization; this
bench measures per-walk traffic and cycles for nested radix vs. nested
LVM over a guest running the GUPS access pattern.
"""

import random

from repro.analysis import render_table
from repro.core import LearnedIndex
from repro.mem.allocator import BumpAllocator
from repro.mmu.hierarchy import MemoryHierarchy
from repro.pagetables.radix import RadixPageTable
from repro.sim import SimConfig
from repro.types import PTE
from repro.virt import NestedLVMWalker, NestedRadixWalker, build_host_mapping

from conftest import bench_refs

GPA_BASE = 1 << 20
GUEST_PAGES = 150_000


def run_nested():
    cfg = SimConfig()
    rng = random.Random(11)
    lookups = [0x100 + rng.randrange(GUEST_PAGES) for _ in range(bench_refs())]
    guest_ptes = [
        PTE(vpn=0x100 + i, ppn=GPA_BASE + i) for i in range(GUEST_PAGES)
    ]
    out = {}

    guest_radix = RadixPageTable(BumpAllocator(base=GPA_BASE << 12))
    for pte in guest_ptes:
        guest_radix.map(pte)
    radix = NestedRadixWalker(
        guest_radix,
        build_host_mapping(1 << 15, BumpAllocator(base=1 << 40), "radix"),
        MemoryHierarchy(cfg.hierarchy),
    )
    for vpn in lookups:
        radix.walk(vpn)
    out["radix"] = radix

    guest_lvm = LearnedIndex(BumpAllocator(base=GPA_BASE << 12))
    guest_lvm.bulk_build([PTE(vpn=p.vpn, ppn=p.ppn) for p in guest_ptes])
    lvm = NestedLVMWalker(
        guest_lvm,
        build_host_mapping(1 << 15, BumpAllocator(base=1 << 40), "lvm"),
        MemoryHierarchy(cfg.hierarchy),
    )
    for vpn in lookups:
        lvm.walk(vpn)
    out["lvm"] = lvm
    return out


def test_sec46_nested_translation(benchmark):
    out = benchmark.pedantic(run_nested, rounds=1, iterations=1)
    rows = []
    for name, walker in out.items():
        rows.append((
            name,
            walker.total_accesses / walker.walks,
            walker.total_cycles / walker.walks,
        ))
    print()
    print(render_table(
        ["scheme (nested)", "accesses/walk", "cycles/walk"], rows,
        title="Section 4.6.2 — virtualized (2D) page walks, GUPS guest",
    ))
    radix, lvm = out["radix"], out["lvm"]
    traffic_ratio = radix.total_accesses / lvm.total_accesses
    cycle_ratio = radix.total_cycles / lvm.total_cycles
    print(f"nested radix/LVM: traffic {traffic_ratio:.2f}x  "
          f"cycles {cycle_ratio:.2f}x")
    # Virtualization amplifies LVM's *traffic* advantage (the robust
    # structural claim); cycles follow but are softened by the nested
    # TLB covering both schemes' second dimension.
    assert traffic_ratio > 1.25
    assert cycle_ratio > 1.02
