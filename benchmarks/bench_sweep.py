#!/usr/bin/env python
"""Sweep-engine benchmark: trace cache, serial vs parallel, TLB fast path.

Times five things and writes ``BENCH_sweep.json`` at the repo root:

1. **Trace-cache setup phase** — cold (build workload, synthesize,
   pack, store) vs warm (verify checksum, memmap) pre-compilation of
   the sweep's distinct traces, into a fresh cache directory.  The
   warm path must be >= 5x faster — it is the reason sweep workers
   never re-synthesize traces.
2. **Single-run translate loop** — refs/sec with the L1 front index
   (``TLBConfig.front_index``) off vs on, per workload.  This A/Bs the
   hot-path optimisation inside one process; results are bit-identical
   either way (asserted here on every run).
3. **Vectorized epoch engine** — refs/sec of the scalar translate
   loop vs the whole-array batch engine (``repro.sim.vectorized``),
   per workload on the scaled grid plus a hit-dominated hot-loop
   microbenchmark under unscaled (Table-1) geometry where the batch
   path dominates and the engine targets >= 10x.  Every comparison
   asserts bit-identity, and each engine run records its per-phase
   fastpath breakdown (front-hit batches vs scalar miss path vs the
   closed-form miss-batch path) from ``Simulator.vectorized_stats``.
4. **Serial sweep** — ``run_suite(jobs=1)`` wall seconds over the
   chosen (workload × scheme × thp) grid.
5. **Parallel sweep** — the same grid with ``jobs=N`` worker
   processes, plus an assertion that the ResultSet matches the serial
   one field for field.  ``jobs`` is clamped to the visible CPU count
   (an oversubscribed pool measured 0.77x of serial here once); when
   the clamp lands on 1 the sweep engine's own guardrail makes
   "parallel" the serial path, reported as such with speedup 1.0.
6. **Supervision overhead** — the parallel grid with per-run deadlines
   and retries armed (journal off), asserting bit-identity and
   reporting the extra parent CPU the supervisor's deadline
   bookkeeping costs, as a fraction of the sweep's total CPU;
   ``--max-overhead 0.02`` makes CI fail if it exceeds the PR-4
   budget of 2%.  Both variants need a pool, so this section sets
   ``REPRO_OVERSUBSCRIBE`` and uses at least two workers even on one
   CPU — worker count is recorded in the JSON.

Not a pytest file on purpose: wall-clock comparisons want a quiet,
sequential process, not pytest's collection order.  Run via
``make bench`` or directly::

    PYTHONPATH=src python benchmarks/bench_sweep.py --refs 50000 --jobs 4
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import tempfile
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.mmu.hierarchy import HierarchyConfig
from repro.mmu.tlb import TLBConfig
from repro.sim.config import SimConfig
from repro.sim.runner import _precompile_traces, run_suite
from repro.sim.simulator import Simulator
from repro.workloads.registry import BuiltWorkload, build_workload
from repro.workloads.trace_cache import TraceCache

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sweep.json"
# bfs exercises the L1 fast path (~50% L1-4K hit rate under the scaled
# TLBs); gups is the adversarial case (every reference misses, so the
# front index only pays maintenance).  Together they bound the effect.
DEFAULT_WORKLOADS = ("bfs", "gups")
DEFAULT_SCHEMES = ("radix", "ecpt", "lvm")
BEST_OF = 3
# The single-run A/B is cheap (sub-second runs) but sensitive to CPU
# contention bursts; more rounds buy stability where it is affordable.
FASTPATH_BEST_OF = 7


def bench_trace_cache(workloads, refs: int) -> dict:
    """Cold vs warm sweep setup into a fresh cache directory.

    This runs *first*, before any other section warms the in-process
    workload caches: the cold number honestly includes workload
    construction (Kronecker graph and all), exactly what a worker
    avoided by the parent's pre-compile pass.  The warm pass is the
    verified-checksum + memmap path — no workload is even built.
    """
    cfg = SimConfig(num_refs=refs)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as td:
        cold_cache = TraceCache(td)
        start = time.perf_counter()
        _precompile_traces(list(workloads), cfg, cold_cache)
        cold = time.perf_counter() - start
        assert cold_cache.builds == len(workloads)

        warm_cache = TraceCache(td)
        start = time.perf_counter()
        _precompile_traces(list(workloads), cfg, warm_cache)
        warm = time.perf_counter() - start
        assert warm_cache.hits == len(workloads) and warm_cache.builds == 0

        cache_bytes = sum(e["nbytes"] for e in warm_cache.entries())
    speedup = cold / max(warm, 1e-9)
    print(
        f"  setup    {len(workloads)} traces: cold {cold:.3f}s -> "
        f"warm {warm:.4f}s  ({speedup:.0f}x)"
    )
    return {
        "traces": len(list(workloads)),
        "refs_per_trace": refs,
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "speedup": round(speedup, 1),
        "cache_bytes": cache_bytes,
    }


def _time_single_run(workload, refs: int, front: bool):
    """One simulator run; returns (refs/sec, wall seconds, result)."""
    cfg = SimConfig(num_refs=refs)
    cfg.tlb.front_index = front
    sim = Simulator("radix", workload, cfg)
    start = time.perf_counter()
    result = sim.run()
    wall = time.perf_counter() - start
    return refs / wall, wall, result


def bench_fastpath(workloads, refs: int) -> dict:
    """A/B the front-index fast path, asserting bit-identity.

    The workload (and its memoized trace) is built once and shared, a
    warm-up run absorbs one-time costs, and each variant keeps its
    best of ``FASTPATH_BEST_OF`` runs — wall-clock on a busy box is
    noisy and we are comparing code paths, not machine load.
    """
    rows = []
    for name in workloads:
        workload = build_workload(name, scale=64, seed=0)
        _time_single_run(workload, refs, front=True)  # warm-up
        base_rate = base_wall = fast_rate = fast_wall = None
        base_res = fast_res = None
        for _ in range(FASTPATH_BEST_OF):
            rate, wall, base_res = _time_single_run(workload, refs, front=False)
            if base_rate is None or rate > base_rate:
                base_rate, base_wall = rate, wall
            rate, wall, fast_res = _time_single_run(workload, refs, front=True)
            if fast_rate is None or rate > fast_rate:
                fast_rate, fast_wall = rate, wall
        if asdict(base_res) != asdict(fast_res):
            raise AssertionError(
                f"front index changed results for {name} — refusing to "
                "report a speedup that buys the wrong numbers"
            )
        rows.append(
            {
                "workload": name,
                "baseline_refs_per_sec": round(base_rate, 1),
                "fastpath_refs_per_sec": round(fast_rate, 1),
                "baseline_wall_seconds": round(base_wall, 3),
                "fastpath_wall_seconds": round(fast_wall, 3),
                "speedup": round(fast_rate / base_rate, 3),
            }
        )
        print(
            f"  fastpath {name:8s} {base_rate:9.0f} -> {fast_rate:9.0f} "
            f"refs/s  ({fast_rate / base_rate:.2f}x)"
        )
    return {"scheme": "radix", "refs": refs, "runs": rows}


def _hot_loop_workload() -> BuiltWorkload:
    """A hit-dominated microbenchmark: a cyclic 8-byte-stride loop over
    16 KB of gups's heap.  Four pages and 256 cache lines stay resident
    in the (unscaled) L1 TLB and L1D after the first lap, so nearly
    every reference replays through the engine's whole-array batch
    path — the regime the engine is built for, which no built-in graph
    workload reaches (their random property accesses cap the L1-TLB
    hit rate near 50% even unscaled)."""
    gups = build_workload("gups", scale=64, seed=0)
    base = int(gups.trace(16, 1)[0]) & ~0xFFF

    def trace_fn(num_refs, trace_seed):
        offsets = (np.arange(num_refs, dtype=np.int64) * 8) % (16 << 10)
        return base + offsets

    return BuiltWorkload(gups.info, gups.space, trace_fn)


def _time_engine(scheme, workload, refs, vectorized, cfg_factory, rounds):
    """Best-of-``rounds`` run; returns (refs/sec, result, engine stats)."""
    best_rate = result = stats = None
    for _ in range(rounds):
        cfg = cfg_factory()
        cfg.num_refs = refs
        cfg.vectorized_engine = vectorized
        sim = Simulator(scheme, workload, cfg)
        start = time.perf_counter()
        res = sim.run()
        wall = time.perf_counter() - start
        rate = refs / wall
        if best_rate is None or rate > best_rate:
            best_rate, result, stats = rate, res, sim.vectorized_stats
    return best_rate, result, stats


def _vectorized_row(label, scheme, workload, refs, cfg_factory,
                    rounds=BEST_OF) -> dict:
    base_rate, base_res, _ = _time_engine(
        scheme, workload, refs, False, cfg_factory, rounds
    )
    vec_rate, vec_res, stats = _time_engine(
        scheme, workload, refs, True, cfg_factory, rounds
    )
    if asdict(base_res) != asdict(vec_res):
        raise AssertionError(
            f"vectorized engine changed results for {label} — refusing "
            "to report a speedup that buys the wrong numbers"
        )
    row = {
        "run": label,
        "scheme": scheme,
        "refs": refs,
        "scalar_refs_per_sec": round(base_rate, 1),
        "vectorized_refs_per_sec": round(vec_rate, 1),
        "speedup": round(vec_rate / base_rate, 3),
    }
    if stats is None:
        row["breakdown"] = None
        row["note"] = "engine did not engage (try_build declined the run)"
    else:
        total = max(1, stats["batched_refs"] + stats["scalar_refs"])
        row["breakdown"] = {
            **stats,
            # Per-phase fastpath split: batched refs resolved entirely in
            # whole-array math (front-index hit + resident L1D line);
            # miss-batch refs took the closed-form single-access walk;
            # the rest ran the full scalar translate + data-hierarchy
            # path (including every reference of a bailed epoch).
            "front_hit_fraction": round(stats["batched_refs"] / total, 4),
            "missbatch_fraction": round(stats["missbatch_refs"] / total, 4),
            "scalar_path_fraction": round(
                (stats["scalar_refs"] - stats["missbatch_refs"]) / total, 4
            ),
        }
    print(
        f"  engine   {label:18s} {base_rate:9.0f} -> {vec_rate:9.0f} "
        f"refs/s  ({vec_rate / base_rate:.2f}x)"
    )
    return row


def bench_vectorized(workloads, refs: int) -> dict:
    """Scalar translate loop vs the vectorized epoch engine.

    Three kinds of rows, all asserted bit-identical before any speedup
    is reported:

    * each sweep workload under the scaled default grid — graph
      workloads are miss-heavy there, so the adaptive bail keeps the
      engine near 1.0x rather than winning (the honest number);
    * ``gups`` under the ``ideal`` scheme with the bail threshold
      forced off (``vectorized_min_fast=0`` — the adaptive bail would
      otherwise route these all-miss epochs straight to the scalar
      span), where every reference misses the TLB and the closed-form
      **miss-batch** path carries the run (the breakdown shows it);
    * the hot-loop microbenchmark under unscaled Table-1 geometry,
      where the whole-array batch path dominates and the engine's
      >= 10x target applies.
    """
    rows = [
        _vectorized_row(
            f"{name}-scaled", "radix", build_workload(name, scale=64, seed=0),
            refs, SimConfig,
        )
        for name in workloads
    ]
    rows.append(
        _vectorized_row(
            "gups-ideal-forced", "ideal",
            build_workload("gups", scale=64, seed=0), refs,
            lambda: SimConfig(vectorized_min_fast=0.0),
        )
    )
    # The first lap of the loop runs scalar (one 4096-ref epoch fills
    # the TLB/L1D); enough laps after it make that a rounding error.
    hot_refs = max(400_000, refs)
    hot_row = _vectorized_row(
        "hot-loop-unscaled", "radix", _hot_loop_workload(), hot_refs,
        lambda: SimConfig(hierarchy=HierarchyConfig(), tlb=TLBConfig()),
    )
    hot_row["target_speedup"] = 10.0
    rows.append(hot_row)
    return {"rows": rows, "hit_dominated_speedup": hot_row["speedup"]}


def bench_sweep(workloads, schemes, refs: int, jobs: int, requested_jobs: int) -> dict:
    """Serial vs parallel sweep over the full grid, asserting identity.

    ``jobs`` arrives already clamped to the CPU count.  At ``jobs=1``
    the engine's guardrail means the "parallel" sweep *is* the serial
    loop — the honest speedup is 1.0 by construction, and the JSON says
    so instead of reporting timing noise between two identical runs.
    """
    cfg = SimConfig(num_refs=refs)
    grid = len(workloads) * len(schemes) * 2  # thp off + on

    start = time.perf_counter()
    serial = run_suite(list(workloads), list(schemes), config=cfg)
    serial_wall = time.perf_counter() - start
    print(f"  serial   {grid} runs in {serial_wall:.2f}s")

    start = time.perf_counter()
    parallel = run_suite(list(workloads), list(schemes), config=cfg, jobs=jobs)
    parallel_wall = time.perf_counter() - start
    mode = "pool" if jobs > 1 else "serial-fallback"
    print(f"  jobs={jobs}   {grid} runs in {parallel_wall:.2f}s ({mode})")

    for a, b in zip(serial.results, parallel.results):
        if asdict(a) != asdict(b):
            raise AssertionError(
                f"parallel sweep diverged on ({a.workload}, {a.scheme}) — "
                "refusing to report a speedup that buys the wrong numbers"
            )

    total_refs = refs * grid
    row = {
        "grid_runs": grid,
        "refs_per_run": refs,
        "jobs": jobs,
        "requested_jobs": requested_jobs,
        "mode": mode,
        "serial_wall_seconds": round(serial_wall, 3),
        "parallel_wall_seconds": round(parallel_wall, 3),
        "serial_refs_per_sec": round(total_refs / serial_wall, 1),
        "parallel_refs_per_sec": round(total_refs / parallel_wall, 1),
        "speedup": round(serial_wall / parallel_wall, 3),
    }
    if jobs == 1:
        # Identical code path on both sides; the measured walls stay in
        # the JSON for reference but the headline number is definitional.
        row["speedup"] = 1.0
        row["note"] = (
            f"requested jobs={requested_jobs} clamped to 1 visible CPU; "
            "guardrail ran the sweep serially (pool would be slower)"
        )
    return row


def bench_supervision(workloads, schemes, refs: int, jobs: int) -> dict:
    """Parallel sweep with supervision armed (deadlines + retries,
    journal off) vs without — the journal-off path must stay within
    the PR-4 overhead budget (<2%).

    The two variants differ only in the *parent's* wait loop — the
    workers execute byte-identical code — so the honest measurement is
    the parent's own CPU time (``RUSAGE_SELF``), not wall clock or
    total CPU: on a loaded or virtualised box those drift by ±10%,
    two orders of magnitude above the effect being gated.  Each round
    runs the pair back to back; the per-round overhead is the *extra*
    parent CPU the armed variant spent, normalised by the whole
    sweep's CPU (parent + reaped workers, so the ratio means "fraction
    of the sweep spent supervising"), and the gate takes the median
    across rounds.  A busy-wait regression in the wait loop shows up
    here at full strength; scheduler noise does not.

    Both variants must run through a *pool* (the armed one always
    does; a plain ``jobs=1`` would be the serial loop and the parent
    CPU comparison would be meaningless), so this section keeps at
    least two workers and sets ``REPRO_OVERSUBSCRIBE`` to hold the
    engine's CPU-count guardrail open on small machines; the worker
    count used is in the returned dict."""
    jobs = max(2, jobs)
    cfg = SimConfig(num_refs=refs)
    grid = len(workloads) * len(schemes) * 2

    def parent_cpu():
        usage = resource.getrusage(resource.RUSAGE_SELF)
        return usage.ru_utime + usage.ru_stime

    def children_cpu():
        # run_suite joins its pool before returning, so worker CPU has
        # landed in RUSAGE_CHILDREN by the time the probe runs.
        usage = resource.getrusage(resource.RUSAGE_CHILDREN)
        return usage.ru_utime + usage.ru_stime

    def timed(**kwargs):
        parent_start, children_start = parent_cpu(), children_cpu()
        start = time.perf_counter()
        results = run_suite(
            list(workloads), list(schemes), config=cfg, jobs=jobs, **kwargs
        )
        wall = time.perf_counter() - start
        parent = parent_cpu() - parent_start
        total = parent + children_cpu() - children_start
        return wall, parent, total, results

    # A deadline far above any real run: the sweep pays the deadline
    # bookkeeping on every wait-loop turn but never trips it.
    armed = dict(run_timeout=3600.0, retries=2)
    overheads = []
    plain_wall = supervised_wall = None
    plain_parent = supervised_parent = None
    plain = supervised = None
    for _ in range(BEST_OF):
        wall, parent, total, results = timed()
        if plain_wall is None or wall < plain_wall:
            plain_wall, plain = wall, results
        if plain_parent is None or parent < plain_parent:
            plain_parent = parent
        sup_wall, sup_parent, _, sup_results = timed(**armed)
        if supervised_wall is None or sup_wall < supervised_wall:
            supervised_wall, supervised = sup_wall, sup_results
        if supervised_parent is None or sup_parent < supervised_parent:
            supervised_parent = sup_parent
        overheads.append(max(0.0, sup_parent - parent) / total)
    for a, b in zip(plain.results, supervised.results):
        if asdict(a) != asdict(b):
            raise AssertionError(
                f"supervised sweep diverged on ({a.workload}, {a.scheme}) — "
                "supervision must never change the numbers"
            )
    overhead = sorted(overheads)[len(overheads) // 2]
    print(
        f"  plain    {grid} runs: parent {plain_parent:.3f} CPU-s "
        f"({plain_wall:.2f}s wall, best)\n"
        f"  deadline {grid} runs: parent {supervised_parent:.3f} CPU-s "
        f"({supervised_wall:.2f}s wall, best)  "
        f"(median supervision overhead {overhead:.2%} of sweep CPU)"
    )
    return {
        "grid_runs": grid,
        "refs_per_run": refs,
        "jobs": jobs,
        "oversubscribed": jobs > (os.cpu_count() or 1),
        "rounds": BEST_OF,
        "plain_parent_cpu_seconds": round(plain_parent, 4),
        "supervised_parent_cpu_seconds": round(supervised_parent, 4),
        "plain_wall_seconds": round(plain_wall, 3),
        "supervised_wall_seconds": round(supervised_wall, 3),
        "round_overheads": [round(r, 6) for r in overheads],
        "overhead": round(overhead, 6),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--refs", type=int, default=50_000, help="references per run"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="worker processes for the parallel sweep",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(DEFAULT_WORKLOADS),
        help="workload names to sweep",
    )
    parser.add_argument(
        "--schemes",
        nargs="+",
        default=list(DEFAULT_SCHEMES),
        help="translation schemes to sweep",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=None,
        help="fail (exit 1) if supervision CPU-time overhead on the "
             "journal-off path exceeds this fraction (CI passes 0.02)",
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    requested_jobs = args.jobs
    jobs = max(1, min(requested_jobs, cpus))
    print(f"bench_sweep: {cpus} CPU(s) visible, jobs={jobs}"
          + (f" (requested {requested_jobs}, clamped)"
             if jobs != requested_jobs else ""))

    # Hermetic cache for everything below: the bench must not read a
    # previous run's entries (cold numbers) or litter the user's real
    # cache.  Workers inherit the env across fork/spawn.
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as bench_cache:
        os.environ["REPRO_CACHE_DIR"] = bench_cache
        print("trace cache (cold compile+store vs warm verify+memmap):")
        trace_cache = bench_trace_cache(args.workloads, args.refs)
        print("single-run fast path (front index off vs on):")
        fastpath = bench_fastpath(args.workloads, args.refs)
        print("vectorized epoch engine (scalar loop vs batch engine):")
        vectorized = bench_vectorized(args.workloads, args.refs)
        print("sweep (serial vs parallel, identical grids):")
        sweep = bench_sweep(
            args.workloads, args.schemes, args.refs, jobs, requested_jobs
        )
        print("supervision (deadlines+retries armed vs off, journal off):")
        prev_oversub = os.environ.get("REPRO_OVERSUBSCRIBE")
        os.environ["REPRO_OVERSUBSCRIBE"] = "1"
        try:
            supervision = bench_supervision(
                args.workloads, args.schemes, args.refs, jobs
            )
        finally:
            if prev_oversub is None:
                os.environ.pop("REPRO_OVERSUBSCRIBE", None)
            else:
                os.environ["REPRO_OVERSUBSCRIBE"] = prev_oversub

    payload = {
        "cpu_count": cpus,
        "refs_per_run": args.refs,
        "jobs": jobs,
        "requested_jobs": requested_jobs,
        "workloads": list(args.workloads),
        "schemes": list(args.schemes),
        "trace_cache": trace_cache,
        "fastpath": fastpath,
        "vectorized": vectorized,
        "sweep": sweep,
        "supervision": supervision,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if (
        args.max_overhead is not None
        and supervision["overhead"] > args.max_overhead
    ):
        print(
            f"FAIL: supervision overhead {supervision['overhead']:.2%} "
            f"of sweep CPU exceeds the {args.max_overhead:.1%} budget"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
