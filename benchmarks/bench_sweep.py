#!/usr/bin/env python
"""Sweep-engine benchmark: serial vs parallel vs TLB fast path.

Times three things and writes ``BENCH_sweep.json`` at the repo root:

1. **Single-run translate loop** — refs/sec with the L1 front index
   (``TLBConfig.front_index``) off vs on, per workload.  This A/Bs the
   hot-path optimisation inside one process; results are bit-identical
   either way (asserted here on every run).
2. **Serial sweep** — ``run_suite(jobs=1)`` wall seconds over the
   chosen (workload × scheme × thp) grid.
3. **Parallel sweep** — the same grid with ``jobs=N`` worker
   processes, plus an assertion that the ResultSet matches the serial
   one field for field.

Not a pytest file on purpose: wall-clock comparisons want a quiet,
sequential process, not pytest's collection order.  Run via
``make bench`` or directly::

    PYTHONPATH=src python benchmarks/bench_sweep.py --refs 50000 --jobs 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro.sim.config import SimConfig
from repro.sim.runner import run_suite
from repro.sim.simulator import Simulator
from repro.workloads.registry import build_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sweep.json"
# bfs exercises the L1 fast path (~50% L1-4K hit rate under the scaled
# TLBs); gups is the adversarial case (every reference misses, so the
# front index only pays maintenance).  Together they bound the effect.
DEFAULT_WORKLOADS = ("bfs", "gups")
DEFAULT_SCHEMES = ("radix", "ecpt", "lvm")
BEST_OF = 3


def _time_single_run(workload, refs: int, front: bool):
    """One simulator run; returns (refs/sec, wall seconds, result)."""
    cfg = SimConfig(num_refs=refs)
    cfg.tlb.front_index = front
    sim = Simulator("radix", workload, cfg)
    start = time.perf_counter()
    result = sim.run()
    wall = time.perf_counter() - start
    return refs / wall, wall, result


def bench_fastpath(workloads, refs: int) -> dict:
    """A/B the front-index fast path, asserting bit-identity.

    The workload (and its memoized trace) is built once and shared, a
    warm-up run absorbs one-time costs, and each variant keeps its
    best of ``BEST_OF`` runs — wall-clock on a busy box is noisy and
    we are comparing code paths, not machine load.
    """
    rows = []
    for name in workloads:
        workload = build_workload(name, scale=64, seed=0)
        _time_single_run(workload, refs, front=True)  # warm-up
        base_rate = base_wall = fast_rate = fast_wall = None
        base_res = fast_res = None
        for _ in range(BEST_OF):
            rate, wall, base_res = _time_single_run(workload, refs, front=False)
            if base_rate is None or rate > base_rate:
                base_rate, base_wall = rate, wall
            rate, wall, fast_res = _time_single_run(workload, refs, front=True)
            if fast_rate is None or rate > fast_rate:
                fast_rate, fast_wall = rate, wall
        if asdict(base_res) != asdict(fast_res):
            raise AssertionError(
                f"front index changed results for {name} — refusing to "
                "report a speedup that buys the wrong numbers"
            )
        rows.append(
            {
                "workload": name,
                "baseline_refs_per_sec": round(base_rate, 1),
                "fastpath_refs_per_sec": round(fast_rate, 1),
                "baseline_wall_seconds": round(base_wall, 3),
                "fastpath_wall_seconds": round(fast_wall, 3),
                "speedup": round(fast_rate / base_rate, 3),
            }
        )
        print(
            f"  fastpath {name:8s} {base_rate:9.0f} -> {fast_rate:9.0f} "
            f"refs/s  ({fast_rate / base_rate:.2f}x)"
        )
    return {"scheme": "radix", "refs": refs, "runs": rows}


def bench_sweep(workloads, schemes, refs: int, jobs: int) -> dict:
    """Serial vs parallel sweep over the full grid, asserting identity."""
    cfg = SimConfig(num_refs=refs)
    grid = len(workloads) * len(schemes) * 2  # thp off + on

    start = time.perf_counter()
    serial = run_suite(list(workloads), list(schemes), config=cfg)
    serial_wall = time.perf_counter() - start
    print(f"  serial   {grid} runs in {serial_wall:.2f}s")

    start = time.perf_counter()
    parallel = run_suite(list(workloads), list(schemes), config=cfg, jobs=jobs)
    parallel_wall = time.perf_counter() - start
    print(f"  jobs={jobs}   {grid} runs in {parallel_wall:.2f}s")

    for a, b in zip(serial.results, parallel.results):
        if asdict(a) != asdict(b):
            raise AssertionError(
                f"parallel sweep diverged on ({a.workload}, {a.scheme}) — "
                "refusing to report a speedup that buys the wrong numbers"
            )

    total_refs = refs * grid
    return {
        "grid_runs": grid,
        "refs_per_run": refs,
        "jobs": jobs,
        "serial_wall_seconds": round(serial_wall, 3),
        "parallel_wall_seconds": round(parallel_wall, 3),
        "serial_refs_per_sec": round(total_refs / serial_wall, 1),
        "parallel_refs_per_sec": round(total_refs / parallel_wall, 1),
        "speedup": round(serial_wall / parallel_wall, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--refs", type=int, default=50_000, help="references per run"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="worker processes for the parallel sweep",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(DEFAULT_WORKLOADS),
        help="workload names to sweep",
    )
    parser.add_argument(
        "--schemes",
        nargs="+",
        default=list(DEFAULT_SCHEMES),
        help="translation schemes to sweep",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    print(f"bench_sweep: {cpus} CPU(s) visible, jobs={args.jobs}")
    if args.jobs > cpus:
        print(
            f"  note: jobs={args.jobs} exceeds visible CPUs ({cpus}); "
            "the parallel sweep cannot beat serial on this machine"
        )

    print("single-run fast path (front index off vs on):")
    fastpath = bench_fastpath(args.workloads, args.refs)
    print("sweep (serial vs parallel, identical grids):")
    sweep = bench_sweep(args.workloads, args.schemes, args.refs, args.jobs)

    payload = {
        "cpu_count": cpus,
        "refs_per_run": args.refs,
        "workloads": list(args.workloads),
        "schemes": list(args.schemes),
        "fastpath": fastpath,
        "sweep": sweep,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
