"""Figure 3: contiguous allocatability of free memory (section 3.2).

Regenerates the median fraction of free memory immediately allocatable
as a contiguous block, per block size, over a small simulated fleet of
churned servers.  Paper shape reproduced: contiguity plentiful in the
tens-to-hundreds-of-KB range, practically zero at hundreds of MBs.
"""

from repro.analysis import render_table, run_fleet_study


def run_figure3():
    return run_fleet_study(num_servers=5, mem_bytes=1 << 30)


def test_fig3_contiguity(benchmark):
    profile = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    rows = [(f"{size >> 10}KB", frac) for size, frac in profile.rows()]
    print()
    print(render_table(
        ["block size", "fraction of free memory"], rows,
        title="Figure 3 — median contiguously-allocatable free memory",
    ))
    # Paper shape: everything allocatable at 4 KB, ~30% at 256 KB,
    # essentially nothing at 256 MB.
    assert profile.at(4 << 10) == 1.0
    assert profile.at(256 << 10) >= 0.25
    assert profile.at(256 << 20) <= 0.02
    # Monotone non-increasing in block size.
    values = [frac for _, frac in profile.rows()]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
