"""Section 7.2 "Connecting PTW to L1/L2 cache".

Repeats a subset of runs with the page-table walkers connected to the
L1 instead of the L2.  Paper findings: both radix and LVM speed up
their walks via L1 hits, but walk traffic at the L1 inflates L1 MPKI —
much more for radix (+59%) than for LVM (+38%) because LVM sends ~43%
less walk traffic; LVM wins in both configurations.
"""

import dataclasses

from repro.analysis import render_table
from repro.sim import SimConfig, Simulator, mean
from repro.workloads import build_workload

from conftest import bench_refs

WORKLOADS = ("gups", "bfs")


def run_both_entries():
    out = {}
    for name in WORKLOADS:
        workload = build_workload(name)
        per = {}
        for entry in ("l2", "l1"):
            for scheme in ("radix", "lvm"):
                cfg = SimConfig(num_refs=bench_refs())
                cfg.hierarchy = dataclasses.replace(
                    cfg.hierarchy, walker_entry=entry
                )
                per[(scheme, entry)] = Simulator(scheme, workload, cfg).run()
        out[name] = per
    return out


def test_sec72_ptw_to_l1(benchmark):
    results = benchmark.pedantic(run_both_entries, rounds=1, iterations=1)
    rows = []
    lvm_speedups = {"l1": [], "l2": []}
    mpki_increase = {"radix": [], "lvm": []}
    for name, per in results.items():
        for entry in ("l2", "l1"):
            sp = per[("radix", entry)].cycles / per[("lvm", entry)].cycles
            lvm_speedups[entry].append(sp)
        for scheme in ("radix", "lvm"):
            l2_run = per[(scheme, "l2")]
            l1_run = per[(scheme, "l1")]
            if l2_run.l1_mpki > 0:
                mpki_increase[scheme].append(l1_run.l1_mpki / l2_run.l1_mpki)
        rows.append((
            name,
            per[("radix", "l2")].cycles / per[("lvm", "l2")].cycles,
            per[("radix", "l1")].cycles / per[("lvm", "l1")].cycles,
        ))
    print()
    print(render_table(
        ["workload", "LVM speedup (PTW->L2)", "LVM speedup (PTW->L1)"],
        rows,
        title="Section 7.2 — walker connected to L1 vs L2",
    ))
    print(f"L1 MPKI inflation: radix={mean(mpki_increase['radix']):.2f}x "
          f"lvm={mean(mpki_increase['lvm']):.2f}x")
    # LVM outperforms radix in both configurations (paper: +11% / +14%).
    assert mean(lvm_speedups["l1"]) > 1.0
    assert mean(lvm_speedups["l2"]) > 1.0
    # Connecting the walker to the L1 inflates L1 MPKI more for radix
    # than for LVM (paper: +59% vs +38%).
    assert mean(mpki_increase["radix"]) > mean(mpki_increase["lvm"])
    assert mean(mpki_increase["radix"]) > 1.1
