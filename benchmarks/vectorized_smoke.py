#!/usr/bin/env python
"""CI smoke for the vectorized epoch engine (``repro.sim.vectorized``).

Two gates, both cheap enough for every CI run:

1. **Bit-identity** — with the engine forced on (``vectorized_min_fast=0``
   batches every epoch it legally can), every (scheme, thp) cell of the
   pre-engine golden file ``tests/golden/scheme_cells.json`` must
   reproduce field-for-field.  This is the engine's hard contract; any
   divergence fails loudly before a speedup is even measured.
2. **Perf floor** — on the hit-dominated hot-loop microbenchmark under
   unscaled Table-1 geometry, the engine must beat the scalar loop by
   ``--min-speedup`` (default 3x — a generous margin under the ~10x+ it
   measures on a quiet box, so shared CI runners don't flap) and its
   own counters must show the batch path actually carried the run.

Run via CI or directly::

    PYTHONPATH=src python benchmarks/vectorized_smoke.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.mmu.hierarchy import HierarchyConfig
from repro.mmu.tlb import TLBConfig
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator
from repro.workloads.registry import BuiltWorkload, build_workload

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "golden" / "scheme_cells.json"


def check_golden_identity() -> int:
    """Engine-on runs must reproduce every pre-engine golden cell."""
    golden = json.loads(GOLDEN_PATH.read_text())
    workload = build_workload(golden["workload"], scale=64, seed=0)
    failures = 0
    for rec in golden["results"]:
        cfg = SimConfig(
            num_refs=golden["refs"], thp=rec["thp"],
            vectorized_engine=True, vectorized_min_fast=0.0,
        )
        result = asdict(Simulator(rec["scheme"], workload, cfg).run())
        ok = result == rec
        failures += not ok
        print(f"  golden {rec['scheme']:8s} thp={int(rec['thp'])}  "
              f"{'ok' if ok else 'DIVERGED'}")
    return failures


def _hot_loop_workload() -> BuiltWorkload:
    """Cyclic 8-byte stride over 16 KB of gups's heap: resident in the
    unscaled L1 TLB and L1D after one lap, so the batch path dominates."""
    gups = build_workload("gups", scale=64, seed=0)
    base = int(gups.trace(16, 1)[0]) & ~0xFFF

    def trace_fn(num_refs, trace_seed):
        offsets = (np.arange(num_refs, dtype=np.int64) * 8) % (16 << 10)
        return base + offsets

    return BuiltWorkload(gups.info, gups.space, trace_fn)


def _timed_run(workload, refs: int, vectorized: bool, rounds: int):
    best = result = stats = None
    for _ in range(rounds):
        cfg = SimConfig(
            num_refs=refs, hierarchy=HierarchyConfig(), tlb=TLBConfig()
        )
        cfg.vectorized_engine = vectorized
        sim = Simulator("radix", workload, cfg)
        start = time.perf_counter()
        res = sim.run()
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best, result, stats = wall, res, sim.vectorized_stats
    return best, result, stats


def check_perf_floor(refs: int, min_speedup: float, rounds: int) -> int:
    workload = _hot_loop_workload()
    _timed_run(workload, refs, True, 1)  # warm-up absorbs one-time costs
    scalar_wall, scalar_res, _ = _timed_run(workload, refs, False, rounds)
    vec_wall, vec_res, stats = _timed_run(workload, refs, True, rounds)
    speedup = scalar_wall / vec_wall
    print(f"  hot loop {refs} refs: scalar {refs / scalar_wall:9.0f} -> "
          f"vectorized {refs / vec_wall:9.0f} refs/s  ({speedup:.2f}x)")

    failures = 0
    if asdict(scalar_res) != asdict(vec_res):
        print("FAIL: engine diverged from the scalar loop on the hot loop")
        failures += 1
    if stats is None or stats["batched_refs"] < refs // 2:
        print(f"FAIL: batch path did not carry the run (stats={stats})")
        failures += 1
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below the {min_speedup:.1f}x floor")
        failures += 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--refs", type=int, default=200_000,
                        help="hot-loop references per timed run")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail if vectorized/scalar falls below this")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed rounds per variant (best wall kept)")
    args = parser.parse_args(argv)

    print("vectorized_smoke: golden bit-identity (engine forced on):")
    failures = check_golden_identity()
    print("vectorized_smoke: perf floor on the hit-dominated hot loop:")
    failures += check_perf_floor(args.refs, args.min_speedup, args.rounds)
    if failures:
        print(f"vectorized_smoke: {failures} check(s) FAILED")
        return 1
    print("vectorized_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
