"""Tests for ASLR rebasing (paper section 5.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rebase import (
    AddressSpaceRebaser,
    IdentityRebaser,
    cluster_regions,
)


class TestIdentity:
    def test_noop(self):
        r = IdentityRebaser()
        assert r.rebase(12345) == 12345
        assert r.in_headroom(1 << 40)


class TestRebaser:
    def test_equal_slots(self):
        r = AddressSpaceRebaser([(1000, 100), (1 << 30, 5000)])
        assert r.regions[0].compact_base == 0
        assert r.regions[1].compact_base == r.slot_pages
        # Slot is a power of two covering the widest region + headroom.
        assert r.slot_pages & (r.slot_pages - 1) == 0
        assert r.slot_pages >= 5000 + AddressSpaceRebaser.DEFAULT_HEADROOM

    def test_rebase_within_region(self):
        r = AddressSpaceRebaser([(1000, 100), (1 << 30, 5000)])
        assert r.rebase(1000) == 0
        assert r.rebase(1050) == 50
        assert r.rebase((1 << 30) + 7) == r.slot_pages + 7

    def test_monotone_everywhere(self):
        r = AddressSpaceRebaser([(1000, 100), (1 << 30, 5000), (1 << 40, 10)])
        samples = [
            0, 999, 1000, 1099, 5000, (1 << 30) - 1, 1 << 30,
            (1 << 30) + 4999, (1 << 35), 1 << 40, (1 << 40) + 9, 1 << 45,
        ]
        rebased = [r.rebase(v) for v in samples]
        assert rebased == sorted(rebased)

    def test_headroom_detection(self):
        r = AddressSpaceRebaser([(1000, 100)])
        assert r.in_headroom(1000)
        assert r.in_headroom(1000 + 100 + 1000)  # within headroom
        assert not r.in_headroom(1000 + r.slot_pages)  # past the slot
        assert not r.in_headroom(0)  # below every region

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            AddressSpaceRebaser([(100, 50), (10, 5)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AddressSpaceRebaser([])

    def test_register_file(self):
        r = AddressSpaceRebaser([(1000, 100), (1 << 30, 200)])
        regs = r.register_file()
        assert regs == [(1000, 0), (1 << 30, r.slot_pages)]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 35),
                st.integers(min_value=1, max_value=1 << 20),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_monotonicity_property(self, raw_regions):
        raw_regions.sort()
        regions = []
        prev_end = -1
        for start, span in raw_regions:
            if start <= prev_end:
                continue
            regions.append((start, span))
            prev_end = start + span - 1
        if not regions:
            return
        r = AddressSpaceRebaser(regions)
        probe = []
        for start, span in regions:
            probe += [start - 1, start, start + span - 1, start + span + 7]
        probe.sort()
        rebased = [r.rebase(max(0, v)) for v in probe]
        assert rebased == sorted(rebased)


class TestClusterRegions:
    def test_single_run(self):
        regions = cluster_regions([10, 11, 12], [1, 1, 1])
        assert regions == [(10, 3)]

    def test_splits_on_large_gap(self):
        vpns = [0, 1, 1 << 20, (1 << 20) + 1]
        regions = cluster_regions(vpns, [1, 1, 1, 1])
        assert len(regions) == 2
        assert regions[0] == (0, 2)

    def test_small_gaps_kept_together(self):
        vpns = [0, 10, 30]
        regions = cluster_regions(vpns, [1, 1, 1], gap_threshold=256)
        assert len(regions) == 1

    def test_caps_region_count(self):
        vpns = [i << 25 for i in range(20)]
        regions = cluster_regions(vpns, [1] * 20, max_regions=8)
        assert len(regions) == 8

    def test_huge_page_spans_counted(self):
        # Two huge pages back to back: no gap despite vpn distance.
        regions = cluster_regions([0, 512], [512, 512], gap_threshold=256)
        assert regions == [(0, 1024)]

    def test_empty(self):
        assert cluster_regions([], []) == []
