"""Tests for the hardware walkers and the full MMU."""

import pytest

from repro.core import LearnedIndex
from repro.mem.allocator import BumpAllocator
from repro.mmu import (
    MMU,
    ASAPWalker,
    ECPTWalker,
    IdealWalker,
    LVMWalker,
    MemoryHierarchy,
    RadixWalker,
)
from repro.mmu.hierarchy import HierarchyConfig
from repro.pagetables import ECPT, IdealPageTable, RadixPageTable
from repro.types import PTE


def hierarchy():
    return MemoryHierarchy(HierarchyConfig(prefetch_degree=0))


def populated_radix(n=2000):
    table = RadixPageTable(BumpAllocator())
    ptes = [PTE(vpn=0x100 + v, ppn=v) for v in range(n)]
    for p in ptes:
        table.map(p)
    return table, ptes


class TestRadixWalker:
    def test_walk_returns_pte(self):
        table, ptes = populated_radix()
        walker = RadixWalker(table, hierarchy())
        outcome = walker.walk(ptes[7].vpn)
        assert outcome.pte is ptes[7]
        assert outcome.memory_accesses == 4  # cold: full walk

    def test_pwc_trims_repeat_walks(self):
        table, ptes = populated_radix()
        walker = RadixWalker(table, hierarchy())
        walker.walk(ptes[0].vpn)
        outcome = walker.walk(ptes[1].vpn)
        # Upper levels cached: only the leaf PTE access remains.
        assert outcome.memory_accesses == 1

    def test_cycles_accumulate(self):
        table, ptes = populated_radix()
        walker = RadixWalker(table, hierarchy())
        walker.walk(ptes[0].vpn)
        assert walker.total_cycles > 0
        assert walker.walks == 1


class TestLVMWalker:
    def test_single_access_after_lwc_warm(self):
        index = LearnedIndex(BumpAllocator())
        ptes = [PTE(vpn=v, ppn=v) for v in range(4096)]
        index.bulk_build(ptes)
        walker = LVMWalker(index, hierarchy())
        walker.walk(0)
        outcome = walker.walk(1)
        # Models in the LWC: only the PTE line goes to memory.
        assert outcome.memory_accesses == 1

    def test_lwc_flush_synced_from_os(self):
        index = LearnedIndex(BumpAllocator())
        index.bulk_build([PTE(vpn=v, ppn=v) for v in range(1000)])
        walker = LVMWalker(index, hierarchy())
        walker.walk(5)
        hits_before = walker.lwc.flushes
        index.stats.lwc_flushes += 1  # OS retrained something
        walker.walk(6)
        assert walker.lwc.flushes == hits_before + 1


class TestECPTWalker:
    def test_parallel_latency_single_step(self):
        table = ECPT(BumpAllocator(), initial_size=256)
        for v in range(500):
            table.map(PTE(vpn=v, ppn=v))
        hier = hierarchy()
        walker = ECPTWalker(table, hier)
        walker.walk(100)
        outcome = walker.walk(101)
        # Traffic counts all parallel probes...
        assert outcome.memory_accesses == 3
        # ...but latency is bounded by one memory access plus the CWC.
        max_single = hier.config.l3_latency + hier.config.dram_latency
        assert outcome.cycles <= walker.cwc.latency + max_single


class TestIdealWalker:
    def test_always_one_access(self):
        table = IdealPageTable(BumpAllocator())
        for v in range(100):
            table.map(PTE(vpn=v, ppn=v))
        walker = IdealWalker(table, hierarchy())
        for v in (0, 50, 99):
            assert walker.walk(v).memory_accesses == 1


class TestASAPWalker:
    def test_prefetch_adds_traffic(self):
        table, ptes = populated_radix()
        asap = ASAPWalker(table, hierarchy(), prefetch_success_rate=1.0)
        plain_table, plain_ptes = populated_radix()
        plain = RadixWalker(plain_table, hierarchy())
        a = asap.walk(ptes[5].vpn)
        b = plain.walk(plain_ptes[5].vpn)
        assert a.memory_accesses > b.memory_accesses

    def test_prefetch_rate_zero_is_radix(self):
        table, ptes = populated_radix()
        asap = ASAPWalker(table, hierarchy(), prefetch_success_rate=0.0)
        outcome = asap.walk(ptes[5].vpn)
        assert outcome.memory_accesses == 4
        assert asap.prefetches == 0


class TestMMU:
    def test_tlb_hit_skips_walk(self):
        table, ptes = populated_radix()
        mmu = MMU(RadixWalker(table, hierarchy()))
        va = ptes[3].vpn << 12
        mmu.translate(va)
        walks_before = mmu.stats.walks
        pte, cycles = mmu.translate(va)
        assert pte is ptes[3]
        assert mmu.stats.walks == walks_before
        assert cycles == 0  # L1 TLB hit

    def test_fault_reports_none(self):
        table, _ = populated_radix()
        mmu = MMU(RadixWalker(table, hierarchy()))
        pte, _ = mmu.translate(0xDEAD_BEEF_000)
        assert pte is None
        assert mmu.stats.faults == 1

    def test_invalidate_forces_rewalk(self):
        table, ptes = populated_radix()
        mmu = MMU(RadixWalker(table, hierarchy()))
        va = ptes[3].vpn << 12
        mmu.translate(va)
        mmu.invalidate(ptes[3].vpn)
        walks_before = mmu.stats.walks
        mmu.translate(va)
        assert mmu.stats.walks == walks_before + 1

    def test_stats_accumulate(self):
        table, ptes = populated_radix()
        mmu = MMU(RadixWalker(table, hierarchy()))
        for p in ptes[:50]:
            mmu.translate(p.vpn << 12)
        s = mmu.stats
        assert s.translations == 50
        assert s.walks + s.l1_tlb_hits + s.l2_tlb_hits == 50
        assert s.mmu_cycles == s.tlb_cycles + s.walk_cycles
