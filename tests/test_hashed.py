"""Tests for the Blake2 hashed page table (section 7.3 baseline)."""

import pytest

from repro.mem.allocator import BumpAllocator
from repro.pagetables.hashed import HashedPageTable, blake2_slot
from repro.types import PTE, TranslationError


def make_table(**kw):
    return HashedPageTable(BumpAllocator(), **kw)


class TestHashing:
    def test_blake2_slot_deterministic(self):
        assert blake2_slot(12345, 1024) == blake2_slot(12345, 1024)

    def test_blake2_slot_in_range(self):
        for vpn in range(0, 100_000, 997):
            assert 0 <= blake2_slot(vpn, 777) < 777

    def test_salt_changes_slot(self):
        hits = sum(
            blake2_slot(v, 1 << 20, 0) == blake2_slot(v, 1 << 20, 1)
            for v in range(1000)
        )
        assert hits < 10  # essentially independent


class TestTable:
    def test_map_walk(self):
        table = make_table()
        pte = PTE(vpn=99, ppn=5)
        table.map(pte)
        assert table.walk(99).pte is pte

    def test_miss(self):
        table = make_table()
        table.map(PTE(vpn=99, ppn=5))
        assert not table.walk(100).hit

    def test_load_factor_maintained(self):
        table = make_table(initial_capacity=64, max_load=0.6)
        for v in range(1000):
            table.map(PTE(vpn=v, ppn=v))
        assert table.load_factor <= 0.6
        assert all(table.walk(v).hit for v in range(0, 1000, 97))

    def test_unmap_preserves_probe_chains(self):
        table = make_table(initial_capacity=64)
        for v in range(30):
            table.map(PTE(vpn=v, ppn=v))
        table.unmap(13)
        assert not table.find(13)
        for v in range(30):
            if v != 13:
                assert table.walk(v).hit, v

    def test_duplicate_rejected(self):
        table = make_table()
        table.map(PTE(vpn=1, ppn=1))
        with pytest.raises(TranslationError):
            table.map(PTE(vpn=1, ppn=2))

    def test_unmap_absent_rejected(self):
        with pytest.raises(TranslationError):
            make_table().unmap(3)

    def test_collision_rate_near_paper_value(self):
        # Section 7.3: ~22% of lookups collide at load factor 0.6.
        table = make_table(initial_capacity=1 << 15)
        n = int((1 << 15) * 0.59)
        for v in range(n):
            table.map(PTE(vpn=v * 7919, ppn=v))
        for v in range(n):
            table.walk(v * 7919)
        assert 0.10 < table.collision_rate < 0.40

    def test_walk_reports_line_accesses(self):
        table = make_table()
        table.map(PTE(vpn=4, ppn=4))
        result = table.walk(4)
        assert result.num_accesses >= 1
        assert result.accesses[0].paddr % 64 == 0
