"""Differential tests: every translation scheme must agree.

Radix, hashed, ECPT, FPT, ideal, and the LVM manager all implement the
same PageTable contract; for any mapping set and any query, they must
return the same translation (or all miss).  Hypothesis drives random
mapping/unmapping sequences through all of them at once.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel.manager import LVMManager
from repro.mem.allocator import BumpAllocator
from repro.pagetables import (
    ECPT,
    FlattenedPageTable,
    HashedPageTable,
    IdealPageTable,
    RadixPageTable,
)
from repro.types import PTE, PageSize


def all_schemes():
    return {
        "radix": RadixPageTable(BumpAllocator()),
        "hashed": HashedPageTable(BumpAllocator()),
        "ecpt": ECPT(BumpAllocator(), initial_size=64),
        "fpt": FlattenedPageTable(BumpAllocator()),
        "ideal": IdealPageTable(BumpAllocator()),
        "lvm": LVMManager(BumpAllocator()),
    }


mapping_sets = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 22),
        st.sampled_from([PageSize.SIZE_4K, PageSize.SIZE_2M]),
    ),
    min_size=1,
    max_size=40,
    unique_by=lambda t: t[0],
)


def _legalize(raw):
    """Align huge pages and drop overlaps so every scheme accepts."""
    ptes = []
    covered = set()
    for ppn, (vpn, size) in enumerate(sorted(raw)):
        if size is PageSize.SIZE_2M:
            vpn -= vpn % 512
        span = range(vpn, vpn + size.pages_4k)
        if any(v in covered for v in span):
            continue
        covered.update(span)
        ptes.append(PTE(vpn=vpn, ppn=100 + ppn, page_size=size))
    return ptes


class TestDifferential:
    @settings(max_examples=30, deadline=None)
    @given(mapping_sets, st.data())
    def test_all_schemes_agree(self, raw, data):
        ptes = _legalize(raw)
        schemes = all_schemes()
        schemes["lvm"].begin_batch()
        for pte in ptes:
            for table in schemes.values():
                table.map(PTE(
                    vpn=pte.vpn, ppn=pte.ppn, page_size=pte.page_size
                ))
        schemes["lvm"].end_batch()

        queries = [p.vpn for p in ptes]
        queries += [p.vpn + p.page_size.pages_4k - 1 for p in ptes]
        queries += data.draw(
            st.lists(st.integers(min_value=0, max_value=1 << 22), max_size=20)
        )
        for vpn in queries:
            answers = {}
            for name, table in schemes.items():
                found = table.find(vpn)
                answers[name] = None if found is None else found.ppn
            distinct = set(answers.values())
            assert len(distinct) == 1, (vpn, answers)

    @settings(max_examples=15, deadline=None)
    @given(mapping_sets, st.data())
    def test_unmap_agreement(self, raw, data):
        ptes = _legalize(raw)
        schemes = all_schemes()
        schemes["lvm"].begin_batch()
        for pte in ptes:
            for table in schemes.values():
                table.map(PTE(
                    vpn=pte.vpn, ppn=pte.ppn, page_size=pte.page_size
                ))
        schemes["lvm"].end_batch()

        removed = data.draw(
            st.lists(
                st.sampled_from([p.vpn for p in ptes]),
                max_size=len(ptes),
                unique=True,
            )
        )
        for vpn in removed:
            for table in schemes.values():
                table.unmap(vpn)
        removed_set = set(removed)
        for pte in ptes:
            for name, table in schemes.items():
                found = table.find(pte.vpn)
                if pte.vpn in removed_set:
                    assert found is None, (name, pte.vpn)
                else:
                    assert found is not None and found.ppn == pte.ppn, (
                        name, pte.vpn,
                    )


class TestWalkAgreement:
    def test_mixed_size_walks_agree(self):
        ptes = [PTE(vpn=v, ppn=v + 1, page_size=PageSize.SIZE_4K)
                for v in range(100)]
        ptes += [
            PTE(vpn=1024 + 512 * i, ppn=5000 + i, page_size=PageSize.SIZE_2M)
            for i in range(8)
        ]
        schemes = all_schemes()
        schemes["lvm"].begin_batch()
        for pte in ptes:
            for table in schemes.values():
                table.map(PTE(vpn=pte.vpn, ppn=pte.ppn, page_size=pte.page_size))
        schemes["lvm"].end_batch()
        # Interior huge-page queries: hashed page tables key per-size
        # VPNs internally, everything else rounds down.
        for query in (1024 + 5, 1024 + 511, 1536 + 300, 50):
            expected = None
            for pte in ptes:
                if pte.covers(query):
                    expected = pte.ppn
            for name, table in schemes.items():
                if name == "hashed" and query not in {p.vpn for p in ptes}:
                    continue  # classic HPT cannot resolve interior VPNs
                found = table.find(query)
                got = None if found is None else found.ppn
                assert got == expected, (name, query)
