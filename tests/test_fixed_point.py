"""Tests for Q44.20 fixed-point arithmetic (paper section 4.5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.fixed_point import (
    FRACTION_BITS,
    MODEL_BYTES,
    SCALE,
    FixedPoint,
    FixedPointOverflow,
    linear_predict,
    quantize,
)


class TestFormat:
    def test_q44_20_geometry(self):
        assert FRACTION_BITS == 20
        assert SCALE == 1 << 20
        assert MODEL_BYTES == 16  # slope + intercept, 8 bytes each

    def test_roundtrip_small_values(self):
        for v in (0.0, 1.0, -1.0, 0.5, 3.25, -2.75):
            assert FixedPoint.from_float(v).to_float() == pytest.approx(v)

    def test_precision_is_2_to_minus_20(self):
        x = FixedPoint.from_float(1e-7)
        # Below representable precision: rounds to 0.
        assert x.raw == 0
        y = FixedPoint.from_float(1.0 / SCALE)
        assert y.raw == 1

    def test_overflow_rejected(self):
        with pytest.raises(FixedPointOverflow):
            FixedPoint.from_int(1 << 44)
        # Max positive integer part fits.
        FixedPoint.from_int((1 << 43) - 1)


class TestArithmetic:
    def test_add_sub(self):
        a = FixedPoint.from_float(1.5)
        b = FixedPoint.from_float(2.25)
        assert (a + b).to_float() == pytest.approx(3.75)
        assert (b - a).to_float() == pytest.approx(0.75)

    def test_mul(self):
        a = FixedPoint.from_float(1.5)
        b = FixedPoint.from_float(2.0)
        assert (a * b).to_float() == pytest.approx(3.0)

    def test_mul_int_matches_hardware_path(self):
        slope = FixedPoint.from_float(0.75)
        assert slope.mul_int(100).floor() == 75

    def test_floor_rounds_toward_negative_infinity(self):
        assert FixedPoint.from_float(-0.5).floor() == -1
        assert FixedPoint.from_float(0.5).floor() == 0
        assert FixedPoint.from_float(-1.0).floor() == -1

    def test_comparison(self):
        assert FixedPoint.from_float(1.0) < FixedPoint.from_float(2.0)
        assert FixedPoint.from_float(1.0) <= FixedPoint.from_float(1.0)

    def test_negation(self):
        assert (-FixedPoint.from_float(2.5)).to_float() == pytest.approx(-2.5)


class TestLinearPredict:
    def test_matches_float_math(self):
        slope, intercept = 1.3, -97.0
        s, t = quantize(slope), quantize(intercept)
        for x in (0, 1, 100, 139, 10_000, 1 << 30):
            got = linear_predict(s, t, x)
            approx = slope * x + intercept
            # Slope quantization error is up to 2^-21 relative, which
            # grows linearly with x.
            assert abs(got - approx) <= abs(x) * 2 ** -FRACTION_BITS + 2

    def test_paper_example(self):
        # Section 4.1: y = 1*x - 97 at x = 139 gives 42 -> PA 0x8b... the
        # slot index is 42.
        s, t = quantize(1.0), quantize(-97.0)
        assert linear_predict(s, t, 139) == 42

    @given(
        st.floats(min_value=-1000, max_value=1000),
        st.floats(min_value=-1e6, max_value=1e6),
        st.integers(min_value=0, max_value=1 << 35),
    )
    def test_error_bounded_by_one_ulp_property(self, slope, intercept, x):
        s, t = quantize(slope), quantize(intercept)
        exact = slope * x + intercept
        got = linear_predict(s, t, x)
        # Quantization error: slope error up to 2^-21 * x, plus rounding.
        bound = abs(x) * (2 ** -FRACTION_BITS) + 2
        assert abs(got - exact) <= bound
