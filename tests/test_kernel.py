"""Tests for the OS layer: VMAs, THP policy, ASLR, process, manager."""

import pytest

from repro.kernel.aslr import ASLRLayout
from repro.kernel.manager import LVMManager
from repro.kernel.process import Process
from repro.kernel.thp import plan_vma_mappings, summarize
from repro.kernel.vma import VMA, AddressSpace
from repro.mem.allocator import BumpAllocator
from repro.pagetables.radix import RadixPageTable
from repro.types import PTE, PageSize, Permission, TranslationError


class TestVMA:
    def test_mmap_find(self):
        space = AddressSpace()
        space.mmap(VMA(start_vpn=100, pages=50))
        assert space.find(120).start_vpn == 100
        assert space.find(99) is None
        assert space.find(150) is None

    def test_overlap_rejected(self):
        space = AddressSpace()
        space.mmap(VMA(start_vpn=100, pages=50))
        with pytest.raises(TranslationError):
            space.mmap(VMA(start_vpn=140, pages=5))
        with pytest.raises(TranslationError):
            space.mmap(VMA(start_vpn=90, pages=20))

    def test_munmap(self):
        space = AddressSpace()
        space.mmap(VMA(start_vpn=100, pages=50))
        space.munmap(100)
        assert space.find(120) is None

    def test_gap_coverage_dense(self):
        space = AddressSpace()
        space.mmap(VMA(start_vpn=0, pages=1000))
        assert space.gap_coverage() == 1.0

    def test_gap_coverage_adjacent_vmas(self):
        space = AddressSpace()
        space.mmap(VMA(start_vpn=0, pages=10))
        space.mmap(VMA(start_vpn=10, pages=10))  # gap == 1 at the seam
        assert space.gap_coverage() == 1.0

    def test_gap_coverage_with_hole(self):
        space = AddressSpace()
        space.mmap(VMA(start_vpn=0, pages=10))
        space.mmap(VMA(start_vpn=15, pages=10))
        # 18 unit transitions out of 19 total.
        assert space.gap_coverage() == pytest.approx(18 / 19)


class TestTHPPolicy:
    def test_collapsed_vma_is_huge(self):
        vma = VMA(start_vpn=512 * 4, pages=512 * 4)
        plans = plan_vma_mappings(vma, thp=True, coverage=1.0)
        huge, small = summarize(plans)
        assert huge == 4 and small == 0

    def test_unaligned_heads_tails(self):
        vma = VMA(start_vpn=512 * 4 + 10, pages=512 * 3)
        plans = plan_vma_mappings(vma, thp=True, coverage=1.0)
        huge, small = summarize(plans)
        assert huge == 2
        assert small == 512 * 3 - 2 * 512

    def test_small_vma_stays_4k(self):
        vma = VMA(start_vpn=0, pages=100)
        plans = plan_vma_mappings(vma, thp=True)
        assert summarize(plans) == (0, 100)

    def test_file_backed_stays_4k(self):
        vma = VMA(start_vpn=0, pages=2048, file_backed=True)
        plans = plan_vma_mappings(vma, thp=True)
        assert summarize(plans)[0] == 0

    def test_no_thp_all_4k(self):
        vma = VMA(start_vpn=0, pages=2048)
        plans = plan_vma_mappings(vma, thp=False)
        assert summarize(plans) == (0, 2048)

    def test_coverage_zero_never_collapses(self):
        vma = VMA(start_vpn=0, pages=2048)
        plans = plan_vma_mappings(vma, thp=True, coverage=0.0)
        assert summarize(plans)[0] == 0


class TestASLR:
    def test_randomization_differs_by_seed(self):
        a = ASLRLayout(seed=1)
        b = ASLRLayout(seed=2)
        assert a.bases != b.bases

    def test_disabled_is_canonical(self):
        a = ASLRLayout(seed=1, enabled=False)
        b = ASLRLayout(seed=2, enabled=False)
        assert a.bases == b.bases

    def test_region_ordering_preserved(self):
        layout = ASLRLayout(seed=7)
        assert layout.base_vpn("text") < layout.base_vpn("heap")
        assert layout.base_vpn("heap") < layout.base_vpn("mmap")
        assert layout.base_vpn("mmap") < layout.base_vpn("stack")


class TestProcess:
    def test_populate_and_walk(self):
        proc = Process(RadixPageTable(BumpAllocator()))
        proc.mmap(VMA(start_vpn=100, pages=64))
        assert proc.page_table.walk(130).hit
        assert proc.stats.mapped_pages == 64

    def test_demand_fault(self):
        proc = Process(RadixPageTable(BumpAllocator()))
        proc.mmap(VMA(start_vpn=100, pages=64), populate=False)
        assert not proc.page_table.walk(130).hit
        pte = proc.handle_fault(130 << 12)
        assert pte.vpn == 130
        assert proc.stats.faults == 1

    def test_segfault(self):
        proc = Process(RadixPageTable(BumpAllocator()))
        with pytest.raises(TranslationError):
            proc.handle_fault(0xDEAD000)

    def test_thp_populate(self):
        proc = Process(RadixPageTable(BumpAllocator()), thp=True, thp_coverage=1.0)
        proc.mmap(VMA(start_vpn=1024, pages=1024))
        assert proc.stats.huge_mappings == 2

    def test_munmap_unmaps_translations(self):
        proc = Process(RadixPageTable(BumpAllocator()))
        proc.mmap(VMA(start_vpn=100, pages=16))
        proc.munmap(100)
        assert not proc.page_table.walk(105).hit
        assert proc.stats.shootdowns == 16


class TestLVMManager:
    def test_batch_build(self):
        mgr = LVMManager(BumpAllocator())
        mgr.begin_batch()
        for v in range(1000):
            mgr.map(PTE(vpn=v, ppn=v))
        mgr.end_batch()
        assert mgr.find(500).ppn == 500
        assert mgr.index.stats.inserts == 0  # batched, not inserted

    def test_streaming_inserts(self):
        mgr = LVMManager(BumpAllocator())
        mgr.begin_batch()
        mgr.map(PTE(vpn=0, ppn=0))
        mgr.end_batch()
        for v in range(1, 300):
            mgr.map(PTE(vpn=v, ppn=v))
        assert all(mgr.find(v) is not None for v in range(300))

    def test_far_segment_reprograms_rebaser(self):
        mgr = LVMManager(BumpAllocator())
        mgr.begin_batch()
        for v in range(100):
            mgr.map(PTE(vpn=v, ppn=v))
        mgr.end_batch()
        far = 1 << 34
        mgr.map(PTE(vpn=far, ppn=1))
        assert mgr.find(far) is not None
        assert mgr.find(50) is not None

    def test_software_pte_updates(self):
        mgr = LVMManager(BumpAllocator())
        mgr.begin_batch()
        mgr.map(PTE(vpn=5, ppn=5))
        mgr.end_batch()
        mgr.set_accessed(5)
        mgr.set_dirty(5)
        mgr.change_protection(5, Permission.READ)
        pte = mgr.find(5)
        assert pte.accessed and pte.dirty
        assert pte.perms == Permission.READ

    def test_unmap(self):
        mgr = LVMManager(BumpAllocator())
        mgr.begin_batch()
        for v in range(100):
            mgr.map(PTE(vpn=v, ppn=v))
        mgr.end_batch()
        mgr.unmap(50)
        assert mgr.find(50) is None

    def test_report_fields(self):
        mgr = LVMManager(BumpAllocator())
        mgr.begin_batch()
        for v in range(100):
            mgr.map(PTE(vpn=v, ppn=v))
        mgr.end_batch()
        report = mgr.report()
        assert report.full_rebuilds == 0
        assert report.management_time_s >= 0.0

    def test_huge_page_via_manager(self):
        mgr = LVMManager(BumpAllocator())
        mgr.begin_batch()
        mgr.map(PTE(vpn=0, ppn=0, page_size=PageSize.SIZE_2M))
        mgr.end_batch()
        assert mgr.walk(77).pte is not None
