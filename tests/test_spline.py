"""Tests for spline-point estimation (cost-model seed)."""

from hypothesis import given, strategies as st

from repro.core.spline import num_segments, spline_points


class TestSplinePoints:
    def test_empty(self):
        assert spline_points([]) == []

    def test_single(self):
        assert spline_points([5]) == [0]

    def test_pair(self):
        assert spline_points([5, 10]) == [0, 1]

    def test_straight_line_one_segment(self):
        keys = list(range(0, 10_000, 3))
        assert num_segments(keys) == 1

    def test_two_dense_segments_with_gap(self):
        keys = list(range(1000)) + list(range(10 ** 7, 10 ** 7 + 1000))
        assert num_segments(keys, max_error=8) >= 2

    def test_knots_start_and_end(self):
        keys = list(range(500))
        pts = spline_points(keys)
        assert pts[0] == 0
        assert pts[-1] == len(keys) - 1

    def test_more_error_fewer_segments(self):
        keys = list(range(500)) + list(range(2000, 2500)) + list(range(9000, 9500))
        loose = num_segments(keys, max_error=1000)
        tight = num_segments(keys, max_error=4)
        assert loose <= tight

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 30),
            min_size=3,
            max_size=200,
            unique=True,
        )
    )
    def test_segments_bounded_by_keys_property(self, keys):
        keys.sort()
        segs = num_segments(keys, max_error=16)
        assert 1 <= segs <= len(keys)
