"""Tests for the ASCII figure renderers."""

from repro.analysis import render_bars, render_cdf, render_grouped_bars


class TestRenderBars:
    def test_basic_shape(self):
        text = render_bars({"a": 1.0, "bb": 2.0}, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a ")
        assert lines[2].count("#") > lines[1].count("#")

    def test_reference_marker_visible_below_unity(self):
        text = render_bars({"x": 0.5}, reference=1.0)
        assert "|" in text

    def test_values_printed(self):
        text = render_bars({"x": 1.234})
        assert "1.234" in text

    def test_empty(self):
        assert render_bars({}, title="t") == "t"

    def test_custom_format(self):
        text = render_bars({"x": 200.0}, value_format="{:.0f}")
        assert "200" in text


class TestGroupedBars:
    def test_groups_labelled(self):
        text = render_grouped_bars(
            {"gups": {"lvm": 1.2}, "bfs": {"lvm": 1.1}}, title="F"
        )
        assert "[gups]" in text and "[bfs]" in text
        assert text.splitlines()[0] == "F"


class TestCDF:
    def test_percentiles_monotone(self):
        text = render_cdf(list(range(100)), points=4)
        values = [float(l.split()[-1]) for l in text.splitlines()]
        assert values == sorted(values)

    def test_empty(self):
        assert render_cdf([], title="t") == "t"
