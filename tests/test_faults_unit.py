"""Unit tests for the fault-injection subsystem and its defenses.

Each fault class has a detection + recovery path; these tests exercise
the pieces in isolation (the end-to-end chaos runs live in
``test_faults_chaos.py``).
"""

import random

import pytest

from repro.errors import (
    ConfigError,
    DoubleMappedFrameError,
    DuplicateMappingError,
    FaultInjectionError,
    IndexInconsistencyError,
    OutOfPhysicalMemory,
    OverlappingVMAError,
    ReproError,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultyAllocator
from repro.kernel.invariants import (
    check_no_double_mapped_frames,
    check_no_overlapping_vmas,
    check_process_invariants,
    reconcile_stale_mappings,
)
from repro.kernel.manager import LVMManager
from repro.kernel.process import Process
from repro.kernel.vma import VMA, AddressSpace
from repro.mem import BumpAllocator
from repro.mmu.walk_cache import CWC, LWC, RadixPWC
from repro.types import PTE, PageSize


def dense_ptes(base, count, ppn0=0):
    return [PTE(vpn=base + i, ppn=ppn0 + i) for i in range(count)]


def build_index(ptes, allocator=None, config=None):
    from repro.core import LearnedIndex

    idx = LearnedIndex(allocator or BumpAllocator(), config)
    idx.bulk_build(ptes)
    return idx


class TestFaultPlan:
    def test_default_disabled(self):
        assert not FaultPlan().enabled

    @pytest.mark.parametrize("kind", list(FaultKind))
    def test_single_enables_one_class(self, kind):
        plan = FaultPlan.single(kind, rate=0.5, seed=9)
        assert plan.enabled
        assert plan.seed == 9

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(pte_bitflip_rate=1.5).validate()
        with pytest.raises(FaultInjectionError):
            FaultPlan(alloc_fail_rate=-0.1).validate()

    def test_bad_seed_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(seed="zero").validate()

    def test_fault_error_is_config_error(self):
        # CLI maps ConfigError to exit code 2; plan mistakes qualify.
        assert issubclass(FaultInjectionError, ConfigError)
        assert issubclass(ConfigError, ReproError)
        assert issubclass(ConfigError, ValueError)

    def test_to_dict_round_trip(self):
        plan = FaultPlan.single(FaultKind.MODEL_PERTURB, rate=0.25, seed=4)
        assert FaultPlan(**plan.to_dict()) == plan


class TestConfigValidation:
    """Satellite: bad configurations die early with clear messages."""

    def test_bad_num_refs(self):
        from repro.sim import SimConfig

        with pytest.raises(ConfigError, match="num_refs"):
            SimConfig(num_refs=0).validate()

    def test_bad_cache_geometry(self):
        from repro.mmu.hierarchy import HierarchyConfig

        with pytest.raises(ConfigError, match="L2"):
            HierarchyConfig(l2_size=-1).validate()
        with pytest.raises(ConfigError, match="walker_entry"):
            HierarchyConfig(walker_entry="l9").validate()

    def test_bad_tlb_geometry(self):
        from repro.mmu.tlb import TLBConfig

        with pytest.raises(ConfigError, match="l1_4k_entries"):
            TLBConfig(l1_4k_entries=0).validate()
        with pytest.raises(ConfigError, match="at least one set"):
            TLBConfig(l2_entries_per_size=4, l2_ways=12).validate()

    def test_q44_20_error_bound_rejected(self):
        from repro.core import LVMConfig
        from repro.core.fixed_point import MAX_INT

        with pytest.raises(ConfigError, match="Q44.20"):
            LVMConfig(spline_max_error=MAX_INT + 1).validate()
        with pytest.raises(ConfigError, match="slots_per_line"):
            LVMConfig(slots_per_line=7).validate()

    def test_bad_plan_rejected_at_sim_config(self):
        from repro.sim import SimConfig

        cfg = SimConfig(num_refs=100, faults=FaultPlan(pte_bitflip_rate=2.0))
        with pytest.raises(FaultInjectionError):
            cfg.validate()

    def test_simulator_rejects_bad_config_before_running(self):
        from repro.sim import SimConfig, Simulator
        from repro.workloads import build_workload

        with pytest.raises(ConfigError):
            Simulator("lvm", build_workload("gups"), SimConfig(num_refs=-1))


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan(seed=11, kernel_event_drop_rate=0.3)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        seq_a = [a.drop_kernel_event() for _ in range(200)]
        seq_b = [b.drop_kernel_event() for _ in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)
        assert a.counts["kernel_event_drop"] == sum(seq_a)
        assert a.total_injected == sum(seq_a)

    def test_sites_are_independent_streams(self):
        # Draining one site must not shift another site's stream.
        plan = FaultPlan(
            seed=1, kernel_event_drop_rate=0.5, kernel_event_dup_rate=0.5
        )
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        for _ in range(100):
            a.drop_kernel_event()
        dups_a = [a.duplicate_kernel_event() for _ in range(100)]
        dups_b = [b.duplicate_kernel_event() for _ in range(100)]
        assert dups_a == dups_b

    def test_zero_rate_never_fires(self):
        inj = FaultInjector(FaultPlan(seed=5))
        assert not any(inj.drop_kernel_event() for _ in range(100))
        assert inj.total_injected == 0


class TestFaultyAllocator:
    def test_wrap_noop_when_disabled(self):
        inner = BumpAllocator()
        inj = FaultInjector(FaultPlan(seed=0))
        assert inj.wrap_allocator(inner) is inner

    def test_always_fail(self):
        inj = FaultInjector(FaultPlan(seed=0, alloc_fail_rate=1.0))
        wrapped = inj.wrap_allocator(BumpAllocator())
        assert isinstance(wrapped, FaultyAllocator)
        with pytest.raises(OutOfPhysicalMemory):
            wrapped.alloc(4096)
        assert inj.counts["alloc_fail"] == 1

    def test_passthrough_when_not_firing(self):
        inner = BumpAllocator()
        inj = FaultInjector(FaultPlan(seed=0, alloc_fail_rate=0.5))
        wrapped = inj.wrap_allocator(inner)
        got = 0
        for _ in range(50):
            try:
                paddr = wrapped.alloc(64)
            except OutOfPhysicalMemory:
                continue
            got += 1
            wrapped.free(paddr, 64)
        assert got > 0
        assert 0 < inj.counts["alloc_fail"] < 50


class TestPTEIntegrity:
    def test_fresh_pte_intact(self):
        pte = PTE(vpn=100, ppn=7)
        assert pte.is_intact()

    @pytest.mark.parametrize("fld", ["vpn", "ppn"])
    def test_bitflip_detected(self, fld):
        pte = PTE(vpn=100, ppn=7)
        bad = pte.with_bitflip(fld, bit=3)
        assert not bad.is_intact()
        assert getattr(bad, fld) == getattr(pte, fld) ^ (1 << 3)


class TestGappedTableCorruption:
    def test_lookup_flags_corruption_and_scan_recovers(self):
        idx = build_index(dense_ptes(0x1000, 2000))
        from repro.core.nodes import leaf_nodes

        leaf = next(l for l in leaf_nodes(idx.root) if l.table.occupied)
        slot, entry = leaf.table.entries()[0]
        leaf.table.corrupt_slot(slot, fld="vpn", bit=5)
        assert leaf.table.corrupt_entry_count() == 1
        # The index-level lookup must still return the right mapping
        # (degradation ladder: scan/retrain behind the scenes).
        walk = idx.lookup(entry.vpn)
        assert walk.hit
        assert walk.pte.vpn == entry.vpn
        assert walk.pte.ppn == entry.ppn
        assert idx.stats.recoveries > 0
        assert idx.stats.corrupt_entries_detected >= 1

    def test_model_perturbation_recovered_by_retrain(self):
        from repro.core.fixed_point import FRACTION_BITS
        from repro.core.linear_model import LinearModel
        from repro.core.nodes import leaf_nodes

        idx = build_index(dense_ptes(0x2000, 3000))
        leaf = next(l for l in leaf_nodes(idx.root) if l.table.occupied)
        _slot, entry = leaf.table.entries()[0]
        shift = (leaf.search_window + leaf.table.max_displacement + 64)
        leaf.model = LinearModel(
            leaf.model.slope_raw,
            leaf.model.intercept_raw + (shift << FRACTION_BITS),
        )
        walk = idx.lookup(entry.vpn)
        assert walk.hit and walk.pte.vpn == entry.vpn
        assert idx.stats.recoveries > 0
        # Once repaired, the next lookup is clean (no new recovery).
        before = idx.stats.recoveries
        again = idx.lookup(entry.vpn)
        assert again.hit
        assert idx.stats.recoveries == before

    def test_plain_miss_is_not_a_recovery(self):
        idx = build_index(dense_ptes(0x1000, 500))
        assert not idx.lookup(0x9999999).hit
        assert idx.stats.recoveries == 0


class TestWalkCachePoison:
    def test_lwc_poison_detected_on_lookup(self):
        lwc = LWC()
        lwc.fill_line(0, 1, 4)  # a 64 B fill brings models 4..7
        assert lwc.poison_random(random.Random(0))
        hits = [lwc.lookup(0, 1, off) for off in (4, 5, 6, 7)]
        assert hits.count(False) == 1  # exactly the poisoned model missed
        assert lwc.poison_detections == 1
        lwc.fill_line(0, 1, 4)
        assert all(lwc.lookup(0, 1, off) for off in (4, 5, 6, 7))

    def test_pwc_poison_detected(self):
        pwc = RadixPWC()
        pwc.fill(0x12345, asid=0, upto_level=2)
        assert pwc.poison_random(random.Random(1))
        # Probe every level directly: parity catches the one damaged
        # entry the moment it is used, and only that one.
        for level in (2, 3, 4):
            pwc.levels[level].lookup(pwc._key(0x12345, level, 0))
        assert pwc.poison_detections == 1

    def test_cwc_poison_detected(self):
        cwc = CWC()
        cwc.fill(0x12345, asid=0)
        assert cwc.poison_random(random.Random(2))
        pmd, pud = cwc.lookup(0x12345, asid=0)
        assert not (pmd and pud)
        assert cwc.poison_detections >= 1

    def test_empty_cache_cannot_be_poisoned(self):
        assert not LWC().poison_random(random.Random(0))
        assert not RadixPWC().poison_random(random.Random(0))
        assert not CWC().poison_random(random.Random(0))


class _Proc:
    """Minimal process stand-in for the invariant checkers."""

    def __init__(self, address_space, page_table):
        self.address_space = address_space
        self.page_table = page_table


class TestInvariants:
    def test_overlapping_vmas_detected(self):
        from bisect import insort

        space = AddressSpace()
        space.mmap(VMA(start_vpn=0, pages=10))
        # Corrupt behind the API (mmap itself rejects overlap).
        insort(space._starts, 5)
        space._vmas[5] = VMA(start_vpn=5, pages=10)
        with pytest.raises(OverlappingVMAError):
            check_no_overlapping_vmas(space)

    def test_double_mapped_frame_detected(self):
        ptes = [PTE(vpn=0, ppn=100), PTE(vpn=1, ppn=100)]
        with pytest.raises(DoubleMappedFrameError):
            check_no_double_mapped_frames(ptes)

    def test_huge_page_frame_overlap_detected(self):
        huge = PTE(vpn=0, ppn=0, page_size=PageSize.SIZE_2M)
        inside = PTE(vpn=1024, ppn=17)  # frame 17 is inside the 2M run
        with pytest.raises(DoubleMappedFrameError):
            check_no_double_mapped_frames([huge, inside])

    def test_clean_process_passes(self):
        manager = LVMManager(BumpAllocator())
        proc = Process(manager, injector=None)
        proc.mmap(VMA(start_vpn=0x1000, pages=64))
        check_process_invariants(proc)

    def test_stale_mapping_detected_and_reconciled(self):
        manager = LVMManager(BumpAllocator())
        space = AddressSpace()
        space.mmap(VMA(start_vpn=0x1000, pages=8))
        for i in range(8):
            manager.map(PTE(vpn=0x1000 + i, ppn=i + 1))
        manager.map(PTE(vpn=0x9000, ppn=99))  # no VMA covers this
        proc = _Proc(space, manager)
        with pytest.raises(IndexInconsistencyError):
            check_process_invariants(proc)
        assert reconcile_stale_mappings(proc) == 1
        check_process_invariants(proc)
        assert manager.find(0x9000) is None

    def test_duplicate_map_rejected(self):
        manager = LVMManager(BumpAllocator())
        manager.map(PTE(vpn=10, ppn=1))
        with pytest.raises(DuplicateMappingError):
            manager.map(PTE(vpn=10, ppn=2))

    def test_duplicate_rejected_while_batching(self):
        manager = LVMManager(BumpAllocator())
        manager.begin_batch()
        manager.map(PTE(vpn=10, ppn=1))
        with pytest.raises(DuplicateMappingError):
            manager.map(PTE(vpn=10, ppn=2))
        manager.end_batch()
        assert manager.find(10).ppn == 1


class TestKernelEventFaults:
    def _process(self, plan):
        injector = FaultInjector(plan) if plan else None
        return Process(LVMManager(BumpAllocator()), injector=injector)

    def test_dropped_mmap_recovered_by_demand_fault(self):
        proc = self._process(FaultPlan(seed=0, kernel_event_drop_rate=1.0))
        vma = proc.mmap(VMA(start_vpn=0x100, pages=4))
        assert vma.start_vpn == 0x100
        assert proc.stats.dropped_mmap_events > 0
        # The mapping was dropped on the way to the agent...
        assert proc.page_table.find(0x100) is None
        # ...but a demand fault (never droppable) installs it.
        pte = proc.handle_fault(0x100 << 12)
        assert pte is not None and pte.covers(0x100)
        assert proc.page_table.find(0x100) is not None

    def test_duplicate_mmap_rejected_by_guard(self):
        proc = self._process(FaultPlan(seed=0, kernel_event_dup_rate=1.0))
        proc.mmap(VMA(start_vpn=0x200, pages=4))
        assert proc.stats.duplicate_events > 0
        assert proc.stats.duplicate_rejects == proc.stats.duplicate_events
        check_process_invariants(proc)

    def test_dropped_munmap_heals_via_reconcile(self):
        plan = FaultPlan(seed=0, kernel_event_drop_rate=1.0)
        proc = Process(LVMManager(BumpAllocator()), injector=None)
        proc.mmap(VMA(start_vpn=0x300, pages=4))
        proc.injector = FaultInjector(plan)
        proc.munmap(0x300)
        proc.injector = None
        assert proc.stats.dropped_munmap_events > 0
        # VMA is gone but the index still holds the translations.
        assert proc.address_space.find(0x300) is None
        assert proc.page_table.find(0x300) is not None
        healed = proc.reconcile()
        assert healed == 4
        assert proc.page_table.find(0x300) is None
        proc.check_invariants()
