"""Tests for caches, TLBs, walk caches and the memory hierarchy."""

import pytest

from repro.mmu.cache import Cache
from repro.mmu.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.mmu.tlb import TLBArray, TLBConfig, TLBHierarchy
from repro.mmu.walk_cache import CWC, LWC, RadixPWC
from repro.types import PTE, PageSize


class TestCache:
    def test_hit_after_fill(self):
        cache = Cache("t", 4096, 4, latency=10)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_same_entry(self):
        cache = Cache("t", 4096, 4, latency=10)
        cache.access(0x1000)
        assert cache.access(0x1030)  # same 64 B line

    def test_lru_eviction(self):
        # 1 set x 2 ways: every line maps to the same set.
        cache = Cache("t", 128, 2, latency=1)
        cache.access(0)
        cache.access(64)
        cache.access(128)  # evicts line 0
        assert not cache.access(0)

    def test_lru_updates_on_hit(self):
        cache = Cache("t", 128, 2, latency=1)
        cache.access(0)
        cache.access(64)
        cache.access(0)  # refresh line 0
        cache.access(128)  # evicts line 64, not 0
        assert cache.access(0)
        assert not cache.access(64)

    def test_walk_miss_attribution(self):
        cache = Cache("t", 4096, 4, latency=1)
        cache.access(0x1000, is_walk=True)
        assert cache.walk_misses == 1

    def test_mpki(self):
        cache = Cache("t", 4096, 4, latency=1)
        for i in range(10):
            cache.access(i * 4096)
        assert cache.mpki(10_000) == pytest.approx(1.0)

    def test_fill_installs_without_counting(self):
        cache = Cache("t", 4096, 4, latency=10)
        cache.fill(0x2000)
        assert cache.hits == 0 and cache.misses == 0
        assert cache.contains(0x2000)
        assert cache.access(0x2000)  # demand access now hits

    def test_fill_follows_demand_lru(self):
        # 1 set x 2 ways: fill participates in the same LRU order a
        # demand fill would, including the move-to-MRU on re-fill.
        cache = Cache("t", 128, 2, latency=1)
        cache.access(0)
        cache.access(64)
        cache.fill(0)  # refresh line 0 -> line 64 is now LRU
        cache.fill(128)  # evicts line 64
        assert cache.contains(0) and cache.contains(128)
        assert not cache.contains(64)

    def test_locate_override_still_honoured(self):
        # Subclasses may replace the placement function (the learned
        # set index in repro.extensions does); the inlined fast path
        # must defer to the override.
        class Swizzled(Cache):
            def _locate(self, paddr):
                set_idx, tag = Cache._locate(self, paddr)
                return (set_idx + 1) % self.num_sets, tag

        plain = Cache("p", 4096, 4, latency=1)
        swizzled = Swizzled("s", 4096, 4, latency=1)
        plain.access(0x1000)
        swizzled.access(0x1000)
        swizzled.fill(0x3000)
        plain_set = Cache._locate(plain, 0x1000)[0]
        assert plain_set in plain._sets
        assert (plain_set + 1) % swizzled.num_sets in swizzled._sets
        assert swizzled.contains(0x3000)


class TestHierarchy:
    def test_latencies_by_level(self):
        h = MemoryHierarchy(HierarchyConfig(prefetch_degree=0))
        paddr = 0x123000
        first = h.access(paddr)
        assert first == h.config.l3_latency + h.config.dram_latency
        assert h.access(paddr) == h.config.l1_latency

    def test_walker_entry_skips_l1(self):
        h = MemoryHierarchy(HierarchyConfig(prefetch_degree=0))
        h.walk_access(0x5000)
        assert h.l1.accesses == 0
        assert h.l2.accesses == 1

    def test_prefetch_fills_next_lines(self):
        h = MemoryHierarchy(HierarchyConfig(prefetch_degree=2))
        h.access(0x10000)  # miss: prefetch 0x10040, 0x10080
        assert h.access(0x10040) == h.config.l1_latency
        assert h.access(0x10080) == h.config.l1_latency

    def test_scaled_capacities(self):
        cfg = HierarchyConfig.scaled(16)
        base = HierarchyConfig()
        assert cfg.l2_size == base.l2_size // 16
        assert cfg.l2_latency == base.l2_latency
        # Floors keep at least one line per way times a few sets.
        tiny = HierarchyConfig.scaled(1 << 20)
        assert tiny.l1_size >= tiny.l1_ways * 64

    def test_scaled_touches_only_sizes(self):
        """``scaled`` shrinks capacities and nothing else: every other
        field (latencies, ways, walker entry, prefetch degree, fields
        added later) must match the default config."""
        from dataclasses import fields

        cfg = HierarchyConfig.scaled(16)
        base = HierarchyConfig()
        size_fields = {"l1_size", "l2_size", "l3_size"}
        for f in fields(HierarchyConfig):
            if f.name in size_fields:
                continue
            assert getattr(cfg, f.name) == getattr(base, f.name), f.name

    def test_llc_would_hit_nondestructive(self):
        h = MemoryHierarchy(HierarchyConfig(prefetch_degree=0))
        assert not h.llc_would_hit(0x9000)
        h.access(0x9000)
        misses_before = h.l1.misses
        assert h.llc_would_hit(0x9000)
        assert h.l1.misses == misses_before


class TestTLB:
    def test_array_hit_miss(self):
        arr = TLBArray("t", 16, 4, PageSize.SIZE_4K)
        pte = PTE(vpn=5, ppn=5)
        assert arr.lookup(5, asid=0) is None
        arr.insert(pte, asid=0)
        assert arr.lookup(5, asid=0) is pte

    def test_asid_isolation(self):
        arr = TLBArray("t", 16, 4, PageSize.SIZE_4K)
        arr.insert(PTE(vpn=5, ppn=5), asid=1)
        assert arr.lookup(5, asid=2) is None

    def test_huge_page_granularity(self):
        arr = TLBArray("t", 16, 4, PageSize.SIZE_2M)
        pte = PTE(vpn=1024, ppn=9, page_size=PageSize.SIZE_2M)
        arr.insert(pte, asid=0)
        hit = arr.lookup(1024 + 300, asid=0)
        assert hit is pte

    def test_hierarchy_promotes_l2_hit_to_l1(self):
        tlbs = TLBHierarchy(TLBConfig())
        pte = PTE(vpn=7, ppn=7)
        tlbs.l2[PageSize.SIZE_4K].insert(pte, asid=0)
        found, latency = tlbs.lookup(7, asid=0)
        assert found is pte and latency == tlbs.config.l2_latency
        found, latency = tlbs.lookup(7, asid=0)
        assert found is pte and latency == 0  # now in L1

    def test_invalidate(self):
        tlbs = TLBHierarchy()
        tlbs.insert(PTE(vpn=3, ppn=3), asid=0)
        tlbs.invalidate(3, asid=0)
        found, _ = tlbs.lookup(3, asid=0)
        assert found is None

    def test_scaled_geometry(self):
        cfg = TLBConfig.scaled(16)
        assert cfg.l2_entries_per_size == 128
        assert cfg.l1_4k_entries >= 4


class TestTLBFrontIndex:
    """The O(1) VPN index kept in front of the L1 4 KB array."""

    def _array(self, entries=8, ways=4):
        return TLBArray("t", entries, ways, PageSize.SIZE_4K, front_index=True)

    def test_requires_base_pages(self):
        with pytest.raises(ValueError, match="front index"):
            TLBArray("t", 8, 4, PageSize.SIZE_2M, front_index=True)

    def test_insert_registers_entry(self):
        arr = self._array()
        pte = PTE(vpn=5, ppn=5)
        arr.insert(pte, asid=3)
        asid, front_pte, tlb_set, key = arr.front[5]
        assert asid == 3 and front_pte is pte
        assert tlb_set[key] is pte  # points at the live set/slot

    def test_eviction_drops_entry(self):
        # 1 set x 2 ways: the third insert evicts the LRU (vpn=0).
        arr = self._array(entries=2, ways=2)
        for vpn in (0, 1, 2):
            arr.insert(PTE(vpn=vpn, ppn=vpn), asid=0)
        assert 0 not in arr.front
        assert set(arr.front) == {1, 2}

    def test_invalidate_and_flush_drop_entries(self):
        arr = self._array()
        arr.insert(PTE(vpn=7, ppn=7), asid=0)
        arr.insert(PTE(vpn=9, ppn=9), asid=1)
        arr.invalidate(7, asid=0)
        assert 7 not in arr.front
        arr.flush_asid(1)
        assert 9 not in arr.front

    def test_invalidate_other_asid_keeps_entry(self):
        arr = self._array()
        arr.insert(PTE(vpn=7, ppn=7), asid=0)
        arr.invalidate(7, asid=5)  # different address space
        assert 7 in arr.front

    def test_front_mirrors_contents_under_churn(self):
        """After arbitrary insert/invalidate churn the index holds
        exactly the resident (latest-insert-per-vpn) entries."""
        arr = self._array(entries=4, ways=2)
        for i in range(40):
            vpn = (i * 7) % 11
            arr.insert(PTE(vpn=vpn, ppn=i), asid=0)
            if i % 5 == 0:
                arr.invalidate((i * 3) % 11, asid=0)
        resident = {
            key[1]: pte
            for tlb_set in arr._sets.values()
            for key, pte in tlb_set.items()
        }
        assert set(arr.front) == set(resident)
        for vpn, (asid, pte, tlb_set, key) in arr.front.items():
            assert resident[vpn] is pte
            assert tlb_set[key] is pte

    def test_hierarchy_enables_front_only_on_l1_4k(self):
        tlbs = TLBHierarchy(TLBConfig(front_index=True))
        assert tlbs.l1[PageSize.SIZE_4K].front is not None
        assert tlbs.l1[PageSize.SIZE_2M].front is None
        assert all(arr.front is None for arr in tlbs.l2.values())
        disabled = TLBHierarchy(TLBConfig(front_index=False))
        assert disabled.l1[PageSize.SIZE_4K].front is None


class TestWalkCaches:
    def test_pwc_skip_levels(self):
        pwc = RadixPWC()
        assert pwc.lowest_cached_level(0x12345, asid=0) is None
        pwc.fill(0x12345, asid=0, upto_level=2)
        assert pwc.lowest_cached_level(0x12345, asid=0) == 2

    def test_pwc_shares_prefix(self):
        pwc = RadixPWC()
        pwc.fill(0x12345, asid=0, upto_level=2)
        # Another VPN in the same 2 MB region hits at level 2 too.
        assert pwc.lowest_cached_level(0x12345 ^ 0x1FF, asid=0) == 2

    def test_pwc_asid_flush(self):
        pwc = RadixPWC()
        pwc.fill(0x12345, asid=3, upto_level=2)
        pwc.flush_asid(3)
        assert pwc.lowest_cached_level(0x12345, asid=3) is None

    def test_lwc_line_fill_brings_four_models(self):
        lwc = LWC()
        assert not lwc.lookup(0, 1, 5)
        lwc.fill_line(0, 1, 5)
        for offset in (4, 5, 6, 7):
            assert lwc.lookup(0, 1, offset)
        assert not lwc.lookup(0, 1, 8)

    def test_lwc_capacity_and_eviction(self):
        lwc = LWC(entries=4)
        for off in range(0, 32, 4):
            lwc.fill_line(0, 0, off)
        assert lwc._lru.occupancy <= 4

    def test_lwc_flush_entry(self):
        lwc = LWC()
        lwc.fill_line(0, 1, 0)
        lwc.flush_entry(0, 1, 0)
        assert not lwc.lookup(0, 1, 0)
        assert lwc.flushes == 1

    def test_lwc_size_is_256_bytes(self):
        # 16 entries x 16 B models: 3x less storage than the radix
        # PWC's 96 x 8 B (section 7.4).
        assert LWC().size_bytes == 256
        assert RadixPWC().size_bytes == 768

    def test_cwc_levels(self):
        cwc = CWC()
        pmd, pud = cwc.lookup(0x12345, asid=0)
        assert not pmd and not pud
        cwc.fill(0x12345, asid=0)
        pmd, pud = cwc.lookup(0x12345, asid=0)
        assert pmd and pud
