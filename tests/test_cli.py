"""Tests for the artifact-regeneration CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in COMMANDS:
            args = parser.parse_args([command])
            assert args.command == command

    def test_defaults(self):
        args = build_parser().parse_args(["tab1"])
        assert args.refs == 30_000
        assert args.workloads is None

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestCommands:
    def test_tab1(self, capsys):
        assert main(["tab1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "LVM Page Walk Cache" in out

    def test_hardware(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "bytes=3.00" in out

    def test_tab2_subset(self, capsys):
        assert main(["tab2", "--workloads", "gups"]) == 0
        out = capsys.readouterr().out
        assert "gups" in out

    def test_fig9_tiny(self, capsys):
        assert main([
            "fig9", "--workloads", "gups", "--refs", "2000"
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "lvm" in out

    def test_collisions_tiny(self, capsys):
        assert main([
            "collisions", "--workloads", "gups", "--refs", "2000"
        ]) == 0
        out = capsys.readouterr().out
        assert "collision rates" in out
