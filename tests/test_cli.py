"""Tests for the artifact-regeneration CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in COMMANDS:
            args = parser.parse_args([command])
            assert args.command == command

    def test_defaults(self):
        args = build_parser().parse_args(["tab1"])
        assert args.refs == 30_000
        assert args.workloads is None

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestArgumentValidation:
    """Supervision flags are validated up front: every violation is a
    one-line configuration error with exit code 2."""

    def test_jobs_zero_rejected(self, capsys):
        assert main(["tab1", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_jobs_negative_rejected(self, capsys):
        assert main(["tab1", "--jobs", "-4"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_run_timeout_must_be_positive(self, capsys):
        assert main(["tab1", "--run-timeout", "0"]) == 2
        assert "--run-timeout" in capsys.readouterr().err

    def test_retries_cannot_be_negative(self, capsys):
        assert main(["tab1", "--retries", "-1"]) == 2
        assert "--retries" in capsys.readouterr().err

    def test_resume_requires_journal(self, capsys):
        assert main(["suite", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_resume_with_missing_journal_is_exit_2(self, tmp_path, capsys):
        """--resume pointing at a journal that was never written is a
        configuration error naming the path, not a silent fresh start
        and not the JournalMismatchError stale-config message."""
        missing = tmp_path / "never-written.jsonl"
        code = main([
            "fig9", "--refs", "200", "--workloads", "gups",
            "--schemes", "radix", "--journal", str(missing), "--resume",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "nothing to resume" in err and str(missing) in err
        assert not missing.exists()

    def test_shards_must_be_positive(self, capsys):
        assert main(["serve", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_malformed_repro_jobs_env_is_exit_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert main(["tab1"]) == 2
        assert "REPRO_JOBS" in capsys.readouterr().err


class TestCommands:
    def test_tab1(self, capsys):
        assert main(["tab1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "LVM Page Walk Cache" in out

    def test_hardware(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "bytes=3.00" in out

    def test_tab2_subset(self, capsys):
        assert main(["tab2", "--workloads", "gups"]) == 0
        out = capsys.readouterr().out
        assert "gups" in out

    def test_fig9_tiny(self, capsys):
        assert main([
            "fig9", "--workloads", "gups", "--refs", "2000"
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "lvm" in out

    def test_collisions_tiny(self, capsys):
        assert main([
            "collisions", "--workloads", "gups", "--refs", "2000"
        ]) == 0
        out = capsys.readouterr().out
        assert "collision rates" in out
