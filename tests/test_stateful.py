"""Stateful property testing: the learned index against a dict oracle.

Hypothesis drives random interleavings of insert / remove / lookup /
compact against a plain dictionary model; after every step the index
must agree with the oracle for hits, misses, and translated PPNs —
including queries inside huge pages.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import LearnedIndex, LVMConfig
from repro.mem import BumpAllocator
from repro.types import PTE, PageSize

VPN_SPACE = 1 << 16


class IndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.index = LearnedIndex(BumpAllocator())
        self.oracle = {}  # first vpn -> PTE
        self.covered = {}  # covered vpn -> first vpn
        self.ppn = 1000

    @initialize(seed_keys=st.lists(
        st.integers(min_value=0, max_value=VPN_SPACE - 1),
        min_size=1, max_size=50, unique=True,
    ))
    def build(self, seed_keys):
        ptes = []
        for vpn in sorted(seed_keys):
            if vpn in self.covered:
                continue
            pte = PTE(vpn=vpn, ppn=self.ppn)
            self.ppn += 1
            ptes.append(pte)
            self.oracle[vpn] = pte
            self.covered[vpn] = vpn
        self.index.bulk_build(ptes)

    def _free_huge_slot(self, aligned):
        return all(
            aligned + i not in self.covered for i in range(512)
        )

    @rule(vpn=st.integers(min_value=0, max_value=VPN_SPACE - 1))
    def insert_4k(self, vpn):
        if vpn in self.covered:
            return
        pte = PTE(vpn=vpn, ppn=self.ppn)
        self.ppn += 1
        self.index.insert(pte)
        self.oracle[vpn] = pte
        self.covered[vpn] = vpn

    @rule(slot=st.integers(min_value=0, max_value=(VPN_SPACE // 512) - 1))
    def insert_2m(self, slot):
        aligned = slot * 512
        if not self._free_huge_slot(aligned):
            return
        pte = PTE(vpn=aligned, ppn=self.ppn, page_size=PageSize.SIZE_2M)
        self.ppn += 512
        self.index.insert(pte)
        self.oracle[aligned] = pte
        for i in range(512):
            self.covered[aligned + i] = aligned

    @rule(data=st.data())
    def remove_one(self, data):
        if not self.oracle:
            return
        vpn = data.draw(st.sampled_from(sorted(self.oracle)))
        pte = self.oracle.pop(vpn)
        for i in range(pte.page_size.pages_4k):
            del self.covered[vpn + i]
        self.index.remove(vpn)

    @rule()
    def compact(self):
        self.index.compact()

    @rule(vpn=st.integers(min_value=0, max_value=VPN_SPACE - 1))
    def lookup_matches_oracle(self, vpn):
        walk = self.index.lookup(vpn)
        first = self.covered.get(vpn)
        if first is None:
            assert not walk.hit, vpn
        else:
            assert walk.hit, vpn
            assert walk.pte is self.oracle[first]

    @invariant()
    def depth_bounded(self):
        assert self.index.depth <= LVMConfig().d_limit

    @invariant()
    def mapping_count_agrees(self):
        assert self.index.num_mappings == len(self.oracle)


TestIndexStateful = IndexMachine.TestCase
TestIndexStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
