"""Tests for gapped page tables (paper section 4.2.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.gapped_page_table import GPTFullError, GappedPageTable
from repro.types import PTE, PageSize


def make_pte(vpn, size=PageSize.SIZE_4K):
    return PTE(vpn=vpn, ppn=vpn + 1000, page_size=size)


class TestGeometry:
    def test_size_bytes(self):
        gpt = GappedPageTable(100, base_paddr=0x1000)
        assert gpt.size_bytes == 800

    def test_slot_paddr(self):
        gpt = GappedPageTable(100, base_paddr=0x1000)
        assert gpt.slot_paddr(0) == 0x1000
        assert gpt.slot_paddr(9) == 0x1000 + 72

    def test_line_of_groups_eight_slots(self):
        gpt = GappedPageTable(100, base_paddr=0)
        assert gpt.line_of(0) == gpt.line_of(7)
        assert gpt.line_of(7) != gpt.line_of(8)

    def test_needs_positive_slots(self):
        with pytest.raises(ValueError):
            GappedPageTable(0, base_paddr=0)


class TestInsert:
    def test_insert_at_predicted(self):
        gpt = GappedPageTable(16, 0)
        slot = gpt.insert(5, make_pte(42), max_displacement=4)
        assert slot == 5
        assert gpt.occupied == 1

    def test_collision_displaces_nearest(self):
        gpt = GappedPageTable(16, 0)
        gpt.insert(5, make_pte(1), 4)
        slot = gpt.insert(5, make_pte(2), 4)
        assert slot in (4, 6)
        assert gpt.max_displacement == 1

    def test_displacement_bound_enforced(self):
        gpt = GappedPageTable(8, 0)
        for i in range(5):
            gpt.insert(3, make_pte(i), 2)
        with pytest.raises(GPTFullError):
            gpt.insert(3, make_pte(99), 2)

    def test_clamps_out_of_range_prediction(self):
        gpt = GappedPageTable(8, 0)
        slot = gpt.insert(100, make_pte(1), 2)
        assert slot == 7

    def test_remove_leaves_gap(self):
        gpt = GappedPageTable(8, 0)
        slot = gpt.insert(2, make_pte(7), 2)
        removed = gpt.remove(slot)
        assert removed.vpn == 7
        assert gpt.occupied == 0
        # Gap is reusable.
        assert gpt.insert(2, make_pte(8), 2) == slot

    def test_remove_empty_slot_raises(self):
        gpt = GappedPageTable(8, 0)
        with pytest.raises(KeyError):
            gpt.remove(3)


class TestExpand:
    def test_expand_keeps_entries(self):
        gpt = GappedPageTable(8, 0x1000)
        gpt.insert(2, make_pte(5), 2)
        gpt.expand(8)
        assert gpt.num_slots == 16
        found = gpt.lookup(2, 5, window=2)
        assert found.hit and found.pte.vpn == 5

    def test_expand_with_rebase(self):
        gpt = GappedPageTable(8, 0x1000)
        gpt.insert(2, make_pte(5), 2)
        gpt.expand(8, new_base_paddr=0x9000)
        assert gpt.base_paddr == 0x9000
        assert gpt.slot_paddr(0) == 0x9000

    def test_expand_negative_rejected(self):
        gpt = GappedPageTable(8, 0)
        with pytest.raises(ValueError):
            gpt.expand(-1)


class TestLookup:
    def test_exact_hit_single_line(self):
        gpt = GappedPageTable(64, 0)
        gpt.insert(10, make_pte(100), 4)
        res = gpt.lookup(10, 100, window=4)
        assert res.hit
        assert res.lines_touched == 1

    def test_displaced_entry_found_within_window(self):
        gpt = GappedPageTable(64, 0)
        gpt.insert(10, make_pte(1), 8)
        gpt.insert(10, make_pte(2), 8)
        res = gpt.lookup(10, 2, window=8)
        assert res.hit and res.pte.vpn == 2

    def test_miss_returns_lines_for_accounting(self):
        gpt = GappedPageTable(64, 0)
        res = gpt.lookup(10, 999, window=4)
        assert not res.hit
        assert res.lines_touched >= 1

    def test_huge_page_round_down(self):
        gpt = GappedPageTable(64, 0)
        gpt.insert(3, make_pte(1024, PageSize.SIZE_2M), 4)
        res = gpt.lookup(3, 1024 + 200, window=4)
        assert res.hit and res.pte.vpn == 1024

    def test_find_slot_exact_match_only(self):
        gpt = GappedPageTable(64, 0)
        gpt.insert(3, make_pte(1024, PageSize.SIZE_2M), 4)
        assert gpt.find_slot(3, 1024, window=4) == 3
        with pytest.raises(KeyError):
            gpt.find_slot(3, 1025, window=4)

    def test_lookup_line_paddrs_ordered_center_first(self):
        gpt = GappedPageTable(640, 0)
        gpt.insert(100, make_pte(1), 64)
        gpt.insert(100, make_pte(2), 64)
        # Force a scan that crosses lines.
        for i in range(3, 20):
            gpt.insert(100, make_pte(i), 64)
        res = gpt.lookup(100, 19, window=64)
        assert res.hit
        assert res.line_paddrs[0] == gpt.line_of(100) * 64


class TestProperties:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=200), min_size=1, max_size=60,
        )
    )
    def test_everything_inserted_is_findable(self, predictions):
        gpt = GappedPageTable(512, 0)
        entries = []
        for i, pred in enumerate(predictions):
            pte = make_pte(10_000 + i)
            gpt.insert(pred, pte, max_displacement=256)
            entries.append((pred, pte))
        window = gpt.max_displacement + 1
        for pred, pte in entries:
            res = gpt.lookup(pred, pte.vpn, window=window)
            assert res.hit and res.pte is pte

    @given(st.integers(min_value=1, max_value=100))
    def test_occupancy_never_exceeds_slots(self, n):
        gpt = GappedPageTable(n, 0)
        inserted = 0
        for i in range(n + 10):
            try:
                gpt.insert(i % n, make_pte(i), max_displacement=n)
                inserted += 1
            except GPTFullError:
                break
        assert gpt.occupied == inserted <= n
