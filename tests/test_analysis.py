"""Tests for the analysis package (figures 2/3, sections 7.3/7.4)."""

import pytest

from repro.analysis import (
    allocator_divergence,
    bytes_human,
    collision_study,
    compare_default,
    gap_coverage_study,
    index_size_table,
    lwc_cost,
    memory_consumption_study,
    minimum_coverage,
    pwc_entries_for_footprint,
    radix_pwc_cost,
    render_series,
    render_table,
    run_contiguity_study,
    scaling_study,
)


class TestGapCoverage:
    def test_subset_study(self):
        rows = gap_coverage_study(
            workload_names=["gups", "MUMr"], allocators=["jemalloc"]
        )
        assert len(rows) == 2
        assert minimum_coverage(rows) > 0.7

    def test_allocator_divergence(self):
        rows = gap_coverage_study(
            workload_names=["MUMr"], allocators=["jemalloc", "tcmalloc"]
        )
        assert allocator_divergence(rows) < 0.05


class TestContiguity:
    def test_shape(self):
        study = run_contiguity_study(mem_bytes=256 << 20, churn_rounds=3)
        assert study.profile.at(4 << 10) == 1.0
        assert study.profile.at(64 << 20) < 0.2
        assert 0.0 <= study.fmfi_2m <= 1.0


class TestCollisions:
    def test_collision_study_runs(self):
        row = collision_study("gups", num_lookups=3000)
        assert row.lvm_collision_rate < row.hash_collision_rate
        assert row.index_size_bytes > 0

    def test_memory_consumption(self):
        row = memory_consumption_study("MUMr")
        assert row.minimum_bytes == row.mapped_pages * 8
        assert row.lvm_overhead_bytes < row.ecpt_overhead_bytes

    def test_index_size_table(self):
        table = index_size_table(["gups"])
        assert set(table["gups"]) == {"4KB", "THP"}

    def test_scaling_study_flat(self):
        sizes = scaling_study(footprints_gb=[16, 64])
        values = list(sizes.values())
        assert max(values) - min(values) <= 32


class TestAreaModel:
    def test_paper_anchors(self):
        cmp = compare_default()
        assert cmp.bytes_ratio == pytest.approx(3.0, rel=0.01)
        assert cmp.area_ratio == pytest.approx(1.5, rel=0.05)
        assert cmp.power_ratio == pytest.approx(1.9, rel=0.05)

    def test_lwc_absolutes(self):
        lwc = lwc_cost()
        assert lwc.area_mm2 == pytest.approx(0.00364, rel=0.02)
        assert lwc.leakage_mw == pytest.approx(0.588, rel=0.02)

    def test_area_monotone_in_entries(self):
        assert radix_pwc_cost(64).area_mm2 > radix_pwc_cost(32).area_mm2

    def test_pwc_scaling_with_footprint(self):
        assert pwc_entries_for_footprint(1 << 40) > pwc_entries_for_footprint(1 << 34)


class TestReport:
    def test_render_table(self):
        text = render_table(["a", "bb"], [(1, 2.5), ("x", "y")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text

    def test_render_series(self):
        assert render_series("s", {"a": 1.0}) == "s: a=1.000"

    def test_bytes_human(self):
        assert bytes_human(512) == "512B"
        assert bytes_human(2048) == "2.0KB"
        assert bytes_human(3 << 20) == "3.0MB"
