"""Tests for the LVM learned index (paper sections 4.1-4.5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LearnedIndex, LVMConfig
from repro.mem import BuddyAllocator, BumpAllocator, fragment_to_max_contiguity
from repro.types import PTE, PageSize, TranslationError


def dense_ptes(base, count, ppn0=0):
    return [PTE(vpn=base + i, ppn=ppn0 + i) for i in range(count)]


def build(ptes, allocator=None, config=None):
    idx = LearnedIndex(allocator or BumpAllocator(), config)
    idx.bulk_build(ptes)
    return idx


class TestBulkBuild:
    def test_all_keys_found(self):
        ptes = dense_ptes(0x1000, 5000)
        idx = build(ptes)
        for pte in ptes[::37]:
            walk = idx.lookup(pte.vpn)
            assert walk.pte is pte

    def test_unmapped_misses(self):
        idx = build(dense_ptes(100, 100))
        assert not idx.lookup(5000).hit
        assert not idx.lookup(50).hit

    def test_multi_segment_index_is_tiny(self):
        ptes = []
        for base in (0x1000, 0x100000, 0x800000):
            ptes += dense_ptes(base, 3000, ppn0=base)
        idx = build(ptes)
        # Table 2: steady-state indexes are ~100-200 bytes.
        assert idx.index_size_bytes <= 512
        assert idx.depth <= LVMConfig().d_limit

    def test_index_size_independent_of_footprint(self):
        # Section 7.3 scaling study: the index does not grow with the
        # number of mapped pages when the space stays regular.
        small = build(dense_ptes(0, 10_000))
        large = build(dense_ptes(0, 200_000))
        assert large.index_size_bytes <= small.index_size_bytes + 64

    def test_duplicate_vpn_rejected(self):
        with pytest.raises(TranslationError):
            build([PTE(vpn=1, ppn=1), PTE(vpn=1, ppn=2)])

    def test_empty_build(self):
        idx = LearnedIndex(BumpAllocator())
        idx.bulk_build([])
        assert idx.root is None
        assert not idx.lookup(0).hit


class TestDepthBound:
    def test_depth_never_exceeds_d_limit(self):
        import random

        rng = random.Random(3)
        # Pathological: scattered random keys.
        vpns = sorted(rng.sample(range(1 << 24), 20_000))
        idx = build([PTE(vpn=v, ppn=v) for v in vpns])
        assert idx.depth <= LVMConfig().d_limit

    def test_walk_accesses_bounded(self):
        idx = build(dense_ptes(0, 10_000))
        walk = idx.lookup(5000)
        # d_limit models + PTE fetch: at most 4 memory accesses in the
        # collision-free case (section 5.1).
        assert walk.hit
        assert len(walk.node_accesses) <= LVMConfig().d_limit
        assert walk.total_memory_accesses <= LVMConfig().d_limit + 1


class TestPageSizes:
    def test_huge_page_round_down(self):
        hp = [PTE(vpn=512 * i, ppn=i, page_size=PageSize.SIZE_2M) for i in range(64)]
        idx = build(hp)
        for i in (0, 13, 63):
            for offset in (0, 1, 255, 511):
                walk = idx.lookup(512 * i + offset)
                assert walk.pte is hp[i], (i, offset)

    def test_mixed_sizes_single_index(self):
        mix = dense_ptes(0, 2000) + [
            PTE(vpn=1 << 16 | (512 * i), ppn=7000 + i, page_size=PageSize.SIZE_2M)
            for i in range(32)
        ]
        idx = build(mix)
        assert all(idx.lookup(p.vpn).pte is p for p in mix)

    def test_gigabyte_page(self):
        giant = PTE(vpn=1 << 18, ppn=42, page_size=PageSize.SIZE_1G)
        idx = build(dense_ptes(0, 1000) + [giant])
        assert idx.lookup((1 << 18) + 100_000).pte is giant

    def test_size_encoding_preserved(self):
        hp = PTE(vpn=0, ppn=0, page_size=PageSize.SIZE_2M)
        idx = build([hp])
        assert idx.lookup(5).pte.page_size is PageSize.SIZE_2M


class TestInsert:
    def test_sequential_growth_uses_rescaling(self):
        idx = build(dense_ptes(0, 10_000))
        for v in range(10_000, 14_000):
            idx.insert(PTE(vpn=v, ppn=v))
        assert all(idx.lookup(v).hit for v in range(0, 14_000, 13))
        # Section 4.3.4: edge growth must not retrain; 4000 inserts
        # within one minimum-insertion-distance need exactly one rescale.
        assert idx.stats.rescales <= 2
        assert idx.stats.full_rebuilds == 0

    def test_within_bounds_insert_into_gap(self):
        idx = build([PTE(vpn=2 * i, ppn=i) for i in range(2000)])
        idx.insert(PTE(vpn=501, ppn=9999))
        assert idx.lookup(501).pte.ppn == 9999

    def test_far_insert_triggers_rebuild(self):
        idx = build(dense_ptes(0, 1000))
        far = 10_000_000
        idx.insert(PTE(vpn=far, ppn=1))
        assert idx.stats.full_rebuilds == 1
        assert idx.lookup(far).hit
        assert idx.lookup(500).hit

    def test_left_insert_rebuilds(self):
        idx = build(dense_ptes(100_000, 1000))
        idx.insert(PTE(vpn=50, ppn=1))
        assert idx.lookup(50).hit
        assert idx.lookup(100_500).hit

    def test_duplicate_insert_rejected(self):
        idx = build(dense_ptes(0, 10))
        with pytest.raises(TranslationError):
            idx.insert(PTE(vpn=5, ppn=1))

    def test_insert_into_empty_index(self):
        idx = LearnedIndex(BumpAllocator())
        idx.bulk_build([])
        idx.insert(PTE(vpn=42, ppn=1))
        assert idx.lookup(42).hit

    def test_huge_page_insert(self):
        idx = build(dense_ptes(0, 1000))
        hp = PTE(vpn=1 << 14, ppn=5, page_size=PageSize.SIZE_2M)
        idx.insert(hp)
        assert idx.lookup((1 << 14) + 300).pte is hp


class TestRemove:
    def test_remove_then_miss(self):
        idx = build(dense_ptes(0, 1000))
        idx.remove(500)
        assert not idx.lookup(500).hit
        assert idx.lookup(499).hit and idx.lookup(501).hit

    def test_remove_keeps_model(self):
        # Section 5.2 "Free": the index is not retrained on frees.
        idx = build(dense_ptes(0, 1000))
        before = idx.stats.local_retrains + idx.stats.full_rebuilds
        for v in range(100, 200):
            idx.remove(v)
        assert idx.stats.local_retrains + idx.stats.full_rebuilds == before

    def test_freed_slot_reused(self):
        idx = build(dense_ptes(0, 1000))
        idx.remove(500)
        idx.insert(PTE(vpn=500, ppn=777))
        assert idx.lookup(500).pte.ppn == 777

    def test_remove_unmapped_raises(self):
        idx = build(dense_ptes(0, 10))
        with pytest.raises(TranslationError):
            idx.remove(999)

    def test_remove_huge_page(self):
        hp = [PTE(vpn=512 * i, ppn=i, page_size=PageSize.SIZE_2M) for i in range(10)]
        idx = build(hp)
        idx.remove(512 * 5)
        assert not idx.lookup(512 * 5 + 100).hit
        assert idx.lookup(512 * 6).hit


class TestFragmentation:
    def test_adapts_to_limited_contiguity(self):
        buddy = BuddyAllocator(256 << 20)
        fragment_to_max_contiguity(buddy, 256 << 10)
        idx = LearnedIndex(buddy)
        idx.bulk_build(dense_ptes(0, 100_000))
        # Every gapped table must fit the 256 KB contiguity cap.
        from repro.core.nodes import leaf_nodes

        for leaf in leaf_nodes(idx.root):
            assert leaf.table.size_bytes <= 256 << 10
        assert all(idx.lookup(v).hit for v in range(0, 100_000, 1009))


class TestStats:
    def test_collision_rate_low_on_regular_space(self):
        idx = build(dense_ptes(0, 50_000))
        for v in range(0, 50_000, 7):
            idx.lookup(v)
        # Section 7.3: 0.2% average collision rate for 4 KB pages.
        assert idx.stats.collision_rate < 0.02

    def test_memory_overhead_bounded_by_ga_scale(self):
        idx = build(dense_ptes(0, 100_000))
        # Worst case 1.3x the minimum space (section 7.3).
        assert idx.table_bytes <= 1.35 * idx.min_required_bytes + 4096

    def test_software_find_has_no_stats_side_effect(self):
        idx = build(dense_ptes(0, 100))
        lookups_before = idx.stats.lookups
        idx.find(50)
        assert idx.stats.lookups == lookups_before


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 22),
            min_size=1,
            max_size=400,
            unique=True,
        )
    )
    def test_lookup_finds_every_built_key(self, vpns):
        vpns.sort()
        ptes = [PTE(vpn=v, ppn=i) for i, v in enumerate(vpns)]
        idx = build(ptes)
        for pte in ptes:
            assert idx.lookup(pte.vpn).pte is pte

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 20),
            min_size=2,
            max_size=200,
            unique=True,
        ),
        st.data(),
    )
    def test_insert_remove_interleaving(self, vpns, data):
        vpns.sort()
        half = len(vpns) // 2
        idx = build([PTE(vpn=v, ppn=v) for v in vpns[:half]])
        for v in vpns[half:]:
            idx.insert(PTE(vpn=v, ppn=v))
        removed = data.draw(
            st.lists(st.sampled_from(vpns), max_size=len(vpns) // 2, unique=True)
        )
        for v in removed:
            idx.remove(v)
        removed_set = set(removed)
        for v in vpns:
            walk = idx.lookup(v)
            if v in removed_set:
                assert not walk.hit
            else:
                assert walk.hit and walk.pte.vpn == v
