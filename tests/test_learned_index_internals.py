"""White-box tests of learned-index internals: rescaling, retraining,
allocator bookkeeping, LWC-flush accounting, and the walk traces."""

import pytest

from repro.core import LearnedIndex, LVMConfig
from repro.core.nodes import InternalNode, leaf_nodes
from repro.core.rebase import AddressSpaceRebaser
from repro.mem import BumpAllocator
from repro.types import PTE, PTE_SIZE, PageSize


def dense(base, n):
    return [PTE(vpn=base + i, ppn=i) for i in range(n)]


class TestWalkTraces:
    def test_node_path_is_root_to_leaf(self):
        index = LearnedIndex(BumpAllocator())
        index.bulk_build(
            dense(0, 3000) + dense(300_000, 3000) + dense(900_000, 3000)
        )
        walk = index.lookup(300_500)
        levels = [lvl for lvl, _, _ in walk.node_accesses]
        assert levels == sorted(levels)
        assert levels[0] == 0

    def test_node_paddrs_match_level_layout(self):
        index = LearnedIndex(BumpAllocator())
        index.bulk_build(dense(0, 2000) + dense(1 << 20, 2000))
        walk = index.lookup(100)
        for level, offset, paddr in walk.node_accesses:
            assert paddr == index.level_bases[level] + offset * 16

    def test_pte_line_is_inside_leaf_table(self):
        index = LearnedIndex(BumpAllocator())
        index.bulk_build(dense(0, 5000))
        walk = index.lookup(1234)
        leaf = index._leaf_for(index.rebaser.rebase(1234))
        lo = leaf.table.base_paddr - leaf.table.base_paddr % 64
        hi = leaf.table.slot_paddr(leaf.table.num_slots - 1)
        assert lo <= walk.pte_line_paddrs[0] <= hi


class TestRescaling:
    def test_expand_right_grows_range_and_table(self):
        index = LearnedIndex(BumpAllocator())
        index.bulk_build(dense(0, 10_000))
        old_hi = index.root.hi
        slots_before = sum(
            l.table.num_slots for l in leaf_nodes(index.root)
        )
        index.insert(PTE(vpn=10_000, ppn=1))
        assert index.root.hi >= old_hi + LVMConfig().min_insert_distance_pages
        slots_after = sum(l.table.num_slots for l in leaf_nodes(index.root))
        assert slots_after > slots_before
        assert index.stats.rescales == 1

    def test_rescale_does_not_flush_lwc(self):
        # Section 5.2: rescaling never modifies models, so no flush.
        index = LearnedIndex(BumpAllocator())
        index.bulk_build(dense(0, 10_000))
        flushes = index.stats.lwc_flushes
        index.insert(PTE(vpn=10_000, ppn=1))
        assert index.stats.lwc_flushes == flushes

    def test_existing_entries_survive_rescale(self):
        index = LearnedIndex(BumpAllocator())
        ptes = dense(0, 10_000)
        index.bulk_build(ptes)
        index.insert(PTE(vpn=10_000, ppn=77))
        for pte in ptes[::499]:
            assert index.lookup(pte.vpn).pte is pte

    def test_retrain_flushes_lwc(self):
        index = LearnedIndex(BumpAllocator())
        index.bulk_build([PTE(vpn=4 * i, ppn=i) for i in range(2000)])
        flushes = index.stats.lwc_flushes
        # Force enough gap inserts to trigger at least one local retrain.
        for i in range(2000):
            index.insert(PTE(vpn=4 * i + 1, ppn=50_000 + i))
        if index.stats.local_retrains + index.stats.full_rebuilds > 0:
            assert index.stats.lwc_flushes > flushes


class TestAllocatorBookkeeping:
    def test_rebuild_frees_old_structures(self):
        allocator = BumpAllocator()
        index = LearnedIndex(allocator)
        index.bulk_build(dense(0, 20_000))
        live_after_build = allocator.live_bytes
        index.insert(PTE(vpn=10 ** 9, ppn=1))  # far insert -> full rebuild
        # The rebuild must free the old tables/levels: live bytes stay
        # in the same ballpark instead of doubling.
        assert allocator.live_bytes < 1.7 * live_after_build

    def test_table_bytes_accounting(self):
        index = LearnedIndex(BumpAllocator())
        index.bulk_build(dense(0, 10_000))
        computed = sum(l.table.size_bytes for l in leaf_nodes(index.root))
        assert index.table_bytes == computed
        assert index.min_required_bytes == 10_000 * PTE_SIZE

    def test_memory_overhead_property(self):
        index = LearnedIndex(BumpAllocator())
        index.bulk_build(dense(0, 50_000))
        assert index.memory_overhead_bytes == (
            index.table_bytes - index.min_required_bytes
        )


class TestRebasedIndex:
    def test_explicit_rebaser_round_trip(self):
        regions = [(1 << 30, 5000), (1 << 40, 5000)]
        rebaser = AddressSpaceRebaser(regions)
        index = LearnedIndex(BumpAllocator(), rebaser=rebaser)
        ptes = dense(1 << 30, 5000) + dense(1 << 40, 5000)
        index.bulk_build(ptes)
        assert all(index.lookup(p.vpn).pte is p for p in ptes[:: 333])
        assert not index.lookup((1 << 35)).hit

    def test_index_covers_whole_slots(self):
        rebaser = AddressSpaceRebaser([(0, 1000), (1 << 33, 1000)])
        index = LearnedIndex(BumpAllocator(), rebaser=rebaser)
        index.bulk_build(dense(0, 1000) + dense(1 << 33, 1000))
        assert index.root.hi >= rebaser.compact_span

    def test_huge_pages_with_rebasing(self):
        rebaser = AddressSpaceRebaser([(1 << 33, 512 * 64)])
        index = LearnedIndex(BumpAllocator(), rebaser=rebaser)
        ptes = [
            PTE(vpn=(1 << 33) + 512 * i, ppn=i, page_size=PageSize.SIZE_2M)
            for i in range(64)
        ]
        index.bulk_build(ptes)
        for i in (0, 13, 63):
            q = (1 << 33) + 512 * i + 200
            assert index.lookup(q).pte is ptes[i]


class TestDegradedLeafBehaviour:
    def test_degraded_inserts_do_not_rebuild_storm(self):
        import random

        rng = random.Random(2)
        vpns = sorted(rng.sample(range(2000), 900))
        index = LearnedIndex(BumpAllocator())
        index.bulk_build([PTE(vpn=v, ppn=v) for v in vpns])
        remaining = sorted(set(range(2000)) - set(vpns))
        for v in remaining[:300]:
            index.insert(PTE(vpn=v, ppn=10_000 + v))
        # Lookups stay correct whatever the structure decided.
        for v in remaining[:300:17]:
            assert index.lookup(v).hit
        assert index.stats.full_rebuilds <= 10
