"""Cross-cutting invariant tests over full simulations.

These run small end-to-end simulations and check the paper's hard
bounds hold *throughout*: walk lengths, traffic floors/ceilings, index
depth, and accounting consistency between layers.
"""

import pytest

from repro.core import LVMConfig
from repro.sim import SCHEMES, SimConfig, Simulator
from repro.workloads import build_workload

REFS = 3000


@pytest.fixture(scope="module", params=["gups", "MUMr"])
def workload(request):
    return build_workload(request.param)


class TestWalkBounds:
    def test_lvm_walk_traffic_bounded_by_dlimit(self, workload):
        cfg = SimConfig(num_refs=REFS)
        sim = Simulator("lvm", workload, cfg)
        result = sim.run()
        config = LVMConfig()
        # Worst case per walk: d_limit model fetches + 1 PTE fetch +
        # C_err collision accesses (section 5.1).
        assert result.walk_traffic <= result.walks * (
            config.d_limit + 1 + config.c_err
        )
        # And on a regular space, near the single-access ideal.
        assert result.walk_traffic <= result.walks * 1.6

    def test_ideal_exactly_one_access_per_walk(self, workload):
        result = Simulator("ideal", workload, SimConfig(num_refs=REFS)).run()
        assert result.walk_traffic == result.walks

    def test_radix_at_most_four_accesses_per_walk(self, workload):
        result = Simulator("radix", workload, SimConfig(num_refs=REFS)).run()
        assert result.walk_traffic <= result.walks * 4

    def test_ecpt_traffic_at_most_probes_plus_cwt(self, workload):
        result = Simulator("ecpt", workload, SimConfig(num_refs=REFS)).run()
        # 3 ways x (worst case both 4K+2M sizes) + 2 CWT fetches.
        assert result.walk_traffic <= result.walks * 8


class TestAccountingConsistency:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_mmu_cycles_decompose(self, workload, scheme):
        sim = Simulator(scheme, workload, SimConfig(num_refs=REFS))
        result = sim.run()
        stats = sim.mmu.stats
        assert stats.mmu_cycles == stats.tlb_cycles + stats.walk_cycles
        assert stats.translations == REFS + stats.faults
        assert result.walks == stats.walks

    def test_walker_and_mmu_agree(self, workload):
        sim = Simulator("lvm", workload, SimConfig(num_refs=REFS))
        sim.run()
        assert sim.walker.walks == sim.mmu.stats.walks
        assert sim.walker.total_accesses == sim.mmu.stats.walk_traffic

    def test_cycles_positive_and_scale_with_refs(self, workload):
        short = Simulator("radix", workload, SimConfig(num_refs=1000)).run()
        longer = Simulator("radix", workload, SimConfig(num_refs=4000)).run()
        assert longer.cycles > short.cycles


class TestIndexDepthInvariant:
    def test_depth_bound_after_full_simulation(self, workload):
        sim = Simulator("lvm", workload, SimConfig(num_refs=REFS))
        sim.run()
        assert sim.manager.index.depth <= LVMConfig().d_limit

    def test_thp_depth_bound(self, workload):
        sim = Simulator("lvm", workload, SimConfig(num_refs=REFS, thp=True))
        sim.run()
        assert sim.manager.index.depth <= LVMConfig().d_limit
