"""Pathological-case tests: the section 4.2.3 guardrails.

"Even in a pathological case, LVM's learned index would not grow too
deep for hardware page walks nor too large to have good cacheability."
These tests throw adversarial key distributions at the index and check
the guardrails hold while lookups remain correct.
"""

import random

import pytest

from repro.core import LearnedIndex, LVMConfig
from repro.core.nodes import iter_nodes, leaf_nodes
from repro.kernel.kernel_space import KERNEL_BASE_VPN, SharedKernelIndex
from repro.mem import BumpAllocator
from repro.types import PTE, PageSize


def build(vpns):
    index = LearnedIndex(BumpAllocator())
    index.bulk_build([PTE(vpn=v, ppn=i) for i, v in enumerate(sorted(vpns))])
    return index


class TestPathologicalSpaces:
    def test_uniform_random_keys(self):
        rng = random.Random(1)
        vpns = sorted(rng.sample(range(1 << 22), 30_000))
        index = build(vpns)
        assert index.depth <= LVMConfig().d_limit
        for v in vpns[::111]:
            assert index.lookup(v).hit
        for _ in range(200):
            v = rng.randrange(1 << 22)
            assert index.lookup(v).hit == (v in set(vpns))

    def test_exponentially_spaced_keys(self):
        vpns = [2 ** i for i in range(1, 34)]
        index = build(vpns)
        assert index.depth <= LVMConfig().d_limit
        assert all(index.lookup(v).hit for v in vpns)
        assert not index.lookup(3).hit

    def test_adversarial_cluster_sizes(self):
        # Clusters whose sizes and gaps grow geometrically: no single
        # branching factor fits.
        vpns = []
        base = 0
        for i in range(12):
            size = 2 ** i
            vpns.extend(range(base, base + size))
            base += size * 3 + 7
        index = build(vpns)
        assert index.depth <= LVMConfig().d_limit
        assert all(index.lookup(v).hit for v in vpns[:: max(1, len(vpns) // 200)])

    def test_index_size_bounded_on_random_keys(self):
        rng = random.Random(7)
        vpns = sorted(rng.sample(range(1 << 24), 50_000))
        index = build(vpns)
        # Cacheability guardrail: even for white-noise keys the index
        # must stay far below the PTE space itself (8 B per key).
        assert index.index_size_bytes < 8 * len(vpns)

    def test_interleaved_page_sizes_alternating(self):
        ptes = []
        vpn = 0
        for i in range(200):
            if i % 2 == 0:
                ptes.append(PTE(vpn=vpn, ppn=i))
                vpn += 1
            else:
                vpn = (vpn + 511) // 512 * 512
                ptes.append(PTE(vpn=vpn, ppn=i, page_size=PageSize.SIZE_2M))
                vpn += 512
        index = LearnedIndex(BumpAllocator())
        index.bulk_build(ptes)
        for pte in ptes:
            walk = index.lookup(pte.vpn)
            assert walk.pte is pte
            inner = index.lookup(pte.vpn + pte.page_size.pages_4k - 1)
            assert inner.pte is pte

    def test_adversarial_insert_order(self):
        # Bit-reversed insertion order: maximally non-sequential.
        n = 4096
        bits = 12
        index = LearnedIndex(BumpAllocator())
        index.bulk_build([PTE(vpn=0, ppn=0)])
        for i in range(1, n):
            rev = int(f"{i:0{bits}b}"[::-1], 2)
            if rev == 0:
                continue
            index.insert(PTE(vpn=rev, ppn=i))
        hits = sum(index.lookup(v).hit for v in range(n))
        assert hits == n - bits + 1 or hits >= n - bits  # all inserted found

    def test_every_node_within_depth_limit(self):
        rng = random.Random(3)
        vpns = sorted(rng.sample(range(1 << 20), 20_000))
        index = build(vpns)
        for node in iter_nodes(index.root):
            assert node.depth < LVMConfig().d_limit


class TestSharedKernelIndex:
    def test_direct_map_is_one_leaf(self):
        kernel = SharedKernelIndex(BumpAllocator())
        kernel.map_direct(KERNEL_BASE_VPN, 100_000, ppn0=0)
        assert kernel.index_size_bytes <= 64  # a handful of models
        walk = kernel.lookup(KERNEL_BASE_VPN + 54_321)
        assert walk.hit and walk.pte.ppn == 54_321

    def test_user_vpn_rejected(self):
        kernel = SharedKernelIndex(BumpAllocator())
        with pytest.raises(Exception):
            kernel.map(PTE(vpn=100, ppn=1))

    def test_sharing_accounts_savings(self):
        kernel = SharedKernelIndex(BumpAllocator())
        kernel.map_direct(KERNEL_BASE_VPN, 10_000, ppn0=0)
        for _ in range(8):
            kernel.attach()
        assert kernel.attached_processes == 8
        assert kernel.memory_saved_vs_per_process() > 7 * 10_000 * 8 * 0.9

    def test_vmalloc_style_inserts(self):
        kernel = SharedKernelIndex(BumpAllocator())
        kernel.map_direct(KERNEL_BASE_VPN, 10_000, ppn0=0)
        for i in range(200):
            kernel.map(PTE(vpn=KERNEL_BASE_VPN + 20_000 + 3 * i, ppn=99_000 + i))
        assert kernel.lookup(KERNEL_BASE_VPN + 20_000 + 3 * 57).hit
