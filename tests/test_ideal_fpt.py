"""Tests for the ideal page table and flattened page tables."""

import pytest

from repro.mem.allocator import BumpAllocator, OutOfPhysicalMemory
from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import fragment_to_max_contiguity
from repro.pagetables.fpt import FlattenedPageTable
from repro.pagetables.ideal import IdealPageTable
from repro.types import PTE, PageSize, TranslationError


class TestIdeal:
    def test_single_access_always(self):
        table = IdealPageTable(BumpAllocator())
        for v in range(1000):
            table.map(PTE(vpn=v, ppn=v))
        for v in range(0, 1000, 37):
            result = table.walk(v)
            assert result.hit
            assert result.num_accesses == 1

    def test_huge_page_covering(self):
        table = IdealPageTable(BumpAllocator())
        pte = PTE(vpn=512, ppn=1, page_size=PageSize.SIZE_2M)
        table.map(pte)
        assert table.walk(512 + 300).pte is pte
        assert table.walk(511).pte is None

    def test_entries_densely_packed(self):
        table = IdealPageTable(BumpAllocator())
        table.map(PTE(vpn=0, ppn=0, page_size=PageSize.SIZE_2M))
        table.map(PTE(vpn=512, ppn=1, page_size=PageSize.SIZE_2M))
        a = table.walk(0).accesses[0].paddr
        b = table.walk(512).accesses[0].paddr
        assert b == a + 8  # one 8 B entry per mapping, adjacent

    def test_unmap_and_slot_reuse(self):
        table = IdealPageTable(BumpAllocator())
        table.map(PTE(vpn=1, ppn=1))
        paddr = table.walk(1).accesses[0].paddr
        table.unmap(1)
        assert not table.walk(1).hit
        table.map(PTE(vpn=2, ppn=2))
        assert table.walk(2).accesses[0].paddr == paddr

    def test_duplicate_rejected(self):
        table = IdealPageTable(BumpAllocator())
        table.map(PTE(vpn=1, ppn=1))
        with pytest.raises(TranslationError):
            table.map(PTE(vpn=1, ppn=2))

    def test_table_bytes_minimal(self):
        table = IdealPageTable(BumpAllocator())
        for v in range(512):
            table.map(PTE(vpn=v * 7, ppn=v))
        assert table.table_bytes == 512 * 8


class TestFPT:
    def test_folded_walk_two_accesses(self):
        table = FlattenedPageTable(BumpAllocator())
        pte = PTE(vpn=0x1234, ppn=9)
        table.map(pte)
        result = table.walk(0x1234)
        assert result.pte is pte
        assert result.num_accesses == 2  # L4+L3 folded, L2+L1 folded

    def test_huge_page(self):
        table = FlattenedPageTable(BumpAllocator())
        pte = PTE(vpn=1024, ppn=9, page_size=PageSize.SIZE_2M)
        table.map(pte)
        assert table.walk(1024 + 100).pte is pte

    def test_1g_rejected(self):
        table = FlattenedPageTable(BumpAllocator())
        with pytest.raises(TranslationError):
            table.map(PTE(vpn=0, ppn=0, page_size=PageSize.SIZE_1G))

    def test_unmap(self):
        table = FlattenedPageTable(BumpAllocator())
        table.map(PTE(vpn=7, ppn=7))
        table.unmap(7)
        assert not table.walk(7).hit

    def test_fragmentation_degrades_to_radix_walks(self):
        buddy = BuddyAllocator(64 << 20)
        fragment_to_max_contiguity(buddy, 256 << 10)
        table = FlattenedPageTable(buddy)
        pte = PTE(vpn=0x1234, ppn=9)
        table.map(pte)
        result = table.walk(0x1234)
        assert result.pte is pte
        # No 2 MB block available: folds failed, walk lengthens.
        assert result.num_accesses >= 3
        assert table.fold_success_rate < 1.0

    def test_fold_success_with_contiguity(self):
        table = FlattenedPageTable(BumpAllocator())
        table.map(PTE(vpn=1, ppn=1))
        assert table.fold_success_rate == 1.0

    def test_miss(self):
        table = FlattenedPageTable(BumpAllocator())
        table.map(PTE(vpn=1, ppn=1))
        assert not table.walk(99999999).hit
