"""Tests for the 4-level radix page table baseline."""

import pytest

from repro.mem.allocator import BumpAllocator
from repro.pagetables.radix import RadixPageTable, level_index
from repro.types import PTE, AccessKind, PageSize, TranslationError


def make_table():
    return RadixPageTable(BumpAllocator())


class TestIndexing:
    def test_level_index_slices(self):
        vpn = (3 << 27) | (5 << 18) | (7 << 9) | 11
        assert level_index(vpn, 4) == 3
        assert level_index(vpn, 3) == 5
        assert level_index(vpn, 2) == 7
        assert level_index(vpn, 1) == 11


class TestMapping:
    def test_map_walk_4k(self):
        table = make_table()
        pte = PTE(vpn=0x12345, ppn=7)
        table.map(pte)
        result = table.walk(0x12345)
        assert result.pte is pte
        assert result.num_accesses == 4  # full four-level walk

    def test_walk_levels_descend(self):
        table = make_table()
        table.map(PTE(vpn=0x12345, ppn=7))
        levels = [a.level for a in table.walk(0x12345).accesses]
        assert levels == [4, 3, 2, 1]
        kinds = [a.kind for a in table.walk(0x12345).accesses]
        assert kinds[-1] is AccessKind.PT_LEAF

    def test_2m_page_walk_is_three_accesses(self):
        table = make_table()
        pte = PTE(vpn=512 * 10, ppn=9, page_size=PageSize.SIZE_2M)
        table.map(pte)
        result = table.walk(512 * 10 + 77)
        assert result.pte is pte
        assert result.num_accesses == 3

    def test_1g_page_walk_is_two_accesses(self):
        table = make_table()
        pte = PTE(vpn=0, ppn=9, page_size=PageSize.SIZE_1G)
        table.map(pte)
        result = table.walk(123_456)
        assert result.pte is pte
        assert result.num_accesses == 2

    def test_miss_stops_at_absent_level(self):
        table = make_table()
        table.map(PTE(vpn=0x12345, ppn=7))
        result = table.walk(0x999999999)
        assert not result.hit
        assert result.num_accesses < 4

    def test_misaligned_huge_rejected(self):
        table = make_table()
        with pytest.raises(TranslationError):
            table.map(PTE(vpn=5, ppn=0, page_size=PageSize.SIZE_2M))

    def test_double_map_rejected(self):
        table = make_table()
        table.map(PTE(vpn=1, ppn=1))
        with pytest.raises(TranslationError):
            table.map(PTE(vpn=1, ppn=2))

    def test_huge_overlapping_small_rejected(self):
        table = make_table()
        table.map(PTE(vpn=512, ppn=1))
        with pytest.raises(TranslationError):
            table.map(PTE(vpn=512, ppn=2, page_size=PageSize.SIZE_2M))

    def test_unmap(self):
        table = make_table()
        table.map(PTE(vpn=44, ppn=1))
        table.unmap(44)
        assert not table.walk(44).hit
        with pytest.raises(TranslationError):
            table.unmap(44)

    def test_unmap_interior_vpn_rejected(self):
        table = make_table()
        table.map(PTE(vpn=0, ppn=1, page_size=PageSize.SIZE_2M))
        with pytest.raises(TranslationError):
            table.unmap(5)


class TestTableBytes:
    def test_one_chain_is_four_tables(self):
        table = make_table()
        table.map(PTE(vpn=0, ppn=1))
        assert table.table_bytes == 4 * 4096

    def test_shared_upper_levels(self):
        table = make_table()
        table.map(PTE(vpn=0, ppn=1))
        before = table.table_bytes
        table.map(PTE(vpn=1, ppn=2))  # same leaf PT
        assert table.table_bytes == before

    def test_sparse_mappings_need_more_tables(self):
        table = make_table()
        table.map(PTE(vpn=0, ppn=1))
        before = table.table_bytes
        table.map(PTE(vpn=1 << 30, ppn=2))  # different PML4 subtree
        assert table.table_bytes == before + 3 * 4096

    def test_entry_paddrs_distinct_per_index(self):
        table = make_table()
        table.map(PTE(vpn=0, ppn=1))
        table.map(PTE(vpn=1, ppn=2))
        a1 = table.walk(0).accesses[-1].paddr
        a2 = table.walk(1).accesses[-1].paddr
        assert a2 == a1 + 8
