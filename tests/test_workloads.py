"""Tests for workload builders and trace generators."""

import numpy as np
import pytest

from repro.workloads import (
    GRAPH_KERNELS,
    JEMALLOC,
    PRODUCTION_WORKLOADS,
    SUITE,
    TCMALLOC,
    WORKLOADS,
    build_workload,
    kronecker_graph,
    zipf_ranks,
)
from repro.workloads.layout import ArrayRef, HeapLayout, PagePool


def trace_in_bounds(workload, trace):
    vpns = np.unique(trace >> 12)
    intervals = sorted((v.start_vpn, v.end_vpn) for v in workload.vmas)
    starts = np.array([a for a, _ in intervals])
    ends = np.array([b for _, b in intervals])
    idx = np.searchsorted(starts, vpns, side="right") - 1
    return bool(np.all((idx >= 0) & (vpns < ends[np.clip(idx, 0, None)])))


class TestSuite:
    def test_nine_workloads(self):
        assert len(SUITE) == 9
        assert set(GRAPH_KERNELS) < set(SUITE)
        assert {"gups", "mem$", "MUMr"} < set(SUITE)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            build_workload("nope")

    @pytest.mark.parametrize("name", ["gups", "mem$", "MUMr", "dc", "prod1"])
    def test_traces_stay_in_mapped_space(self, name):
        workload = build_workload(name)
        trace = workload.trace(20_000, seed=3)
        assert len(trace) == 20_000
        assert trace_in_bounds(workload, trace)

    def test_traces_deterministic_by_seed(self):
        w = build_workload("gups")
        a = w.trace(1000, seed=5)
        b = w.trace(1000, seed=5)
        c = w.trace(1000, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_footprints_scale(self):
        small = build_workload("gups", scale=128)
        large = build_workload("gups", scale=32)
        assert large.space.total_pages > 2 * small.space.total_pages

    def test_gap_coverage_in_paper_band(self):
        coverages = {}
        for name in ("bfs", "gups", "mem$", "MUMr"):
            coverages[name] = build_workload(name).space.gap_coverage()
        # Paper Figure 2: minimum ~78%, most workloads much higher.
        assert all(c >= 0.75 for c in coverages.values())
        assert coverages["MUMr"] == min(coverages.values())
        assert coverages["gups"] > 0.99

    def test_allocators_practically_identical(self):
        a = build_workload("MUMr", allocator=JEMALLOC).space.gap_coverage()
        b = build_workload("MUMr", allocator=TCMALLOC).space.gap_coverage()
        assert abs(a - b) < 0.02

    def test_production_workloads_exist(self):
        for name in PRODUCTION_WORKLOADS:
            built = build_workload(name)
            assert built.space.gap_coverage() > 0.7

    def test_footprint_override(self):
        small = build_workload("mem$", footprint_override=8 << 30)
        default = build_workload("mem$")
        assert small.space.total_pages < default.space.total_pages


class TestKronecker:
    def test_csr_well_formed(self):
        g = kronecker_graph(10, edge_factor=4, seed=1)
        assert g.num_vertices == 1024
        assert g.offsets[0] == 0
        assert g.offsets[-1] == g.num_edges
        assert np.all(np.diff(g.offsets) >= 0)
        assert g.edges.max() < g.num_vertices

    def test_symmetric(self):
        g = kronecker_graph(8, edge_factor=4, seed=2)
        # Undirected: total degree is even and edges come in pairs.
        assert g.num_edges % 2 == 0

    def test_no_self_loops(self):
        g = kronecker_graph(8, edge_factor=4, seed=3)
        for v in range(g.num_vertices):
            assert v not in g.neighbors(v)

    def test_scramble_breaks_degree_id_correlation(self):
        raw = kronecker_graph(10, edge_factor=8, seed=4, scramble=False)
        mixed = kronecker_graph(10, edge_factor=8, seed=4, scramble=True)
        degrees_raw = np.diff(raw.offsets)
        degrees_mixed = np.diff(mixed.offsets)
        n = raw.num_vertices
        low_raw = degrees_raw[: n // 8].sum() / max(1, degrees_raw.sum())
        low_mixed = degrees_mixed[: n // 8].sum() / max(1, degrees_mixed.sum())
        # Raw RMAT concentrates edges on low ids; scrambled does not.
        assert low_raw > 2 * low_mixed


class TestGraphTraces:
    @pytest.mark.parametrize("kernel", GRAPH_KERNELS)
    def test_kernel_traces(self, kernel):
        workload = build_workload(kernel)
        trace = workload.trace(5000, seed=1)
        assert len(trace) == 5000
        assert trace_in_bounds(workload, trace)

    def test_random_kernels_touch_many_pages(self):
        workload = build_workload("bfs")
        trace = workload.trace(30_000, seed=1)
        assert len(np.unique(trace >> 12)) > 3000


class TestLayoutHelpers:
    def test_heap_layout_sequential(self):
        heap = HeapLayout(base_vpn=100)
        a = heap.add_array("a", 1000, 8)
        b = heap.add_array("b", 1000, 8)
        assert a.base_va == 100 << 12
        assert b.base_va > a.base_va + a.nbytes - 1
        assert b.base_va % 4096 == 0

    def test_array_ref_va(self):
        ref = ArrayRef("x", 0x10000, 800, 8)
        assert ref.va_of(0) == 0x10000
        assert ref.va_of(10) == 0x10000 + 80
        assert ref.num_elements == 100

    def test_page_pool(self):
        pool = PagePool([5, 9, 100], stride=64)
        assert pool.num_elements == 3 * 64
        assert pool.va_of(0) == 5 << 12
        assert pool.va_of(64) == 9 << 12
        assert pool.va_of(65) == (9 << 12) + 64

    def test_zipf_skew(self):
        rng = np.random.default_rng(0)
        ranks = zipf_ranks(10_000, 0.99, 50_000, rng)
        top = (ranks < 100).mean()
        assert top > 0.2  # heavy head
        assert ranks.max() < 10_000
