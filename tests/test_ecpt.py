"""Tests for the elastic cuckoo page table baseline (sections 2.2, 6.3)."""

import pytest

from repro.mem.allocator import BumpAllocator
from repro.pagetables.ecpt import ECPT
from repro.types import PTE, AccessKind, PageSize, TranslationError


def make_table(**kw):
    return ECPT(BumpAllocator(), **kw)


class TestBasics:
    def test_map_walk(self):
        table = make_table()
        pte = PTE(vpn=0x42, ppn=7)
        table.map(pte)
        result = table.walk(0x42)
        assert result.pte is pte

    def test_miss(self):
        table = make_table()
        table.map(PTE(vpn=0x42, ppn=7))
        assert not table.walk(0x43).hit

    def test_unmap(self):
        table = make_table()
        table.map(PTE(vpn=0x42, ppn=7))
        table.unmap(0x42)
        assert not table.walk(0x42).hit
        with pytest.raises(TranslationError):
            table.unmap(0x42)

    def test_duplicate_rejected(self):
        table = make_table()
        table.map(PTE(vpn=1, ppn=1))
        with pytest.raises(TranslationError):
            table.map(PTE(vpn=1, ppn=2))

    def test_many_keys(self):
        table = make_table(initial_size=64)
        ptes = [PTE(vpn=v * 3, ppn=v) for v in range(5000)]
        for p in ptes:
            table.map(p)
        assert all(table.walk(p.vpn).pte is p for p in ptes[::97])
        assert table.stats.resizes > 0


class TestParallelProbes:
    def test_three_probes_for_4k_region(self):
        table = make_table()
        table.map(PTE(vpn=5, ppn=5))
        result = table.walk(5)
        probes = [a for a in result.accesses if a.kind is AccessKind.PT_LEAF]
        assert len(probes) == 3  # d = 3 ways, one page size in region

    def test_probes_share_parallel_group(self):
        table = make_table()
        table.map(PTE(vpn=5, ppn=5))
        result = table.walk(5)
        probes = [a for a in result.accesses if a.kind is AccessKind.PT_LEAF]
        assert len({a.parallel_group for a in probes}) == 1

    def test_cwt_consult_is_pud_only_for_uniform_region(self):
        table = make_table()
        table.map(PTE(vpn=5, ppn=5))
        result = table.walk(5)
        cwt = [a for a in result.accesses if a.kind is AccessKind.CWT]
        assert len(cwt) == 1  # only the PUD-level CWT

    def test_mixed_region_probes_both_sizes(self):
        table = make_table()
        table.map(PTE(vpn=5, ppn=5))
        # Same 1 GB region, different 2 MB region, huge page:
        table.map(PTE(vpn=1024, ppn=6, page_size=PageSize.SIZE_2M))
        result = table.walk(5)
        cwt = [a for a in result.accesses if a.kind is AccessKind.CWT]
        assert len(cwt) == 2  # PUD is mixed, PMD consulted too
        probes = [a for a in result.accesses if a.kind is AccessKind.PT_LEAF]
        # PMD-CWT trims to the single size present in this 2 MB region.
        assert len(probes) == 3

    def test_unmapped_region_no_probes(self):
        table = make_table()
        table.map(PTE(vpn=5, ppn=5))
        far = 10 << 18  # different PUD region entirely
        result = table.walk(far)
        probes = [a for a in result.accesses if a.kind is AccessKind.PT_LEAF]
        assert probes == []


class TestHugePages:
    def test_huge_page_round_down(self):
        table = make_table()
        pte = PTE(vpn=1024, ppn=9, page_size=PageSize.SIZE_2M)
        table.map(pte)
        assert table.walk(1024 + 300).pte is pte

    def test_per_size_tables(self):
        table = make_table()
        table.map(PTE(vpn=0, ppn=1))
        table.map(PTE(vpn=1024, ppn=2, page_size=PageSize.SIZE_2M))
        assert table.walk(0).pte.ppn == 1
        assert table.walk(1100).pte.ppn == 2

    def test_cwt_cleared_on_unmap(self):
        table = make_table()
        table.map(PTE(vpn=1024, ppn=2, page_size=PageSize.SIZE_2M))
        table.map(PTE(vpn=5, ppn=5))
        table.unmap(1024)
        # Region is 4K-only again; a walk probes one size.
        probes = [
            a for a in table.walk(5).accesses if a.kind is AccessKind.PT_LEAF
        ]
        assert len(probes) == 3


class TestMemory:
    def test_load_factor_bounded(self):
        table = make_table(initial_size=128)
        for v in range(2000):
            table.map(PTE(vpn=v, ppn=v))
        for t in table.tables.values():
            assert t.load_factor <= 0.6 + 1e-9

    def test_table_bytes_overprovisioned(self):
        table = make_table(initial_size=128)
        n = 2000
        for v in range(n):
            table.map(PTE(vpn=v, ppn=v))
        # Over-provisioning beyond 8 B per translation (section 7.3).
        assert table.table_bytes > n * 8
