"""Tests for the shared address/page-size/PTE types."""

import pytest

from repro.types import (
    PTE,
    AccessKind,
    PageSize,
    Permission,
    WalkAccess,
    WalkResult,
    align_down,
    align_up,
    va_of,
    vpn_of,
)


class TestPageSize:
    def test_values_are_bytes(self):
        assert PageSize.SIZE_4K == 4096
        assert PageSize.SIZE_2M == 2 * 1024 * 1024
        assert PageSize.SIZE_1G == 1 << 30

    def test_shift(self):
        assert PageSize.SIZE_4K.shift == 12
        assert PageSize.SIZE_2M.shift == 21
        assert PageSize.SIZE_1G.shift == 30

    def test_pages_4k(self):
        assert PageSize.SIZE_4K.pages_4k == 1
        assert PageSize.SIZE_2M.pages_4k == 512
        assert PageSize.SIZE_1G.pages_4k == 512 * 512

    def test_encode_decode_roundtrip(self):
        for size in PageSize:
            assert PageSize.decode(size.encode()) is size

    def test_encoding_fits_two_bits(self):
        for size in PageSize:
            assert 0 <= size.encode() < 4


class TestVPNHelpers:
    def test_vpn_of(self):
        assert vpn_of(0) == 0
        assert vpn_of(4095) == 0
        assert vpn_of(4096) == 1
        assert vpn_of(0xDEAD_BEEF_000) == 0xDEAD_BEEF_000 >> 12

    def test_va_of_inverts_vpn_of(self):
        for vpn in (0, 1, 12345, 1 << 35):
            assert vpn_of(va_of(vpn)) == vpn

    def test_align(self):
        assert align_down(4097, 4096) == 4096
        assert align_up(4097, 4096) == 8192
        assert align_up(4096, 4096) == 4096


class TestPTE:
    def test_covers_4k(self):
        pte = PTE(vpn=100, ppn=5)
        assert pte.covers(100)
        assert not pte.covers(101)
        assert not pte.covers(99)

    def test_covers_2m(self):
        pte = PTE(vpn=1024, ppn=5, page_size=PageSize.SIZE_2M)
        assert pte.covers(1024)
        assert pte.covers(1024 + 511)
        assert not pte.covers(1024 + 512)
        assert not pte.covers(1023)

    def test_translate_4k(self):
        pte = PTE(vpn=100, ppn=7)
        va = (100 << 12) + 0x123
        assert pte.translate(va) == (7 << 12) + 0x123

    def test_translate_2m_interior(self):
        pte = PTE(vpn=1024, ppn=4096, page_size=PageSize.SIZE_2M)
        va = (1024 + 37) << 12
        expected = 4096 * 4096 + 37 * 4096
        assert pte.translate(va) == expected

    def test_default_flags(self):
        pte = PTE(vpn=0, ppn=0)
        assert pte.present and not pte.accessed and not pte.dirty
        assert pte.perms == Permission.RW


class TestWalkResult:
    def test_hit_and_miss(self):
        assert WalkResult(PTE(vpn=0, ppn=0), []).hit
        assert not WalkResult(None, []).hit

    def test_num_accesses(self):
        accesses = [WalkAccess(0x1000, AccessKind.PT_NODE, level=4)]
        assert WalkResult(None, accesses).num_accesses == 1
