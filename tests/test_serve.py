"""Serving-layer tests: protocol, tenants, journals, and the three
robustness pillars end to end (shed, quarantine, kill + bit-identical
recovery).

The end-to-end tests start a real :class:`TranslationServer` — real
unix socket, real forked shard workers, real write-ahead journals — in
a temp directory and drive it with :class:`AsyncServeClient`.  They are
sized for CI (hundreds of requests); ``benchmarks/bench_serve.py``
runs the same scenarios at acceptance scale.
"""

import asyncio
import os
import signal
import socket
import time

import pytest

from repro.errors import (
    ProtocolError,
    QuotaExceededError,
    ServeError,
    ServerOverloadedError,
    TenantExistsError,
    TenantQuarantinedError,
    TranslationError,
    UnknownTenantError,
)
from repro.serve.client import AsyncServeClient
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    decode_error,
    encode_frame,
    error_payload,
    read_frame_sock,
    write_frame_sock,
)
from repro.serve.server import ServePolicy, TranslationServer
from repro.serve.shard import ShardWorker
from repro.serve.tenant import Tenant, TenantSpec
from repro.serve.tenant_journal import TenantJournal, journal_path, list_tenants
from repro.serve.traffic import TrafficConfig, run_traffic

#: Enough allocation failures to exhaust the LVM retry defense and
#: quarantine, with a little translation-path corruption on top.
POISON = {
    "seed": 1,
    "alloc_fail_rate": 0.9,
    "pte_bitflip_rate": 0.02,
    "model_perturb_rate": 0.02,
}


def run(coro):
    return asyncio.run(coro)


# -- protocol -----------------------------------------------------------

class TestProtocol:
    def test_frame_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            payload = {"id": 7, "op": "translate", "args": {"vas": [1, 2]}}
            write_frame_sock(a, payload)
            assert read_frame_sock(b) == payload
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none_torn_frame_raises(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert read_frame_sock(b) is None  # EOF on a frame boundary
        finally:
            b.close()
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame({"op": "ping"})[:5])  # header + 1 byte
            a.close()
            with pytest.raises(ProtocolError, match="inside a frame"):
                read_frame_sock(b)
        finally:
            b.close()

    def test_oversized_declared_length_is_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="limit"):
                read_frame_sock(b)
        finally:
            a.close()
            b.close()

    def test_non_dict_payload_is_rejected(self):
        a, b = socket.socketpair()
        try:
            body = b"[1,2,3]"
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(ProtocolError, match="JSON object"):
                read_frame_sock(b)
        finally:
            a.close()
            b.close()

    def test_typed_errors_survive_the_wire(self):
        exc = ServerOverloadedError("global queue full")
        revived = decode_error(error_payload(exc))
        assert isinstance(revived, ServerOverloadedError)
        assert "global queue full" in str(revived)
        # Unknown types degrade to ServeError, name preserved.
        fallback = decode_error({"type": "FutureError", "message": "hm"})
        assert isinstance(fallback, ServeError)
        assert "FutureError" in str(fallback)


# -- tenants ------------------------------------------------------------

def _ops(n=40, base=1 << 20):
    yield "mmap", {"start_vpn": base, "pages": 128, "name": "ws"}
    for i in range(n):
        yield "translate", {"vas": [(base + (i * 7) % 128) * 4096]}
    yield "munmap", {"start_vpn": base}
    yield "mmap", {"start_vpn": base, "pages": 64, "name": "ws2"}


class TestTenant:
    def test_state_is_a_pure_function_of_the_op_stream(self):
        digests = []
        for _ in range(2):
            tenant = Tenant(TenantSpec(name="t", scheme="lvm"))
            for op, args in _ops():
                tenant.apply(op, args)
            digests.append(tenant.apply("digest", {}))
        assert digests[0] == digests[1]
        assert digests[0]["digest"]

    def test_overlapping_mmap_fails_the_request_not_the_tenant(self):
        tenant = Tenant(TenantSpec(name="t"))
        tenant.apply("mmap", {"start_vpn": 100, "pages": 64})
        with pytest.raises(TranslationError):
            tenant.apply("mmap", {"start_vpn": 130, "pages": 8})
        assert tenant.quarantined is None
        assert tenant.apply("stats", {})["vmas"] == 1

    def test_poison_past_the_recovery_ladder_quarantines(self):
        tenant = Tenant(TenantSpec(name="t", scheme="lvm", fault_plan=POISON))
        with pytest.raises(TenantQuarantinedError):
            # Allocation-heavy churn: at alloc_fail_rate=0.9 the LVM
            # retry-with-backoff defense exhausts within a few rounds.
            for i in range(50):
                base = (1 << 20) + i * 1024
                tenant.apply("mmap", {"start_vpn": base, "pages": 256})
                tenant.apply(
                    "translate",
                    {"vas": [(base + j) * 4096 for j in range(0, 256, 7)]},
                )
        assert tenant.quarantined is not None
        # Quarantine is sticky: every later mutating op fails typed.
        with pytest.raises(TenantQuarantinedError):
            tenant.apply("translate", {"vas": [4096]})
        # ... and read-only ops too: a poisoned tenant's state is not
        # to be trusted, post-mortem happens via the journal.
        with pytest.raises(TenantQuarantinedError):
            tenant.apply("stats", {})


# -- tenant journals ----------------------------------------------------

class TestTenantJournal:
    def _journal_with_events(self, tmp_path, spec, events):
        journal = TenantJournal.create(tmp_path, spec)
        for seq, (op, args) in enumerate(events, start=1):
            journal.append_event(seq, op, args)
        journal.close()

    def test_replay_reconstructs_bit_identically(self, tmp_path):
        spec = TenantSpec(name="web-1", scheme="lvm")
        live = Tenant(spec)
        events = list(_ops())
        self._journal_with_events(tmp_path, spec, events)
        for seq, (op, args) in enumerate(events, start=1):
            live.last_seq = seq
            live.apply(op, args)

        journal, replayed = TenantJournal.load(tmp_path, "web-1")
        journal.close()
        rebuilt = Tenant(journal.spec)
        for event in replayed:
            rebuilt.last_seq = event["seq"]
            rebuilt.apply(event["op"], event["args"])
        assert rebuilt.apply("digest", {}) == live.apply("digest", {})
        assert rebuilt.last_seq == len(events)

    def test_torn_tail_is_dropped_whole(self, tmp_path):
        spec = TenantSpec(name="t")
        events = list(_ops(n=5))
        self._journal_with_events(tmp_path, spec, events)
        path = journal_path(tmp_path, "t")
        raw = path.read_bytes()
        path.write_bytes(raw[:-20])
        _, replayed = TenantJournal.load(tmp_path, "t")
        assert len(replayed) == len(events) - 1
        assert [e["seq"] for e in replayed] == list(range(1, len(events)))

    def test_torn_tail_is_truncated_so_later_appends_survive_replay(
        self, tmp_path
    ):
        """Recovery must physically truncate the torn line: otherwise
        post-recovery appends land *after* it and the next replay stops
        at the torn line, silently discarding every acknowledged
        post-recovery record."""
        spec = TenantSpec(name="t")
        events = list(_ops(n=5))
        self._journal_with_events(tmp_path, spec, events)
        path = journal_path(tmp_path, "t")
        path.write_bytes(path.read_bytes()[:-20])
        journal, replayed = TenantJournal.load(tmp_path, "t")
        last = replayed[-1]["seq"]
        # The op torn out of the tail re-runs (resubmitted), then the
        # tenant keeps mutating after recovery.
        journal.append_event(last + 1, "mmap", {"start_vpn": 9000, "pages": 4})
        journal.append_event(last + 2, "munmap", {"start_vpn": 9000})
        journal.close()
        _, replayed2 = TenantJournal.load(tmp_path, "t")
        assert [e["seq"] for e in replayed2] == list(range(1, last + 3))

    def test_tampered_header_is_rejected(self, tmp_path):
        from repro.errors import JournalMismatchError

        from repro.sim.journal import parse_record_line, record_line

        spec = TenantSpec(name="t")
        TenantJournal.create(tmp_path, spec).close()
        path = journal_path(tmp_path, "t")
        # Forge a different spec under the original fingerprint, with a
        # valid line checksum (a torn-line tamper would just be a bad
        # header, not a mismatch).
        header = parse_record_line(path.read_text().splitlines()[0])
        header["spec"]["scheme"] = "radix"
        path.write_text(record_line(header) + "\n")
        with pytest.raises(JournalMismatchError):
            TenantJournal.load(tmp_path, "t")

    def test_unsafe_tenant_names_are_escaped(self, tmp_path):
        spec = TenantSpec(name="a/b..c")
        TenantJournal.create(tmp_path, spec).close()
        assert list(list_tenants(tmp_path)) == ["a/b..c"]
        assert all(p.parent == tmp_path for p in tmp_path.iterdir())


# -- shard worker (exactly-once discipline) -----------------------------

class TestShardWorker:
    def _worker(self, tmp_path):
        worker = ShardWorker(0, str(tmp_path))
        response, _ = worker.handle(
            {"id": 1, "op": "create_tenant",
             "args": {"spec": {"name": "t", "scheme": "radix"}}}
        )
        assert response["ok"], response
        return worker

    def test_duplicate_seq_is_answered_from_the_ring(self, tmp_path):
        worker = self._worker(tmp_path)
        payload = {"id": 2, "op": "mmap", "tenant": "t", "seq": 1,
                   "args": {"start_vpn": 64, "pages": 8}}
        first, _ = worker.handle(payload)
        again, _ = worker.handle(dict(payload, id=3))
        assert first["ok"] and again["ok"]
        assert again["result"] == first["result"]  # replayed, not reapplied
        stats, _ = worker.handle(
            {"id": 4, "op": "stats", "tenant": "t", "args": {}}
        )
        assert stats["result"]["mmaps"] == 1

    def test_seq_gap_is_a_protocol_error(self, tmp_path):
        worker = self._worker(tmp_path)
        response, _ = worker.handle(
            {"id": 2, "op": "mmap", "tenant": "t", "seq": 5,
             "args": {"start_vpn": 64, "pages": 8}}
        )
        assert not response["ok"]
        assert response["error"]["type"] == "ProtocolError"


# -- end to end ---------------------------------------------------------

async def _with_server(tmp_path, policy, body):
    sock = str(tmp_path / "serve.sock")
    server = TranslationServer(sock, str(tmp_path / "journals"), policy)
    await server.start()
    try:
        return await body(server, sock)
    finally:
        await server.close()


async def _await_ready(server, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(s.ready.is_set() for s in server.shards._shards):
            return
        await asyncio.sleep(0.05)
    raise AssertionError("shards never became ready")


class TestServerBasics:
    def test_create_translate_stats_digest(self, tmp_path):
        async def body(server, sock):
            client = await AsyncServeClient.connect(sock)
            try:
                await client.call(
                    "create_tenant",
                    args={"spec": {"name": "web", "scheme": "lvm"}},
                )
                await client.call(
                    "mmap", tenant="web",
                    args={"start_vpn": 1 << 20, "pages": 64},
                )
                result = await client.call(
                    "translate", tenant="web",
                    args={"vas": [(1 << 20) * 4096, ((1 << 20) + 3) * 4096]},
                )
                assert result["refs"] == 2 and result["mmu_cycles"] > 0
                stats = await client.call("stats", tenant="web", args={})
                assert stats["translations"] == 2
                assert stats["mapped_pages"] == 64
                digest = await client.call("digest", tenant="web", args={})
                assert digest["digest"]
            finally:
                await client.close()

        run(_with_server(tmp_path, ServePolicy(num_shards=2), body))

    def test_typed_lifecycle_errors(self, tmp_path):
        async def body(server, sock):
            client = await AsyncServeClient.connect(sock)
            try:
                with pytest.raises(UnknownTenantError):
                    await client.call("stats", tenant="ghost", args={})
                await client.call(
                    "create_tenant", args={"spec": {"name": "web"}}
                )
                with pytest.raises(TenantExistsError):
                    await client.call(
                        "create_tenant", args={"spec": {"name": "web"}}
                    )
                with pytest.raises(ProtocolError):
                    await client.call("warp", tenant="web", args={})
            finally:
                await client.close()

        run(_with_server(tmp_path, ServePolicy(num_shards=1), body))

    def test_vma_quota_is_enforced_at_the_front_end(self, tmp_path):
        async def body(server, sock):
            client = await AsyncServeClient.connect(sock)
            try:
                await client.call(
                    "create_tenant",
                    args={"spec": {"name": "small", "max_vmas": 2}},
                )
                for i in range(2):
                    await client.call(
                        "mmap", tenant="small",
                        args={"start_vpn": 1024 * (i + 1), "pages": 16},
                    )
                with pytest.raises(QuotaExceededError):
                    await client.call(
                        "mmap", tenant="small",
                        args={"start_vpn": 1024 * 3, "pages": 16},
                    )
                # munmap frees quota again.
                await client.call(
                    "munmap", tenant="small", args={"start_vpn": 1024}
                )
                await client.call(
                    "mmap", tenant="small",
                    args={"start_vpn": 1024 * 3, "pages": 16},
                )
            finally:
                await client.close()

        run(_with_server(tmp_path, ServePolicy(num_shards=1), body))

    def test_refs_per_sec_bucket_starts_full_and_rejects_oversized(
        self, tmp_path
    ):
        async def body(server, sock):
            client = await AsyncServeClient.connect(sock)
            try:
                await client.call(
                    "create_tenant",
                    args={"spec": {"name": "t", "max_refs_per_sec": 10}},
                )
                await client.call(
                    "mmap", tenant="t",
                    args={"start_vpn": 1024, "pages": 16},
                )
                # The bucket starts full: a fresh tenant's first
                # translate is admitted, not rejected until tokens
                # accrue.
                await client.call(
                    "translate", tenant="t", args={"vas": [1024 * 4096]}
                )
                # A batch larger than one second of quota can never be
                # admitted; it is rejected as permanent, not retryable.
                with pytest.raises(QuotaExceededError, match="capacity"):
                    await client.call(
                        "translate", tenant="t",
                        args={"vas": [(1024 + i) * 4096 for i in range(11)]},
                    )
            finally:
                await client.close()

        run(_with_server(tmp_path, ServePolicy(num_shards=1), body))


class TestOverloadShedding:
    def test_sheds_typed_instead_of_queueing(self, tmp_path):
        policy = ServePolicy(
            num_shards=1, max_global_inflight=4, max_tenant_inflight=2
        )

        async def body(server, sock):
            config = TrafficConfig(
                tenants=4, requests=200, batch=16, working_set_pages=128,
                churn=0.0, concurrency=4, seed=13, scheme="radix",
            )
            report = await run_traffic(sock, config)
            stats = server.server_stats()
            assert report.shed > 0, "2x overload never shed"
            assert stats["shed_overload"] == report.shed
            assert report.unexpected_errors == 0
            assert stats["inflight"] == 0  # all settled, none leaked
            return report

        report = run(_with_server(tmp_path, policy, body))
        # Shedding is reject-newest: accepted requests all completed.
        assert report.ok + report.shed == report.requests


class TestQuarantineIsolation:
    def test_poisoned_tenant_is_contained(self, tmp_path):
        policy = ServePolicy(num_shards=2)

        async def body(server, sock):
            config = TrafficConfig(
                tenants=2, requests=200, batch=16, working_set_pages=256,
                churn=0.05, concurrency=4, seed=17, scheme="lvm",
                poison_tenants={"tenant-0": dict(POISON)},
            )
            report = await run_traffic(sock, config)
            stats = server.server_stats()
            assert stats["quarantined"] == ["tenant-0"]
            assert stats["quarantine_rejects"] > 0
            # The innocent neighbour saw zero errors of any kind.
            assert report.errors_by_tenant.get("tenant-1", 0) == 0
            assert report.ok_by_tenant["tenant-1"] > 0
            assert report.unexpected_errors == 0
            # Quarantine frames are typed all the way to the client.
            client = await AsyncServeClient.connect(sock)
            try:
                with pytest.raises(TenantQuarantinedError):
                    await client.call(
                        "translate", tenant="tenant-0", args={"vas": [4096]}
                    )
            finally:
                await client.close()

        run(_with_server(tmp_path, policy, body))


class TestKillRecovery:
    REQUESTS = 240

    def _config(self):
        return TrafficConfig(
            tenants=2, requests=self.REQUESTS, batch=8,
            working_set_pages=256, churn=0.02, concurrency=4,
            seed=23, scheme="lvm",
        )

    async def _run_once(self, tmp_path, tag, kill):
        policy = ServePolicy(
            num_shards=2, max_global_inflight=64, max_tenant_inflight=32,
            heartbeat_interval=0.25, shard_deadline=20.0,
        )
        sock = str(tmp_path / f"{tag}.sock")
        server = TranslationServer(
            sock, str(tmp_path / f"{tag}-journals"), policy
        )
        await server.start()
        try:
            killer = None
            if kill:

                async def kill_mid_run():
                    await asyncio.sleep(0.5)
                    index = server.shards.shard_of("tenant-0")
                    os.kill(server.shards.pids()[index], signal.SIGKILL)

                killer = asyncio.create_task(kill_mid_run())
            report = await run_traffic(sock, self._config())
            if killer is not None:
                await killer
            await _await_ready(server)
            client = await AsyncServeClient.connect(sock)
            try:
                digests = {
                    name: (await client.call("digest", tenant=name, args={}))
                    for name in ("tenant-0", "tenant-1")
                }
            finally:
                await client.close()
            return report, digests, server.server_stats()
        finally:
            await server.close()

    @pytest.mark.timeout(300)
    def test_sigkilled_shard_recovers_bit_identically(self, tmp_path):
        """The acceptance centerpiece at CI scale: SIGKILL the shard
        hosting tenant-0 mid-replay; every tenant digest must match the
        uninterrupted run bit for bit and no client may see an
        unexpected error."""
        async def body():
            ref_report, ref_digests, _ = await self._run_once(
                tmp_path, "ref", kill=False
            )
            kill_report, kill_digests, stats = await self._run_once(
                tmp_path, "kill", kill=True
            )
            assert stats["shards"]["respawns"] >= 1, "the kill was missed"
            assert kill_digests == ref_digests
            assert kill_report.unexpected_errors == 0
            assert kill_report.ok == ref_report.ok  # nothing lost, nothing doubled
            recovery = stats["shards"]["recoveries"][-1]
            assert recovery["seconds"] < 30.0
            return ref_report

        run(body())

    @pytest.mark.timeout(120)
    def test_heartbeat_deadline_kills_a_wedged_shard(self, tmp_path):
        """A shard wedged in a busy loop (here: a deliberate sleep op)
        misses its heartbeat deadline, gets a stack dump + SIGKILL, and
        is respawned."""
        policy = ServePolicy(
            num_shards=1, heartbeat_interval=0.2, shard_deadline=0.8
        )

        async def body(server, sock):
            client = await AsyncServeClient.connect(sock)
            wedge = asyncio.create_task(
                client.call("sleep", shard=0, args={"seconds": 3.0})
            )
            try:
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if server.shards.stats.deadline_kills >= 1:
                        break
                    await asyncio.sleep(0.1)
                assert server.shards.stats.deadline_kills >= 1
            finally:
                wedge.cancel()
                await client.close()

        run(_with_server(tmp_path, policy, body))


class TestServerRestart:
    def test_restarted_server_replays_tenants_from_journals(self, tmp_path):
        """A whole-server restart (same journal dir) reconstructs every
        tenant: the journals, not the process, are the durable state."""
        sock1 = str(tmp_path / "one.sock")
        sock2 = str(tmp_path / "two.sock")
        journals = str(tmp_path / "journals")

        async def first():
            server = TranslationServer(sock1, journals, ServePolicy(num_shards=2))
            await server.start()
            try:
                client = await AsyncServeClient.connect(sock1)
                try:
                    await client.call(
                        "create_tenant", args={"spec": {"name": "web"}}
                    )
                    await client.call(
                        "mmap", tenant="web",
                        args={"start_vpn": 2048, "pages": 32},
                    )
                    await client.call(
                        "translate", tenant="web",
                        args={"vas": [2048 * 4096, 2050 * 4096]},
                    )
                    return await client.call("digest", tenant="web", args={})
                finally:
                    await client.close()
            finally:
                await server.close()

        async def second():
            server = TranslationServer(sock2, journals, ServePolicy(num_shards=2))
            await server.start()
            try:
                await server.adopt_journaled_tenants()
                client = await AsyncServeClient.connect(sock2)
                try:
                    digest = await client.call("digest", tenant="web", args={})
                    stats = await client.call("stats", tenant="web", args={})
                    assert stats["translations"] == 2
                    return digest
                finally:
                    await client.close()
            finally:
                await server.close()

        assert run(first()) == run(second())
