"""Tests for the buddy allocator and fragmentation tools."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.allocator import BumpAllocator, OutOfPhysicalMemory
from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import (
    datacenter_churn,
    fragment_to_fmfi,
    fragment_to_max_contiguity,
    measure_contiguity,
)
from repro.types import BASE_PAGE_SIZE

MB = 1 << 20


class TestBuddyBasics:
    def test_order_for(self):
        assert BuddyAllocator.order_for(1) == 0
        assert BuddyAllocator.order_for(4096) == 0
        assert BuddyAllocator.order_for(4097) == 1
        assert BuddyAllocator.order_for(2 * MB) == 9

    def test_alloc_free_roundtrip(self):
        buddy = BuddyAllocator(16 * MB)
        before = buddy.free_pages
        paddr = buddy.alloc(64 << 10)
        assert buddy.free_pages == before - 16
        buddy.free(paddr, 64 << 10)
        assert buddy.free_pages == before

    def test_alignment(self):
        buddy = BuddyAllocator(16 * MB)
        paddr = buddy.alloc_order(4)
        assert (paddr // BASE_PAGE_SIZE) % 16 == 0

    def test_coalescing_restores_max_block(self):
        buddy = BuddyAllocator(16 * MB)
        initial_max = buddy.max_contiguous_bytes()
        allocs = [buddy.alloc_order(0) for _ in range(64)]
        assert buddy.max_contiguous_bytes() < initial_max or len(allocs) > 0
        for paddr in allocs:
            buddy.free_order(paddr, 0)
        assert buddy.max_contiguous_bytes() == initial_max

    def test_exhaustion_raises(self):
        buddy = BuddyAllocator(1 * MB)
        with pytest.raises(OutOfPhysicalMemory):
            buddy.alloc(2 * MB)

    def test_split_reduces_contiguity(self):
        buddy = BuddyAllocator(4 * MB)
        buddy.alloc_order(0)
        # Largest block is now below the total.
        assert buddy.max_contiguous_bytes() < 4 * MB

    def test_free_misaligned_rejected(self):
        buddy = BuddyAllocator(4 * MB)
        paddr = buddy.alloc_order(2)
        with pytest.raises(ValueError):
            buddy.free_order(paddr + BASE_PAGE_SIZE, 2)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=60))
    def test_alloc_free_conservation_property(self, orders):
        buddy = BuddyAllocator(64 * MB)
        total = buddy.free_pages
        live = []
        for order in orders:
            try:
                live.append((buddy.alloc_order(order), order))
            except OutOfPhysicalMemory:
                pass
        assert buddy.free_pages == total - sum(1 << o for _, o in live)
        for paddr, order in live:
            buddy.free_order(paddr, order)
        assert buddy.free_pages == total
        # Full coalescing back to the seed blocks.
        assert buddy.max_contiguous_bytes() >= 32 * MB


class TestFragmentationTools:
    def test_max_contiguity_cap(self):
        buddy = BuddyAllocator(64 * MB)
        fragment_to_max_contiguity(buddy, 256 << 10)
        assert buddy.max_contiguous_bytes() <= 256 << 10
        # The cap size itself stays plentiful.
        assert buddy.contiguity_fraction(256 << 10) > 0.3

    def test_fmfi_target(self):
        buddy = BuddyAllocator(128 * MB)
        fragment_to_fmfi(buddy, 0.8, order=9)
        assert buddy.fmfi(9) >= 0.8

    def test_churn_shape_matches_figure3(self):
        buddy = BuddyAllocator(512 * MB)
        datacenter_churn(buddy, target_occupancy=0.7, seed=5)
        profile = measure_contiguity(buddy)
        # Small contiguity plentiful, large contiguity gone.
        assert profile.at(4 << 10) == 1.0
        assert profile.at(64 << 10) > 0.4
        assert profile.at(64 << 20) < 0.05
        # Monotone non-increasing with block size.
        values = [frac for _, frac in profile.rows()]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_churn_hits_occupancy(self):
        buddy = BuddyAllocator(256 * MB)
        datacenter_churn(buddy, target_occupancy=0.6, seed=9)
        used_fraction = buddy.used_bytes / (buddy.total_pages * BASE_PAGE_SIZE)
        assert 0.5 < used_fraction < 0.7

    def test_fmfi_zero_when_unfragmented(self):
        buddy = BuddyAllocator(64 * MB)
        assert buddy.fmfi(9) == 0.0


class TestBumpAllocator:
    def test_monotone_and_aligned(self):
        bump = BumpAllocator()
        a = bump.alloc(100)
        b = bump.alloc(100)
        assert b > a
        assert a % 64 == 0

    def test_live_accounting(self):
        bump = BumpAllocator()
        a = bump.alloc(4096)
        bump.free(a, 4096)
        assert bump.live_bytes == 0

    def test_contiguity_cap(self):
        bump = BumpAllocator(contiguity_cap=1 << 20)
        assert bump.max_contiguous_bytes() == 1 << 20
        with pytest.raises(OutOfPhysicalMemory):
            bump.alloc(2 << 20)
