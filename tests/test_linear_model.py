"""Tests for linear models and regression fitting."""

import pytest
from hypothesis import given, strategies as st

from repro.core.linear_model import (
    LinearModel,
    fit_even_division,
    fit_least_squares,
    max_abs_error,
)


class TestEvenDivision:
    def test_uniform_routing(self):
        model = fit_even_division(0, 100, 4)
        children = [model.predict(x) for x in range(100)]
        # Every child gets a contiguous quarter.
        assert children[0] == 0
        assert children[99] == 3
        assert sorted(set(children)) == [0, 1, 2, 3]

    def test_offset_range(self):
        model = fit_even_division(1000, 2000, 10)
        assert model.predict(1000) == 0
        assert model.predict(1999) == 9
        assert model.predict(1500) == 5

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            fit_even_division(10, 10, 2)

    def test_rejects_no_children(self):
        with pytest.raises(ValueError):
            fit_even_division(0, 10, 0)

    @given(
        st.integers(min_value=0, max_value=1 << 30),
        st.integers(min_value=2, max_value=1 << 20),
        st.integers(min_value=2, max_value=512),
    )
    def test_all_keys_route_in_range_property(self, lo, span, n):
        hi = lo + span
        n = min(n, span)
        model = fit_even_division(lo, hi, n)

        def lower_bound(index):
            # Smallest x the quantized model routes to >= index
            # (InternalNode.child_lower_bound's arithmetic).
            if index <= 0:
                return lo
            if model.slope_raw <= 0:
                return hi
            threshold = index << 20
            return -(-(threshold - model.intercept_raw) // model.slope_raw)

        for x in (lo, hi - 1, lo + span // 2):
            # What matters is that clamped routing stays in range and
            # agrees with the partition boundaries derived from the
            # same quantized model (build/lookup consistency).
            clamped = max(0, min(model.predict(x), n - 1))
            assert 0 <= clamped < n
            if clamped > 0:
                assert x >= lower_bound(clamped)
            if clamped < n - 1:
                assert x < lower_bound(clamped + 1)


class TestLeastSquares:
    def test_perfect_line(self):
        keys = list(range(100, 200))
        model = fit_least_squares(keys)
        assert model.slope == pytest.approx(1.0, abs=1e-5)
        assert max_abs_error(model, keys) <= 1

    def test_strided_line(self):
        keys = list(range(0, 1000, 2))
        model = fit_least_squares(keys)
        assert model.slope == pytest.approx(0.5, abs=1e-5)
        assert max_abs_error(model, keys) <= 1

    def test_single_key(self):
        model = fit_least_squares([42])
        assert model.predict(42) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_least_squares([])

    def test_large_vpns_no_precision_loss(self):
        base = 0x7F00_0000_0  # large VPN (mmap region)
        keys = [base + i for i in range(1000)]
        model = fit_least_squares(keys)
        assert max_abs_error(model, keys) <= 1

    def test_two_segments_has_error(self):
        keys = list(range(100)) + list(range(10_000, 10_100))
        model = fit_least_squares(keys)
        assert max_abs_error(model, keys) > 10


class TestScaling:
    def test_scaled_stretches_predictions(self):
        model = fit_least_squares(list(range(1000)))
        scaled = model.scaled(1.3)
        assert scaled.predict(999) == pytest.approx(1.3 * 999, abs=2)
