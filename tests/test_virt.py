"""Tests for nested (virtualized) translation."""

import pytest

from repro.core import LearnedIndex
from repro.mem.allocator import BumpAllocator
from repro.mmu.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.pagetables.radix import RadixPageTable
from repro.types import PTE
from repro.virt import NestedLVMWalker, NestedRadixWalker, build_host_mapping

GUEST_PAGES = 3000
GPA_BASE = 1 << 20


def hierarchy():
    return MemoryHierarchy(HierarchyConfig(prefetch_degree=0))


def guest_ptes():
    """Guest mappings: GVA vpn -> GPA ppn inside the guest's memory."""
    return [PTE(vpn=0x100 + i, ppn=GPA_BASE + i) for i in range(GUEST_PAGES)]


def make_nested_radix():
    guest = RadixPageTable(BumpAllocator(base=GPA_BASE << 12))
    for pte in guest_ptes():
        guest.map(pte)
    host = build_host_mapping(
        1 << 14, BumpAllocator(base=1 << 40), scheme="radix"
    )
    return NestedRadixWalker(guest, host, hierarchy())


def make_nested_lvm():
    guest = LearnedIndex(BumpAllocator(base=GPA_BASE << 12))
    guest.bulk_build(guest_ptes())
    host = build_host_mapping(1 << 14, BumpAllocator(base=1 << 40), scheme="lvm")
    return NestedLVMWalker(guest, host, hierarchy())


class TestNestedRadix:
    def test_translates_end_to_end(self):
        walker = make_nested_radix()
        outcome = walker.walk(0x100 + 7)
        assert outcome.hit
        assert outcome.pte.ppn == GPA_BASE + 7
        assert outcome.host_pte.covers(outcome.pte.ppn)

    def test_cold_2d_walk_is_expensive(self):
        walker = make_nested_radix()
        outcome = walker.walk(0x100)
        # Cold: every guest level host-translated (up to 24 accesses).
        assert outcome.memory_accesses >= 8
        assert outcome.host_walks == 5  # 4 guest levels + final GPA

    def test_ntlb_and_pwcs_trim_repeat_walks(self):
        walker = make_nested_radix()
        walker.walk(0x100)
        outcome = walker.walk(0x101)
        assert outcome.memory_accesses < 8

    def test_guest_miss(self):
        walker = make_nested_radix()
        outcome = walker.walk(0xDEAD00)
        assert not outcome.hit


class TestNestedLVM:
    def test_translates_end_to_end(self):
        walker = make_nested_lvm()
        outcome = walker.walk(0x100 + 7)
        assert outcome.hit
        assert outcome.pte.ppn == GPA_BASE + 7

    def test_warm_walk_near_two_accesses(self):
        walker = make_nested_lvm()
        walker.walk(0x100)
        outcome = walker.walk(0x105)
        # LWCs hold both tiny indexes; nTLB may still miss the data GPA:
        # one guest PTE line + at most one host PTE line.
        assert outcome.memory_accesses <= 2

    def test_guest_miss(self):
        walker = make_nested_lvm()
        assert not walker.walk(0xDEAD00).hit


class TestNestedComparison:
    def test_lvm_nests_cheaper_than_radix(self):
        """At datacenter-like guest sizes (beyond PWC reach) the 2D
        blow-up hits radix in both dimensions; LVM's guest dimension
        stays in the LWC (paper: virtualization amplifies the gap)."""
        import random

        pages = 120_000
        big_guest = [PTE(vpn=0x100 + i, ppn=GPA_BASE + i) for i in range(pages)]
        rng = random.Random(5)

        guest_radix = RadixPageTable(BumpAllocator(base=GPA_BASE << 12))
        for pte in big_guest:
            guest_radix.map(pte)
        radix = NestedRadixWalker(
            guest_radix,
            build_host_mapping(1 << 14, BumpAllocator(base=1 << 40), "radix"),
            hierarchy(),
        )

        guest_lvm = LearnedIndex(BumpAllocator(base=GPA_BASE << 12))
        guest_lvm.bulk_build(
            [PTE(vpn=p.vpn, ppn=p.ppn) for p in big_guest]
        )
        lvm = NestedLVMWalker(
            guest_lvm,
            build_host_mapping(1 << 14, BumpAllocator(base=1 << 40), "lvm"),
            hierarchy(),
        )

        vpns = [0x100 + rng.randrange(pages) for _ in range(4000)]
        for vpn in vpns:
            radix.walk(vpn)
            lvm.walk(vpn)
        assert lvm.total_accesses < radix.total_accesses
        assert lvm.total_cycles < radix.total_cycles
        # The 2D blow-up must favour LVM clearly.
        assert radix.total_accesses / lvm.total_accesses > 1.25
