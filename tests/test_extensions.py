"""Tests for the section 9 future-work prototype (learned LLC index)."""

import numpy as np
import pytest

from repro.extensions import (
    LearnedCache,
    LearnedSetIndex,
    conflict_study,
    hot_region_trace,
    strided_trace,
)


class TestLearnedSetIndex:
    def test_sets_in_range(self):
        sample = [i * 64 for i in range(1000)]
        idx = LearnedSetIndex(128, sample)
        for paddr in sample[::17]:
            assert 0 <= idx.set_of(paddr) < 128

    def test_dense_sample_spreads_evenly(self):
        sample = [i * 64 for i in range(4096)]
        idx = LearnedSetIndex(256, sample)
        sets = {idx.set_of(a) for a in sample}
        assert len(sets) > 200

    def test_aliasing_sample_spreads(self):
        # 64 lines all aliasing to one modulo set.
        sample = [(1 << 14) * i for i in range(64)]
        idx = LearnedSetIndex(256, sample)
        sets = {idx.set_of(a) for a in sample}
        assert len(sets) >= 32

    def test_model_is_tiny(self):
        sample = [i * 64 for i in range(10_000)]
        idx = LearnedSetIndex(256, sample)
        assert idx.model_bytes <= 256

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            LearnedSetIndex(128, [])


class TestConflictStudy:
    def test_strided_pathology_fixed(self):
        trace = strided_trace(16 << 10, lines=64, repeats=30)
        study = conflict_study(trace)
        assert study.miss_reduction > 0.8

    def test_hot_regions_fixed(self):
        trace = hot_region_trace(8, 4 << 10, accesses=10_000)
        study = conflict_study(trace)
        assert study.miss_reduction > 0.7

    def test_uniform_not_hurt(self):
        rng = np.random.default_rng(2)
        trace = (rng.integers(0, 1 << 22, size=10_000) * 64).tolist()
        study = conflict_study(trace)
        # Within a few percent of modulo on conflict-free traffic.
        assert abs(study.miss_reduction) < 0.05

    def test_learned_cache_is_a_cache(self):
        cache = LearnedCache("t", 4096, 4, latency=1, sample=[0, 64, 128])
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.mpki(1000) >= 0
