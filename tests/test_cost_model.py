"""Tests for the LVM cost model (paper section 4.2.3)."""

import numpy as np
import pytest

from repro.core.config import LVMConfig
from repro.core.cost_model import (
    choose_branching,
    fit_keys,
    plan_leaf,
    predict_array,
)

BIG = 1 << 40  # effectively unlimited physical contiguity


def arrays(keys, spans=None):
    keys = np.array(keys, dtype=np.int64)
    if spans is None:
        ends = keys + 1
    else:
        ends = keys + np.array(spans, dtype=np.int64)
    return keys, ends


class TestFitKeys:
    def test_matches_scalar_fit(self):
        keys = np.arange(1000, 2000, dtype=np.int64)
        model = fit_keys(keys)
        pred = predict_array(model, keys)
        assert np.all(np.abs(pred - np.arange(1000)) <= 1)

    def test_single_key(self):
        model = fit_keys(np.array([7], dtype=np.int64))
        assert model.predict(7) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_keys(np.empty(0, dtype=np.int64))


class TestPlanLeaf:
    def test_dense_keys_good_plan(self):
        keys, ends = arrays(range(5000))
        plan = plan_leaf(keys, ends, LVMConfig())
        assert plan.within_error_bound
        assert plan.collision_rate < 0.01
        assert plan.max_window <= LVMConfig().max_leaf_error_slots
        # Table sized ~ ga_scale * keys.
        assert plan.num_slots <= 1.4 * 5000 + 64

    def test_normalized_predictions_start_at_zero(self):
        keys, ends = arrays(range(100_000, 105_000))
        plan = plan_leaf(keys, ends, LVMConfig())
        predicted = predict_array(plan.model, keys)
        assert predicted.min() == 0

    def test_empty_leaf(self):
        plan = plan_leaf(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), LVMConfig()
        )
        assert plan.within_error_bound
        assert plan.num_slots >= 8

    def test_mixed_density_violates_bound(self):
        # Dense head (1 key/VPN) then sparse tail (1 key per 8 VPNs):
        # one line double-books the head, cascading displacement.
        keys = list(range(2000)) + list(range(4000, 36_000, 8))
        keys, ends = arrays(keys)
        plan = plan_leaf(keys, ends, LVMConfig())
        assert not plan.within_error_bound

    def test_huge_page_interior_counts_in_window(self):
        # Dense 4K run plus a huge page: interior queries of the huge
        # page predict far past its entry under the dense slope.
        keys = list(range(1000)) + [2048]
        spans = [1] * 1000 + [512]
        keys, ends = arrays(keys, spans)
        plan = plan_leaf(keys, ends, LVMConfig())
        assert plan.max_window > LVMConfig().max_leaf_error_slots
        assert not plan.within_error_bound

    def test_uniform_huge_pages_ok(self):
        keys = list(range(0, 512 * 200, 512))
        spans = [512] * 200
        keys, ends = arrays(keys, spans)
        plan = plan_leaf(keys, ends, LVMConfig())
        assert plan.within_error_bound


class TestChooseBranching:
    def test_good_leaf_stays_leaf(self):
        keys, ends = arrays(range(10_000))
        decision = choose_branching(keys, ends, 0, 10_000, 0, LVMConfig(), BIG)
        assert decision.make_leaf

    def test_multi_segment_space_branches(self):
        segs = (
            list(range(0, 2000))
            + list(range(100_000, 105_000))
            + list(range(400_000, 403_000))
        )
        keys, ends = arrays(segs)
        decision = choose_branching(keys, ends, 0, 403_000, 0, LVMConfig(), BIG)
        assert not decision.make_leaf
        assert decision.num_children >= 2

    def test_contiguity_forces_split(self):
        keys, ends = arrays(range(100_000))
        # Table would need ~1 MB; only 64 KB contiguity available.
        decision = choose_branching(
            keys, ends, 0, 100_000, 0, LVMConfig(), 64 << 10
        )
        assert not decision.make_leaf
        # At least enough children for the contiguity split.
        assert decision.num_children >= (100_000 * 8 * 1.3) // (64 << 10)

    def test_depth_limit_forces_leaf(self):
        segs = list(range(0, 2000)) + list(range(100_000, 102_000))
        keys, ends = arrays(segs)
        config = LVMConfig()
        decision = choose_branching(
            keys, ends, 0, 102_000, config.d_limit - 1, config, BIG
        )
        assert decision.make_leaf

    def test_coverage_guardrail_blocks_tiny_children(self):
        # A span too small for even two children at the coverage floor.
        keys, ends = arrays([0, 100, 200, 900])
        decision = choose_branching(keys, ends, 0, 1000, 0, LVMConfig(), BIG)
        assert decision.make_leaf

    def test_x3_boost_prefers_branching(self):
        segs = list(range(0, 3000)) + list(range(50_000, 53_000))
        keys, ends = arrays(segs)
        config = LVMConfig()
        base = choose_branching(keys, ends, 0, 53_000, 0, config, BIG)
        boosted = choose_branching(
            keys, ends, 0, 53_000, 0, config, BIG, x3_boost=100.0
        )
        if not base.make_leaf:
            assert not boosted.make_leaf
