"""PageTable protocol conformance and the walk helpers."""

from repro.kernel.manager import LVMManager
from repro.mem.allocator import BumpAllocator
from repro.pagetables import (
    ECPT,
    FlattenedPageTable,
    HashedPageTable,
    IdealPageTable,
    PageTable,
    RadixPageTable,
    walk_serial_length,
    walk_traffic,
)
from repro.types import PTE, AccessKind, WalkAccess, WalkResult


ALL_TABLES = [
    lambda: RadixPageTable(BumpAllocator()),
    lambda: HashedPageTable(BumpAllocator()),
    lambda: ECPT(BumpAllocator(), initial_size=64),
    lambda: FlattenedPageTable(BumpAllocator()),
    lambda: IdealPageTable(BumpAllocator()),
    lambda: LVMManager(BumpAllocator()),
]


class TestProtocolConformance:
    def test_all_schemes_satisfy_protocol(self):
        for factory in ALL_TABLES:
            table = factory()
            assert isinstance(table, PageTable), type(table)

    def test_table_bytes_nonnegative(self):
        for factory in ALL_TABLES:
            table = factory()
            table.map(PTE(vpn=1, ppn=1))
            assert table.table_bytes >= 0


class TestWalkHelpers:
    def test_walk_traffic_counts_accesses(self):
        result = WalkResult(None, [
            WalkAccess(0, AccessKind.PT_NODE, level=4),
            WalkAccess(8, AccessKind.PT_LEAF, level=1),
        ])
        assert walk_traffic(result) == 2

    def test_serial_length_collapses_parallel_groups(self):
        result = WalkResult(None, [
            WalkAccess(0, AccessKind.PT_LEAF, level=1, parallel_group=0),
            WalkAccess(8, AccessKind.PT_LEAF, level=1, parallel_group=0),
            WalkAccess(16, AccessKind.PT_LEAF, level=1, parallel_group=0),
            WalkAccess(99, AccessKind.CWT, level=5),
        ])
        # Three parallel probes = one serial step; CWT = another.
        assert walk_serial_length(result) == 2
        assert walk_traffic(result) == 4

    def test_radix_walk_is_fully_serial(self):
        table = RadixPageTable(BumpAllocator())
        table.map(PTE(vpn=7, ppn=7))
        result = table.walk(7)
        assert walk_serial_length(result) == walk_traffic(result) == 4

    def test_ecpt_walk_parallelism(self):
        table = ECPT(BumpAllocator(), initial_size=64)
        table.map(PTE(vpn=7, ppn=7))
        result = table.walk(7)
        assert walk_traffic(result) > walk_serial_length(result)
