"""Shared pytest configuration: a dependency-free ``timeout`` marker.

``pytest-timeout`` is not part of this repo's test dependencies; this
hook implements the subset the suite needs — per-test wall-clock limits
on Unix via SIGALRM.  If the real plugin is installed it takes over and
this fallback backs off.  On platforms without SIGALRM the marker is a
no-op (the limit is a chaos-harness safety net, not a correctness
assertion).
"""

import os
import signal

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_cache(tmp_path_factory):
    """Point the content-addressed trace cache at a per-session temp
    directory: tests must neither read a developer's warm cache (it
    would mask compile-path bugs) nor litter ``~/.cache`` with entries
    for tiny test traces."""
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("trace-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than the limit",
    )
    config.addinivalue_line(
        "markers", "slow: long-running benchmark-style test"
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    limit = marker.args[0] if marker and marker.args else None
    use_alarm = (
        limit is not None
        and not item.config.pluginmanager.hasplugin("timeout")
        and hasattr(signal, "SIGALRM")
    )
    if not use_alarm:
        yield
        return

    def _expire(signum, frame):
        pytest.fail(f"test exceeded the {limit}s timeout", pytrace=False)

    old_handler = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, float(limit))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)
